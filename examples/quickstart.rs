//! Quickstart: run both protocols of the paper on a small system and
//! print what happened.
//!
//! ```text
//! cargo run --release -p tlb-experiments --example quickstart
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_core::prelude::*;
use tlb_core::weights::WeightSpec;
use tlb_graphs::generators;

fn main() {
    let mut rng = SmallRng::seed_from_u64(7);

    // A workload: 2000 tasks, one of weight 64, the rest unit weight
    // (Figure-2 style), everything initially dumped on resource 0.
    let tasks = WeightSpec::figure2(2000, 64.0).generate(&mut rng);
    println!(
        "workload: m = {}, W = {}, w_max = {}, w_max/w_min = {}",
        tasks.len(),
        tasks.total_weight(),
        tasks.w_max(),
        tasks.heterogeneity()
    );

    // --- User-controlled protocol (complete graph, Algorithm 6.1) -------
    let n = 500;
    let user_cfg = UserControlledConfig {
        threshold: ThresholdPolicy::AboveAverage { epsilon: 0.2 },
        alpha: 1.0, // the paper's simulation setting; its analysis uses ε/(120(1+ε))
        ..Default::default()
    };
    let out = run_user_controlled(n, &tasks, Placement::AllOnOne(0), &user_cfg, &mut rng);
    println!("\nuser-controlled on K_{n}:");
    println!("  threshold      = {:.2}", out.threshold);
    println!("  balanced       = {}", out.balanced());
    println!("  rounds         = {}", out.rounds);
    println!("  migrations     = {}", out.migrations);
    println!("  final max load = {:.2}", out.final_max_load);
    let bound = tlb_core::drift::theorem11_bound(0.2, 1.0, tasks.w_max(), 1.0, tasks.len());
    println!(
        "  Theorem-11 bound at alpha=1: {bound:.0} rounds (measured {} — far below)",
        out.rounds
    );

    // --- Resource-controlled protocol (arbitrary graph, Algorithm 5.1) --
    let g = generators::torus2d(20, 25); // 500 resources on a torus
    let res_cfg = ResourceControlledConfig::default();
    let out = run_resource_controlled(&g, &tasks, Placement::AllOnOne(0), &res_cfg, &mut rng);
    println!("\nresource-controlled on a 20x25 torus:");
    println!("  threshold      = {:.2}", out.threshold);
    println!("  balanced       = {}", out.balanced());
    println!("  rounds         = {}", out.rounds);
    println!("  migrations     = {}", out.migrations);
    println!("  final max load = {:.2}", out.final_max_load);
    println!("\n(the torus mixes in Θ(n) — compare the round counts: Theorem 3 is τ(G)·log m)");
}
