//! Domain scenario: CDN shard placement with selfish, decentralized
//! migration.
//!
//! A content delivery network holds shards whose sizes follow a truncated
//! Pareto (a few blockbuster objects, a long tail). Any edge cache can
//! talk to any other (complete graph), but there is no coordinator: each
//! shard independently decides to move off an overloaded cache — exactly
//! the paper's user-controlled protocol. The example compares the
//! conservative analysis α with the aggressive α = 1 the paper simulates,
//! and an above-average vs tight threshold.
//!
//! ```text
//! cargo run --release -p tlb-experiments --example cdn_shards
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_core::drift::{analysis_alpha, theorem11_bound};
use tlb_core::prelude::*;
use tlb_core::weights::WeightSpec;

fn main() {
    let mut rng = SmallRng::seed_from_u64(99);

    let n = 200; // edge caches
    let tasks = WeightSpec::ParetoTruncated { m: 4000, alpha: 1.3, cap: 64.0 }.generate(&mut rng);
    println!(
        "shards: {} objects, total size {:.0}, largest {:.1}, heterogeneity {:.1}",
        tasks.len(),
        tasks.total_weight(),
        tasks.w_max(),
        tasks.heterogeneity()
    );
    println!("caches: {n} (complete graph — any cache can receive from any other)\n");

    let eps = 0.2;
    let scenarios: Vec<(&str, f64, ThresholdPolicy)> = vec![
        (
            "analysis alpha, above-average",
            analysis_alpha(eps),
            ThresholdPolicy::AboveAverage { epsilon: eps },
        ),
        ("alpha = 1,      above-average", 1.0, ThresholdPolicy::AboveAverage { epsilon: eps }),
        ("alpha = 1,      tight        ", 1.0, ThresholdPolicy::Tight),
    ];

    println!(
        "{:<32} {:>10} {:>12} {:>12} {:>14}",
        "scenario", "rounds", "migrations", "max load", "threshold"
    );
    for (name, alpha, threshold) in scenarios {
        let cfg = UserControlledConfig { threshold, alpha, ..Default::default() };
        let out = run_user_controlled(n, &tasks, Placement::AllOnOne(0), &cfg, &mut rng);
        println!(
            "{:<32} {:>10} {:>12} {:>12.1} {:>14.1}",
            name, out.rounds, out.migrations, out.final_max_load, out.threshold
        );
    }

    let bound = theorem11_bound(eps, 1.0, tasks.w_max(), tasks.w_min(), tasks.len());
    println!(
        "\nTheorem-11 bound at alpha = 1: {bound:.0} rounds — the measured times sit well \
         below it, and the analysis-alpha run shows the 1/alpha slowdown the bound predicts."
    );
}
