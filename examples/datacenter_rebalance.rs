//! Domain scenario: rebalancing heterogeneous batch jobs on a datacenter
//! fabric.
//!
//! A rack-scale cluster is modelled as a torus (each machine talks to its
//! four fabric neighbours — task migration is local, exactly the paper's
//! resource-controlled model). A burst of jobs with exponential service
//! times lands on a handful of ingest nodes; the operators don't know the
//! global average load, so the machines first *estimate* it with the
//! footnote-1 diffusion scheme, then run Algorithm 5.1 until every machine
//! is under its threshold.
//!
//! ```text
//! cargo run --release -p tlb-experiments --example datacenter_rebalance
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tlb_core::diffusion::{estimate_average_to_tolerance, DiffusionKind};
use tlb_core::prelude::*;
use tlb_core::weights::WeightSpec;
use tlb_graphs::generators;
use tlb_graphs::NodeId;

fn main() {
    let mut rng = SmallRng::seed_from_u64(2024);

    // 16x16 = 256 machines on a torus fabric.
    let (rows, cols) = (16usize, 16usize);
    let g = generators::torus2d(rows, cols);
    let n = g.num_nodes();

    // 3000 jobs with mean service time 3.0, landing on 4 ingest nodes.
    let tasks = WeightSpec::Exponential { m: 3000, mean: 3.0 }.generate(&mut rng);
    let ingest: Vec<NodeId> = vec![0, 15, 240, 255];
    let locs: Vec<NodeId> =
        (0..tasks.len()).map(|_| ingest[rng.gen_range(0..ingest.len())]).collect();

    println!("cluster: {n} machines ({rows}x{cols} torus)");
    println!(
        "burst:   {} jobs, total work {:.0}, heaviest {:.1}",
        tasks.len(),
        tasks.total_weight(),
        tasks.w_max()
    );

    // Phase 1 — estimate the average load by diffusion (footnote 1).
    // Machines only know their own initial load.
    let mut init_loads = vec![0.0; n];
    for (i, &l) in locs.iter().enumerate() {
        init_loads[l as usize] += tasks.weight(i as u32);
    }
    let true_avg = tasks.total_weight() / n as f64;
    let (estimates, steps) = estimate_average_to_tolerance(
        &g,
        &init_loads,
        0.01 * true_avg,
        1_000_000,
        DiffusionKind::Damped,
    );
    let worst = estimates.iter().map(|e| (e - true_avg).abs() / true_avg).fold(0.0f64, f64::max);
    println!("\nphase 1: diffusion average estimation");
    println!("  true average  = {true_avg:.2}");
    println!("  steps         = {steps}");
    println!("  worst rel err = {:.3}%", worst * 100.0);

    // Phase 2 — rebalance with the resource-controlled protocol.
    let cfg = ResourceControlledConfig {
        threshold: ThresholdPolicy::AboveAverage { epsilon: 0.2 },
        ..Default::default()
    };
    let out = run_resource_controlled(&g, &tasks, Placement::Explicit(locs), &cfg, &mut rng);
    println!("\nphase 2: resource-controlled rebalancing (Algorithm 5.1)");
    println!("  threshold        = {:.2}", out.threshold);
    println!("  rounds           = {}", out.rounds);
    println!("  migrations       = {}", out.migrations);
    println!("  final max load   = {:.2}", out.final_max_load);
    println!("  balanced         = {}", out.balanced());

    // Show the final load distribution in coarse buckets.
    let mut buckets = [0usize; 5];
    for &l in &out.final_loads {
        let frac = l / out.threshold;
        let idx = ((frac * 4.0) as usize).min(4);
        buckets[idx] += 1;
    }
    println!("\nfinal load distribution (fraction of threshold):");
    for (i, b) in buckets.iter().enumerate() {
        println!("  {:>3}%-{:>3}%: {:>4} machines", i * 25, (i + 1) * 25, b);
    }
}
