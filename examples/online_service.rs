//! Domain scenario: one day in the life of a CDN edge fabric, simulated
//! online — including a mid-day service restart from a checkpoint.
//!
//! A 6×6 torus of edge caches serves streaming object placements. The day
//! has four scripted phases:
//!
//! 1. **overnight**    — a trickle of arrivals, caches mostly idle;
//! 2. **morning ramp** — traffic steps up as users wake;
//! 3. **flash crowd**  — a viral object: a burst of arrivals every few
//!    minutes, all hitting one ingest cache (the adversarial hot-spot),
//!    while one rack (a torus row) drains for maintenance;
//! 4. **wind-down**    — the rack returns, arrivals stop, and the
//!    protocol converges the fabric back under threshold.
//!
//! Phases are applied to one long-lived engine through the validated
//! [`OnlineSim::reconfigure`] service API. In the middle of the flash
//! crowd — the worst possible moment — the balancer process "restarts":
//! the engine checkpoints to a [`tlb_sim::SimSnapshot`], is dropped, and
//! a new engine restores from the serialized snapshot plus a fresh base
//! graph. The example then proves the service-mode contract by replaying
//! the same day uninterrupted and asserting the two trajectories are
//! bit-identical, epoch for epoch.
//!
//! Two tenants share the fabric: a latency tier with a tight SLO and a
//! batch tier that tolerates 2× the average. The epoch metrics show the
//! tight tier degrading first during the crowd and both recovering in the
//! wind-down.
//!
//! Both service engines run with observability on (`tlb-obs`), and the
//! day ends with the engine's phase-time breakdown — while the
//! uninterrupted replay runs obs-*off*, so the final bit-identity check
//! doubles as proof that instrumentation never perturbs a trajectory.
//!
//! ```text
//! cargo run --release --example online_service
//! ```

use tlb_core::threshold::ThresholdPolicy;
use tlb_graphs::generators::torus2d;
use tlb_sim::{
    ArrivalPlacement, ArrivalProcess, ChurnEvent, ChurnProcess, EpochRecord, OnlineSim, SimConfig,
    SimSnapshot, TenantSpec,
};

/// One phase of the scripted day.
struct Phase {
    name: &'static str,
    epochs: u64,
    arrivals: ArrivalProcess,
    placement: ArrivalPlacement,
}

fn summarize(name: &str, records: &[EpochRecord]) {
    let balanced = records.iter().filter(|r| r.balanced).count();
    let peak = records.iter().map(|r| r.max_load).fold(0.0, f64::max);
    let migrations: u64 = records.iter().map(|r| r.migrations).sum();
    let latency_violations = records.iter().filter(|r| r.tenant_violations[0] > 0).count();
    let last = records.last().expect("phase has epochs");
    println!(
        "  {name:<13} {:>4} epochs  balanced {:>5.1}%  peak load {peak:>6.1}  \
         migrations {migrations:>5}  latency-SLO violated {:>5.1}%  \
         ({} live tasks on {} caches)",
        records.len(),
        balanced as f64 / records.len() as f64 * 100.0,
        latency_violations as f64 / records.len() as f64 * 100.0,
        last.live_tasks,
        last.active_resources,
    );
}

/// The phase config in force from `epoch` on, if `epoch` is a phase
/// boundary. A pure function of the epoch index, so an engine restored
/// mid-day re-derives the same schedule the uninterrupted day uses.
fn phase_at(base: &SimConfig, phases: &[Phase], epoch: u64) -> Option<SimConfig> {
    let mut start = 0;
    for phase in phases {
        if epoch == start {
            return Some(SimConfig {
                arrivals: phase.arrivals,
                arrival_placement: phase.placement,
                ..base.clone()
            });
        }
        start += phase.epochs;
    }
    None
}

/// Drive `sim` from its current epoch to `total`, applying phase
/// boundaries through the validated live-reconfiguration API.
fn run_day(sim: &mut OnlineSim, base: &SimConfig, phases: &[Phase], total: u64) {
    while sim.epoch() < total {
        if let Some(cfg) = phase_at(base, phases, sim.epoch()) {
            sim.reconfigure(cfg).expect("phase swap keeps tenants and determinism");
        }
        sim.run_epoch();
    }
}

fn main() {
    let side = 6;
    let n = (side * side) as u32;
    let rack = n / side as u32; // one torus row = 6 caches

    let phases = [
        Phase {
            name: "overnight",
            epochs: 60,
            arrivals: ArrivalProcess::Poisson { rate: 2.0 },
            placement: ArrivalPlacement::Uniform,
        },
        Phase {
            name: "morning ramp",
            epochs: 60,
            arrivals: ArrivalProcess::Poisson { rate: 14.0 },
            placement: ArrivalPlacement::Uniform,
        },
        Phase {
            name: "flash crowd",
            epochs: 60,
            arrivals: ArrivalProcess::Bursty { base: 10.0, burst: 80.0, period: 20, burst_len: 4 },
            placement: ArrivalPlacement::HotSpot(0),
        },
        Phase {
            name: "wind-down",
            epochs: 80,
            arrivals: ArrivalProcess::Off,
            placement: ArrivalPlacement::Uniform,
        },
    ];
    let crowd_start: u64 = phases[..2].iter().map(|p| p.epochs).sum();
    let crowd_end = crowd_start + phases[2].epochs;
    let total: u64 = phases.iter().map(|p| p.epochs).sum();
    // The balancer restarts right in the middle of the flash crowd.
    let restart_at = crowd_start + phases[2].epochs / 2;

    println!("CDN day on a {side}x{side} torus fabric, {} tenants, scripted phases:\n", 2);

    // The rack drains when the flash crowd hits (worst possible timing)
    // and returns at the start of the wind-down.
    let churn = ChurnProcess::scripted(vec![
        (crowd_start, ChurnEvent::DeactivateRange { from: 0, to: rack }),
        (crowd_end, ChurnEvent::ActivateRange { from: 0, to: rack }),
    ]);

    let base = SimConfig {
        name: "cdn-day".into(),
        epochs: 0, // driven epoch by epoch below
        seed: 7,
        departure_prob: 0.03,
        churn,
        tenants: vec![
            TenantSpec::new("latency", ThresholdPolicy::Tight, 0.4),
            TenantSpec::new("batch", ThresholdPolicy::AboveAverage { epsilon: 1.0 }, 0.6),
        ],
        rounds_per_epoch: 24,
        ..Default::default()
    };

    // --- The service day: one engine, phases via reconfigure(), with a
    // checkpoint/restart mid-crowd.
    let mut morning_engine = OnlineSim::new(torus2d(side, side), base.clone());
    morning_engine.enable_obs();
    run_day(&mut morning_engine, &base, &phases, restart_at);
    let snapshot = morning_engine.checkpoint().expect("checkpoint at an epoch boundary");
    let snapshot_json = snapshot.to_json().expect("snapshot serializes");
    let mut day: Vec<EpochRecord> = morning_engine.records().to_vec();
    drop(morning_engine); // the "process" exits mid-flash-crowd

    let restored = SimSnapshot::from_json(&snapshot_json).expect("snapshot parses");
    let mut evening_engine =
        OnlineSim::restore(restored, torus2d(side, side)).expect("snapshot restores");
    evening_engine.enable_obs(); // obs does not survive a restart; re-arm
    println!(
        "(balancer restarted at epoch {}: {} bytes of snapshot, resumed mid-flash-crowd)\n",
        evening_engine.epoch(),
        snapshot_json.len()
    );
    run_day(&mut evening_engine, &base, &phases, total);
    day.extend_from_slice(evening_engine.records());

    let mut start = 0usize;
    for phase in &phases {
        summarize(phase.name, &day[start..start + phase.epochs as usize]);
        start += phase.epochs as usize;
    }

    let last = day.last().expect("epochs ran");
    println!(
        "\nend of day: balanced = {}, max load {:.1} vs threshold {:.1}",
        last.balanced, last.max_load, last.threshold
    );
    assert!(last.balanced, "the fabric must converge once traffic stops");

    // --- Where the afternoon went: the evening engine's observability
    // report (epoch-loop phase timers plus the deterministic protocol
    // counters the run accumulated since the restart).
    let obs = evening_engine.obs_report().expect("obs was enabled");
    println!("\nafternoon phase breakdown ({} epochs since the restart):", total - restart_at);
    for phase in ["churn", "arrivals", "rebalance", "record"] {
        let t = &obs.timings[&format!("epoch.{phase}_ns")];
        println!(
            "  {phase:<9} mean {:>7.1} us/epoch  peak {:>8.1} us",
            t.total_ns as f64 / t.count.max(1) as f64 / 1_000.0,
            t.max_ns as f64 / 1_000.0,
        );
    }
    println!(
        "  protocol: {} tasks ejected over {} rebalance rounds (largest single-round cohort {})",
        obs.counters["rebalance.ejected"],
        obs.counters["sim.rebalance_rounds"],
        obs.counters["rebalance.max_round_cohort"],
    );

    // --- The service-mode contract: the restarted day is bit-identical
    // to the same day run without the restart.
    let mut uninterrupted = OnlineSim::new(torus2d(side, side), base.clone());
    run_day(&mut uninterrupted, &base, &phases, total);
    assert_eq!(
        day,
        uninterrupted.records(),
        "restarted trajectory must match the uninterrupted day bit for bit"
    );
    println!("restart check: all {} epochs match the uninterrupted run bit for bit", day.len());
}
