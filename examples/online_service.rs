//! Domain scenario: one day in the life of a CDN edge fabric, simulated
//! online.
//!
//! A 6×6 torus of edge caches serves streaming object placements. The day
//! has four scripted phases:
//!
//! 1. **overnight**    — a trickle of arrivals, caches mostly idle;
//! 2. **morning ramp** — traffic steps up as users wake;
//! 3. **flash crowd**  — a viral object: a burst of arrivals every few
//!    minutes, all hitting one ingest cache (the adversarial hot-spot),
//!    while one rack (a torus row) drains for maintenance;
//! 4. **wind-down**    — the rack returns, arrivals stop, and the
//!    protocol converges the fabric back under threshold.
//!
//! Two tenants share the fabric: a latency tier with a tight SLO and a
//! batch tier that tolerates 2× the average. The epoch metrics show the
//! tight tier degrading first during the crowd and both recovering in the
//! wind-down.
//!
//! ```text
//! cargo run --release --example online_service
//! ```

use tlb_core::threshold::ThresholdPolicy;
use tlb_graphs::generators::torus2d;
use tlb_sim::{
    ArrivalPlacement, ArrivalProcess, ChurnEvent, ChurnProcess, EpochRecord, OnlineSim, SimConfig,
    TenantSpec,
};

/// One phase of the scripted day.
struct Phase {
    name: &'static str,
    epochs: u64,
    arrivals: ArrivalProcess,
    placement: ArrivalPlacement,
}

fn summarize(name: &str, records: &[EpochRecord]) {
    let balanced = records.iter().filter(|r| r.balanced).count();
    let peak = records.iter().map(|r| r.max_load).fold(0.0, f64::max);
    let migrations: u64 = records.iter().map(|r| r.migrations).sum();
    let latency_violations = records.iter().filter(|r| r.tenant_violations[0] > 0).count();
    let last = records.last().expect("phase has epochs");
    println!(
        "  {name:<13} {:>4} epochs  balanced {:>5.1}%  peak load {peak:>6.1}  \
         migrations {migrations:>5}  latency-SLO violated {:>5.1}%  \
         ({} live tasks on {} caches)",
        records.len(),
        balanced as f64 / records.len() as f64 * 100.0,
        latency_violations as f64 / records.len() as f64 * 100.0,
        last.live_tasks,
        last.active_resources,
    );
}

fn main() {
    let side = 6;
    let n = (side * side) as u32;
    let rack = n / side as u32; // one torus row = 6 caches

    let phases = [
        Phase {
            name: "overnight",
            epochs: 60,
            arrivals: ArrivalProcess::Poisson { rate: 2.0 },
            placement: ArrivalPlacement::Uniform,
        },
        Phase {
            name: "morning ramp",
            epochs: 60,
            arrivals: ArrivalProcess::Poisson { rate: 14.0 },
            placement: ArrivalPlacement::Uniform,
        },
        Phase {
            name: "flash crowd",
            epochs: 60,
            arrivals: ArrivalProcess::Bursty { base: 10.0, burst: 80.0, period: 20, burst_len: 4 },
            placement: ArrivalPlacement::HotSpot(0),
        },
        Phase {
            name: "wind-down",
            epochs: 80,
            arrivals: ArrivalProcess::Off,
            placement: ArrivalPlacement::Uniform,
        },
    ];
    let crowd_start: u64 = phases[..2].iter().map(|p| p.epochs).sum();
    let crowd_end = crowd_start + phases[2].epochs;

    println!("CDN day on a {side}x{side} torus fabric, {} tenants, scripted phases:\n", 2);

    // The rack drains when the flash crowd hits (worst possible timing)
    // and returns at the start of the wind-down.
    let churn = ChurnProcess::scripted(vec![
        (crowd_start, ChurnEvent::DeactivateRange { from: 0, to: rack }),
        (crowd_end, ChurnEvent::ActivateRange { from: 0, to: rack }),
    ]);

    // One engine runs the whole day; phases swap the arrival process by
    // re-running with the accumulated state (the config is cheap to edit
    // between `run_epoch` calls because the engine re-reads it per run).
    let mut cfg = SimConfig {
        name: "cdn-day".into(),
        epochs: 0, // driven phase by phase below
        seed: 7,
        departure_prob: 0.03,
        churn,
        tenants: vec![
            TenantSpec::new("latency", ThresholdPolicy::Tight, 0.4),
            TenantSpec::new("batch", ThresholdPolicy::AboveAverage { epsilon: 1.0 }, 0.6),
        ],
        rounds_per_epoch: 24,
        ..Default::default()
    };

    let mut start = 0usize;
    let mut sim: Option<OnlineSim> = None;
    for phase in &phases {
        cfg.arrivals = phase.arrivals;
        cfg.arrival_placement = phase.placement;
        cfg.epochs = phase.epochs;
        let mut engine = match sim.take() {
            // First phase: fresh engine. Later phases: rebuild the engine
            // around the same config shape is unnecessary — the engine is
            // stateful, so keep it and run more epochs.
            None => OnlineSim::new(torus2d(side, side), cfg.clone()),
            Some(engine) => engine.with_config(cfg.clone()),
        };
        engine.run();
        summarize(phase.name, &engine.records()[start..]);
        start = engine.records().len();
        sim = Some(engine);
    }

    let engine = sim.expect("day ran");
    let last = engine.records().last().expect("epochs ran");
    println!(
        "\nend of day: balanced = {}, max load {:.1} vs threshold {:.1}",
        last.balanced, last.max_load, last.threshold
    );
    assert!(last.balanced, "the fabric must converge once traffic stops");
}
