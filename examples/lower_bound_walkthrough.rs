//! Walkthrough of Observation 8: why tight thresholds cost `H(G)·log m`.
//!
//! Builds the lollipop family (clique `K_{n-1}` plus one pendant node on
//! `k` edges), shows its maximum hitting time `Θ(n²/k)` three ways (exact
//! fundamental matrix, Monte-Carlo walks, the asymptotic formula), then
//! runs the resource-controlled protocol with the tight threshold from the
//! observation's *saturating* start — every clique node at exactly the
//! threshold, the surplus on one clique node, the pendant empty — and
//! compares the measured balancing time to `H(G)·ln m`.
//!
//! ```text
//! cargo run --release -p tlb-experiments --example lower_bound_walkthrough
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_core::prelude::*;
use tlb_experiments::figures::obs8;
use tlb_graphs::generators::lollipop;
use tlb_walks::{hitting, TransitionMatrix, WalkKind};

fn main() {
    let n = 32usize;
    let (tasks, placement) = obs8::workload(n);
    let m = tasks.len();
    let mut rng = SmallRng::seed_from_u64(5);

    println!("Observation 8 lower-bound family: clique K_{} + pendant node on k edges", n - 1);
    println!(
        "workload: {m} unit tasks; every clique node starts exactly at the tight threshold\n\
         T = W/n + 2w_max = {}; the surplus of {} tasks on clique node 0 can only drain\n\
         into the pendant node — which the walk takes Θ(n²/k) steps to find.\n",
        3 * n + 2,
        n + 2
    );
    println!(
        "{:>4} {:>12} {:>12} {:>10} {:>12} {:>16}",
        "k", "H exact", "H monte-c.", "n^2/k", "rounds", "rounds/(H ln m)"
    );

    for k in [1usize, 2, 4, 8, 16] {
        let g = lollipop(n, k).expect("valid parameters");
        let p = TransitionMatrix::build(&g, WalkKind::MaxDegree);
        let h_exact = hitting::max_hitting_time_exact(&p);
        let h_mc = hitting::max_hitting_time_mc(&g, WalkKind::MaxDegree, 8, 300, 2_000_000, 11);
        let asymptotic = (n * n) as f64 / k as f64;

        let cfg = ResourceControlledConfig {
            threshold: ThresholdPolicy::TightResource,
            ..Default::default()
        };
        let trials = 10;
        let mean_rounds: f64 = (0..trials)
            .map(|_| {
                run_resource_controlled(&g, &tasks, placement.clone(), &cfg, &mut rng).rounds as f64
            })
            .sum::<f64>()
            / trials as f64;

        println!(
            "{k:>4} {h_exact:>12.1} {h_mc:>12.1} {asymptotic:>10.0} {mean_rounds:>12.1} {:>16.5}",
            mean_rounds / (h_exact * (m as f64).ln())
        );
    }

    println!(
        "\nReading the table: H tracks n²/k as k grows, and the balancing time tracks H \
         — the last column stays roughly flat, which is exactly the Ω(H·log m) / O(H·log W) \
         sandwich of Observation 8 and Theorem 7."
    );
}
