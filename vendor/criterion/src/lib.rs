//! Offline stand-in for `criterion` 0.5: the macro/group/bencher surface
//! this workspace's benches use, timing with a short warm-up and a fixed
//! measurement budget and reporting the wall-clock mean only (no
//! statistics, no HTML reports). Timings are indicative; CI compiles the
//! benches (`cargo bench --no-run`) rather than trusting these numbers.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a benchmarked value. Distinct
/// from `std::hint::black_box` only in name stability across toolchains.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation attached to a group (printed, not analyzed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", name.into()) }
    }

    /// Parameter-only id (for single-function groups).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Conversion into the printable benchmark id.
pub trait IntoBenchmarkId {
    /// The `group/…` suffix identifying this benchmark.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measurement: Duration::from_millis(300) }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), measurement: self.measurement, _parent: self }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Record the per-iteration throughput (printed with results).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Ignored by the shim (the measurement budget is fixed); kept so
    /// group configuration code compiles unchanged.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Shrink or grow the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into_id(), |b| f(b));
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into_id(), |b| f(b, input));
        self
    }

    /// Close the group (a no-op beyond matching real criterion's API).
    pub fn finish(self) {}

    fn run(&mut self, id: String, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher { measurement: self.measurement, mean_ns: 0.0, iters: 0 };
        f(&mut b);
        println!(
            "bench {:<50} {:>12.1} ns/iter ({} iters)",
            format!("{}/{id}", self.name),
            b.mean_ns,
            b.iters
        );
    }
}

/// Times the closure passed to [`Bencher::iter`].
pub struct Bencher {
    measurement: Duration,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Run `f` repeatedly — a short warm-up, then the fixed measurement
    /// budget — and record the mean wall-clock time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warmup = Duration::from_millis(30);
        let start = Instant::now();
        while start.elapsed() < warmup {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measurement {
            black_box(f());
            iters += 1;
        }
        let total = start.elapsed();
        self.iters = iters;
        self.mean_ns = if iters == 0 { 0.0 } else { total.as_nanos() as f64 / iters as f64 };
    }
}

/// Declare a benchmark group: a function list run in order by
/// [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench binary's `main`, running each group in order.
/// Cargo passes `--bench` (and harness flags) on the command line; the
/// shim accepts and ignores them.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion { measurement: Duration::from_millis(5) };
        let mut g = c.benchmark_group("shim");
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        g.bench_with_input(BenchmarkId::new("id", 7), &7u64, |b, &x| b.iter(|| x * 2));
        g.finish();
        assert!(ran);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
    }
}
