//! Multi-producer single-consumer channels with crossbeam's API shape.

use std::sync::mpsc;

/// Sending half of a channel; clonable across worker threads.
pub struct Sender<T> {
    inner: mpsc::SyncSender<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender { inner: self.inner.clone() }
    }
}

/// Error returned when the receiving half has been dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned when all senders have been dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl<T> Sender<T> {
    /// Send `value`, blocking while the channel is full. Fails only if the
    /// receiver was dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
    }
}

/// Receiving half of a channel.
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
}

impl<T> Receiver<T> {
    /// Block for the next value; fails when the channel is empty and all
    /// senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv().map_err(|_| RecvError)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.try_recv().ok()
    }

    /// Blocking iterator over received values; ends when all senders drop.
    pub fn iter(&self) -> mpsc::Iter<'_, T> {
        self.inner.iter()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = mpsc::IntoIter<T>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = mpsc::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

/// A channel holding at most `cap` in-flight values; senders block when
/// it is full (back-pressure).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap);
    (Sender { inner: tx }, Receiver { inner: rx })
}

#[cfg(test)]
mod tests {
    #[test]
    fn roundtrip_and_disconnect() {
        let (tx, rx) = super::bounded::<u32>(4);
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        let got: Vec<u32> = rx.iter().collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = super::bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(9).is_err());
    }
}
