//! Offline stand-in for `crossbeam`: bounded channels over
//! `std::sync::mpsc` and scoped threads over `std::thread::scope`, with
//! crossbeam's `Result`-returning `scope` signature.

#![forbid(unsafe_code)]

pub mod channel;

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Handle passed to [`scope`] closures; spawns threads that may borrow
/// from the enclosing scope.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives the scope handle again
    /// (crossbeam convention) so it can spawn nested threads.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Run `f` with a scope handle; all spawned threads are joined before
/// returning. Returns `Err` with the panic payload if any spawned thread
/// (or `f` itself) panicked, mirroring `crossbeam::scope`.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&Scope { inner: s }))))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let mut data = vec![1, 2, 3];
        let out = super::scope(|s| {
            s.spawn(|_| ());
            data.push(4);
            data.len()
        })
        .unwrap();
        assert_eq!(out, 4);
    }

    #[test]
    fn scope_reports_child_panic() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_compiles() {
        let n =
            super::scope(|s| s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2).join().unwrap())
                .unwrap();
        assert_eq!(n, 42);
    }
}
