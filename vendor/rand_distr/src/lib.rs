//! Offline stand-in for `rand_distr`: the distributions the workloads use.

#![forbid(unsafe_code)]

use rand::{Rng, RngCore};

/// Types that can sample values of type `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Pareto distribution with scale `x_m` and shape `alpha`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    inv_alpha: f64,
}

impl Pareto {
    /// Create a Pareto distribution; errors if parameters are non-positive.
    pub fn new(scale: f64, shape: f64) -> Result<Self, ParamError> {
        if scale <= 0.0 || shape <= 0.0 {
            return Err(ParamError);
        }
        Ok(Pareto { scale, inv_alpha: 1.0 / shape })
    }
}

impl Distribution<f64> for Pareto {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse-CDF; 1 - u in (0, 1] avoids a zero denominator.
        let u: f64 = 1.0 - rng.gen::<f64>();
        self.scale * u.powf(-self.inv_alpha)
    }
}

/// Standard exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Create an exponential distribution; errors unless `lambda > 0`.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if lambda <= 0.0 {
            return Err(ParamError);
        }
        Ok(Exp { lambda })
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>();
        -u.ln() / self.lambda
    }
}

/// Poisson distribution with mean `lambda`.
///
/// Sampling uses Knuth's multiplication method, which draws `O(lambda)`
/// uniforms per sample. Large means are split into chunks of at most 500
/// (a Poisson(a+b) variate is the sum of independent Poisson(a) and
/// Poisson(b) variates), keeping `exp(-lambda)` far from underflow while
/// staying exact — the arrival rates the online simulation uses make the
/// linear cost irrelevant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Largest per-chunk mean for Knuth's method (`exp(-500)` is ~7e-218,
    /// comfortably inside f64 range).
    const CHUNK: f64 = 500.0;

    /// Create a Poisson distribution; errors unless `lambda` is finite
    /// and positive.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(ParamError);
        }
        Ok(Poisson { lambda })
    }

    fn sample_chunk<R: RngCore + ?Sized>(lambda: f64, rng: &mut R) -> u64 {
        let floor = (-lambda).exp();
        let mut product: f64 = rng.gen();
        let mut k = 0u64;
        while product > floor {
            product *= rng.gen::<f64>();
            k += 1;
        }
        k
    }
}

impl Distribution<u64> for Poisson {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut remaining = self.lambda;
        let mut total = 0u64;
        while remaining > Self::CHUNK {
            total += Self::sample_chunk(Self::CHUNK, rng);
            remaining -= Self::CHUNK;
        }
        total + Self::sample_chunk(remaining, rng)
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        Distribution::<u64>::sample(self, rng) as f64
    }
}

/// Invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError;

impl core::fmt::Display for ParamError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid distribution parameters")
    }
}

impl std::error::Error for ParamError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pareto_at_least_scale() {
        let d = Pareto::new(2.0, 1.5).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 2.0);
        }
    }

    #[test]
    fn exp_nonnegative() {
        let d = Exp::new(0.5).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn poisson_mean_and_variance_match() {
        let d = Poisson::new(6.5).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let trials = 20_000;
        let samples: Vec<u64> = (0..trials).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / trials as f64;
        let var = samples.iter().map(|&k| (k as f64 - mean).powi(2)).sum::<f64>() / trials as f64;
        assert!((mean - 6.5).abs() < 0.1, "mean {mean}");
        assert!((var - 6.5).abs() < 0.3, "variance {var}");
    }

    #[test]
    fn poisson_large_lambda_splits_without_degenerating() {
        // lambda = 1200 exercises the chunked path (two full chunks + a
        // remainder); mean must still track lambda.
        let d = Poisson::new(1200.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        let trials = 500;
        let mean = (0..trials).map(|_| Distribution::<u64>::sample(&d, &mut rng)).sum::<u64>()
            as f64
            / trials as f64;
        assert!((mean - 1200.0).abs() < 10.0, "mean {mean}");
    }

    #[test]
    fn poisson_f64_sampling_is_integral() {
        let d = Poisson::new(2.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..100 {
            let x: f64 = d.sample(&mut rng);
            assert_eq!(x, x.trunc());
            assert!(x >= 0.0);
        }
    }

    #[test]
    fn bad_params_rejected() {
        assert!(Pareto::new(0.0, 1.0).is_err());
        assert!(Exp::new(-1.0).is_err());
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(f64::NAN).is_err());
        assert!(Poisson::new(f64::INFINITY).is_err());
    }
}
