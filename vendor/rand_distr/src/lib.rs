//! Offline stand-in for `rand_distr`: the distributions the workloads use.

#![forbid(unsafe_code)]

use rand::{Rng, RngCore};

/// Types that can sample values of type `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Pareto distribution with scale `x_m` and shape `alpha`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    inv_alpha: f64,
}

impl Pareto {
    /// Create a Pareto distribution; errors if parameters are non-positive.
    pub fn new(scale: f64, shape: f64) -> Result<Self, ParamError> {
        if scale <= 0.0 || shape <= 0.0 {
            return Err(ParamError);
        }
        Ok(Pareto { scale, inv_alpha: 1.0 / shape })
    }
}

impl Distribution<f64> for Pareto {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse-CDF; 1 - u in (0, 1] avoids a zero denominator.
        let u: f64 = 1.0 - rng.gen::<f64>();
        self.scale * u.powf(-self.inv_alpha)
    }
}

/// Standard exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Create an exponential distribution; errors unless `lambda > 0`.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if lambda <= 0.0 {
            return Err(ParamError);
        }
        Ok(Exp { lambda })
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>();
        -u.ln() / self.lambda
    }
}

/// Invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError;

impl core::fmt::Display for ParamError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid distribution parameters")
    }
}

impl std::error::Error for ParamError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pareto_at_least_scale() {
        let d = Pareto::new(2.0, 1.5).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 2.0);
        }
    }

    #[test]
    fn exp_nonnegative() {
        let d = Exp::new(0.5).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn bad_params_rejected() {
        assert!(Pareto::new(0.0, 1.0).is_err());
        assert!(Exp::new(-1.0).is_err());
    }
}
