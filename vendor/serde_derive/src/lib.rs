//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` implemented with hand-rolled token parsing
//! (no `syn`/`quote` available offline).
//!
//! Supports non-generic named-field structs, tuple structs, and enums
//! with unit, tuple, and struct variants — the shapes the workspace
//! actually derives. The generated code targets the `serde` shim's
//! `to_value`/`from_value` traits with serde's externally-tagged enum
//! representation.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;
use std::iter::Peekable;

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Kind {
    Struct(Shape),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Input {
    name: String,
    kind: Kind,
}

type Iter = Peekable<proc_macro::token_stream::IntoIter>;

fn err(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skip `#[...]` attribute groups and visibility modifiers. Errors on
/// `#[serde(...)]`: the shim ignores attributes, and silently dropping a
/// rename/default/skip directive would produce wrong serialization with
/// no diagnostic.
fn skip_attrs_and_vis(iter: &mut Iter) -> Result<(), String> {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.next() {
                    let mut inner = g.stream().into_iter();
                    if let Some(TokenTree::Ident(id)) = inner.next() {
                        if id.to_string() == "serde" {
                            return Err(format!(
                                "serde shim derive cannot honor #[{}]; extend \
                                 vendor/serde_derive or drop the attribute",
                                g.stream()
                            ));
                        }
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => return Ok(()),
        }
    }
}

/// Skip tokens until a top-level comma (angle-bracket aware); consumes the
/// comma. Returns false when the stream ended instead.
fn skip_to_comma(iter: &mut Iter) -> bool {
    let mut angle: i32 = 0;
    for tt in iter.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return true,
                _ => {}
            }
        }
    }
    false
}

/// Count comma-separated segments at the top level of a token stream
/// (tuple-struct / tuple-variant field count).
fn count_fields(ts: TokenStream) -> usize {
    let mut iter: Iter = ts.into_iter().peekable();
    if iter.peek().is_none() {
        return 0;
    }
    let mut count = 0;
    loop {
        if iter.peek().is_none() {
            break;
        }
        count += 1;
        if !skip_to_comma(&mut iter) {
            break;
        }
    }
    count
}

/// Extract field names from a named-field brace group.
fn parse_named(ts: TokenStream) -> Result<Vec<String>, String> {
    let mut iter: Iter = ts.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter)?;
        match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => {
                names.push(id.to_string());
                match iter.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => return Err(format!("expected ':' after field, got {other:?}")),
                }
                if !skip_to_comma(&mut iter) {
                    break;
                }
            }
            Some(other) => return Err(format!("unexpected token in fields: {other}")),
        }
    }
    Ok(names)
}

fn parse_variants(ts: TokenStream) -> Result<Vec<Variant>, String> {
    let mut iter: Iter = ts.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter)?;
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("unexpected token in enum body: {other}")),
        };
        let shape = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                iter.next();
                Shape::Tuple(count_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                iter.next();
                Shape::Named(parse_named(g)?)
            }
            _ => Shape::Unit,
        };
        variants.push(Variant { name, shape });
        if !skip_to_comma(&mut iter) {
            break;
        }
    }
    Ok(variants)
}

fn parse_input(ts: TokenStream) -> Result<Input, String> {
    let mut iter: Iter = ts.into_iter().peekable();
    skip_attrs_and_vis(&mut iter)?;
    let keyword = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!("serde shim derive: generics unsupported on {name}"));
        }
    }
    let kind = match keyword.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Shape::Named(parse_named(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Shape::Tuple(count_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Struct(Shape::Unit),
            other => return Err(format!("unexpected struct body: {other:?}")),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unexpected enum body: {other:?}")),
        },
        other => return Err(format!("expected struct or enum, got `{other}`")),
    };
    Ok(Input { name, kind })
}

const V: &str = "::serde::value::Value";

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let mut body = String::new();
    match &input.kind {
        Kind::Struct(Shape::Named(fields)) => {
            let _ = writeln!(body, "let mut __pairs = ::std::vec::Vec::new();");
            for f in fields {
                let _ = writeln!(
                    body,
                    "__pairs.push(({f:?}.to_string(), \
                     ::serde::Serialize::to_value(&self.{f})));"
                );
            }
            let _ = writeln!(body, "{V}::Object(__pairs)");
        }
        Kind::Struct(Shape::Tuple(1)) => {
            let _ = writeln!(body, "::serde::Serialize::to_value(&self.0)");
        }
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            let _ = writeln!(body, "{V}::Array(vec![{}])", items.join(", "));
        }
        Kind::Struct(Shape::Unit) => {
            let _ = writeln!(body, "{V}::Null");
        }
        Kind::Enum(variants) => {
            let _ = writeln!(body, "match self {{");
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        let _ = writeln!(body, "{name}::{vn} => {V}::String({vn:?}.to_string()),");
                    }
                    Shape::Tuple(1) => {
                        let _ = writeln!(
                            body,
                            "{name}::{vn}(__f0) => {V}::Object(vec![({vn:?}.to_string(), \
                             ::serde::Serialize::to_value(__f0))]),"
                        );
                    }
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        let _ = writeln!(
                            body,
                            "{name}::{vn}({}) => {V}::Object(vec![({vn:?}.to_string(), \
                             {V}::Array(vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        );
                    }
                    Shape::Named(fields) => {
                        let pat = fields.join(", ");
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        let _ = writeln!(
                            body,
                            "{name}::{vn} {{ {pat} }} => {V}::Object(vec![({vn:?}.to_string(), \
                             {V}::Object(vec![{}]))]),",
                            items.join(", ")
                        );
                    }
                }
            }
            let _ = writeln!(body, "}}");
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> {V} {{\n{body}\n}}\n}}"
    )
}

fn gen_named_ctor(path: &str, fields: &[String], pairs_var: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!("{f}: ::serde::Deserialize::from_value(::serde::field({pairs_var}, {f:?})?)?")
        })
        .collect();
    format!("{path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let mut body = String::new();
    match &input.kind {
        Kind::Struct(Shape::Named(fields)) => {
            let _ = writeln!(
                body,
                "let __pairs = __v.as_object().ok_or_else(|| \
                 ::std::format!(\"expected object for {name}, found {{}}\", __v.kind()))?;"
            );
            let _ = writeln!(body, "Ok({})", gen_named_ctor(name, fields, "__pairs"));
        }
        Kind::Struct(Shape::Tuple(1)) => {
            let _ = writeln!(body, "Ok({name}(::serde::Deserialize::from_value(__v)?))");
        }
        Kind::Struct(Shape::Tuple(n)) => {
            let _ = writeln!(
                body,
                "let __items = __v.as_array().ok_or_else(|| \
                 ::std::format!(\"expected array for {name}, found {{}}\", __v.kind()))?;"
            );
            let _ = writeln!(
                body,
                "if __items.len() != {n} {{ return Err(::std::format!(\
                 \"expected {n} elements for {name}, found {{}}\", __items.len())); }}"
            );
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            let _ = writeln!(body, "Ok({name}({}))", items.join(", "));
        }
        Kind::Struct(Shape::Unit) => {
            let _ = writeln!(body, "let _ = __v; Ok({name})");
        }
        Kind::Enum(variants) => {
            let _ = writeln!(body, "match __v {{");
            // Unit variants arrive as bare strings.
            let _ = writeln!(body, "{V}::String(__s) => match __s.as_str() {{");
            for v in variants {
                if matches!(v.shape, Shape::Unit) {
                    let vn = &v.name;
                    let _ = writeln!(body, "{vn:?} => Ok({name}::{vn}),");
                }
            }
            let _ = writeln!(
                body,
                "__other => Err(::std::format!(\
                 \"unknown unit variant `{{__other}}` for {name}\")), }},"
            );
            // Data variants arrive as single-key objects.
            let _ = writeln!(
                body,
                "{V}::Object(__pairs) if __pairs.len() == 1 => {{ \
                 let (__tag, __inner) = &__pairs[0]; match __tag.as_str() {{"
            );
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {}
                    Shape::Tuple(1) => {
                        let _ = writeln!(
                            body,
                            "{vn:?} => Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__inner)?)),"
                        );
                    }
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        let _ = writeln!(
                            body,
                            "{vn:?} => {{ let __items = __inner.as_array().ok_or_else(|| \
                             ::std::format!(\"expected array for {name}::{vn}\"))?; \
                             if __items.len() != {n} {{ return Err(::std::format!(\
                             \"wrong arity for {name}::{vn}\")); }} \
                             Ok({name}::{vn}({})) }},",
                            items.join(", ")
                        );
                    }
                    Shape::Named(fields) => {
                        let _ = writeln!(
                            body,
                            "{vn:?} => {{ let __f = __inner.as_object().ok_or_else(|| \
                             ::std::format!(\"expected object for {name}::{vn}\"))?; \
                             Ok({}) }},",
                            gen_named_ctor(&format!("{name}::{vn}"), fields, "__f")
                        );
                    }
                }
            }
            let _ = writeln!(
                body,
                "__other => Err(::std::format!(\
                 \"unknown variant `{{__other}}` for {name}\")), }} }},"
            );
            let _ = writeln!(
                body,
                "__other => Err(::std::format!(\
                 \"expected string or 1-key object for {name}, found {{}}\", \
                 __other.kind())), }}"
            );
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &{V}) -> ::std::result::Result<Self, ::std::string::String> \
         {{\n{body}\n}}\n}}"
    )
}

/// Derive the serde shim's `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_serialize(&parsed).parse().unwrap(),
        Err(e) => err(&e),
    }
}

/// Derive the serde shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_deserialize(&parsed).parse().unwrap(),
        Err(e) => err(&e),
    }
}
