//! Offline stand-in for `serde_json`: renders and parses the `serde`
//! shim's [`Value`] tree as standard JSON text.

#![forbid(unsafe_code)]

pub use serde::value::{Number, Value};

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` to human-readable JSON (2-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(Error)
}

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U(u) => {
            let _ = write!(out, "{u}");
        }
        Number::I(i) => {
            let _ = write!(out, "{i}");
        }
        Number::F(f) if f.is_finite() => {
            // `{:?}` prints the shortest representation that round-trips,
            // always with a `.0` or exponent so it re-parses as a float.
            let _ = write!(out, "{f:?}");
        }
        // serde_json convention: non-finite floats serialize as null.
        Number::F(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Maximum container nesting the parser accepts, mirroring real
/// serde_json's recursion limit; deeper input returns an `Error` instead
/// of overflowing the stack.
const MAX_DEPTH: usize = 128;

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0, depth: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn fail(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(what))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.fail("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        if self.depth >= MAX_DEPTH {
            return Err(self.fail("recursion limit exceeded"));
        }
        self.depth += 1;
        let v = self.value_inner();
        self.depth -= 1;
        v
    }

    fn value_inner(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.fail("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.fail("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.fail("expected ',' or '}'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.fail("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.fail("invalid \\u escape"))?;
        let n = u16::from_str_radix(s, 16).map_err(|_| self.fail("invalid \\u escape"))?;
        self.pos = end;
        Ok(n)
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            // Safe: the input is a &str and we only stopped on ASCII bytes.
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.fail("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            out.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.pos += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{08}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{0C}');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u', "expected low surrogate")?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.fail("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi as u32 - 0xD800) << 10) + (lo as u32 - 0xDC00)
                                } else {
                                    return Err(self.fail("unpaired surrogate"));
                                }
                            } else {
                                hi as u32
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.fail("invalid codepoint"))?,
                            );
                        }
                        _ => return Err(self.fail("invalid escape")),
                    }
                }
                _ => return Err(self.fail("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.fail("invalid number"))?;
        let num = if is_float {
            Number::F(text.parse::<f64>().map_err(|_| self.fail("invalid number"))?)
        } else if text.starts_with('-') {
            Number::I(text.parse::<i64>().map_err(|_| self.fail("invalid number"))?)
        } else {
            Number::U(text.parse::<u64>().map_err(|_| self.fail("invalid number"))?)
        };
        Ok(Value::Number(num))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn big_u64_is_lossless() {
        let n = u64::MAX - 3;
        let s = to_string(&n).unwrap();
        assert_eq!(from_str::<u64>(&s).unwrap(), n);
    }

    #[test]
    fn float_shortest_roundtrip() {
        for f in [0.1f64, 1.0 / 3.0, 1e-300, -2.5e17, 0.0] {
            let s = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), f, "failed for {s}");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let nasty = "a\"b\\c\nd\te\u{1}f, g\u{1F600}";
        let s = to_string(&nasty.to_string()).unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), nasty);
    }

    #[test]
    fn vec_and_tuple_roundtrip() {
        let v: Vec<(u32, String)> = vec![(1, "x".into()), (2, "y,z".into())];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(u32, String)>>(&s).unwrap(), v);
    }

    #[test]
    fn pretty_parses_back() {
        let v: Vec<Vec<u8>> = vec![vec![1, 2], vec![], vec![3]];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u8>>>(&s).unwrap(), v);
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        let bomb = "[".repeat(100_000);
        let err = from_str::<Vec<u8>>(&bomb).unwrap_err();
        assert!(err.to_string().contains("recursion limit"), "got: {err}");
        // Depth within the limit still parses.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse_value(&ok).is_ok());
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(from_str::<String>(r#""A😀""#).unwrap(), "A\u{1F600}");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "\u{1F600}");
    }

    #[test]
    fn malformed_surrogates_are_errors_not_panics() {
        // High surrogate followed by a non-surrogate escape.
        assert!(from_str::<String>(r#""\ud800A""#).is_err());
        // High surrogate followed by an out-of-range "low" half.
        assert!(from_str::<String>(r#""\ud800\ue000""#).is_err());
        // Lone high surrogate, lone low surrogate.
        assert!(from_str::<String>(r#""\ud800""#).is_err());
        assert!(from_str::<String>(r#""\ude00""#).is_err());
    }
}
