//! Concrete generators.

use crate::{splitmix64, RngCore, SeedableRng};

/// A small, fast, non-cryptographic PRNG (xoshiro256++), mirroring
/// `rand::rngs::SmallRng` on 64-bit targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Export the raw xoshiro256++ state words — the checkpoint surface
    /// of the determinism policy (`vendor/README.md`): a generator
    /// rebuilt via [`from_state`](Self::from_state) continues the exact
    /// word stream this one would have produced.
    pub fn to_state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from exported state words, resuming the
    /// stream exactly where [`to_state`](Self::to_state) captured it.
    /// The all-zero state (a fixed point of xoshiro) is remapped the
    /// same way [`seed_from_u64`](SeedableRng::seed_from_u64) guards it,
    /// so every input yields a working generator.
    pub fn from_state(mut s: [u64; 4]) -> Self {
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        SmallRng { s }
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; splitmix64 cannot produce
        // four zero outputs in a row, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Bulk path: hoist the four state words into locals for the whole
    /// block so the compiler keeps them in registers instead of spilling
    /// through `&mut self` on every word. Word-for-word identical to
    /// repeated [`next_u64`](RngCore::next_u64).
    fn fill_u64(&mut self, dest: &mut [u64]) {
        let [mut s0, mut s1, mut s2, mut s3] = self.s;
        for slot in dest {
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            *slot = result;
        }
        self.s = [s0, s1, s2, s3];
    }
}

/// Alias so code written against `rand::rngs::StdRng` keeps compiling;
/// the shim offers a single generator quality tier.
pub type StdRng = SmallRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_round_trips_mid_stream() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..17 {
            rng.next_u64();
        }
        let mut resumed = SmallRng::from_state(rng.to_state());
        for _ in 0..100 {
            assert_eq!(resumed.next_u64(), rng.next_u64());
        }
    }

    #[test]
    fn state_round_trips_through_fill_u64() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut resumed = SmallRng::from_state(rng.to_state());
        let mut a = [0u64; 37];
        let mut b = [0u64; 37];
        rng.fill_u64(&mut a);
        resumed.fill_u64(&mut b);
        assert_eq!(a, b);
        assert_eq!(rng.to_state(), resumed.to_state(), "state advances identically");
    }

    #[test]
    fn export_does_not_perturb_the_stream() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        let _ = a.to_state();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn all_zero_state_is_remapped_to_a_working_generator() {
        let mut rng = SmallRng::from_state([0; 4]);
        assert_ne!(rng.to_state(), [0, 0, 0, 0]);
        let words: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(words.iter().any(|&w| w != words[0]), "stream must not be constant: {words:?}");
    }
}
