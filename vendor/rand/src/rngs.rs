//! Concrete generators.

use crate::{splitmix64, RngCore, SeedableRng};

/// A small, fast, non-cryptographic PRNG (xoshiro256++), mirroring
/// `rand::rngs::SmallRng` on 64-bit targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; splitmix64 cannot produce
        // four zero outputs in a row, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Bulk path: hoist the four state words into locals for the whole
    /// block so the compiler keeps them in registers instead of spilling
    /// through `&mut self` on every word. Word-for-word identical to
    /// repeated [`next_u64`](RngCore::next_u64).
    fn fill_u64(&mut self, dest: &mut [u64]) {
        let [mut s0, mut s1, mut s2, mut s3] = self.s;
        for slot in dest {
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            *slot = result;
        }
        self.s = [s0, s1, s2, s3];
    }
}

/// Alias so code written against `rand::rngs::StdRng` keeps compiling;
/// the shim offers a single generator quality tier.
pub type StdRng = SmallRng;
