//! Concrete generators.

use crate::{splitmix64, RngCore, SeedableRng};

/// A small, fast, non-cryptographic PRNG (xoshiro256++), mirroring
/// `rand::rngs::SmallRng` on 64-bit targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Export the raw xoshiro256++ state words — the checkpoint surface
    /// of the determinism policy (`vendor/README.md`): a generator
    /// rebuilt via [`from_state`](Self::from_state) continues the exact
    /// word stream this one would have produced.
    pub fn to_state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from exported state words, resuming the
    /// stream exactly where [`to_state`](Self::to_state) captured it.
    /// The all-zero state (a fixed point of xoshiro) is remapped the
    /// same way [`seed_from_u64`](SeedableRng::seed_from_u64) guards it,
    /// so every input yields a working generator.
    pub fn from_state(mut s: [u64; 4]) -> Self {
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        SmallRng { s }
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; splitmix64 cannot produce
        // four zero outputs in a row, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Bulk path: hoist the four state words into locals for the whole
    /// block so the compiler keeps them in registers instead of spilling
    /// through `&mut self` on every word. Word-for-word identical to
    /// repeated [`next_u64`](RngCore::next_u64).
    fn fill_u64(&mut self, dest: &mut [u64]) {
        let [mut s0, mut s1, mut s2, mut s3] = self.s;
        for slot in dest {
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            *slot = result;
        }
        self.s = [s0, s1, s2, s3];
    }
}

/// Alias so code written against `rand::rngs::StdRng` keeps compiling;
/// the shim offers a single generator quality tier.
pub type StdRng = SmallRng;

/// Number of interleaved xoshiro256++ streams in a [`WideRng`].
///
/// This is a **fixed constant of the stream definition**, not a tunable:
/// the word order produced by [`WideRng::fill_u64`] is part of the
/// deterministic stream contract, and changing the lane count would
/// change every downstream golden. Eight u64 lanes fill one AVX-512
/// register row (or two AVX2 rows) without any explicit intrinsics —
/// the lockstep loops below autovectorize as plain arrays.
pub const WIDE_LANES: usize = 8;

/// A lane-striped bulk generator: [`WIDE_LANES`] independent
/// xoshiro256++ streams stepped in lockstep, with state stored
/// structure-of-arrays so the update runs as straight-line SWAR code.
///
/// The output of [`fill_u64`](Self::fill_u64) interleaves the lanes
/// round-robin: word `i` comes from lane `i % WIDE_LANES`, and lane `l`
/// of `seed_from_u64(s)` is exactly `SmallRng` seeded with splitmix64
/// words `4l..4l+4` of the chain started at `s` (so lane 0 reproduces
/// `SmallRng::seed_from_u64(s)` verbatim). Filling `n` words is a
/// prefix of filling any `m ≥ n` words from the same state: the tail
/// row still steps every lane, so the stream position is a function of
/// `ceil(n / WIDE_LANES)` rows, never of the destination length alone.
///
/// This type exists for batch kernels that want one cheap seed word to
/// fan out into a block of decorrelated draws (`tlb-walks`'s wide-lane
/// lazy kernel); single-stream consumers should keep using
/// [`SmallRng`], whose word stream is unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WideRng {
    s0: [u64; WIDE_LANES],
    s1: [u64; WIDE_LANES],
    s2: [u64; WIDE_LANES],
    s3: [u64; WIDE_LANES],
}

impl SeedableRng for WideRng {
    /// Seed all lanes from one continued splitmix64 chain, lane-major:
    /// lane 0 takes chain words 0–3, lane 1 takes words 4–7, and so on.
    ///
    /// Computed data-parallel rather than by iterating the chain: the
    /// `k`-th splitmix64 output from start state `s` is the pure
    /// function `mix(s + (k+1)·φ)`, so all `4·WIDE_LANES` chain words
    /// are independent and the whole seed expansion vectorizes. This
    /// matters because the batch kernels re-seed a `WideRng` from a
    /// parent word on every cohort step; the serial chain walk was a
    /// measurable fraction of a small batch. Word-for-word identical to
    /// the sequential chain.
    #[inline]
    fn seed_from_u64(state: u64) -> Self {
        const PHI: u64 = 0x9E3779B97F4A7C15;
        #[inline(always)]
        fn mix(mut z: u64) -> u64 {
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
        let mut s0 = [0u64; WIDE_LANES];
        let mut s1 = [0u64; WIDE_LANES];
        let mut s2 = [0u64; WIDE_LANES];
        let mut s3 = [0u64; WIDE_LANES];
        for l in 0..WIDE_LANES {
            let base = state.wrapping_add(PHI.wrapping_mul(4 * l as u64));
            s0[l] = mix(base.wrapping_add(PHI));
            s1[l] = mix(base.wrapping_add(PHI.wrapping_mul(2)));
            s2[l] = mix(base.wrapping_add(PHI.wrapping_mul(3)));
            s3[l] = mix(base.wrapping_add(PHI.wrapping_mul(4)));
        }
        for l in 0..WIDE_LANES {
            // Same guard as SmallRng: splitmix64 cannot emit four zeros
            // in a row, but an all-zero lane would be a fixed point.
            if s0[l] == 0 && s1[l] == 0 && s2[l] == 0 && s3[l] == 0 {
                s0[l] = 0x9E3779B97F4A7C15;
            }
        }
        WideRng { s0, s1, s2, s3 }
    }
}

/// One lockstep row step in the "fused" schedule: every lane runs its
/// whole xoshiro256++ update inside one loop body. This is the fastest
/// shape when the target has no wide vector unit (the compiler unrolls
/// it into straight-line scalar code with everything in registers).
#[inline(always)]
fn wide_row_fused(
    s0: &mut [u64; WIDE_LANES],
    s1: &mut [u64; WIDE_LANES],
    s2: &mut [u64; WIDE_LANES],
    s3: &mut [u64; WIDE_LANES],
) -> [u64; WIDE_LANES] {
    let mut row = [0u64; WIDE_LANES];
    for l in 0..WIDE_LANES {
        row[l] = s0[l].wrapping_add(s3[l]).rotate_left(23).wrapping_add(s0[l]);
        let t = s1[l] << 17;
        s2[l] ^= s0[l];
        s3[l] ^= s1[l];
        s1[l] ^= s2[l];
        s0[l] ^= s3[l];
        s2[l] ^= t;
        s3[l] = s3[l].rotate_left(45);
    }
    row
}

/// One lockstep row step in the "staged" schedule: every micro-op of
/// the update is its own fixed-bound lane loop, so each stage is a
/// trivially vectorizable 8-wide array op (one AVX-512 register per
/// state array, rotates via `vprolq`). Produces the identical row and
/// state as [`wide_row_fused`] — only the instruction schedule differs.
// Every stage is written as the same fixed-bound index loop so the
// vectorizer sees eight identical lane-parallel shapes; the iterator
// form clippy prefers for the single-array stage would break that
// visual and structural uniformity.
#[allow(clippy::needless_range_loop)]
#[inline(always)]
fn wide_row_staged(
    s0: &mut [u64; WIDE_LANES],
    s1: &mut [u64; WIDE_LANES],
    s2: &mut [u64; WIDE_LANES],
    s3: &mut [u64; WIDE_LANES],
) -> [u64; WIDE_LANES] {
    let mut row = [0u64; WIDE_LANES];
    let mut t = [0u64; WIDE_LANES];
    for l in 0..WIDE_LANES {
        row[l] = s0[l].wrapping_add(s3[l]);
    }
    for l in 0..WIDE_LANES {
        row[l] = row[l].rotate_left(23).wrapping_add(s0[l]);
    }
    for l in 0..WIDE_LANES {
        t[l] = s1[l] << 17;
    }
    for l in 0..WIDE_LANES {
        s2[l] ^= s0[l];
    }
    for l in 0..WIDE_LANES {
        s3[l] ^= s1[l];
    }
    for l in 0..WIDE_LANES {
        s1[l] ^= s2[l];
    }
    for l in 0..WIDE_LANES {
        s0[l] ^= s3[l];
    }
    for l in 0..WIDE_LANES {
        s2[l] ^= t[l];
    }
    for l in 0..WIDE_LANES {
        s3[l] = s3[l].rotate_left(45);
    }
    row
}

/// Step one row with whichever schedule is fastest for the compile
/// target. **The stream is schedule-independent** — both produce the
/// same words from the same state (pinned by a test below) — so this
/// dispatch can never move a golden.
#[inline(always)]
fn wide_row(
    s0: &mut [u64; WIDE_LANES],
    s1: &mut [u64; WIDE_LANES],
    s2: &mut [u64; WIDE_LANES],
    s3: &mut [u64; WIDE_LANES],
) -> [u64; WIDE_LANES] {
    // The staged schedule's stage-to-stage traffic only pays off once
    // whole state arrays fit single registers (AVX-512: 8×u64 per zmm,
    // rotates as vprolq — measured ~4× the fused schedule's fill rate).
    // Below that, the fused schedule's register-resident scalar unroll
    // wins, so it stays the default everywhere else.
    if cfg!(all(target_arch = "x86_64", target_feature = "avx512f")) {
        wide_row_staged(s0, s1, s2, s3)
    } else {
        wide_row_fused(s0, s1, s2, s3)
    }
}

impl WideRng {
    /// Fill `dest` with lane-striped words: each row of [`WIDE_LANES`]
    /// outputs steps every lane once, and a partial final row still
    /// steps every lane (discarding the unwritten results), so shorter
    /// fills are prefixes of longer ones. All state lives in local
    /// arrays for the whole block; the row step has fixed bounds and no
    /// cross-lane dependencies, which is what lets the compiler emit
    /// vector code without intrinsics (see [`wide_row`] for the
    /// per-target schedule choice — the word stream does not depend on
    /// it).
    ///
    /// `#[inline(always)]` is load-bearing for throughput, not a hint:
    /// the copy codegen'd out-of-line into this crate (and thin-LTO
    /// imports of it) misses the 8-wide vectorization the stage loops
    /// are shaped for, while the same body force-inlined into a
    /// caller's own codegen unit gets it reliably (measured ~5×).
    #[inline(always)]
    pub fn fill_u64(&mut self, dest: &mut [u64]) {
        let mut s0 = self.s0;
        let mut s1 = self.s1;
        let mut s2 = self.s2;
        let mut s3 = self.s3;
        let mut chunks = dest.chunks_exact_mut(WIDE_LANES);
        for row in &mut chunks {
            row.copy_from_slice(&wide_row(&mut s0, &mut s1, &mut s2, &mut s3));
        }
        let tail = chunks.into_remainder();
        if !tail.is_empty() {
            let row = wide_row(&mut s0, &mut s1, &mut s2, &mut s3);
            let len = tail.len();
            tail.copy_from_slice(&row[..len]);
        }
        self.s0 = s0;
        self.s1 = s1;
        self.s2 = s2;
        self.s3 = s3;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_round_trips_mid_stream() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..17 {
            rng.next_u64();
        }
        let mut resumed = SmallRng::from_state(rng.to_state());
        for _ in 0..100 {
            assert_eq!(resumed.next_u64(), rng.next_u64());
        }
    }

    #[test]
    fn state_round_trips_through_fill_u64() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut resumed = SmallRng::from_state(rng.to_state());
        let mut a = [0u64; 37];
        let mut b = [0u64; 37];
        rng.fill_u64(&mut a);
        resumed.fill_u64(&mut b);
        assert_eq!(a, b);
        assert_eq!(rng.to_state(), resumed.to_state(), "state advances identically");
    }

    #[test]
    fn export_does_not_perturb_the_stream() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        let _ = a.to_state();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn all_zero_state_is_remapped_to_a_working_generator() {
        let mut rng = SmallRng::from_state([0; 4]);
        assert_ne!(rng.to_state(), [0, 0, 0, 0]);
        let words: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(words.iter().any(|&w| w != words[0]), "stream must not be constant: {words:?}");
    }

    #[test]
    fn wide_lane_zero_reproduces_small_rng() {
        // Lane 0 is seeded from splitmix chain words 0–3 — exactly what
        // SmallRng::seed_from_u64 consumes — so the lane-0 stripe of the
        // wide stream is the SmallRng stream verbatim.
        for seed in [0u64, 1, 42, u64::MAX, 0xDEADBEEF] {
            let mut wide = WideRng::seed_from_u64(seed);
            let mut narrow = SmallRng::seed_from_u64(seed);
            let mut block = vec![0u64; WIDE_LANES * 16];
            wide.fill_u64(&mut block);
            for (row, chunk) in block.chunks_exact(WIDE_LANES).enumerate() {
                assert_eq!(chunk[0], narrow.next_u64(), "seed {seed} row {row}");
            }
        }
    }

    #[test]
    fn wide_lanes_are_independent_small_rng_streams() {
        // Lane l is xoshiro256++ from splitmix chain words 4l..4l+4;
        // verify every stripe against a SmallRng resumed at that state.
        let seed = 0xC0FFEE;
        let mut sm = seed;
        let lane_states: Vec<[u64; 4]> = (0..WIDE_LANES)
            .map(|_| {
                let mut s = [0u64; 4];
                for w in &mut s {
                    *w = crate::splitmix64(&mut sm);
                }
                s
            })
            .collect();
        let mut wide = WideRng::seed_from_u64(seed);
        let mut block = vec![0u64; WIDE_LANES * 9];
        wide.fill_u64(&mut block);
        for (l, state) in lane_states.into_iter().enumerate() {
            let mut lane_rng = SmallRng::from_state(state);
            for row in 0..9 {
                assert_eq!(block[row * WIDE_LANES + l], lane_rng.next_u64(), "lane {l} row {row}");
            }
        }
    }

    #[test]
    fn wide_fill_is_prefix_stable() {
        // fill(n) produces the first n words of fill(m) for any m ≥ n,
        // including ragged tails that end mid-row.
        let mut reference = WideRng::seed_from_u64(314);
        let mut long = vec![0u64; 61];
        reference.fill_u64(&mut long);
        for n in [1usize, 7, 8, 9, 16, 23, 61] {
            let mut rng = WideRng::seed_from_u64(314);
            let mut short = vec![0u64; n];
            rng.fill_u64(&mut short);
            assert_eq!(short, long[..n], "fill({n}) must be a prefix of fill(61)");
        }
    }

    #[test]
    fn wide_partial_rows_advance_every_lane() {
        // A ragged tail still steps all lanes, so two fills totalling one
        // full row equal one fill of that row only when both land on row
        // boundaries; mid-row splits advance to the next row boundary.
        let mut split = WideRng::seed_from_u64(99);
        let mut a = vec![0u64; 3];
        let mut b = vec![0u64; WIDE_LANES];
        split.fill_u64(&mut a); // consumes one full row internally
        split.fill_u64(&mut b); // rows 1..
        let mut whole = WideRng::seed_from_u64(99);
        let mut w = vec![0u64; WIDE_LANES * 2];
        whole.fill_u64(&mut w);
        assert_eq!(a, w[..3]);
        assert_eq!(b, w[WIDE_LANES..]);
        assert_eq!(split, whole, "state positions must coincide on row boundaries");
    }

    #[test]
    fn row_schedules_are_stream_identical() {
        // The fused and staged row schedules must produce the same words
        // AND the same next state from any state — the target-feature
        // dispatch in `wide_row` is a pure instruction-schedule choice,
        // invisible to every stream consumer. Run both for many rows so
        // state divergence anywhere would compound and get caught.
        let seed = WideRng::seed_from_u64(0xD15BA7C4);
        let (mut f0, mut f1, mut f2, mut f3) = (seed.s0, seed.s1, seed.s2, seed.s3);
        let (mut g0, mut g1, mut g2, mut g3) = (seed.s0, seed.s1, seed.s2, seed.s3);
        for _ in 0..64 {
            let fused = wide_row_fused(&mut f0, &mut f1, &mut f2, &mut f3);
            let staged = wide_row_staged(&mut g0, &mut g1, &mut g2, &mut g3);
            assert_eq!(fused, staged);
        }
        assert_eq!((f0, f1, f2, f3), (g0, g1, g2, g3));
    }
}
