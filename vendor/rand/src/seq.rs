//! Sequence-related randomness (shuffling, choosing).

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

/// Apply one Fisher–Yates permutation to two parallel slices at once —
/// the structure-of-arrays form of shuffling a `Vec<(A, B)>`. Draws
/// **exactly the same words** as [`SliceRandom::shuffle`] on either
/// slice alone (one `gen_range(0..=i)` per descending index), so
/// splitting a tuple buffer into parallel arrays is stream-invisible:
/// any golden pinned against the tuple shuffle stays byte-identical.
/// This is an extension beyond the real `rand 0.8` API, added for the
/// SoA round buffers in `tlb-core`.
///
/// # Panics
/// If the slices differ in length.
pub fn shuffle_paired<R: Rng + ?Sized, A, B>(a: &mut [A], b: &mut [B], rng: &mut R) {
    assert_eq!(a.len(), b.len(), "parallel slices must have equal length");
    for i in (1..a.len()).rev() {
        let j = rng.gen_range(0..=i);
        a.swap(i, j);
        b.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements should not shuffle to identity");
    }

    #[test]
    fn paired_shuffle_matches_the_tuple_shuffle_stream() {
        // Shuffling (a, b) as tuples and as parallel arrays must apply
        // the same permutation from the same words — the contract that
        // makes the SoA split of a tuple buffer a pure refactor.
        let n = 73usize;
        let mut tuples: Vec<(u32, u64)> = (0..n).map(|i| (i as u32, (i * i) as u64)).collect();
        let mut a: Vec<u32> = (0..n as u32).collect();
        let mut b: Vec<u64> = (0..n).map(|i| (i * i) as u64).collect();
        let mut rng_t = SmallRng::seed_from_u64(0x5EED);
        let mut rng_p = SmallRng::seed_from_u64(0x5EED);
        tuples.shuffle(&mut rng_t);
        shuffle_paired(&mut a, &mut b, &mut rng_p);
        let rejoined: Vec<(u32, u64)> = a.into_iter().zip(b).collect();
        assert_eq!(tuples, rejoined);
        // And the generators remain aligned afterwards.
        assert_eq!(rng_t, rng_p);
    }

    #[test]
    fn choose_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(6);
        let v = [1, 2, 3];
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
