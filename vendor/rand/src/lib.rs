//! Offline stand-in for the `rand` crate (0.8-series API surface).
//!
//! The build environment has no network access, so the workspace vendors
//! the minimal subset of `rand` the simulation code uses: [`rngs::SmallRng`]
//! (xoshiro256++), the [`Rng`] / [`RngCore`] / [`SeedableRng`] traits,
//! uniform range sampling, and [`seq::SliceRandom`] shuffling. Streams are
//! deterministic functions of the seed, which is all the experiment
//! harness requires for reproducibility.

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with uniformly random words — exactly the stream
    /// `next_u64` would produce, one word per slot, so callers may freely
    /// switch between per-call and bulk generation without changing the
    /// stream. Generators with cheap state (xoshiro) override this with a
    /// register-resident loop; that is the batched-kernel fast path.
    fn fill_u64(&mut self, dest: &mut [u64]) {
        for slot in dest {
            *slot = self.next_u64();
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_u64(&mut self, dest: &mut [u64]) {
        (**self).fill_u64(dest)
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// splitmix64 step; used to expand small seeds into full RNG state.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Types producible "uniformly at random" by [`Rng::gen`].
pub trait Standard: Sized {
    /// Sample one value from `rng`.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 != 0
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draw one value uniformly from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Map one uniform 64-bit word to `[0, n)` by Lemire's 128-bit widening
/// multiply (`(word * n) >> 64`; bias < n·2⁻⁶⁴, no rejection loop).
///
/// This is the *mapping half* of [`Rng::gen_range`] for integer ranges,
/// exposed so batched kernels can pre-generate a block of words with
/// [`RngCore::fill_u64`] and map them in a tight loop — feeding the same
/// word through `lemire_u64` produces exactly the value `gen_range(0..n)`
/// would have drawn from that position of the stream.
#[inline]
pub fn lemire_u64(word: u64, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((word as u128 * n as u128) >> 64) as u64
}

/// Uniform u64 in `[0, n)`: one stream word through [`lemire_u64`].
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    lemire_u64(rng.next_u64(), n)
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = <$t as Standard>::standard(rng);
                let v = self.start + u * (self.end - self.start);
                // u < 1 but rounding can still land on `end`; keep the
                // half-open contract of the real rand API.
                if v < self.end {
                    v
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let u = <$t as Standard>::standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a [`Standard`] value (e.g. `rng.gen::<bool>()`).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }

    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn float_range_upper_bound_is_exclusive() {
        // Tiny spans make `start + u * span` round up to `end` for most
        // u; the clamp must keep the half-open contract anyway.
        let mut rng = SmallRng::seed_from_u64(1);
        let (lo, hi) = (1.0f64, 1.0000000000000002f64);
        for _ in 0..1000 {
            let v = rng.gen_range(lo..hi);
            assert!(v >= lo && v < hi, "sampled excluded upper bound {v}");
        }
    }

    #[test]
    fn gen_range_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_u64_matches_per_call_stream() {
        // The bulk path must be word-for-word the same stream as repeated
        // next_u64 — the batched kernels rely on this to keep per-call and
        // bulk consumers interchangeable mid-stream.
        let mut a = SmallRng::seed_from_u64(99);
        let mut b = SmallRng::seed_from_u64(99);
        let mut buf = [0u64; 257];
        a.fill_u64(&mut buf);
        for (i, &w) in buf.iter().enumerate() {
            assert_eq!(w, b.next_u64(), "word {i} diverged");
        }
        // Interleaving bulk and per-call draws stays aligned.
        assert_eq!(a.next_u64(), b.next_u64());
        let mut tail = [0u64; 31];
        a.fill_u64(&mut tail);
        for &w in &tail {
            assert_eq!(w, b.next_u64());
        }
    }

    #[test]
    fn lemire_matches_gen_range() {
        // Pre-generated words mapped through lemire_u64 must equal what
        // gen_range(0..n) draws from the same stream positions.
        for n in [1u64, 2, 7, 64, 1023, u64::MAX / 3] {
            let mut a = SmallRng::seed_from_u64(n);
            let mut b = SmallRng::seed_from_u64(n);
            let mut words = [0u64; 64];
            a.fill_u64(&mut words);
            for &w in &words {
                assert_eq!(lemire_u64(w, n), b.gen_range(0..n));
            }
        }
    }

    #[test]
    fn lemire_bounds_and_coverage() {
        let mut rng = SmallRng::seed_from_u64(8);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = lemire_u64(rng.next_u64(), 5);
            assert!(v < 5);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets reachable");
    }
}
