//! Offline stand-in for `parking_lot`: std-backed locks with the
//! poison-free `parking_lot` API (`lock()` returns the guard directly).

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// A mutual-exclusion lock. Unlike `std::sync::Mutex`, `lock()` never
/// returns a poison error; a panicked holder simply passes the data on.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with the same poison-free surface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap `value` in a reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
