//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Inclusive length bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generate vectors whose elements come from `element` and whose length
/// lies in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_rng;

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = test_rng("vec_lengths");
        let s = vec(0u32..10, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn nested_vec_of_strings() {
        let mut rng = test_rng("nested");
        let s = vec(vec("[a-z]{1,4}", 3..=3), 0..3);
        let v = s.generate(&mut rng);
        assert!(v.len() < 3);
        assert!(v.iter().all(|row| row.len() == 3));
    }

    #[test]
    fn tuple_strategy_generates_pairs() {
        let mut rng = test_rng("tuple");
        let s = (0u32..5, 10u32..15);
        for _ in 0..100 {
            let (a, b) = s.generate(&mut rng);
            assert!(a < 5);
            assert!((10..15).contains(&b));
        }
    }
}
