//! Value-generation strategies.

use rand::rngs::SmallRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Type-erase this strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

macro_rules! impl_strategy_num_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

impl_strategy_num_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A strategy that always yields a clone of its value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut SmallRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(pub Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        self.0.generate(rng)
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from at least one option.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Types with a canonical "arbitrary value" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty => $gen:expr),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> $t {
                let f: fn(&mut SmallRng) -> $t = $gen;
                f(rng)
            }
        }
    )*};
}

impl_arbitrary_uint! {
    u8 => |r| r.gen::<u64>() as u8,
    u16 => |r| r.gen::<u64>() as u16,
    u32 => |r| r.gen::<u32>(),
    u64 => |r| r.gen::<u64>(),
    usize => |r| r.gen::<u64>() as usize,
    i8 => |r| r.gen::<u64>() as i8,
    i16 => |r| r.gen::<u64>() as i16,
    i32 => |r| r.gen::<u32>() as i32,
    i64 => |r| r.gen::<u64>() as i64,
    isize => |r| r.gen::<u64>() as isize,
    bool => |r| r.gen::<bool>()
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut SmallRng) -> f64 {
        // Wide but finite: magnitudes from subnormal-ish to 1e12, both signs.
        let mag = 10f64.powf(rng.gen_range(-12.0..12.0));
        let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        sign * mag
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut SmallRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Generate an unconstrained value of `T` (e.g. `any::<u64>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// String strategies from pattern literals, e.g. `"[ -~]{0,12}"`.
///
/// Supports the tiny regex subset the test corpus uses: one character
/// class (ranges and literal characters) followed by a `{lo,hi}`, `{n}`,
/// `*`, `+`, or nothing (single char). Unrecognized patterns fall back to
/// printable ASCII of length 0–8.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut SmallRng) -> String {
        let (ranges, lo, hi) = parse_pattern(self).unwrap_or((vec![(' ', '~')], 0, 8));
        let len = rng.gen_range(lo..=hi);
        let total: u32 = ranges.iter().map(|(a, b)| *b as u32 - *a as u32 + 1).sum();
        (0..len)
            .map(|_| {
                let mut k = rng.gen_range(0..total);
                for (a, b) in &ranges {
                    let span = *b as u32 - *a as u32 + 1;
                    if k < span {
                        return char::from_u32(*a as u32 + k).unwrap_or('?');
                    }
                    k -= span;
                }
                unreachable!("character class exhausted")
            })
            .collect()
    }
}

type Pattern = (Vec<(char, char)>, usize, usize);

fn parse_pattern(pat: &str) -> Option<Pattern> {
    let mut chars = pat.chars().peekable();
    let mut ranges: Vec<(char, char)> = Vec::new();
    match chars.peek()? {
        '[' => {
            chars.next();
            let mut class: Vec<char> = Vec::new();
            loop {
                let c = chars.next()?;
                if c == ']' {
                    break;
                }
                class.push(c);
            }
            let mut i = 0;
            while i < class.len() {
                if i + 2 < class.len() && class[i + 1] == '-' {
                    ranges.push((class[i], class[i + 2]));
                    i += 3;
                } else {
                    ranges.push((class[i], class[i]));
                    i += 1;
                }
            }
        }
        _ => {
            let c = chars.next()?;
            ranges.push((c, c));
        }
    }
    if ranges.is_empty() {
        return None;
    }
    let (lo, hi) = match chars.next() {
        None => (1, 1),
        Some('*') => (0, 8),
        Some('+') => (1, 8),
        Some('{') => {
            let rest: String = chars.collect();
            let body = rest.strip_suffix('}')?;
            if let Some((a, b)) = body.split_once(',') {
                (a.trim().parse().ok()?, b.trim().parse().ok()?)
            } else {
                let n = body.trim().parse().ok()?;
                (n, n)
            }
        }
        Some(_) => return None,
    };
    Some((ranges, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_rng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = test_rng("ranges_stay_in_bounds");
        for _ in 0..500 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (2u32..=2).generate(&mut rng);
            assert_eq!(w, 2);
        }
    }

    #[test]
    fn string_pattern_generates_class_chars() {
        let mut rng = test_rng("string_pattern");
        for _ in 0..200 {
            let s = "[ -~]{0,12}".generate(&mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "bad char in {s:?}");
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let mut rng = test_rng("oneof_map");
        let strat = crate::prop_oneof![Just(1u32), Just(2u32)].prop_map(|x| x * 10);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v == 10 || v == 20);
        }
    }

    #[test]
    fn fixed_count_pattern() {
        let mut rng = test_rng("fixed_count");
        let s = "[a-c]{3}".generate(&mut rng);
        assert_eq!(s.len(), 3);
        assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
    }
}
