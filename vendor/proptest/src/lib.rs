//! Offline stand-in for `proptest`: deterministic random testing with the
//! `proptest!` macro surface the workspace's property tests use.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking** — a failing case panics with the generated inputs
//!   visible in the assertion message instead of a minimized example.
//! * **Deterministic by default** — every test function derives its RNG
//!   seed from the test name (FNV-1a) and the optional `PROPTEST_SEED`
//!   environment variable, so CI runs are reproducible; set
//!   `PROPTEST_SEED` to explore different streams.
//! * Strategies are plain values implementing [`Strategy`]; ranges,
//!   `Just`, tuples, `any::<T>()`, `prop_oneof!`, `prop_map`, and
//!   `proptest::collection::vec` cover the corpus.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub mod collection;
pub mod strategy;

/// Everything the property-test files import.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig,
    };
}

/// How many draws a single requested case may consume before the test
/// fails with "too many prop_assume! rejections" (guards against
/// vacuously green assume-heavy tests).
pub const MAX_REJECTS_PER_CASE: u32 = 16;

/// Per-`proptest!` configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test RNG: seed = FNV-1a(test name) ⊕ `PROPTEST_SEED`.
pub fn test_rng(test_name: &str) -> SmallRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    let env = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    SmallRng::seed_from_u64(h ^ env)
}

/// Define property tests: each `fn` runs `cases` times with inputs drawn
/// from the strategies on the right of each `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal: expands each test item of a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            // A `prop_assume!` rejection returns `false` from the closure;
            // rejected draws are replaced (up to a global cap) rather than
            // silently consuming the case budget.
            let mut __done: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __cfg.cases.saturating_mul($crate::MAX_REJECTS_PER_CASE);
            while __done < __cfg.cases && __attempts < __max_attempts {
                __attempts += 1;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                #[allow(unused_mut)]
                let mut __run = || -> bool {
                    $body
                    true
                };
                if __run() {
                    __done += 1;
                }
            }
            assert!(
                __done >= __cfg.cases,
                "too many prop_assume! rejections: only {__done} of {} cases ran \
                 in {__attempts} attempts",
                __cfg.cases,
            );
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Assert inside a property test (panics with generated inputs in scope).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case unless `cond` holds; the harness draws a
/// replacement case (up to [`MAX_REJECTS_PER_CASE`] per requested case).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return false;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return false;
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
