//! Offline stand-in for `rayon`: data-parallel iterators executed on
//! scoped `std` threads.
//!
//! The subset implemented is what the trial harness and the random-walk
//! estimators use: `into_par_iter()` on ranges and vectors, followed by
//! `map`, then one of `collect`, `sum`, `for_each`, or `for_each_with`.
//! Items are processed in contiguous chunks, one chunk per available
//! core, and ordered combinators (`collect`, `sum`) reassemble chunk
//! outputs in input order, so results are identical to the sequential
//! evaluation — which is exactly the reproducibility contract the
//! experiment harness tests assert.

#![forbid(unsafe_code)]

/// The traits user code imports.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Number of worker threads to use for `len` items.
fn thread_count(len: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(len)
        .max(1)
}

/// Split `items` into at most `parts` contiguous chunks, preserving order.
fn chunked<T>(items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let chunk_size = items.len().div_ceil(parts.max(1)).max(1);
    let mut chunks = Vec::with_capacity(parts);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    chunks
}

/// Apply `f` to every item on the thread pool, preserving input order.
fn par_map<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = thread_count(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunks = chunked(items, threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        let mut out = Vec::new();
        for h in handles {
            out.extend(h.join().expect("rayon shim worker panicked"));
        }
        out
    })
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

macro_rules! impl_range_into_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for core::ops::Range<$t> {
            type Item = $t;
            type Iter = ParIter<$t>;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_range_into_par!(u32, u64, usize, i32, i64);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// A materialized parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// `map` adapter over a parallel iterator.
pub struct Map<I, F> {
    base: I,
    f: F,
}

/// Parallel iterator combinators. Terminal operations fan the work out
/// over scoped threads.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Materialize all items (runs any pending mapped stages in parallel).
    fn run(self) -> Vec<Self::Item>;

    /// Lazily apply `f` to every item.
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Collect the items in input order.
    fn collect<C: FromParallel<Self::Item>>(self) -> C {
        C::from_ordered(self.run())
    }

    /// Sum the items in input order.
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.run().into_iter().sum()
    }

    /// Run `f` on every item (no ordering guarantee in real rayon; here
    /// chunks run concurrently).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        self.for_each_with((), move |(), item| f(item));
    }

    /// Run `f` on every item with a per-worker clone of `init` as mutable
    /// state (rayon's `for_each_with`).
    fn for_each_with<S, F>(self, init: S, f: F)
    where
        S: Clone + Send,
        F: Fn(&mut S, Self::Item) + Sync + Send,
    {
        let items = self.run();
        let threads = thread_count(items.len());
        let f = &f;
        if threads <= 1 {
            let mut state = init;
            for item in items {
                f(&mut state, item);
            }
            return;
        }
        let chunks = chunked(items, threads);
        std::thread::scope(|s| {
            for chunk in chunks {
                let mut state = init.clone();
                s.spawn(move || {
                    for item in chunk {
                        f(&mut state, item);
                    }
                });
            }
        });
    }
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.items
    }
}

impl<I, U, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    U: Send,
    F: Fn(I::Item) -> U + Sync + Send,
{
    type Item = U;
    fn run(self) -> Vec<U> {
        par_map(self.base.run(), &self.f)
    }
}

/// Collections constructible from ordered parallel output.
pub trait FromParallel<T> {
    /// Build the collection from items in input order.
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T> FromParallel<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Vec<T> {
        items
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0u64..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sum_matches_sequential() {
        let s: u64 = (0u64..10_000).into_par_iter().map(|x| x % 7).sum();
        assert_eq!(s, (0u64..10_000).map(|x| x % 7).sum::<u64>());
    }

    #[test]
    fn for_each_with_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        (0usize..257).into_par_iter().for_each_with((), |(), _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = (0u32..0).into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
