//! Offline stand-in for `rayon`: data-parallel iterators executed on a
//! persistent worker pool with dynamic self-scheduling.
//!
//! The subset implemented is what the trial harness and the random-walk
//! estimators use: `into_par_iter()` on ranges and vectors, followed by
//! `map`, then one of `collect`, `sum`, `for_each`, or `for_each_with`.
//! Work is split into several fixed-size chunks per thread and executors
//! claim chunks off a shared atomic cursor (see [`pool`]), so uneven items
//! load-balance; ordered combinators (`collect`, `sum`) reassemble chunk
//! outputs in input order, making results identical to the sequential
//! evaluation — exactly the reproducibility contract the experiment
//! harness tests assert. Thread count comes from `RAYON_NUM_THREADS` (a
//! positive integer) or `available_parallelism`, read once and cached.

#![deny(unsafe_code)]

// The pool needs two tightly-scoped unsafe pieces (a lifetime-erased job
// pointer plus its Send/Sync impls); everything outside this module stays
// safe code.
#[allow(unsafe_code)]
mod pool;

use std::sync::{Mutex, PoisonError};

/// The traits user code imports.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Number of threads the global pool computes with (`RAYON_NUM_THREADS`
/// override, else `available_parallelism`), cached at first use — real
/// rayon's `current_num_threads`.
pub fn current_num_threads() -> usize {
    pool::global().threads()
}

/// Diagnostic: pool worker threads spawned since process start. The pool
/// is created once and reused by every parallel call, so this stays at
/// `current_num_threads() - 1` forever (asserted by the pool-reuse tests;
/// not part of real rayon's API).
pub fn worker_spawn_count() -> usize {
    pool::worker_spawn_count()
}

pub use pool::PoolStats;

/// Diagnostic: snapshot the pool's cumulative scheduling tallies — batches
/// submitted, per-executor chunk claims off the self-scheduling cursor,
/// and inline-run counts (nested and contended fallbacks). Process-global
/// and monotone, so per-phase figures come from snapshot deltas. Reading
/// never forces pool creation and nothing in the pool ever consults these
/// values: the surface is strictly observational (consumed by the
/// workspace's obs layer; not part of real rayon's API).
pub fn pool_stats() -> PoolStats {
    pool::stats()
}

/// Chunks handed to the pool per thread. More chunks than threads is what
/// lets fast executors claim extra chunks when per-item cost is uneven —
/// the dynamic self-scheduling that replaces work stealing in this shim.
const CHUNKS_PER_THREAD: usize = 8;

/// Split `items` into at most `parts` contiguous chunks, preserving order.
fn chunked<T>(items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let chunk_size = items.len().div_ceil(parts.max(1)).max(1);
    let mut chunks = Vec::with_capacity(parts);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    chunks
}

/// Take a chunk's payload out of its slot (poison-safe: slots are only
/// poisoned if the payload itself panicked mid-take, which cannot happen —
/// `take` is panic-free).
fn take_slot<T>(slot: &Mutex<Option<T>>) -> T {
    slot.lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
        .expect("pool chunk claimed twice")
}

/// Apply `f` to every item on the persistent pool, preserving input order.
fn par_map<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let len = items.len();
    // Resolve the pool only for calls that could actually use it; nested
    // or tiny calls run inline.
    let nested = pool::in_parallel_call();
    let threads = if len <= 1 || nested { 1 } else { pool::global().threads().min(len) };
    if threads <= 1 {
        if nested && len > 1 {
            pool::note_inline_nested();
        }
        return items.into_iter().map(f).collect();
    }
    let pool = pool::global();
    let inputs: Vec<Mutex<Option<Vec<T>>>> = chunked(items, (threads * CHUNKS_PER_THREAD).min(len))
        .into_iter()
        .map(|c| Mutex::new(Some(c)))
        .collect();
    let outputs: Vec<Mutex<Option<Vec<U>>>> = inputs.iter().map(|_| Mutex::new(None)).collect();
    pool.run(inputs.len(), &|chunk: usize| {
        let mapped: Vec<U> = take_slot(&inputs[chunk]).into_iter().map(f).collect();
        *outputs[chunk].lock().unwrap_or_else(PoisonError::into_inner) = Some(mapped);
    });
    let mut out = Vec::with_capacity(len);
    for slot in outputs {
        out.extend(take_slot(&slot));
    }
    out
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

macro_rules! impl_range_into_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for core::ops::Range<$t> {
            type Item = $t;
            type Iter = ParIter<$t>;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_range_into_par!(u32, u64, usize, i32, i64);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// A materialized parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// `map` adapter over a parallel iterator.
pub struct Map<I, F> {
    base: I,
    f: F,
}

/// Parallel iterator combinators. Terminal operations fan the work out
/// over the persistent pool.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Materialize all items (runs any pending mapped stages in parallel).
    fn run(self) -> Vec<Self::Item>;

    /// Lazily apply `f` to every item.
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Collect the items in input order.
    fn collect<C: FromParallel<Self::Item>>(self) -> C {
        C::from_ordered(self.run())
    }

    /// Sum the items in input order.
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.run().into_iter().sum()
    }

    /// Run `f` on every item (no ordering guarantee in real rayon; here
    /// chunks run concurrently).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        self.for_each_with((), move |(), item| f(item));
    }

    /// Run `f` on every item with a per-chunk clone of `init` as mutable
    /// state (rayon's `for_each_with`; real rayon clones per split, this
    /// shim per chunk).
    fn for_each_with<S, F>(self, init: S, f: F)
    where
        S: Clone + Send,
        F: Fn(&mut S, Self::Item) + Sync + Send,
    {
        let items = self.run();
        let len = items.len();
        // Resolve the pool only for calls that could actually use it;
        // nested or tiny calls run inline.
        let nested = pool::in_parallel_call();
        let threads = if len <= 1 || nested { 1 } else { pool::global().threads().min(len) };
        if threads <= 1 {
            if nested && len > 1 {
                pool::note_inline_nested();
            }
            let mut state = init;
            for item in items {
                f(&mut state, item);
            }
            return;
        }
        let pool = pool::global();
        // States are cloned up front on this thread: `S` is `Send` but
        // not necessarily `Sync`, so workers cannot clone from a shared
        // reference.
        type ChunkSlot<S, T> = Mutex<Option<(S, Vec<T>)>>;
        let tasks: Vec<ChunkSlot<S, Self::Item>> =
            chunked(items, (threads * CHUNKS_PER_THREAD).min(len))
                .into_iter()
                .map(|c| Mutex::new(Some((init.clone(), c))))
                .collect();
        let f = &f;
        pool.run(tasks.len(), &|chunk: usize| {
            let (mut state, items) = take_slot(&tasks[chunk]);
            for item in items {
                f(&mut state, item);
            }
        });
    }
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.items
    }
}

impl<I, U, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    U: Send,
    F: Fn(I::Item) -> U + Sync + Send,
{
    type Item = U;
    fn run(self) -> Vec<U> {
        par_map(self.base.run(), &self.f)
    }
}

/// Collections constructible from ordered parallel output.
pub trait FromParallel<T> {
    /// Build the collection from items in input order.
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T> FromParallel<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Vec<T> {
        items
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0u64..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sum_matches_sequential() {
        let s: u64 = (0u64..10_000).into_par_iter().map(|x| x % 7).sum();
        assert_eq!(s, (0u64..10_000).map(|x| x % 7).sum::<u64>());
    }

    #[test]
    fn for_each_with_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        (0usize..257).into_par_iter().for_each_with((), |(), _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = (0u32..0).into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    /// Busy work whose cost varies ~100x with the input — the uneven
    /// workload the self-scheduling chunks exist for.
    fn uneven(x: u64) -> u64 {
        let mut acc = x;
        for _ in 0..(x % 64) * 40 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        }
        acc
    }

    #[test]
    fn uneven_map_preserves_order() {
        let out: Vec<u64> = (0u64..512).into_par_iter().map(uneven).collect();
        assert_eq!(out, (0u64..512).map(uneven).collect::<Vec<_>>());
    }

    #[test]
    fn pool_is_reused_across_calls() {
        for round in 0u64..50 {
            let out: Vec<u64> = (0u64..300).into_par_iter().map(|x| x + round).collect();
            assert_eq!(out[299], 299 + round);
        }
        // The persistent pool never spawns more than its initial workers.
        assert_eq!(crate::worker_spawn_count(), crate::current_num_threads().saturating_sub(1));
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        let result = std::panic::catch_unwind(|| {
            let _: Vec<u64> = (0u64..256)
                .into_par_iter()
                .map(|x| if x == 137 { panic!("boom") } else { x })
                .collect();
        });
        assert!(result.is_err(), "worker panic must reach the caller");
        // The pool is still usable afterwards.
        let out: Vec<u64> = (0u64..256).into_par_iter().map(|x| x * 3).collect();
        assert_eq!(out, (0u64..256).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn nested_parallel_calls_run_inline() {
        let out: Vec<u64> = (0u64..64)
            .into_par_iter()
            .map(|x| (0u64..x).into_par_iter().map(|y| y).sum::<u64>())
            .collect();
        let expected: Vec<u64> = (0u64..64).map(|x| x * x.saturating_sub(1) / 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn concurrent_callers_from_independent_threads_complete() {
        // Two non-worker threads race parallel calls; whichever loses the
        // pool runs inline. Neither may block on the other (the busy-pool
        // inline fallback), and both must produce ordered results.
        let results: Vec<Vec<u64>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4u64)
                .map(|k| {
                    s.spawn(move || {
                        (0u64..400).into_par_iter().map(move |x| x * (k + 1)).collect::<Vec<u64>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (k, out) in results.iter().enumerate() {
            let expected: Vec<u64> = (0u64..400).map(|x| x * (k as u64 + 1)).collect();
            assert_eq!(out, &expected, "caller {k}");
        }
    }

    #[test]
    fn pool_stats_tally_batches_claims_and_nested_inlines() {
        let before = crate::pool_stats();
        let _: Vec<u64> = (0u64..400)
            .into_par_iter()
            .map(|x| (0u64..x % 5 + 2).into_par_iter().map(|y| y + x).sum::<u64>())
            .collect();
        let after = crate::pool_stats();
        assert_eq!(after.threads, crate::current_num_threads());
        assert_eq!(after.claims.len(), after.threads);
        assert_eq!(after.chunks_claimed, after.claims.iter().sum::<u64>());
        if after.threads > 1 {
            // The outer call either submitted a batch or (racing another
            // test's batch) fell back to the contended inline path.
            assert!(
                after.batches + after.inline_contended > before.batches + before.inline_contended,
                "outer call is tallied as a batch or a contended inline run"
            );
            assert!(after.inline_nested > before.inline_nested, "inner calls ran inline");
            if after.batches > before.batches {
                assert!(after.chunks_claimed > before.chunks_claimed, "chunks were claimed");
            }
        } else {
            // A single-thread pool runs every call inline: nothing is
            // ever submitted or claimed.
            assert_eq!(after.batches, before.batches);
            assert_eq!(after.chunks_claimed, before.chunks_claimed);
        }
    }

    #[test]
    fn for_each_with_clones_state_per_chunk() {
        // Senders cloned per chunk must all reach the same receiver and
        // the channel must close once the call returns.
        let (tx, rx) = std::sync::mpsc::channel::<u64>();
        (0u64..500).into_par_iter().for_each_with(tx, |tx, x| {
            tx.send(x).unwrap();
        });
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0u64..500).collect::<Vec<_>>());
    }
}
