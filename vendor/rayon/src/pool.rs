//! Persistent worker pool with dynamic self-scheduling.
//!
//! The first parallel call creates one global pool ([`std::sync::OnceLock`])
//! of `current_num_threads() - 1` detached worker threads; the submitting
//! thread is the extra executor, so a pool of `N` threads computes with `N`
//! cores and every later call reuses the same threads instead of spawning a
//! scope per call.
//!
//! A parallel call packages its chunked job as a [`Batch`]. Executors
//! (workers plus the caller) repeatedly claim the next chunk index off a
//! shared `AtomicUsize` cursor — dynamic self-scheduling, the
//! load-balancing equivalent of work stealing for this shim's fan-outs:
//! when chunks are uneven, fast threads simply claim more of them. The
//! caller blocks until every claimed chunk is marked done, which is what
//! makes the lifetime erasure in [`Pool::run`] sound. A panicking chunk
//! records its payload, poisons the batch (remaining chunks are skipped),
//! and the payload is re-thrown on the caller via
//! [`std::panic::resume_unwind`] — the same observable behavior as real
//! rayon.
//!
//! Thread count: a positive integer in `RAYON_NUM_THREADS` overrides
//! [`std::thread::available_parallelism`]; either way the value is read
//! once at pool creation and cached for the process lifetime.
//!
//! Re-entrant parallel calls (a job using parallel iterators itself, which
//! real rayon splits onto the same pool) are detected with a thread-local
//! flag and run inline sequentially: the ordered combinators make that
//! observationally identical, and it cannot deadlock the single batch slot.
//! Likewise, a call arriving while another thread's batch is in flight
//! runs inline instead of queueing — waiting could deadlock when the
//! in-flight batch needs this caller to make progress (a streaming
//! consumer doing parallel aggregation is the concrete case).

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Lock, recovering from poisoning: every critical section in this module
/// is panic-free (job panics are caught before the bookkeeping locks), so
/// a poisoned lock still holds consistent data.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    /// True while this thread executes inside a parallel call, as a pool
    /// worker or as the submitting caller.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };

    /// This thread's slot in the per-executor claim tally: 0 for
    /// submitting callers (all of them share the slot), `i + 1` for pool
    /// worker `i`. Set once per worker at spawn.
    static EXECUTOR_SLOT: Cell<usize> = const { Cell::new(0) };
}

/// Whether the current thread is already inside a parallel call (nested
/// calls must run inline instead of re-entering the pool).
pub(crate) fn in_parallel_call() -> bool {
    IN_PARALLEL.with(Cell::get)
}

/// Parse a `RAYON_NUM_THREADS`-style override. `None` for unset, empty,
/// unparseable, or zero values (zero means "use the default" in real rayon
/// too).
pub(crate) fn parse_thread_override(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|s| s.trim().parse::<usize>().ok()).filter(|&n| n > 0)
}

fn configured_thread_count() -> usize {
    parse_thread_override(std::env::var("RAYON_NUM_THREADS").ok().as_deref())
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Worker threads spawned since process start. The pool is created once,
/// so this stays at `current_num_threads() - 1` no matter how many
/// parallel calls run — the reuse diagnostic the tests assert on.
static WORKERS_SPAWNED: AtomicUsize = AtomicUsize::new(0);

pub(crate) fn worker_spawn_count() -> usize {
    WORKERS_SPAWNED.load(Ordering::Relaxed)
}

/// Diagnostic tallies behind [`crate::pool_stats`] — the same pattern as
/// `WORKERS_SPAWNED`. Written with relaxed atomics on coarse events (one
/// per batch, chunk, or inline call); read only by the stats snapshot,
/// never by any scheduling decision.
static BATCHES_SUBMITTED: AtomicU64 = AtomicU64::new(0);
static INLINE_NESTED: AtomicU64 = AtomicU64::new(0);
static INLINE_CONTENDED: AtomicU64 = AtomicU64::new(0);

/// Per-executor chunk-claim tally: slot 0 aggregates submitting callers,
/// slot `i + 1` is worker `i`. Sized once at pool creation.
static CLAIMS: OnceLock<Box<[AtomicU64]>> = OnceLock::new();

/// Tally a parallel call that ran inline because the calling thread was
/// already inside a parallel call (workers and re-entrant callers).
pub(crate) fn note_inline_nested() {
    INLINE_NESTED.fetch_add(1, Ordering::Relaxed);
}

/// A snapshot of the pool's diagnostic counters (see [`crate::pool_stats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Pool thread count (0 if the pool was never created).
    pub threads: usize,
    /// Worker threads spawned since process start.
    pub workers_spawned: usize,
    /// Batches submitted to the pool (one per non-inline parallel call).
    pub batches: u64,
    /// Chunks claimed and executed across all batches (`claims` summed).
    pub chunks_claimed: u64,
    /// Parallel calls run inline because the caller was already inside a
    /// parallel call.
    pub inline_nested: u64,
    /// Parallel calls run inline because another thread's batch held the
    /// pool (the deadlock-avoiding contended fallback).
    pub inline_contended: u64,
    /// Per-executor chunk claims: index 0 aggregates submitting callers,
    /// index `i + 1` is worker `i`. Empty if the pool was never created.
    pub claims: Vec<u64>,
}

/// Snapshot the tallies without forcing pool creation.
pub(crate) fn stats() -> PoolStats {
    let claims: Vec<u64> = CLAIMS
        .get()
        .map(|slots| slots.iter().map(|c| c.load(Ordering::Relaxed)).collect())
        .unwrap_or_default();
    PoolStats {
        threads: claims.len(),
        workers_spawned: worker_spawn_count(),
        batches: BATCHES_SUBMITTED.load(Ordering::Relaxed),
        chunks_claimed: claims.iter().sum(),
        inline_nested: INLINE_NESTED.load(Ordering::Relaxed),
        inline_contended: INLINE_CONTENDED.load(Ordering::Relaxed),
        claims,
    }
}

/// Lifetime-erased pointer to a borrowed per-chunk job closure.
///
/// Safety contract: [`Pool::run`] blocks until every claimed chunk is
/// marked done, and executors dereference the pointer only while running a
/// claimed chunk, so the pointee outlives every dereference.
struct RawJob(*const (dyn Fn(usize) + Sync + 'static));

// SAFETY: the pointee is `Sync` (only ever called through `&`), and the
// `RawJob` contract above keeps it alive for every dereference.
unsafe impl Send for RawJob {}
unsafe impl Sync for RawJob {}

/// One submitted parallel call: a chunked job plus the self-scheduling
/// cursor and completion/panic bookkeeping.
struct Batch {
    job: RawJob,
    chunks: usize,
    /// Next unclaimed chunk — the shared self-scheduling cursor.
    next: AtomicUsize,
    /// Chunks finished (executed or skipped after a panic).
    done: Mutex<usize>,
    all_done: Condvar,
    /// Payload of the first chunk panic, re-thrown on the caller.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    panicked: AtomicBool,
}

impl Batch {
    /// Claim and execute chunks until the cursor runs off the end.
    fn execute(&self) {
        loop {
            let chunk = self.next.fetch_add(1, Ordering::Relaxed);
            if chunk >= self.chunks {
                return;
            }
            if let Some(claims) = CLAIMS.get() {
                claims[EXECUTOR_SLOT.with(Cell::get)].fetch_add(1, Ordering::Relaxed);
            }
            if !self.panicked.load(Ordering::Relaxed) {
                // SAFETY: `chunk < self.chunks` was claimed exactly once,
                // and the submitting `run` call keeps the pointee alive
                // until this chunk is marked done below.
                let job = unsafe { &*self.job.0 };
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| job(chunk))) {
                    self.panicked.store(true, Ordering::Relaxed);
                    let mut slot = lock(&self.panic);
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
            let mut done = lock(&self.done);
            *done += 1;
            if *done == self.chunks {
                self.all_done.notify_all();
            }
        }
    }
}

/// Shared pool state the workers block on.
struct Shared {
    /// The in-flight batch, if any. A single slot suffices because
    /// `Pool::submit` serializes batches.
    slot: Mutex<Option<Arc<Batch>>>,
    work_ready: Condvar,
}

/// The persistent pool: a cached thread count plus the worker handles'
/// shared state.
pub(crate) struct Pool {
    threads: usize,
    shared: Arc<Shared>,
    /// Held by the submitting caller for the whole batch, so concurrent
    /// callers (e.g. parallel tests) queue instead of fighting over the
    /// single batch slot.
    submit: Mutex<()>,
}

impl Pool {
    fn new() -> Pool {
        let threads = configured_thread_count();
        let shared = Arc::new(Shared { slot: Mutex::new(None), work_ready: Condvar::new() });
        CLAIMS.get_or_init(|| (0..threads).map(|_| AtomicU64::new(0)).collect());
        for i in 0..threads.saturating_sub(1) {
            let shared = Arc::clone(&shared);
            WORKERS_SPAWNED.fetch_add(1, Ordering::Relaxed);
            std::thread::Builder::new()
                .name(format!("rayon-shim-worker-{i}"))
                .spawn(move || worker_loop(&shared, i + 1))
                .expect("failed to spawn rayon shim worker");
        }
        Pool { threads, shared, submit: Mutex::new(()) }
    }

    /// Cached thread count (env override or `available_parallelism`).
    pub(crate) fn threads(&self) -> usize {
        self.threads
    }

    /// Run `job(chunk)` for every chunk in `0..chunks` on the pool,
    /// returning once all chunks finished; the caller participates as an
    /// executor. Chunk panics are propagated to this caller.
    ///
    /// If another thread's batch is already in flight, the job runs
    /// inline on the caller instead of waiting: blocking here can
    /// deadlock when the in-flight batch depends on this caller making
    /// progress (e.g. a streaming consumer that issues a parallel call
    /// while the producer's batch back-pressures on it), and the ordered
    /// combinators make inline execution observationally identical.
    pub(crate) fn run<'a>(&self, chunks: usize, job: &'a (dyn Fn(usize) + Sync + 'a)) {
        if chunks == 0 {
            return;
        }
        let submit = match self.submit.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                INLINE_CONTENDED.fetch_add(1, Ordering::Relaxed);
                IN_PARALLEL.with(|f| f.set(true));
                let inline = catch_unwind(AssertUnwindSafe(|| {
                    for chunk in 0..chunks {
                        job(chunk);
                    }
                }));
                IN_PARALLEL.with(|f| f.set(false));
                if let Err(payload) = inline {
                    resume_unwind(payload);
                }
                return;
            }
        };
        let raw: *const (dyn Fn(usize) + Sync + 'a) = job;
        // SAFETY (lifetime erasure): this function returns only after
        // `done == chunks`, and executors never dereference the pointer
        // after marking their last claimed chunk done, so `job` outlives
        // every dereference despite the 'static in `RawJob`. The types
        // differ only in that lifetime bound, so the layout is identical.
        #[allow(clippy::useless_transmute)]
        let raw: *const (dyn Fn(usize) + Sync + 'static) = unsafe { std::mem::transmute(raw) };
        let batch = Arc::new(Batch {
            job: RawJob(raw),
            chunks,
            next: AtomicUsize::new(0),
            done: Mutex::new(0),
            all_done: Condvar::new(),
            panic: Mutex::new(None),
            panicked: AtomicBool::new(false),
        });
        BATCHES_SUBMITTED.fetch_add(1, Ordering::Relaxed);
        *lock(&self.shared.slot) = Some(Arc::clone(&batch));
        self.shared.work_ready.notify_all();
        // Participate: the caller claims chunks alongside the workers.
        IN_PARALLEL.with(|f| f.set(true));
        batch.execute();
        IN_PARALLEL.with(|f| f.set(false));
        // Wait for chunks claimed by workers to finish.
        let mut done = lock(&batch.done);
        while *done < chunks {
            done = batch.all_done.wait(done).unwrap_or_else(PoisonError::into_inner);
        }
        drop(done);
        *lock(&self.shared.slot) = None;
        drop(submit);
        let payload = lock(&batch.panic).take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

fn worker_loop(shared: &Shared, claim_slot: usize) {
    // Everything a worker ever runs is pool work, so nested parallel
    // calls from inside a job must always go inline.
    IN_PARALLEL.with(|f| f.set(true));
    EXECUTOR_SLOT.with(|s| s.set(claim_slot));
    loop {
        let batch = {
            let mut slot = lock(&shared.slot);
            loop {
                if let Some(b) = slot.as_ref() {
                    if b.next.load(Ordering::Relaxed) < b.chunks {
                        break Arc::clone(b);
                    }
                }
                slot = shared.work_ready.wait(slot).unwrap_or_else(PoisonError::into_inner);
            }
        };
        batch.execute();
    }
}

/// The lazily-created global pool.
pub(crate) fn global() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(Pool::new)
}

#[cfg(test)]
mod tests {
    use super::parse_thread_override;

    #[test]
    fn thread_override_parsing() {
        assert_eq!(parse_thread_override(None), None);
        assert_eq!(parse_thread_override(Some("")), None);
        assert_eq!(parse_thread_override(Some("0")), None);
        assert_eq!(parse_thread_override(Some("-2")), None);
        assert_eq!(parse_thread_override(Some("lots")), None);
        assert_eq!(parse_thread_override(Some("3")), Some(3));
        assert_eq!(parse_thread_override(Some(" 8 ")), Some(8));
    }
}
