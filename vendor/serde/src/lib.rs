//! Offline stand-in for `serde`: `Serialize`/`Deserialize` traits over an
//! owned JSON-like [`value::Value`] tree, plus re-exported derive macros.
//!
//! The derive macros (in the sibling `serde_derive` shim) generate
//! field-by-field conversions to and from [`value::Value`]; the
//! `serde_json` shim renders and parses that tree. The externally-tagged
//! enum representation matches real serde (`"Unit"`,
//! `{"Variant": …}`), so persisted artifacts stay readable if the real
//! crates are ever dropped in.

#![forbid(unsafe_code)]

pub mod value;

pub use serde_derive::{Deserialize, Serialize};

use value::{Number, Value};

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into an owned value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self`, reporting a human-readable error on shape mismatch.
    fn from_value(v: &Value) -> Result<Self, String>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                let n = v.as_u64().ok_or_else(|| {
                    format!("expected unsigned integer, found {}", v.kind())
                })?;
                <$t>::try_from(n).map_err(|_| format!("{n} out of range"))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                let n = v.as_i64().ok_or_else(|| {
                    format!("expected integer, found {}", v.kind())
                })?;
                <$t>::try_from(n).map_err(|_| format!("{n} out of range"))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::F(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| format!("expected number, found {}", v.kind()))
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, found {}", other.kind())),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(format!("expected string, found {}", other.kind())),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(format!("expected single-char string, found {}", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(format!("expected array, found {}", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, String> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(format!(
                        "expected {LEN}-element array, found {}", other.kind()
                    )),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(v.clone())
    }
}

/// Look up `key` in an object's pair list (derive-macro helper).
/// A missing key is an error, matching real serde's behavior for fields
/// without `#[serde(default)]`.
pub fn field<'v>(pairs: &'v [(String, Value)], key: &str) -> Result<&'v Value, String> {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field `{key}`"))
}
