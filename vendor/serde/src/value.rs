//! The owned value tree shared by the `serde` and `serde_json` shims.

/// A JSON-shaped value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// A JSON number, kept in its widest lossless representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative (or any signed) integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The object's key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array's items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `u64` if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U(n)) => Some(*n),
            Value::Number(Number::I(n)) => u64::try_from(*n).ok(),
            Value::Number(Number::F(f))
                if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 =>
            {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// Numeric value as `i64` if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I(n)) => Some(*n),
            Value::Number(Number::U(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::F(f))
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// Numeric value as `f64` (integers convert; may round above 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::F(f)) => Some(*f),
            Value::Number(Number::U(n)) => Some(*n as f64),
            Value::Number(Number::I(n)) => Some(*n as f64),
            _ => None,
        }
    }
}
