//! Offline stand-in for `anyhow`: a boxed dynamic error with context.

#![forbid(unsafe_code)]

use std::fmt;

/// A dynamically typed error with an optional chain of context messages.
pub struct Error {
    message: String,
    source: Option<Box<dyn std::error::Error + Send + Sync + 'static>>,
}

/// `Result` specialized to [`Error`].
pub type Result<T, E = Error> = std::result::Result<T, E>;

impl Error {
    /// Build from any display-able message.
    pub fn msg(message: impl fmt::Display) -> Self {
        Error { message: message.to_string(), source: None }
    }

    /// Build from a concrete error value.
    pub fn new<E>(error: E) -> Self
    where
        E: std::error::Error + Send + Sync + 'static,
    {
        Error { message: error.to_string(), source: Some(Box::new(error)) }
    }

    /// Add a context line (outermost first when displayed).
    pub fn context(self, context: impl fmt::Display) -> Self {
        Error { message: format!("{context}: {}", self.message), source: self.source }
    }

    /// The underlying concrete error, when this `Error` wraps one
    /// (`anyhow::Error::source` equivalent; message-only errors have none).
    pub fn source(&self) -> Option<&(dyn std::error::Error + Send + Sync + 'static)> {
        self.source.as_deref()
    }

    /// Downcast a reference to the underlying concrete error type.
    pub fn downcast_ref<E: std::error::Error + 'static>(&self) -> Option<&E> {
        self.source.as_deref().and_then(|s| s.downcast_ref::<E>())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl<E> From<E> for Error
where
    E: std::error::Error + Send + Sync + 'static,
{
    fn from(error: E) -> Self {
        Error::new(error)
    }
}

/// Attach context to a fallible result, like `anyhow::Context`.
pub trait Context<T> {
    /// Wrap the error with a fixed message.
    fn context(self, context: impl fmt::Display) -> Result<T>;

    /// Wrap the error with a lazily built message.
    fn with_context<C: fmt::Display, F: FnOnce() -> C>(self, f: F) -> Result<T>;
}

impl<T, E> Context<T> for std::result::Result<T, E>
where
    E: std::error::Error + Send + Sync + 'static,
{
    fn context(self, context: impl fmt::Display) -> Result<T> {
        self.map_err(|e| Error::new(e).context(context))
    }

    fn with_context<C: fmt::Display, F: FnOnce() -> C>(self, f: F) -> Result<T> {
        self.map_err(|e| Error::new(e).context(f()))
    }
}

/// Construct an [`Error`] from a format string.
#[macro_export]
macro_rules! anyhow {
    ($($tt:tt)*) => { $crate::Error::msg(::std::format!($($tt)*)) };
}

/// Return early with a formatted [`Error`].
#[macro_export]
macro_rules! bail {
    ($($tt:tt)*) => { return ::std::result::Result::Err($crate::anyhow!($($tt)*)) };
}

/// Return early with an error unless the condition holds.
#[macro_export]
macro_rules! ensure {
    ($cond:expr, $($tt:tt)*) => {
        if !($cond) {
            $crate::bail!($($tt)*);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_chains() {
        let base: std::result::Result<(), std::io::Error> =
            Err(std::io::Error::other("disk on fire"));
        let err = base.context("writing results").unwrap_err();
        assert!(err.to_string().contains("writing results"));
        assert!(err.to_string().contains("disk on fire"));
    }

    #[test]
    fn source_is_reachable() {
        let err = Error::new(std::io::Error::other("inner"));
        assert!(err.source().is_some());
        assert!(err.downcast_ref::<std::io::Error>().is_some());
        assert!(Error::msg("no source").source().is_none());
    }

    #[test]
    fn bail_macro() {
        fn f(x: u32) -> Result<u32> {
            ensure!(x < 10, "x too big: {x}");
            Ok(x)
        }
        assert!(f(3).is_ok());
        assert!(f(30).is_err());
    }
}
