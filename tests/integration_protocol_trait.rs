//! Golden equivalence suite for the protocol abstraction: dispatching a
//! run through [`tlb_core::protocol::AnyStepper`] must be **bit-identical**
//! to calling the concrete stepper's one-shot entry point — same RNG
//! draws, same order, same outcome — for every protocol variant and walk
//! kind, plus a proptest that `into_parts → from_parts` round-trips
//! through the trait surface.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_baselines::{BaselineConfig, BaselineRule, BaselineStepper};
use tlb_core::mixed_protocol::{run_mixed, MixedConfig};
use tlb_core::prelude::*;
use tlb_graphs::generators::{complete, torus2d};
use tlb_graphs::Graph;
use tlb_walks::WalkKind;

fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

fn tasks() -> TaskSet {
    TaskSet::new((0..300).map(|i| 1.0 + (i % 5) as f64).collect::<Vec<_>>())
}

/// Drive a kind through the trait object with the same seed as a direct
/// run and return its outcome.
fn trait_run(kind: &ProtocolKind, g: &Graph, tasks: &TaskSet, seed: u64) -> ProtocolOutcome {
    let mut r = rng(seed);
    let mut stepper = kind.new_stepper(g, tasks, Placement::AllOnOne(0), &mut r);
    stepper.run(g, &mut r);
    stepper.into_outcome()
}

#[test]
fn resource_trait_dispatch_is_bit_identical_for_both_walks() {
    let g = torus2d(6, 6);
    let tasks = tasks();
    for (walk, seed) in [(WalkKind::MaxDegree, 101), (WalkKind::Lazy, 102)] {
        let cfg = ResourceControlledConfig { walk, track_potential: true, ..Default::default() };
        let direct =
            run_resource_controlled(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng(seed));
        let via_trait = trait_run(&ProtocolKind::Resource(cfg), &g, &tasks, seed);
        assert_eq!(via_trait, direct, "resource/{walk:?} diverged under trait dispatch");
        assert!(direct.balanced());
    }
}

#[test]
fn user_trait_dispatch_is_bit_identical() {
    let g = complete(40);
    let tasks = tasks();
    let cfg = UserControlledConfig { track_potential: true, ..Default::default() };
    let direct = run_user_controlled(40, &tasks, Placement::AllOnOne(0), &cfg, &mut rng(103));
    let via_trait = trait_run(&ProtocolKind::User(cfg), &g, &tasks, 103);
    assert_eq!(via_trait, direct, "user protocol diverged under trait dispatch");
    assert!(direct.balanced());
}

#[test]
fn mixed_trait_dispatch_is_bit_identical_for_both_walks() {
    let g = torus2d(6, 6);
    let tasks = tasks();
    for (walk, seed) in [(WalkKind::MaxDegree, 104), (WalkKind::Lazy, 105)] {
        let cfg = MixedConfig { walk, track_potential: true, ..Default::default() };
        let direct = run_mixed(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng(seed));
        let via_trait = trait_run(&ProtocolKind::Mixed(cfg), &g, &tasks, seed);
        assert_eq!(via_trait, direct, "mixed/{walk:?} diverged under trait dispatch");
        assert!(direct.balanced());
    }
}

#[test]
fn baseline_trait_dispatch_is_bit_identical() {
    let g = complete(16);
    let tasks = tasks();
    for (rule, seed) in [
        (BaselineRule::Greedy { d: 2 }, 106),
        (BaselineRule::SequentialThreshold { retries: 3 }, 107),
    ] {
        let cfg = BaselineConfig { rule, ..Default::default() };
        let mut r = rng(seed);
        let mut direct = BaselineStepper::new(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut r);
        direct.run(&g, &mut r);
        let mut r2 = rng(seed);
        let mut boxed = cfg.new_stepper(&g, &tasks, Placement::AllOnOne(0), &mut r2);
        boxed.run(&g, &mut r2);
        assert_eq!(
            boxed.into_outcome(),
            direct.into_outcome(),
            "{} diverged under trait dispatch",
            rule.label()
        );
    }
}

#[test]
fn mixed_trace_has_the_shared_engine_shape() {
    // Satellite contract of this PR: the mixed protocol records traces
    // through the shared round engine exactly like its siblings.
    let g = torus2d(5, 5);
    let tasks = tasks();
    let cfg = MixedConfig { record_trace: true, track_potential: true, ..MixedConfig::default() };
    let out = run_mixed(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng(42));
    let trace = out.trace.as_ref().expect("mixed must record a trace now");
    assert_eq!(trace.rounds() as u64, out.rounds);
    assert_eq!(trace.total_migrations(), out.migrations);
    assert_eq!(trace.potential_series(), out.potential_series);
    assert_eq!(trace.records[0].round, 0, "trace starts with the initial snapshot");
    assert_eq!(trace.records.last().unwrap().max_load, out.final_max_load);
}

/// The three variants' steppers as one closure family for the proptest:
/// build → partial run → into_parts → resume through the trait surface.
fn arb_weights() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1u32..20, 20..120)
        .prop_map(|v| v.into_iter().map(|w| w as f64).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `into_parts → from_parts` round-trips through the trait surface:
    /// resuming a partially run stepper preserves every task and finishes
    /// the run against the same threshold, for all three variants.
    #[test]
    fn into_parts_from_parts_round_trips_through_the_trait(
        weights in arb_weights(),
        variant in 0usize..3,
        seed in any::<u64>(),
    ) {
        let tasks = TaskSet::new(weights);
        let g = complete(12);
        let kind = match variant {
            0 => ProtocolKind::Resource(ResourceControlledConfig {
                max_rounds: 2, ..Default::default()
            }),
            1 => ProtocolKind::User(UserControlledConfig { max_rounds: 2, ..Default::default() }),
            _ => ProtocolKind::Mixed(MixedConfig { max_rounds: 2, ..Default::default() }),
        };
        let mut r = rng(seed);
        let mut first = kind.new_stepper(&g, &tasks, Placement::AllOnOne(0), &mut r);
        first.run(&g, &mut r);
        let threshold = first.threshold();
        let first_migrations = first.migrations();
        let (stacks, parts_weights) = first.into_parts();
        prop_assert_eq!(parts_weights.len(), tasks.len());
        let carried: f64 = stacks.iter().map(|s| s.load()).sum();
        prop_assert!((carried - tasks.total_weight()).abs() < 1e-6,
            "into_parts lost weight: {} vs {}", carried, tasks.total_weight());

        // Resume through the trait with the cap lifted; it must finish.
        let resume_kind = match variant {
            0 => ProtocolKind::Resource(Default::default()),
            1 => ProtocolKind::User(Default::default()),
            _ => ProtocolKind::Mixed(Default::default()),
        };
        let mut second =
            resume_kind.stepper_from_parts(stacks, parts_weights, threshold, tasks.w_max());
        second.run(&g, &mut r);
        prop_assert!(second.is_balanced());
        prop_assert_eq!(second.threshold(), threshold);
        let out = second.into_outcome();
        let total: f64 = out.final_loads.iter().sum();
        prop_assert!((total - tasks.total_weight()).abs() < 1e-6);
        prop_assert!(out.migrations > 0 || first_migrations > 0 || out.rounds == 0);
    }

    /// The statically typed [`ProtocolSpec`] constructors agree with the
    /// dynamic [`ProtocolKind`] dispatch under the same seed.
    #[test]
    fn protocol_spec_agrees_with_kind_dispatch(
        weights in arb_weights(),
        seed in any::<u64>(),
    ) {
        let tasks = TaskSet::new(weights);
        let g = complete(10);
        let cfg = ResourceControlledConfig::default();
        let mut r1 = rng(seed);
        let mut concrete = <ResourceControlledStepper as ProtocolSpec>::new_stepper(
            &g, &tasks, Placement::AllOnOne(0), &cfg, &mut r1);
        concrete.run(&g, &mut r1);
        let mut r2 = rng(seed);
        let mut boxed = ProtocolKind::Resource(cfg)
            .new_stepper(&g, &tasks, Placement::AllOnOne(0), &mut r2);
        boxed.run(&g, &mut r2);
        prop_assert_eq!(concrete.outcome(), boxed.into_outcome());
    }
}
