//! Cross-crate integration of the online simulation stack: the `tlb-sim`
//! engine driving the `tlb-core` steppers over a churned `tlb-graphs`
//! overlay, plus the refactor contract — the legacy one-shot entry points
//! must be bit-identical to their pre-stepper implementations.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_core::mixed_protocol::{run_mixed, MixedConfig};
use tlb_core::prelude::*;
use tlb_core::threshold::ThresholdPolicy;
use tlb_graphs::generators::{complete, torus2d};
use tlb_sim::{ArrivalProcess, ChurnEvent, ChurnProcess, OnlineSim, SimConfig, TenantSpec};

/// The tentpole acceptance scenario: tasks stream in *while* resources
/// leave; once arrivals stop, the protocol must pull the system back
/// under the threshold and keep it there.
#[test]
fn churn_plus_arrivals_converges_after_arrivals_stop() {
    let total = 240;
    let cfg = SimConfig {
        name: "acceptance".into(),
        epochs: total,
        seed: 99,
        arrivals: ArrivalProcess::Poisson { rate: 15.0 },
        arrival_window: Some(150),
        departure_prob: 0.01,
        churn: ChurnProcess {
            scripted: vec![
                // Resources leave while arrivals are still streaming.
                (40, ChurnEvent::DeactivateRange { from: 0, to: 12 }),
                (90, ChurnEvent::Deactivate(20)),
                (200, ChurnEvent::ActivateRange { from: 0, to: 12 }),
            ],
            random_down: 0.03,
            random_up: 0.05,
            ..Default::default()
        },
        rounds_per_epoch: 32,
        ..Default::default()
    };
    let mut sim = OnlineSim::new(torus2d(7, 7), cfg);
    let report = sim.run();

    // Arrivals really did overlap the drains: some epoch inside the
    // arrival window both drained a resource and admitted tasks.
    let drained_while_arriving =
        report.records.iter().take(150).any(|r| r.drained > 0 && r.arrivals > 0);
    assert!(drained_while_arriving, "scenario must drain resources during the arrival window");

    // Convergence: the final stretch (well past the window) is balanced.
    let tail = &report.records[total as usize - 10..];
    for r in tail {
        assert_eq!(r.arrivals, 0, "tail must be arrival-free");
        assert!(
            r.balanced,
            "epoch {} not balanced after arrivals stopped: max {:.2} > threshold {:.2}",
            r.epoch, r.max_load, r.threshold
        );
        assert!(r.max_load <= r.threshold);
    }

    // Task conservation: live count equals arrivals minus departures.
    let last = report.last().unwrap();
    assert_eq!(
        last.live_tasks as u64,
        report.total_arrivals - report.total_departures,
        "tasks must never be lost or duplicated by churn"
    );
}

/// Bit-reproducibility: the whole report (and its JSON serialization) is
/// a pure function of the seed. The resource policy's rebalancing pass
/// runs on the rayon pool, but its walk words are counter-based (a pure
/// function of seed/epoch/round/node/slot — see `tlb_sim::shard`), so
/// this holds for any `RAYON_NUM_THREADS` and shard count (CI diffs the
/// `scale_sweep` deterministic output across 1/4 threads × 1/4 shards
/// as well).
#[test]
fn online_runs_are_bit_identical_across_runs() {
    let cfg = SimConfig {
        name: "repro".into(),
        epochs: 100,
        seed: 31337,
        arrivals: ArrivalProcess::Bursty { base: 5.0, burst: 60.0, period: 25, burst_len: 4 },
        departure_prob: 0.05,
        churn: ChurnProcess {
            scripted: vec![],
            random_down: 0.05,
            random_up: 0.08,
            ..Default::default()
        },
        tenants: vec![
            TenantSpec::new("a", ThresholdPolicy::Tight, 0.5),
            TenantSpec::new("b", ThresholdPolicy::AboveAverage { epsilon: 0.5 }, 0.5),
        ],
        ..Default::default()
    };
    let a = OnlineSim::new(torus2d(6, 6), cfg.clone()).run();
    let b = OnlineSim::new(torus2d(6, 6), cfg).run();
    assert_eq!(a, b);
    assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
}

/// Golden trajectory pin for the resource policy's online stream.
///
/// Golden pin (once, sharded-engine PR): the resource policy's
/// rebalancing pass moved off the epoch's sequential `SmallRng` onto the
/// counter-based stream of `tlb_sim::shard` (`rebalance_seed` /
/// `walk_word`) — that is what makes runs bit-identical across thread
/// *and shard* counts. Same per-step law (the words drive the identical
/// Lemire mapping, chi-square-pinned in `tlb_sim::shard::tests`),
/// different stream, so the trajectory below is pinned fresh here; no
/// earlier OnlineSim trajectory golden existed (the one-shot goldens in
/// this file are untouched — their entry points never go through the
/// online engine). Any future change to these values needs its own
/// justified re-pin per the policy in `vendor/README.md`.
#[test]
fn resource_policy_online_trajectory_is_pinned() {
    let cfg = SimConfig {
        name: "golden".into(),
        epochs: 40,
        seed: 4242,
        arrivals: ArrivalProcess::Poisson { rate: 12.0 },
        departure_prob: 0.05,
        churn: ChurnProcess {
            scripted: vec![],
            random_down: 0.04,
            random_up: 0.06,
            ..Default::default()
        },
        rounds_per_epoch: 32,
        ..Default::default()
    };
    let report = OnlineSim::new(torus2d(6, 6), cfg.clone()).run();
    assert_eq!(report.total_arrivals, 434);
    assert_eq!(report.total_departures, 244);
    assert_eq!(report.total_migrations, 221);
    assert_eq!(
        report.records.iter().map(|r| r.rebalance_rounds).sum::<u64>(),
        113,
        "total protocol rounds moved — the rebalance stream changed"
    );
    let last = report.last().unwrap();
    assert_eq!(last.max_load.to_bits(), 4619567317775286272);

    // The sharded engine at any shard count reproduces the pinned
    // shards=1 trajectory bit-for-bit.
    for shards in [2, 5, 36] {
        let sharded = OnlineSim::new(torus2d(6, 6), SimConfig { shards, ..cfg.clone() }).run();
        assert_eq!(report, sharded, "shards={shards} diverged from the pinned trajectory");
    }
}

/// Refactor contract (pinned before the stepper refactor, from commit
/// 606753b): the one-shot entry points must reproduce these exact values
/// — rounds, migrations, and bit-exact loads — proving the steppers are a
/// pure refactor underneath them.
///
/// Golden re-pin (once, batched-RNG walk kernel PR): the **mixed**
/// values below moved because the batched kernel draws all of a round's
/// Bernoulli departure coins before any walk word, where the old loop
/// interleaved coins and walk steps per resource — same per-step law
/// (chi-square-pinned in `tlb_walks::batch`), different stream. Old
/// values: rounds 9, migrations 358, max_load bits 4631952216750555136,
/// loads[0..3] bits 4630685579355357184 / 4629981891913580544 /
/// 4630826316843712512. The resource- and user-controlled values are
/// **unchanged**: their batched paths consume the identical RNG stream
/// (bulk words + the same Lemire mapping, in the same order).
#[test]
fn legacy_one_shot_outcomes_are_bit_identical_to_pre_stepper_runs() {
    let g = torus2d(6, 6);
    let tasks = TaskSet::new((0..360).map(|i| 1.0 + (i % 5) as f64).collect::<Vec<_>>());

    let cfg = ResourceControlledConfig::default();
    let mut rng = SmallRng::seed_from_u64(12345);
    let out = run_resource_controlled(&g, &tasks, Placement::AllOnOne(7), &cfg, &mut rng);
    assert_eq!(out.rounds, 41);
    assert_eq!(out.migrations, 1664);
    assert_eq!(out.final_max_load.to_bits(), 4630967054332067840);

    let ucfg = UserControlledConfig::default();
    let mut rng = SmallRng::seed_from_u64(777);
    let uout = run_user_controlled(40, &tasks, Placement::AllOnOne(0), &ucfg, &mut rng);
    assert_eq!(uout.rounds, 13);
    assert_eq!(uout.migrations, 397);
    assert_eq!(uout.final_max_load.to_bits(), 4630404104378646528);
    assert_eq!(uout.final_loads[0].to_bits(), 4630263366890291200);
    assert_eq!(uout.final_loads[1].to_bits(), 4630404104378646528);
    assert_eq!(uout.final_loads[2].to_bits(), 4629841154425225216);

    let mcfg = MixedConfig::default();
    let g2 = complete(30);
    let mut rng = SmallRng::seed_from_u64(4242);
    let mout = run_mixed(&g2, &tasks, Placement::AllOnOne(3), &mcfg, &mut rng);
    assert_eq!(mout.rounds, 7);
    assert_eq!(mout.migrations, 369);
    assert_eq!(mout.final_max_load.to_bits(), 4631670741773844480);
    assert_eq!(mout.final_loads[0].to_bits(), 4630967054332067840);
    assert_eq!(mout.final_loads[1].to_bits(), 4631248529308778496);
    assert_eq!(mout.final_loads[2].to_bits(), 4630122629401935872);

    // The shuffle + potential-tracking path exercises every RNG call site.
    let cfg2 = ResourceControlledConfig {
        shuffle_arrivals: true,
        track_potential: true,
        ..Default::default()
    };
    let mut rng = SmallRng::seed_from_u64(999);
    let out2 = run_resource_controlled(&g, &tasks, Placement::UniformRandom, &cfg2, &mut rng);
    assert_eq!(out2.rounds, 9);
    assert_eq!(out2.migrations, 49);
    assert_eq!(out2.potential_series.len(), 10);
    assert_eq!(out2.potential_series[1].to_bits(), 4629418941960159232);
}

/// A paused-and-resumed stepper (the sim's per-epoch drive pattern)
/// reaches the same fixed point as letting the one-shot entry run free:
/// balance against the same threshold with conserved total weight.
#[test]
fn incremental_stepping_reaches_the_one_shot_fixed_point() {
    use tlb_core::resource_protocol::ResourceControlledStepper;
    let g = torus2d(6, 6);
    let tasks = TaskSet::new((0..300).map(|i| 1.0 + (i % 4) as f64).collect::<Vec<_>>());
    let cfg = ResourceControlledConfig::default();

    let mut rng = SmallRng::seed_from_u64(8);
    let mut stepper =
        ResourceControlledStepper::new(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng);
    // Drive in bursts of 4 rounds with pauses in between, as the online
    // engine does between event batches.
    while !stepper.is_done() {
        for _ in 0..4 {
            if stepper.step(&g, &mut rng) {
                break;
            }
        }
    }
    assert!(stepper.is_balanced());
    let threshold = stepper.threshold();
    let (stacks, _) = stepper.into_parts();
    let total: f64 = stacks.iter().map(|s| s.load()).sum();
    assert!((total - tasks.total_weight()).abs() < 1e-6);
    assert!(stacks.iter().all(|s| s.load() <= threshold));
}

/// The multi-tenant report orders tenants as configured and the tight
/// tenant degrades at least as often as the relaxed one.
#[test]
fn tenant_slo_ordering_is_stable_under_streaming_load() {
    let cfg = SimConfig {
        name: "tenant-order".into(),
        epochs: 150,
        seed: 5,
        arrivals: ArrivalProcess::Poisson { rate: 25.0 },
        departure_prob: 0.06,
        tenants: vec![
            TenantSpec::new("gold-tight", ThresholdPolicy::Tight, 0.2),
            TenantSpec::new("silver", ThresholdPolicy::AboveAverage { epsilon: 0.5 }, 0.3),
            TenantSpec::new("bronze-loose", ThresholdPolicy::AboveAverage { epsilon: 2.0 }, 0.5),
        ],
        ..Default::default()
    };
    let report = OnlineSim::new(complete(20), cfg).run();
    assert_eq!(report.tenants, vec!["gold-tight", "silver", "bronze-loose"]);
    let rates = &report.tenant_violation_rates;
    assert!(
        rates[0] >= rates[1] && rates[1] >= rates[2],
        "rates must order by strictness: {rates:?}"
    );
}

/// Golden pin for the **lazy** walk stream (once, wide-lane kernel PR).
///
/// Golden re-pin (once, wide-lane RNG kernel PR): the lazy batched
/// kernel moved from one fused word per walker off the caller's stream
/// to **one parent word per batch** expanded through the lane-striped
/// `rand::rngs::WideRng` (fixed `WIDE_LANES` stream constant), and lazy
/// cohorts are now degree-bucket sorted before the walk phase
/// (`RoundEngine::sort_cohort_by_degree`) — same per-step law
/// (chi-square-pinned per `WalkKind` in `tlb_walks::batch`, and the
/// word-law stub tests there pin the mapping bit-exactly), different
/// stream. No earlier golden pinned a lazy one-shot trajectory (every
/// checked-in pin uses MaxDegree walks or the counter-based online
/// stream, all byte-identical to before this PR), so these values are
/// pinned fresh here: a regular graph (torus — wide-lane gather fast
/// path, sorting is the identity) and an irregular one (star — general
/// path plus a real degree-bucket sort each round). Any future change
/// to these values needs its own justified re-pin per the policy in
/// `vendor/README.md`.
#[test]
fn lazy_one_shot_outcomes_are_pinned() {
    let tasks = TaskSet::new((0..360).map(|i| 1.0 + (i % 5) as f64).collect::<Vec<_>>());
    let cfg = ResourceControlledConfig { walk: tlb_walks::WalkKind::Lazy, ..Default::default() };

    let g = torus2d(6, 6);
    let mut rng = SmallRng::seed_from_u64(12345);
    let out = run_resource_controlled(&g, &tasks, Placement::AllOnOne(7), &cfg, &mut rng);
    assert_eq!(out.rounds, 53);
    assert_eq!(out.migrations, 3284);
    assert_eq!(out.final_max_load.to_bits(), 4630967054332067840);

    let star = tlb_graphs::generators::star(40);
    let mut rng = SmallRng::seed_from_u64(777);
    let out2 = run_resource_controlled(&star, &tasks, Placement::AllOnOne(0), &cfg, &mut rng);
    assert_eq!(out2.rounds, 155);
    assert_eq!(out2.migrations, 900);
    assert_eq!(out2.final_max_load.to_bits(), 4630404104378646528);
}
