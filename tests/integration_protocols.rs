//! Cross-crate integration: protocols (tlb-core) on generated graphs
//! (tlb-graphs), checked against walk theory (tlb-walks) and the paper's
//! analytic bounds.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_core::drift;
use tlb_core::placement::Placement;
use tlb_core::resource_protocol::{run_resource_controlled, ResourceControlledConfig};
use tlb_core::task::TaskSet;
use tlb_core::threshold::ThresholdPolicy;
use tlb_core::user_protocol::{run_user_controlled, UserControlledConfig};
use tlb_core::weights::WeightSpec;
use tlb_experiments::harness;
use tlb_experiments::stats::Summary;
use tlb_graphs::generators;
use tlb_walks::{hitting, mixing, spectral, TransitionMatrix, WalkKind};

/// Theorem 3 numerically: on the complete graph (τ = O(1)), the measured
/// resource-controlled balancing time must sit below the theorem's
/// explicit step count with c = 1 for the vast majority of trials.
#[test]
fn resource_controlled_within_theorem3_budget_on_complete_graph() {
    let n = 100;
    let g = generators::complete(n);
    let m = 1000;
    let tasks = TaskSet::uniform(m);
    let eps = 0.2;
    let cfg = ResourceControlledConfig {
        threshold: ThresholdPolicy::AboveAverage { epsilon: eps },
        ..Default::default()
    };

    let p = TransitionMatrix::build(&g, WalkKind::MaxDegree);
    let gap = spectral::spectral_gap_power(&p, &g, 1e-10, 100_000);
    let tau = mixing::lemma2_mixing_time(n, &gap).unwrap() as f64;
    let budget = drift::theorem3_steps(1.0, eps, tau, m);

    let rounds = harness::run_trials(50, 31337, |s| {
        let mut rng = SmallRng::seed_from_u64(s);
        run_resource_controlled(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng).rounds as f64
    });
    let s = Summary::of(&rounds);
    assert!(
        s.max <= budget,
        "worst measured rounds {} exceeded the Theorem-3 budget {budget:.0}",
        s.max
    );
    assert!(s.mean >= 1.0);
}

/// Theorem 7 numerically: tight-threshold balancing on the lollipop stays
/// below the explicit drift bound 8·H(G)·(1 + ln W).
#[test]
fn resource_controlled_within_theorem7_budget_on_lollipop() {
    let n = 24;
    let k = 2;
    let g = generators::lollipop(n, k).unwrap();
    let m = n * 6;
    let tasks = TaskSet::uniform(m);
    let cfg = ResourceControlledConfig {
        threshold: ThresholdPolicy::TightResource,
        ..Default::default()
    };

    let p = TransitionMatrix::build(&g, WalkKind::MaxDegree);
    let h = hitting::max_hitting_time_exact(&p);
    let budget = drift::theorem7_bound(h, tasks.total_weight());

    let rounds = harness::run_trials(30, 99, |s| {
        let mut rng = SmallRng::seed_from_u64(s);
        run_resource_controlled(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng).rounds as f64
    });
    let s = Summary::of(&rounds);
    assert!(
        s.max <= budget,
        "worst measured rounds {} exceeded the Theorem-7 budget {budget:.0}",
        s.max
    );
}

/// The weighted user-controlled protocol shows the paper's headline
/// `w_max/w_min` scaling: doubling the heavy weight increases the mean
/// balancing time, and the time stays below the Theorem-11 bound.
#[test]
fn user_controlled_heterogeneity_scaling() {
    let n = 200;
    let m = 1000;
    let cfg = UserControlledConfig::default();
    let mean_rounds = |w_max: f64, seed: u64| -> f64 {
        let spec = WeightSpec::figure2(m, w_max);
        let rounds = harness::run_trials(40, seed, |s| {
            let mut rng = SmallRng::seed_from_u64(s);
            let tasks = spec.generate(&mut rng);
            run_user_controlled(n, &tasks, Placement::AllOnOne(0), &cfg, &mut rng).rounds as f64
        });
        Summary::of(&rounds).mean
    };
    let r1 = mean_rounds(1.0, 1);
    let r64 = mean_rounds(64.0, 2);
    let r256 = mean_rounds(256.0, 3);
    assert!(r64 > r1, "w_max=64 ({r64}) should be slower than uniform ({r1})");
    assert!(r256 > r64, "w_max=256 ({r256}) should be slower than w_max=64 ({r64})");
    assert!(r256 <= drift::theorem11_bound(0.2, 1.0, 256.0, 1.0, m));
}

/// Resource-controlled balancing time is nearly weight-independent
/// (Theorem 3's bound has no w_max factor) — contrast with the
/// user-controlled protocol where heterogeneity bites.
#[test]
fn resource_controlled_nearly_weight_independent() {
    let g = generators::complete(200);
    let m = 1000;
    let cfg = ResourceControlledConfig::default();
    let mean_rounds = |spec: WeightSpec, seed: u64| -> f64 {
        let rounds = harness::run_trials(40, seed, |s| {
            let mut rng = SmallRng::seed_from_u64(s);
            let tasks = spec.generate(&mut rng);
            run_resource_controlled(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng).rounds
                as f64
        });
        Summary::of(&rounds).mean
    };
    let uniform = mean_rounds(WeightSpec::Uniform { m }, 10);
    let heavy = mean_rounds(WeightSpec::figure2(m, 64.0), 11);
    // Within a small constant factor — not the ~linear blow-up of the
    // user-controlled protocol.
    assert!(
        heavy < 3.0 * uniform + 5.0,
        "resource-controlled should not scale with w_max: uniform {uniform}, heavy {heavy}"
    );
}

/// Both protocols agree with the centralized first-fit baseline on
/// feasibility: the decentralized final loads satisfy the same threshold
/// the proper assignment guarantees.
#[test]
fn decentralized_outcomes_match_centralized_feasibility() {
    let n = 50;
    let mut rng = SmallRng::seed_from_u64(4);
    let tasks = WeightSpec::ParetoTruncated { m: 500, alpha: 1.5, cap: 20.0 }.generate(&mut rng);

    // Centralized: first fit is proper (max load <= W/n + w_max).
    let assignment = tlb_core::assignment::first_fit(&tasks, n);
    assert!(tlb_core::assignment::is_proper(&tasks, &assignment, n));

    // Decentralized user-controlled with the tight threshold reaches a
    // state at most w_max above the proper bound guarantee.
    let cfg = UserControlledConfig { threshold: ThresholdPolicy::Tight, ..Default::default() };
    let out = run_user_controlled(n, &tasks, Placement::AllOnOne(0), &cfg, &mut rng);
    assert!(out.balanced());
    let proper_bound = tasks.total_weight() / n as f64 + tasks.w_max();
    assert!(out.final_max_load <= proper_bound + 1e-9);
}

/// Seed determinism across the whole stack: graph generation, workload
/// generation, and both protocol runs reproduce bit-identically.
#[test]
fn end_to_end_determinism() {
    let run = |seed: u64| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::random_regular(40, 4, &mut rng).unwrap();
        let tasks = WeightSpec::Exponential { m: 300, mean: 2.5 }.generate(&mut rng);
        let r = run_resource_controlled(
            &g,
            &tasks,
            Placement::UniformRandom,
            &ResourceControlledConfig::default(),
            &mut rng,
        );
        let u = run_user_controlled(
            40,
            &tasks,
            Placement::UniformRandom,
            &UserControlledConfig::default(),
            &mut rng,
        );
        (r.rounds, r.migrations, u.rounds, u.migrations, r.final_max_load, u.final_max_load)
    };
    assert_eq!(run(12345), run(12345));
    assert_ne!(run(12345), run(54321));
}
