//! Cross-crate integration: the walk-theory substrate against closed forms
//! and against itself (spectral vs empirical, exact vs Monte Carlo) on the
//! generated families.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_graphs::generators::{self, Family};
use tlb_walks::{hitting, mixing, spectral, TransitionMatrix, WalkKind};

/// The two spectral engines agree on every Table-1 family at small size.
#[test]
fn power_iteration_agrees_with_jacobi_on_all_families() {
    for family in Family::ALL {
        let (g, kind) = tlb_experiments::figures::table1::build_family(family, 48, 7);
        let p = TransitionMatrix::build(&g, kind);
        let pw = spectral::spectral_gap_power(&p, &g, 1e-12, 50_000);
        let jc = spectral::spectral_gap_jacobi(&p, &g);
        assert!(
            (pw.lambda2_abs - jc.lambda2_abs).abs() < 1e-5,
            "{}: power {} vs jacobi {}",
            family.name(),
            pw.lambda2_abs,
            jc.lambda2_abs
        );
    }
}

/// Lemma 2 is honored empirically: after the analytic mixing time, the
/// worst-start TV distance is within the n^{-3} guarantee (we check the
/// much weaker 1/4 to keep the test cheap and robust).
#[test]
fn analytic_mixing_time_suffices_for_tv_quarter() {
    for family in Family::ALL {
        let (g, kind) = tlb_experiments::figures::table1::build_family(family, 36, 3);
        let p = TransitionMatrix::build(&g, kind);
        let tau = mixing::mixing_time(&p, &g).expect("aperiodic by construction") as usize;
        let t_emp = mixing::tv_mixing_time(&p, &g, 0.25, tau + 1)
            .unwrap_or_else(|| panic!("{} did not reach TV 1/4 by tau", family.name()));
        assert!(t_emp <= tau, "{}: empirical {} > analytic {}", family.name(), t_emp, tau);
    }
}

/// Monte-Carlo hitting estimates track the exact fundamental-matrix values
/// on irregular graphs (star: the worst pair is leaf -> other leaf).
#[test]
fn monte_carlo_hitting_tracks_exact_on_lollipop() {
    let g = generators::lollipop(16, 3).unwrap();
    let p = TransitionMatrix::build(&g, WalkKind::MaxDegree);
    let exact = hitting::max_hitting_time_exact(&p);
    let mc = hitting::max_hitting_time_mc(&g, WalkKind::MaxDegree, 12, 1500, 1_000_000, 13);
    assert!((mc - exact).abs() / exact < 0.2, "MC {mc} vs exact {exact} disagree by more than 20%");
}

/// Hitting time Θ(n²/k) for the lollipop: halving slope in log-log between
/// consecutive k values is ~-1.
#[test]
fn lollipop_hitting_scales_inverse_in_k() {
    let n = 32;
    let hs: Vec<f64> = [1usize, 2, 4, 8]
        .iter()
        .map(|&k| {
            let g = generators::lollipop(n, k).unwrap();
            let p = TransitionMatrix::build(&g, WalkKind::MaxDegree);
            hitting::max_hitting_time_exact(&p)
        })
        .collect();
    for w in hs.windows(2) {
        let ratio = w[0] / w[1];
        assert!(
            (1.4..=2.8).contains(&ratio),
            "doubling k should roughly halve H: ratio {ratio}, series {hs:?}"
        );
    }
}

/// The complete graph's walk quantities match closed forms end-to-end
/// through the public API (gap 1 − 1/(n−1), H = n − 1, τ_TV ≈ 1).
#[test]
fn complete_graph_closed_forms() {
    let n = 64;
    let g = generators::complete(n);
    let p = TransitionMatrix::build(&g, WalkKind::MaxDegree);
    let gap = spectral::spectral_gap_power(&p, &g, 1e-12, 50_000);
    assert!((gap.gap - (1.0 - 1.0 / (n as f64 - 1.0))).abs() < 1e-8);
    assert!((hitting::max_hitting_time_exact(&p) - (n as f64 - 1.0)).abs() < 1e-6);
    assert!(mixing::tv_mixing_time(&p, &g, 0.25, 10).unwrap() <= 2);
}

/// Hypercube lazy-walk spectral gap matches the closed form (1 − 1/d)/1
/// subdominant modulus — i.e. gap = 1/d — and the hitting time is Θ(n).
#[test]
fn hypercube_closed_forms() {
    let dim = 6u32;
    let g = generators::hypercube(dim);
    let p = TransitionMatrix::build(&g, WalkKind::Lazy);
    let gap = spectral::spectral_gap_jacobi(&p, &g);
    assert!((gap.gap - 1.0 / dim as f64).abs() < 1e-8, "gap {}", gap.gap);
    let h = hitting::max_hitting_time_exact(&p);
    let n = g.num_nodes() as f64;
    // Lazy walk doubles the simple walk's hitting time; H_simple ~ n for
    // the hypercube's antipodal pair, so expect ~2n within a factor.
    assert!(h > n && h < 6.0 * n, "hypercube H = {h}, n = {n}");
}

/// Walk sampler statistics match the matrix semantics on an irregular
/// graph through the full stack (graph -> walker -> empirical frequency
/// vs graph -> matrix -> entry).
#[test]
fn walker_frequencies_match_matrix_on_erdos_renyi() {
    let mut rng = SmallRng::seed_from_u64(21);
    let g = generators::erdos_renyi_connected(30, 0.25, 50, &mut rng).unwrap();
    let p = TransitionMatrix::build(&g, WalkKind::MaxDegree);
    let w = tlb_walks::Walker::new(&g, WalkKind::MaxDegree);
    let v = 5u32;
    let trials = 60_000;
    let mut counts = vec![0usize; 30];
    for _ in 0..trials {
        counts[w.step(v, &mut rng) as usize] += 1;
    }
    for (j, &c) in counts.iter().enumerate() {
        let expected = p.matrix()[(v as usize, j)];
        let freq = c as f64 / trials as f64;
        assert!(
            (freq - expected).abs() < 0.015,
            "step {v}->{j}: frequency {freq} vs matrix {expected}"
        );
    }
}
