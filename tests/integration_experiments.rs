//! Cross-crate integration: quick-scale runs of the figure/table drivers,
//! asserting the *shapes* the paper reports (not absolute numbers).

use tlb_experiments::figures::{figure1, figure2, obs8, table1};
use tlb_experiments::stats::linear_fit;

/// Figure-1 shape: balancing time ∝ log m, nearly independent of k.
#[test]
fn figure1_shape_log_m_and_k_independence() {
    let cfg = figure1::Config {
        n: 200,
        ks: vec![1, 20],
        w_totals: vec![2000.0, 4000.0, 6000.0, 8000.0, 10000.0],
        trials: 40,
        ..figure1::Config::default()
    };
    let table = figure1::run(&cfg);
    let fits = figure1::log_fit_per_k(&cfg, &table);
    assert_eq!(fits.len(), 2);
    for (k, slope, r2) in &fits {
        assert!(*slope > 0.0, "k={k}: rounds must grow with log m");
        assert!(*r2 > 0.5, "k={k}: log fit too poor (r^2 = {r2})");
    }
    // k-independence: mean rounds at the largest W differ by < 35% between
    // k = 1 and k = 20 (the paper's curves nearly coincide).
    let at_k = |k: usize| -> f64 {
        table
            .rows
            .iter()
            .filter(|r| r[1] == k.to_string() && r[0] == "10000")
            .map(|r| r[3].parse::<f64>().unwrap())
            .next()
            .unwrap()
    };
    let (a, b) = (at_k(1), at_k(20));
    let rel = (a - b).abs() / a.max(b);
    assert!(rel < 0.35, "k=1 ({a:.1}) vs k=20 ({b:.1}) differ by {:.0}%", rel * 100.0);
}

/// Figure-2 shape: rounds/log m flat in m, increasing (roughly linearly)
/// in w_max.
#[test]
fn figure2_shape_flat_in_m_linear_in_wmax() {
    let cfg = figure2::Config {
        n: 200,
        w_maxes: vec![1.0, 4.0, 16.0, 64.0],
        ms: vec![1000, 2000, 3000, 4000, 5000],
        trials: 40,
        ..figure2::Config::default()
    };
    let table = figure2::run(&cfg);
    let (flatness, (slope, r2)) = figure2::shape_checks(&cfg, &table);
    for (w, ratio) in &flatness {
        assert!(
            *ratio < 2.2,
            "normalized time should be flat-ish in m for w_max={w}: max/min = {ratio}"
        );
    }
    assert!(slope > 0.0, "plateau must grow with w_max");
    assert!(r2 > 0.9, "plateau growth should be close to linear (r^2 = {r2})");
}

/// Table-1 shape: hitting times grow ~linearly in n for complete /
/// expander / ER / hypercube, ~n log n for the grid.
#[test]
fn table1_hitting_time_shapes() {
    let cfg = table1::Config {
        sizes: vec![32, 64, 128],
        exact_hitting_cap: 200,
        mc_trials: 100,
        seed: 5,
    };
    let t = table1::run(&cfg);
    // For each family fit log H ~ a + b log n; complete graph must have
    // b ≈ 1, grid b > 1 (n log n), none should exceed ~1.6.
    use tlb_graphs::generators::Family;
    for family in Family::ALL {
        let mut lx = Vec::new();
        let mut ly = Vec::new();
        for row in &t.rows {
            if row[0] == family.name() {
                lx.push(row[1].parse::<f64>().unwrap().ln());
                ly.push(row[5].parse::<f64>().unwrap().ln());
            }
        }
        let (_, b, _) = linear_fit(&lx, &ly);
        match family {
            Family::Complete => {
                assert!((b - 1.0).abs() < 0.1, "complete-graph H exponent {b}")
            }
            Family::Grid => assert!(b > 1.0, "grid H should be superlinear, exponent {b}"),
            _ => assert!(
                (0.8..=1.6).contains(&b),
                "{} H exponent {b} outside near-linear band",
                family.name()
            ),
        }
    }
}

/// Observation-8 shape: rounds/(H·ln m) stays within a constant band while
/// H itself varies by ~an order of magnitude across k.
#[test]
fn obs8_ratio_stays_bounded() {
    let cfg = obs8::Config { n: 32, ks: vec![1, 4, 16], trials: 25, ..obs8::Config::default() };
    let t = obs8::run(&cfg);
    let hs = t.column_f64("H_exact");
    let ratios = t.column_f64("ratio");
    let h_spread =
        hs.iter().fold(f64::MIN, |a, &b| a.max(b)) / hs.iter().fold(f64::MAX, |a, &b| a.min(b));
    let ratio_spread = ratios.iter().fold(f64::MIN, |a, &b| a.max(b))
        / ratios.iter().fold(f64::MAX, |a, &b| a.min(b));
    assert!(h_spread > 5.0, "H should vary strongly with k (spread {h_spread})");
    assert!(
        ratio_spread < h_spread / 2.0,
        "normalized ratio (spread {ratio_spread:.2}) should collapse relative to H (spread {h_spread:.2})"
    );
}

/// Results directory artifacts round-trip (CSV + JSON written and parse).
#[test]
fn tables_persist_and_reload() {
    let cfg = table1::Config::quick();
    let t = table1::run(&cfg);
    let dir = std::env::temp_dir().join("tlb_integration_results");
    let csv = t.save(&dir).unwrap();
    assert!(csv.exists());
    let json: tlb_experiments::output::Table =
        serde_json::from_str(&std::fs::read_to_string(dir.join("table1.json")).unwrap()).unwrap();
    assert_eq!(json, t);
    let _ = std::fs::remove_dir_all(&dir);
}
