//! Steady-state allocation discipline of the protocol round loops.
//!
//! The steppers promise that a round allocates nothing once the reused
//! buffers (ejection cohort, walk positions, destination words, pending
//! arrivals, per-resource stacks) have grown to the run's working size.
//! This test pins that promise with a counting global allocator: after a
//! warm-up prefix of rounds, every remaining round of the run must
//! perform **zero** heap allocations (and zero reallocations).
//!
//! The file contains exactly one `#[test]` on purpose: the test harness
//! runs tests in one process, and any concurrent test's allocations
//! would pollute the global counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_core::mixed_protocol::{Departure, MixedConfig, MixedStepper};
use tlb_core::prelude::*;
use tlb_core::resource_protocol::ResourceControlledStepper;
use tlb_core::user_protocol::UserControlledStepper;
use tlb_graphs::generators::torus2d;

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Count allocations across `f`.
fn count_allocs<F: FnOnce()>(f: F) -> usize {
    ALLOCS.store(0, Ordering::Relaxed);
    COUNTING.store(true, Ordering::Relaxed);
    f();
    COUNTING.store(false, Ordering::Relaxed);
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn round_loops_allocate_nothing_in_steady_state() {
    // "Steady state" = the round buffers AND the per-resource stacks
    // have all reached their working capacity. On a slow-mixing torus
    // the hotspot's load wave keeps reaching fresh stacks (first pushes
    // grow their Vecs) for a prefix of the run — at these seeds the last
    // allocating round is 41 of 108 (resource-controlled), so a 48-round
    // warm-up leaves a ~60-round tail that must be allocation-free. The
    // runs are seed-deterministic, so these warm-ups are stable.
    const TORUS_WARMUP: usize = 48;

    // Resource-controlled: hotspot drain on a slow-mixing torus (108
    // rounds at this seed). Round 1 grows the cohort buffers to their
    // maximum (everything above the threshold is ejected at once).
    let g = torus2d(8, 8);
    let tasks = TaskSet::new((0..600).map(|i| 1.0 + (i % 4) as f64).collect::<Vec<_>>());
    let cfg = ResourceControlledConfig::default();
    let mut rng = SmallRng::seed_from_u64(42);
    let mut stepper =
        ResourceControlledStepper::new(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng);
    for _ in 0..TORUS_WARMUP {
        stepper.step(&g, &mut rng);
    }
    assert!(!stepper.is_done(), "warm-up must not finish the run (weaken the workload?)");
    let allocs = count_allocs(|| while !stepper.step(&g, &mut rng) {});
    let rounds = stepper.rounds();
    assert!(stepper.is_balanced(), "run must balance");
    assert!(rounds as usize > TORUS_WARMUP + 20, "need a meaningful steady-state tail");
    assert_eq!(allocs, 0, "resource-controlled steady-state rounds allocated ({rounds} rounds)");

    // User-controlled: same discipline for the Bernoulli departure loop
    // and the bulk destination words. A damped α stretches the run to 46
    // rounds (α = 1 balances in 7 — no tail to measure); stack
    // capacities stop growing at round 32 at this seed, so a 36-round
    // warm-up leaves a 10-round allocation-free tail.
    let mut rng = SmallRng::seed_from_u64(7);
    let ucfg = UserControlledConfig { alpha: 0.25, ..Default::default() };
    let mut stepper =
        UserControlledStepper::new(60, &tasks, Placement::AllOnOne(0), &ucfg, &mut rng);
    // The user stepper ignores its graph parameter (signature parity with
    // the siblings); reuse the torus so the loop allocates nothing new.
    for _ in 0..36 {
        stepper.step(&g, &mut rng);
    }
    assert!(!stepper.is_done(), "warm-up must not finish the run (weaken the workload?)");
    let allocs = count_allocs(|| while !stepper.step(&g, &mut rng) {});
    assert!(stepper.is_balanced());
    assert_eq!(allocs, 0, "user-controlled steady-state rounds allocated");

    // Mixed: batched walk cohort on the torus via AllActive departures
    // (57 rounds at this seed, stack capacities stable from round 42).
    // The Bernoulli mode is deliberately not pinned here: its potential
    // is non-monotone, so stacks keep reaching new high-water marks until
    // nearly the end of the run — growth there is working-set growth, not
    // a buffer-discipline regression.
    let mut rng = SmallRng::seed_from_u64(11);
    let mcfg = MixedConfig { departure: Departure::AllActive, ..Default::default() };
    let mut stepper = MixedStepper::new(&g, &tasks, Placement::AllOnOne(0), &mcfg, &mut rng);
    for _ in 0..TORUS_WARMUP {
        stepper.step(&g, &mut rng);
    }
    assert!(!stepper.is_done(), "warm-up must not finish the run (weaken the workload?)");
    let allocs = count_allocs(|| while !stepper.step(&g, &mut rng) {});
    assert!(stepper.is_balanced());
    assert_eq!(allocs, 0, "mixed steady-state rounds allocated");
}
