//! Cross-crate integration for the Section-8 extensions and supporting
//! tooling: mixed protocol vs walk theory, non-uniform thresholds on
//! heterogeneous systems, graph I/O + walk pipeline, trace capture around
//! a full protocol run.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_core::mixed_protocol::{run_mixed, MixedConfig};
use tlb_core::nonuniform::{run_user_controlled_nonuniform, NonUniformConfig, ThresholdVector};
use tlb_core::placement::Placement;
use tlb_core::task::TaskSet;
use tlb_core::weights::WeightSpec;
use tlb_experiments::harness;
use tlb_experiments::stats::Summary;
use tlb_graphs::generators;
use tlb_walks::{mixing, spectral, TransitionMatrix, WalkKind};

/// The mixed protocol's balancing time scales with the graph's mixing
/// time, like the resource protocol's (Theorem-3 shape carries over).
#[test]
fn mixed_protocol_tracks_mixing_time() {
    let mean_rounds = |g: &tlb_graphs::Graph, kind: WalkKind, seed: u64| -> f64 {
        let m = g.num_nodes() * 8;
        let tasks = TaskSet::uniform(m);
        let cfg = MixedConfig { walk: kind, ..Default::default() };
        let rounds = harness::run_trials(25, seed, |s| {
            let mut rng = SmallRng::seed_from_u64(s);
            run_mixed(g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng).rounds as f64
        });
        Summary::of(&rounds).mean
    };
    let tau_of = |g: &tlb_graphs::Graph, kind: WalkKind| -> f64 {
        let p = TransitionMatrix::build(g, kind);
        let gap = spectral::spectral_gap_power(&p, g, 1e-10, 100_000);
        mixing::lemma2_mixing_time(g.num_nodes(), &gap).unwrap() as f64
    };

    let fast = generators::complete(64);
    let slow = generators::torus2d(8, 8);
    let r_fast = mean_rounds(&fast, WalkKind::MaxDegree, 1);
    let r_slow = mean_rounds(&slow, WalkKind::Lazy, 2);
    let t_fast = tau_of(&fast, WalkKind::MaxDegree);
    let t_slow = tau_of(&slow, WalkKind::Lazy);
    assert!(t_slow > 5.0 * t_fast, "torus should mix much slower: {t_fast} vs {t_slow}");
    assert!(
        r_slow > 2.0 * r_fast,
        "mixed protocol must feel the mixing time: K_64 {r_fast} vs torus {r_slow}"
    );
}

/// Non-uniform speed-proportional thresholds put proportionally more load
/// on faster machines while respecting every local threshold.
#[test]
fn nonuniform_thresholds_load_fast_machines_more() {
    let mut speeds = vec![4.0; 5];
    speeds.extend(std::iter::repeat_n(1.0, 45));
    let mut rng = SmallRng::seed_from_u64(3);
    let tasks = WeightSpec::Exponential { m: 2000, mean: 2.0 }.generate(&mut rng);
    let tv = ThresholdVector::speed_proportional(&speeds, tasks.total_weight(), tasks.w_max(), 0.1);
    let out = run_user_controlled_nonuniform(
        &tasks,
        &tv,
        Placement::AllOnOne(10),
        &NonUniformConfig::default(),
        &mut rng,
    );
    assert!(out.balanced());
    for (r, &l) in out.final_loads.iter().enumerate() {
        assert!(l <= tv.of(r) + 1e-9, "resource {r} over its local threshold");
    }
    // Fast machines can (and statistically will) end with much higher
    // load than the mean slow machine once the hotspot drains through
    // them.
    let fast_mean: f64 = out.final_loads[..5].iter().sum::<f64>() / 5.0;
    let slow_mean: f64 = out.final_loads[5..].iter().sum::<f64>() / 45.0;
    assert!(
        fast_mean > slow_mean,
        "fast machines should carry more: fast {fast_mean:.1} vs slow {slow_mean:.1}"
    );
}

/// Edge-list I/O composes with the whole pipeline: serialize a sampled
/// expander, parse it back, and get identical walk quantities.
#[test]
fn graph_io_preserves_walk_quantities() {
    let mut rng = SmallRng::seed_from_u64(5);
    let g = generators::random_regular(40, 3, &mut rng).unwrap();
    let text = tlb_graphs::io::to_edge_list(&g);
    let back = tlb_graphs::io::from_edge_list(&text).unwrap();
    assert_eq!(back, g);
    let p1 = TransitionMatrix::build(&g, WalkKind::MaxDegree);
    let p2 = TransitionMatrix::build(&back, WalkKind::MaxDegree);
    let g1 = spectral::spectral_gap_power(&p1, &g, 1e-12, 50_000);
    let g2 = spectral::spectral_gap_power(&p2, &back, 1e-12, 50_000);
    assert!((g1.gap - g2.gap).abs() < 1e-12);
}

/// Trace capture around a manual protocol loop: records are consistent
/// with the outcome of the library loop under the same seed.
#[test]
fn trace_matches_outcome_aggregates() {
    use tlb_core::threshold::ThresholdPolicy;
    use tlb_core::user_protocol::{run_user_controlled, UserControlledConfig};

    let n = 30;
    let tasks = TaskSet::uniform(300);
    let cfg = UserControlledConfig {
        threshold: ThresholdPolicy::AboveAverage { epsilon: 0.2 },
        track_potential: true,
        ..Default::default()
    };
    let mut rng = SmallRng::seed_from_u64(11);
    let out = run_user_controlled(n, &tasks, Placement::AllOnOne(0), &cfg, &mut rng);
    assert!(out.balanced());
    // The potential series the outcome carries is exactly what a trace
    // would record round by round: starts positive, ends at zero, has
    // rounds+1 entries.
    assert_eq!(out.potential_series.len() as u64, out.rounds + 1);
    assert!(out.potential_series[0] > 0.0);
    assert_eq!(*out.potential_series.last().unwrap(), 0.0);
}

/// Streaming harness end-to-end over a real protocol workload: early
/// abort after the first few completions does not deadlock the pool.
#[test]
fn streaming_harness_over_protocol_trials() {
    let tasks = TaskSet::uniform(200);
    let first = harness::run_trials_streaming(
        64,
        9,
        |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            tlb_core::user_protocol::run_user_controlled(
                20,
                &tasks,
                Placement::AllOnOne(0),
                &tlb_core::user_protocol::UserControlledConfig::default(),
                &mut rng,
            )
            .rounds
        },
        |rx| rx.iter().take(8).map(|(_, r)| r).collect::<Vec<_>>(),
    );
    assert_eq!(first.len(), 8);
    assert!(first.iter().all(|&r| r >= 1));
}
