//! The resource-controlled protocol (paper Algorithm 5.1), for arbitrary
//! graphs.
//!
//! Each round, every overloaded resource (`x_r > T`) removes every task
//! that is above or cutting the threshold (`I_a ∪ I_c`) and sends each of
//! them to a neighbour sampled from the max-degree random-walk matrix `P`.
//! Arrivals stack in arbitrary order; a task whose height plus weight stays
//! within `T` is *accepted* and never moves again. The balancing time is
//! the first round after which every load is at most `T`.
//!
//! Analysis reproduced by the experiments:
//! * Theorem 3 — above-average thresholds: `O(τ(G)·log m)` rounds w.h.p.
//! * Theorem 7 — tight threshold `W/n + 2w_max`: expected `O(H(G)·ln W)`.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use tlb_graphs::{Graph, NodeId};
use tlb_walks::{WalkKind, Walker};

use crate::placement::Placement;
use crate::potential::{is_balanced, max_load, total_potential};
use crate::stack::ResourceStack;
use crate::task::{TaskId, TaskSet};
use crate::threshold::ThresholdPolicy;

/// Configuration of a resource-controlled run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceControlledConfig {
    /// Threshold policy (the paper analyses above-average and
    /// `TightResource`).
    pub threshold: ThresholdPolicy,
    /// Which walk reallocates tasks. The paper's protocol uses
    /// [`WalkKind::MaxDegree`]; [`WalkKind::Lazy`] is the aperiodicity
    /// ablation for bipartite graphs.
    pub walk: WalkKind,
    /// Safety cap on rounds; a run that hits it reports `completed = false`.
    pub max_rounds: u64,
    /// Record `Φ(t)` after every round (costs one stack scan per resource
    /// per round).
    pub track_potential: bool,
    /// Shuffle the arrival order of migrating tasks each round. The paper
    /// allows arbitrary arrival order; `false` processes arrivals in the
    /// order their source resources were scanned (deterministic), `true`
    /// randomizes — an ablation that should not change the asymptotics.
    pub shuffle_arrivals: bool,
}

impl Default for ResourceControlledConfig {
    fn default() -> Self {
        ResourceControlledConfig {
            threshold: ThresholdPolicy::AboveAverage { epsilon: 0.2 },
            walk: WalkKind::MaxDegree,
            max_rounds: 10_000_000,
            track_potential: false,
            shuffle_arrivals: false,
        }
    }
}

/// Result of a resource-controlled run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceControlledOutcome {
    /// Rounds executed until balance (or until the cap).
    pub rounds: u64,
    /// Whether balance was reached within `max_rounds`.
    pub completed: bool,
    /// Total task migrations (one per task per round moved).
    pub migrations: u64,
    /// The threshold value used.
    pub threshold: f64,
    /// `Φ` after each round, if tracking was enabled (index 0 is the
    /// initial potential).
    pub potential_series: Vec<f64>,
    /// Maximum load at termination.
    pub final_max_load: f64,
    /// Per-resource loads at termination (index = resource id).
    pub final_loads: Vec<f64>,
}

impl ResourceControlledOutcome {
    /// Whether the run ended balanced.
    pub fn balanced(&self) -> bool {
        self.completed
    }
}

/// Run the resource-controlled protocol to completion (or the round cap).
///
/// # Panics
/// If the placement is invalid for `(m, n)` or the graph is empty.
pub fn run_resource_controlled<R: Rng + ?Sized>(
    g: &Graph,
    tasks: &TaskSet,
    placement: Placement,
    cfg: &ResourceControlledConfig,
    rng: &mut R,
) -> ResourceControlledOutcome {
    let n = g.num_nodes();
    assert!(n > 0, "need at least one resource");
    let weights = tasks.weights();
    let threshold = cfg.threshold.value(tasks.total_weight(), n, tasks.w_max());
    let walker = Walker::new(g, cfg.walk);

    let mut stacks: Vec<ResourceStack> = vec![ResourceStack::new(); n];
    for (i, &loc) in placement.materialize(tasks.len(), n, rng).iter().enumerate() {
        stacks[loc as usize].push(i as TaskId, weights[i]);
    }

    let mut potential_series = Vec::new();
    if cfg.track_potential {
        potential_series.push(total_potential(&stacks, threshold, weights));
    }

    let mut migrations = 0u64;
    let mut pending: Vec<(TaskId, NodeId)> = Vec::new();
    // Reused across rounds: the stack drain appends into this buffer
    // instead of allocating a fresh vector per overloaded resource.
    let mut removed: Vec<TaskId> = Vec::new();
    let mut rounds = 0u64;
    let mut completed = is_balanced(&stacks, threshold);

    while !completed && rounds < cfg.max_rounds {
        rounds += 1;
        pending.clear();
        // Removal phase: every overloaded resource ejects I_a ∪ I_c, and
        // each ejected task samples one walk step from its source.
        for r in 0..n as NodeId {
            if stacks[r as usize].is_overloaded(threshold) {
                removed.clear();
                stacks[r as usize].remove_active_into(threshold, weights, &mut removed);
                for &t in &removed {
                    let dest = walker.step(r, rng);
                    pending.push((t, dest));
                }
            }
        }
        if cfg.shuffle_arrivals {
            pending.shuffle(rng);
        }
        // Arrival phase: stack in (possibly shuffled) order; acceptance is
        // implicit in the stack heights.
        migrations += pending.len() as u64;
        for &(t, dest) in &pending {
            stacks[dest as usize].push(t, weights[t as usize]);
        }
        if cfg.track_potential {
            potential_series.push(total_potential(&stacks, threshold, weights));
        }
        completed = is_balanced(&stacks, threshold);
    }

    ResourceControlledOutcome {
        rounds,
        completed,
        migrations,
        threshold,
        potential_series,
        final_max_load: max_load(&stacks),
        final_loads: stacks.iter().map(ResourceStack::load).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tlb_graphs::generators::{complete, cycle, lollipop, torus2d};

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn balanced_start_takes_zero_rounds() {
        let g = complete(4);
        let tasks = TaskSet::uniform(4);
        let out = run_resource_controlled(
            &g,
            &tasks,
            Placement::RoundRobin,
            &ResourceControlledConfig::default(),
            &mut rng(1),
        );
        assert_eq!(out.rounds, 0);
        assert!(out.balanced());
        assert_eq!(out.migrations, 0);
    }

    #[test]
    fn hotspot_on_complete_graph_balances_quickly() {
        let g = complete(50);
        let tasks = TaskSet::uniform(500);
        let out = run_resource_controlled(
            &g,
            &tasks,
            Placement::AllOnOne(0),
            &ResourceControlledConfig::default(),
            &mut rng(2),
        );
        assert!(out.balanced());
        // Theorem 3 on K_n: O(log m) rounds. Generous constant check.
        assert!(out.rounds <= 200, "took {} rounds", out.rounds);
        assert!(out.final_max_load <= out.threshold);
    }

    #[test]
    fn weighted_tasks_balance_on_complete_graph() {
        let g = complete(20);
        let mut w = vec![1.0; 200];
        for wi in w.iter_mut().take(10) {
            *wi = 25.0;
        }
        let tasks = TaskSet::new(w);
        let out = run_resource_controlled(
            &g,
            &tasks,
            Placement::AllOnOne(5),
            &ResourceControlledConfig::default(),
            &mut rng(3),
        );
        assert!(out.balanced());
        assert!(out.final_max_load <= out.threshold);
    }

    #[test]
    fn tight_threshold_on_lollipop_completes() {
        let g = lollipop(12, 2).unwrap();
        let tasks = TaskSet::uniform(60);
        let cfg = ResourceControlledConfig {
            threshold: ThresholdPolicy::TightResource,
            ..Default::default()
        };
        let out = run_resource_controlled(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng(4));
        assert!(out.balanced());
        assert!(out.final_max_load <= out.threshold);
    }

    #[test]
    fn potential_series_is_monotone_nonincreasing() {
        // Observation 4: the resource-controlled potential never increases.
        let g = torus2d(5, 5);
        let tasks =
            TaskSet::new((0..120).map(|i| if i % 11 == 0 { 7.0 } else { 1.0 }).collect::<Vec<_>>());
        let cfg = ResourceControlledConfig { track_potential: true, ..Default::default() };
        let out = run_resource_controlled(&g, &tasks, Placement::AllOnOne(12), &cfg, &mut rng(5));
        assert!(out.balanced());
        for w in out.potential_series.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "potential increased: {} -> {}", w[0], w[1]);
        }
        assert_eq!(*out.potential_series.last().unwrap(), 0.0);
    }

    #[test]
    fn round_cap_reports_incomplete() {
        let g = cycle(64); // slow mixing; tiny cap
        let tasks = TaskSet::uniform(640);
        let cfg = ResourceControlledConfig { max_rounds: 2, ..Default::default() };
        let out = run_resource_controlled(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng(6));
        assert!(!out.balanced());
        assert_eq!(out.rounds, 2);
    }

    #[test]
    fn shuffled_arrivals_still_balance() {
        let g = complete(16);
        let tasks = TaskSet::new((0..160).map(|i| 1.0 + (i % 5) as f64).collect::<Vec<_>>());
        let cfg = ResourceControlledConfig { shuffle_arrivals: true, ..Default::default() };
        let out = run_resource_controlled(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng(7));
        assert!(out.balanced());
    }

    #[test]
    fn lazy_walk_balances_on_bipartite_graph() {
        // Even cycle is bipartite: the non-lazy walk is periodic, but the
        // protocol still terminates because acceptance absorbs tasks; the
        // lazy ablation must too.
        let g = cycle(16);
        let tasks = TaskSet::uniform(64);
        for walk in [WalkKind::MaxDegree, WalkKind::Lazy] {
            let cfg = ResourceControlledConfig { walk, ..Default::default() };
            let out =
                run_resource_controlled(&g, &tasks, Placement::AllOnOne(3), &cfg, &mut rng(8));
            assert!(out.balanced(), "walk {walk:?} failed");
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let g = complete(10);
        let tasks = TaskSet::uniform(100);
        let cfg = ResourceControlledConfig::default();
        let a = run_resource_controlled(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng(42));
        let b = run_resource_controlled(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng(42));
        assert_eq!(a, b);
    }

    #[test]
    fn single_resource_graph_with_feasible_threshold() {
        // n = 1: everything is on the only node; threshold >= W + wmax, so
        // the system is balanced from the start.
        let g = complete(1);
        let tasks = TaskSet::uniform(5);
        let out = run_resource_controlled(
            &g,
            &tasks,
            Placement::AllOnOne(0),
            &ResourceControlledConfig::default(),
            &mut rng(9),
        );
        assert!(out.balanced());
        assert_eq!(out.rounds, 0);
    }
}
