//! The resource-controlled protocol (paper Algorithm 5.1), for arbitrary
//! graphs.
//!
//! Each round, every overloaded resource (`x_r > T`) removes every task
//! that is above or cutting the threshold (`I_a ∪ I_c`) and sends each of
//! them to a neighbour sampled from the max-degree random-walk matrix `P`.
//! Arrivals stack in arbitrary order; a task whose height plus weight stays
//! within `T` is *accepted* and never moves again. The balancing time is
//! the first round after which every load is at most `T`.
//!
//! The protocol is exposed at two levels:
//!
//! * [`run_resource_controlled`] — the one-shot entry point: run until
//!   balanced (or the round cap) and report an outcome, exactly as the
//!   paper's experiments use it;
//! * [`ResourceControlledStepper`] — the resumable engine underneath it
//!   (`new → step → into_outcome`). The online simulation (`tlb-sim`)
//!   drives it one round at a time between arrival/churn events via
//!   [`ResourceControlledStepper::from_parts`].
//!
//! Analysis reproduced by the experiments:
//! * Theorem 3 — above-average thresholds: `O(τ(G)·log m)` rounds w.h.p.
//! * Theorem 7 — tight threshold `W/n + 2w_max`: expected `O(H(G)·ln W)`.

use rand::Rng;
use serde::{Deserialize, Serialize};
use tlb_graphs::{Graph, NodeId};
use tlb_walks::WalkKind;

use crate::placement::Placement;
use crate::protocol::{EngineStats, ProtocolOutcome, RoundEngine};
use crate::stack::ResourceStack;
use crate::task::{TaskId, TaskSet};
use crate::threshold::ThresholdPolicy;

/// Configuration of a resource-controlled run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceControlledConfig {
    /// Threshold policy (the paper analyses above-average and
    /// `TightResource`).
    pub threshold: ThresholdPolicy,
    /// Which walk reallocates tasks. The paper's protocol uses
    /// [`WalkKind::MaxDegree`]; [`WalkKind::Lazy`] is the aperiodicity
    /// ablation for bipartite graphs.
    pub walk: WalkKind,
    /// Safety cap on rounds; a run that hits it reports `completed = false`.
    pub max_rounds: u64,
    /// Record `Φ(t)` after every round (costs one stack scan per resource
    /// per round).
    pub track_potential: bool,
    /// Shuffle the arrival order of migrating tasks each round. The paper
    /// allows arbitrary arrival order; `false` processes arrivals in the
    /// order their source resources were scanned (deterministic), `true`
    /// randomizes — an ablation that should not change the asymptotics.
    pub shuffle_arrivals: bool,
    /// Record a full [`RoundTrace`] (potential, overload count, max load,
    /// migrations per round) in the outcome. Costs one stack scan per
    /// resource per round, like `track_potential`.
    pub record_trace: bool,
}

impl Default for ResourceControlledConfig {
    fn default() -> Self {
        ResourceControlledConfig {
            threshold: ThresholdPolicy::AboveAverage { epsilon: 0.2 },
            walk: WalkKind::MaxDegree,
            max_rounds: 10_000_000,
            track_potential: false,
            shuffle_arrivals: false,
            record_trace: false,
        }
    }
}

/// Result of a resource-controlled run (an alias of the unified
/// [`ProtocolOutcome`]).
pub type ResourceControlledOutcome = ProtocolOutcome;

/// Resumable engine of the resource-controlled protocol: one [`step`] call
/// is one round of Algorithm 5.1. The shared [`RoundEngine`] owns the
/// per-resource stacks and the reused round buffers; the graph is passed
/// into each step, so the caller may swap it between rounds (the online
/// simulation compacts its churned overlay back to CSR and keeps
/// stepping).
///
/// [`step`]: ResourceControlledStepper::step
#[derive(Debug, Clone)]
pub struct ResourceControlledStepper {
    cfg: ResourceControlledConfig,
    eng: RoundEngine,
}

impl ResourceControlledStepper {
    /// Set up a run: materialize the placement (consuming RNG exactly as
    /// the one-shot entry point always has) and take the initial
    /// snapshots.
    ///
    /// # Panics
    /// If the placement is invalid for `(m, n)`, the graph is empty, or
    /// `cfg.walk` is [`WalkKind::Simple`] on a graph with an isolated
    /// node (the simple walk is undefined there — rejected here, at
    /// construction, instead of via an `assert!` deep in the round loop).
    pub fn new<R: Rng + ?Sized>(
        g: &Graph,
        tasks: &TaskSet,
        placement: Placement,
        cfg: &ResourceControlledConfig,
        rng: &mut R,
    ) -> Self {
        let n = g.num_nodes();
        assert!(n > 0, "need at least one resource");
        assert!(
            cfg.walk != WalkKind::Simple || g.min_degree() > 0,
            "WalkKind::Simple is undefined on isolated nodes; this graph has one"
        );
        let weights = tasks.weights().to_vec();
        let threshold = cfg.threshold.value(tasks.total_weight(), n, tasks.w_max());

        let mut stacks: Vec<ResourceStack> = vec![ResourceStack::new(); n];
        for (i, &loc) in placement.materialize(tasks.len(), n, rng).iter().enumerate() {
            stacks[loc as usize].push(i as TaskId, weights[i]);
        }

        Self::from_parts(stacks, weights, threshold, cfg.clone())
    }

    /// Resume from an existing stack configuration — the entry point of
    /// the online simulation, which mutates the stacks between rebalancing
    /// passes (arrivals, departures, resource churn) and hands them back.
    /// Consumes no RNG. The round/migration counters start at zero.
    ///
    /// `threshold` is taken as given rather than derived from
    /// `cfg.threshold`: a dynamic caller computes it from the *live*
    /// population, which a weight vector with freed slots cannot express.
    ///
    /// # Panics
    /// If the stack vector is empty.
    pub fn from_parts(
        stacks: Vec<ResourceStack>,
        weights: Vec<f64>,
        threshold: f64,
        cfg: ResourceControlledConfig,
    ) -> Self {
        let eng = RoundEngine::new(
            stacks,
            weights,
            threshold,
            cfg.max_rounds,
            cfg.track_potential,
            cfg.record_trace,
        );
        ResourceControlledStepper { cfg, eng }
    }

    /// Whether every load is at most the threshold.
    pub fn is_balanced(&self) -> bool {
        self.eng.is_balanced()
    }

    /// Whether the run is over: balanced, or the round cap was hit.
    pub fn is_done(&self) -> bool {
        self.eng.is_done()
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.eng.rounds()
    }

    /// Migrations performed so far.
    pub fn migrations(&self) -> u64 {
        self.eng.migrations()
    }

    /// The threshold this run balances against.
    pub fn threshold(&self) -> f64 {
        self.eng.threshold()
    }

    /// The per-resource stacks (index = resource id).
    pub fn stacks(&self) -> &[ResourceStack] {
        &self.eng.stacks
    }

    /// Weight per task id (freed slots of dynamic callers included).
    pub fn weights(&self) -> &[f64] {
        &self.eng.weights
    }

    /// Largest stacked task weight (0 when empty). Algorithm 5.1 never
    /// reads `w_max`, so the checkpoint surface recomputes it over the
    /// live population instead of storing a dead value.
    pub fn w_max(&self) -> f64 {
        crate::protocol::live_w_max(self.stacks(), self.weights())
    }

    /// Deterministic observability counters accumulated so far.
    pub fn obs_stats(&self) -> EngineStats {
        self.eng.obs_stats()
    }

    /// Execute one round (removal phase, walk steps, arrival phase) unless
    /// the run is already done. Returns [`is_done`](Self::is_done) after
    /// the round.
    pub fn step<R: Rng + ?Sized>(&mut self, g: &Graph, rng: &mut R) -> bool {
        if self.is_done() {
            return true;
        }
        // `new()` already rejects this, but `from_parts` has no graph and
        // the caller may swap in a churned graph between rounds — re-check
        // here (O(1): min_degree is cached) so an isolated node fails fast
        // instead of panicking per-task deep in the batched kernel.
        assert!(
            self.cfg.walk != WalkKind::Simple || g.min_degree() > 0,
            "WalkKind::Simple is undefined on isolated nodes; this graph has one"
        );
        self.eng.begin_round();
        let threshold = self.eng.threshold();
        let eng = &mut self.eng;
        // Removal phase: every overloaded resource ejects I_a ∪ I_c into
        // the round cohort (`cohort[i]` departs from `positions[i]`).
        // Removal consumes no RNG, so collecting the whole round before
        // stepping leaves the draw sequence identical to the old
        // per-resource interleaving.
        for r in 0..eng.stacks.len() as NodeId {
            if eng.stacks[r as usize].is_overloaded(threshold) {
                eng.stacks[r as usize].remove_active_into(threshold, &eng.weights, &mut eng.cohort);
                // One source entry per task ejected by this resource.
                eng.positions.resize(eng.cohort.len(), r);
            }
        }
        // Cache-conscious layout: group the cohort by source degree so
        // the batched kernel's irregular path runs in near-regular
        // bucket runs. Lazy only — its lane words are assigned by cohort
        // index under the re-pinned wide stream; MaxDegree/Simple keep
        // ejection order so their scalar-parity goldens stay
        // byte-identical.
        if self.cfg.walk == WalkKind::Lazy {
            eng.sort_cohort_by_degree(g);
        }
        // Walk phase: the whole cohort takes one batched step.
        eng.walker.step_batch(g, self.cfg.walk, &mut eng.positions, rng);
        eng.note_walk_batch(g, self.cfg.walk);
        eng.pending_tasks.clear();
        eng.pending_tasks.extend_from_slice(&eng.cohort);
        eng.pending_dests.clear();
        eng.pending_dests.extend_from_slice(&eng.positions);
        if self.cfg.shuffle_arrivals {
            // One permutation over both parallel arrays — draws exactly
            // the words the old tuple shuffle drew.
            rand::seq::shuffle_paired(&mut eng.pending_tasks, &mut eng.pending_dests, rng);
        }
        // Arrival phase: stack in (possibly shuffled) order; acceptance is
        // implicit in the stack heights.
        let migrated = eng.pending_tasks.len() as u64;
        for (&t, &dest) in eng.pending_tasks.iter().zip(&eng.pending_dests) {
            eng.stacks[dest as usize].push(t, eng.weights[t as usize]);
        }
        eng.finish_round(migrated)
    }

    /// Step until balanced or the round cap.
    pub fn run<R: Rng + ?Sized>(&mut self, g: &Graph, rng: &mut R) {
        while !self.step(g, rng) {}
    }

    /// Finish: consume the engine into the outcome the one-shot entry
    /// point reports.
    pub fn into_outcome(self) -> ResourceControlledOutcome {
        self.eng.into_outcome()
    }

    /// Hand the stacks and weight vector back to a dynamic caller (the
    /// inverse of [`from_parts`](Self::from_parts)). Read the counters
    /// before calling this.
    pub fn into_parts(self) -> (Vec<ResourceStack>, Vec<f64>) {
        self.eng.into_parts()
    }
}

/// Run the resource-controlled protocol to completion (or the round cap).
///
/// # Panics
/// If the placement is invalid for `(m, n)` or the graph is empty.
pub fn run_resource_controlled<R: Rng + ?Sized>(
    g: &Graph,
    tasks: &TaskSet,
    placement: Placement,
    cfg: &ResourceControlledConfig,
    rng: &mut R,
) -> ResourceControlledOutcome {
    run_resource_controlled_with_stats(g, tasks, placement, cfg, rng).0
}

/// [`run_resource_controlled`] plus the engine's deterministic
/// observability counters — the sweep drivers aggregate these per sweep
/// without holding a stepper across the harness fan-out. Reading the
/// counters touches no RNG, so both entry points consume the identical
/// stream.
pub fn run_resource_controlled_with_stats<R: Rng + ?Sized>(
    g: &Graph,
    tasks: &TaskSet,
    placement: Placement,
    cfg: &ResourceControlledConfig,
    rng: &mut R,
) -> (ResourceControlledOutcome, EngineStats) {
    let mut stepper = ResourceControlledStepper::new(g, tasks, placement, cfg, rng);
    stepper.run(g, rng);
    let stats = stepper.obs_stats();
    (stepper.into_outcome(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tlb_graphs::generators::{complete, cycle, lollipop, torus2d};

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn balanced_start_takes_zero_rounds() {
        let g = complete(4);
        let tasks = TaskSet::uniform(4);
        let out = run_resource_controlled(
            &g,
            &tasks,
            Placement::RoundRobin,
            &ResourceControlledConfig::default(),
            &mut rng(1),
        );
        assert_eq!(out.rounds, 0);
        assert!(out.balanced());
        assert_eq!(out.migrations, 0);
    }

    #[test]
    fn hotspot_on_complete_graph_balances_quickly() {
        let g = complete(50);
        let tasks = TaskSet::uniform(500);
        let out = run_resource_controlled(
            &g,
            &tasks,
            Placement::AllOnOne(0),
            &ResourceControlledConfig::default(),
            &mut rng(2),
        );
        assert!(out.balanced());
        // Theorem 3 on K_n: O(log m) rounds. Generous constant check.
        assert!(out.rounds <= 200, "took {} rounds", out.rounds);
        assert!(out.final_max_load <= out.threshold);
    }

    #[test]
    fn weighted_tasks_balance_on_complete_graph() {
        let g = complete(20);
        let mut w = vec![1.0; 200];
        for wi in w.iter_mut().take(10) {
            *wi = 25.0;
        }
        let tasks = TaskSet::new(w);
        let out = run_resource_controlled(
            &g,
            &tasks,
            Placement::AllOnOne(5),
            &ResourceControlledConfig::default(),
            &mut rng(3),
        );
        assert!(out.balanced());
        assert!(out.final_max_load <= out.threshold);
    }

    #[test]
    fn tight_threshold_on_lollipop_completes() {
        let g = lollipop(12, 2).unwrap();
        let tasks = TaskSet::uniform(60);
        let cfg = ResourceControlledConfig {
            threshold: ThresholdPolicy::TightResource,
            ..Default::default()
        };
        let out = run_resource_controlled(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng(4));
        assert!(out.balanced());
        assert!(out.final_max_load <= out.threshold);
    }

    #[test]
    fn potential_series_is_monotone_nonincreasing() {
        // Observation 4: the resource-controlled potential never increases.
        let g = torus2d(5, 5);
        let tasks =
            TaskSet::new((0..120).map(|i| if i % 11 == 0 { 7.0 } else { 1.0 }).collect::<Vec<_>>());
        let cfg = ResourceControlledConfig { track_potential: true, ..Default::default() };
        let out = run_resource_controlled(&g, &tasks, Placement::AllOnOne(12), &cfg, &mut rng(5));
        assert!(out.balanced());
        for w in out.potential_series.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "potential increased: {} -> {}", w[0], w[1]);
        }
        assert_eq!(*out.potential_series.last().unwrap(), 0.0);
    }

    #[test]
    fn round_cap_reports_incomplete() {
        let g = cycle(64); // slow mixing; tiny cap
        let tasks = TaskSet::uniform(640);
        let cfg = ResourceControlledConfig { max_rounds: 2, ..Default::default() };
        let out = run_resource_controlled(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng(6));
        assert!(!out.balanced());
        assert_eq!(out.rounds, 2);
    }

    #[test]
    fn shuffled_arrivals_still_balance() {
        let g = complete(16);
        let tasks = TaskSet::new((0..160).map(|i| 1.0 + (i % 5) as f64).collect::<Vec<_>>());
        let cfg = ResourceControlledConfig { shuffle_arrivals: true, ..Default::default() };
        let out = run_resource_controlled(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng(7));
        assert!(out.balanced());
    }

    #[test]
    fn lazy_walk_balances_on_bipartite_graph() {
        // Even cycle is bipartite: the non-lazy walk is periodic, but the
        // protocol still terminates because acceptance absorbs tasks; the
        // lazy ablation must too.
        let g = cycle(16);
        let tasks = TaskSet::uniform(64);
        for walk in [WalkKind::MaxDegree, WalkKind::Lazy] {
            let cfg = ResourceControlledConfig { walk, ..Default::default() };
            let out =
                run_resource_controlled(&g, &tasks, Placement::AllOnOne(3), &cfg, &mut rng(8));
            assert!(out.balanced(), "walk {walk:?} failed");
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let g = complete(10);
        let tasks = TaskSet::uniform(100);
        let cfg = ResourceControlledConfig::default();
        let a = run_resource_controlled(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng(42));
        let b = run_resource_controlled(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng(42));
        assert_eq!(a, b);
    }

    #[test]
    fn single_resource_graph_with_feasible_threshold() {
        // n = 1: everything is on the only node; threshold >= W + wmax, so
        // the system is balanced from the start.
        let g = complete(1);
        let tasks = TaskSet::uniform(5);
        let out = run_resource_controlled(
            &g,
            &tasks,
            Placement::AllOnOne(0),
            &ResourceControlledConfig::default(),
            &mut rng(9),
        );
        assert!(out.balanced());
        assert_eq!(out.rounds, 0);
    }

    #[test]
    fn manual_stepping_matches_one_shot_run() {
        // The wrapper is nothing but new → step* → into_outcome, so
        // driving the stepper by hand must reproduce it bit for bit.
        let g = torus2d(5, 5);
        let tasks = TaskSet::new((0..200).map(|i| 1.0 + (i % 3) as f64).collect::<Vec<_>>());
        let cfg = ResourceControlledConfig { track_potential: true, ..Default::default() };
        let one_shot =
            run_resource_controlled(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng(77));

        let mut r = rng(77);
        let mut stepper =
            ResourceControlledStepper::new(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut r);
        let mut manual_rounds = 0;
        while !stepper.step(&g, &mut r) {
            manual_rounds += 1;
        }
        assert_eq!(manual_rounds + 1, one_shot.rounds, "last step returns done");
        assert_eq!(stepper.into_outcome(), one_shot);
    }

    #[test]
    fn stepping_a_done_stepper_is_a_no_op() {
        let g = complete(4);
        let tasks = TaskSet::uniform(4);
        let cfg = ResourceControlledConfig::default();
        let mut r = rng(1);
        let mut s = ResourceControlledStepper::new(&g, &tasks, Placement::RoundRobin, &cfg, &mut r);
        assert!(s.is_done());
        assert!(s.step(&g, &mut r));
        assert!(s.step(&g, &mut r));
        assert_eq!(s.rounds(), 0);
        assert_eq!(s.migrations(), 0);
    }

    #[test]
    fn from_parts_resumes_mid_run() {
        // Split one run into two steppers (handing the stacks across) and
        // check the combined trajectory still balances with the same
        // total-weight invariant.
        let g = torus2d(4, 4);
        let tasks = TaskSet::uniform(160);
        let cfg = ResourceControlledConfig { max_rounds: 3, ..Default::default() };
        let mut r = rng(5);
        let mut first =
            ResourceControlledStepper::new(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut r);
        first.run(&g, &mut r);
        assert!(!first.is_balanced());
        let threshold = first.threshold();
        let first_migrations = first.migrations();
        let (stacks, weights) = first.into_parts();

        let cfg2 = ResourceControlledConfig::default();
        let mut second = ResourceControlledStepper::from_parts(stacks, weights, threshold, cfg2);
        second.run(&g, &mut r);
        assert!(second.is_balanced());
        assert!(second.migrations() > 0 || first_migrations > 0);
        let out = second.into_outcome();
        let total: f64 = out.final_loads.iter().sum();
        assert!((total - tasks.total_weight()).abs() < 1e-6);
    }

    #[test]
    fn trace_recording_matches_outcome_aggregates() {
        let g = torus2d(5, 5);
        let tasks = TaskSet::new((0..150).map(|i| 1.0 + (i % 4) as f64).collect::<Vec<_>>());
        let cfg = ResourceControlledConfig {
            record_trace: true,
            track_potential: true,
            ..Default::default()
        };
        let out = run_resource_controlled(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng(21));
        assert!(out.balanced());
        let trace = out.trace.as_ref().expect("record_trace must produce a trace");
        assert_eq!(trace.rounds() as u64, out.rounds);
        assert_eq!(trace.total_migrations(), out.migrations);
        assert_eq!(trace.potential_series(), out.potential_series);
        assert_eq!(trace.threshold, out.threshold);
        assert_eq!(trace.records.last().unwrap().max_load, out.final_max_load);
    }

    #[test]
    #[should_panic(expected = "undefined on isolated nodes")]
    fn simple_walk_on_graph_with_isolated_node_fails_at_construction() {
        // Node 3 of this graph has no edges: a simple walk from it is
        // undefined. The old behavior was an assert deep inside the round
        // loop, firing only when a task actually reached the node; the
        // invalid config must fail fast instead (tlb-sim already rejects
        // WalkKind::Simple the same way).
        let mut b = tlb_graphs::GraphBuilder::new(4);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        let g = b.build();
        let cfg = ResourceControlledConfig { walk: WalkKind::Simple, ..Default::default() };
        run_resource_controlled(
            &g,
            &TaskSet::uniform(12),
            Placement::AllOnOne(0),
            &cfg,
            &mut rng(1),
        );
    }

    #[test]
    #[should_panic(expected = "undefined on isolated nodes")]
    fn simple_walk_via_from_parts_fails_at_first_step() {
        // from_parts takes no graph, so the construction-time check can't
        // fire; the per-step check must catch it instead (same protection
        // for callers that swap in a churned graph mid-run).
        let mut b = tlb_graphs::GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        let g = b.build();
        let mut stacks = vec![crate::stack::ResourceStack::new(); 3];
        for i in 0..9 {
            stacks[0].push(i, 1.0);
        }
        let cfg = ResourceControlledConfig { walk: WalkKind::Simple, ..Default::default() };
        let mut s = ResourceControlledStepper::from_parts(stacks, vec![1.0; 9], 4.0, cfg);
        s.step(&g, &mut rng(1));
    }

    #[test]
    fn simple_walk_on_connected_graph_is_accepted() {
        let g = complete(8);
        let cfg = ResourceControlledConfig { walk: WalkKind::Simple, ..Default::default() };
        let out = run_resource_controlled(
            &g,
            &TaskSet::uniform(40),
            Placement::AllOnOne(0),
            &cfg,
            &mut rng(2),
        );
        assert!(out.balanced());
    }

    #[test]
    fn trace_recording_does_not_change_the_trajectory() {
        // Trace snapshots consume no randomness, so outcomes must agree.
        let g = torus2d(4, 4);
        let tasks = TaskSet::uniform(100);
        let base = ResourceControlledConfig::default();
        let traced = ResourceControlledConfig { record_trace: true, ..Default::default() };
        let a = run_resource_controlled(&g, &tasks, Placement::AllOnOne(0), &base, &mut rng(3));
        let b = run_resource_controlled(&g, &tasks, Placement::AllOnOne(0), &traced, &mut rng(3));
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.final_loads, b.final_loads);
        assert!(b.trace.is_some() && a.trace.is_none());
    }
}
