//! Threshold policies (paper Section 4).
//!
//! All resources share one threshold. The paper analyses three settings:
//!
//! * **above-average** `T = (1+ε)·W/n + w_max` (Sections 5.1 and 6.1),
//! * **tight, user-controlled** `T = W/n + w_max` (Theorem 12),
//! * **tight, resource-controlled** `T = W/n + 2·w_max` (Section 5.2).
//!
//! A threshold below `W/n + w_max` can be infeasible (no assignment might
//! satisfy it); [`ThresholdPolicy::value`] checks this.

use serde::{Deserialize, Serialize};

/// How the global threshold is derived from `(W, n, w_max)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ThresholdPolicy {
    /// `T = (1+ε)·W/n + w_max`, `ε ≥ 0`.
    AboveAverage {
        /// The slack `ε` (the paper's simulations use 0.2).
        epsilon: f64,
    },
    /// `T = W/n + w_max` — the tight threshold of the user-controlled
    /// analysis (Theorem 12). Equals `AboveAverage { epsilon: 0 }`.
    Tight,
    /// `T = W/n + 2·w_max` — the tight threshold of the resource-controlled
    /// analysis (Section 5.2, Theorem 7).
    TightResource,
    /// Externally provided threshold (the paper allows thresholds "provided
    /// externally"); must be at least `W/n + w_max` to be feasible.
    External(
        /// The fixed threshold value.
        f64,
    ),
}

impl ThresholdPolicy {
    /// Compute the threshold value.
    ///
    /// # Panics
    /// If parameters are invalid (`ε < 0`, non-positive inputs) or an
    /// [`ThresholdPolicy::External`] value is below the feasibility floor
    /// `W/n + w_max − 1e-9`.
    pub fn value(&self, total_weight: f64, n: usize, w_max: f64) -> f64 {
        assert!(n > 0, "need at least one resource");
        assert!(total_weight > 0.0 && w_max > 0.0, "weights must be positive");
        let avg = total_weight / n as f64;
        match *self {
            ThresholdPolicy::AboveAverage { epsilon } => {
                assert!(epsilon >= 0.0, "epsilon must be non-negative, got {epsilon}");
                (1.0 + epsilon) * avg + w_max
            }
            ThresholdPolicy::Tight => avg + w_max,
            ThresholdPolicy::TightResource => avg + 2.0 * w_max,
            ThresholdPolicy::External(t) => {
                assert!(
                    t >= avg + w_max - 1e-9,
                    "external threshold {t} below feasibility floor {}",
                    avg + w_max
                );
                t
            }
        }
    }

    /// The ε such that `T = (1+ε)·W/n + w_max`; zero for tight policies.
    /// Used by the analytic bounds (Theorems 3 and 11 need ε).
    pub fn epsilon(&self, total_weight: f64, n: usize, w_max: f64) -> f64 {
        let avg = total_weight / n as f64;
        match *self {
            ThresholdPolicy::AboveAverage { epsilon } => epsilon,
            ThresholdPolicy::Tight => 0.0,
            ThresholdPolicy::TightResource => w_max / avg,
            ThresholdPolicy::External(t) => ((t - w_max) / avg - 1.0).max(0.0),
        }
    }

    /// Short stable label for CSV output.
    pub fn label(&self) -> String {
        match *self {
            ThresholdPolicy::AboveAverage { epsilon } => format!("above-avg(eps={epsilon})"),
            ThresholdPolicy::Tight => "tight".to_string(),
            ThresholdPolicy::TightResource => "tight-resource".to_string(),
            ThresholdPolicy::External(t) => format!("external({t})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn above_average_formula() {
        let t = ThresholdPolicy::AboveAverage { epsilon: 0.2 };
        // W = 1000, n = 10, wmax = 50: T = 1.2*100 + 50 = 170
        assert!((t.value(1000.0, 10, 50.0) - 170.0).abs() < 1e-12);
        assert_eq!(t.epsilon(1000.0, 10, 50.0), 0.2);
    }

    #[test]
    fn tight_formulas() {
        assert!((ThresholdPolicy::Tight.value(1000.0, 10, 50.0) - 150.0).abs() < 1e-12);
        assert!((ThresholdPolicy::TightResource.value(1000.0, 10, 50.0) - 200.0).abs() < 1e-12);
    }

    #[test]
    fn epsilon_zero_matches_tight() {
        let a = ThresholdPolicy::AboveAverage { epsilon: 0.0 };
        assert_eq!(a.value(700.0, 7, 3.0), ThresholdPolicy::Tight.value(700.0, 7, 3.0));
    }

    #[test]
    fn external_accepts_feasible_value() {
        let t = ThresholdPolicy::External(200.0);
        assert_eq!(t.value(1000.0, 10, 50.0), 200.0);
        assert!((t.epsilon(1000.0, 10, 50.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "feasibility floor")]
    fn external_rejects_infeasible_value() {
        ThresholdPolicy::External(100.0).value(1000.0, 10, 50.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_epsilon_rejected() {
        ThresholdPolicy::AboveAverage { epsilon: -0.1 }.value(100.0, 10, 1.0);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = [
            ThresholdPolicy::AboveAverage { epsilon: 0.2 },
            ThresholdPolicy::Tight,
            ThresholdPolicy::TightResource,
            ThresholdPolicy::External(500.0),
        ]
        .iter()
        .map(|p| p.label())
        .collect();
        let set: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(set.len(), labels.len());
    }
}
