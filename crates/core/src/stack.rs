//! Per-resource task stacks with heights (paper Sections 5 and 6).
//!
//! Each resource stores its tasks in a stack; the *height* `h_i` of task
//! `i` is the total weight of tasks below it. Task `i` **cuts** the
//! threshold `T` if `h_i < T < h_i + w_i`; it is **above** if `h_i ≥ T`;
//! otherwise it is **below** (equivalently *accepted*: `h_i + w_i ≤ T`).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::task::TaskId;

/// Classification of one task relative to the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Band {
    /// Entirely below or at the threshold (`h + w ≤ T`) — the set `I_b`.
    Below,
    /// Cutting the threshold (`h < T < h + w`) — the set `I_c`.
    Cutting,
    /// Entirely above (`h ≥ T`) — the set `I_a`.
    Above,
}

/// A resource's stack of task ids with a cached total load.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceStack {
    tasks: Vec<TaskId>,
    load: f64,
}

impl ResourceStack {
    /// Empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total weight `x_r` of the stacked tasks.
    #[inline]
    pub fn load(&self) -> f64 {
        self.load
    }

    /// Number of tasks `b_r`.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the stack holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Stack contents bottom-to-top.
    pub fn tasks(&self) -> &[TaskId] {
        &self.tasks
    }

    /// `x_r > T`?
    #[inline]
    pub fn is_overloaded(&self, threshold: f64) -> bool {
        self.load > threshold
    }

    /// Push a task on top of the stack.
    #[inline]
    pub fn push(&mut self, id: TaskId, weight: f64) {
        self.tasks.push(id);
        self.load += weight;
    }

    /// Height of the task at stack position `pos` (sum of weights below).
    pub fn height_at(&self, pos: usize, weights: &[f64]) -> f64 {
        self.tasks[..pos].iter().map(|&t| weights[t as usize]).sum()
    }

    /// Classify the task at stack position `pos`.
    pub fn band_at(&self, pos: usize, threshold: f64, weights: &[f64]) -> Band {
        let h = self.height_at(pos, weights);
        let w = weights[self.tasks[pos] as usize];
        band(h, w, threshold)
    }

    /// The paper's per-resource potential `φ_r`: total weight of the
    /// cutting task (if any) plus all tasks above the threshold; zero for
    /// non-overloaded resources. Single bottom-to-top scan.
    pub fn phi(&self, threshold: f64, weights: &[f64]) -> f64 {
        if !self.is_overloaded(threshold) {
            return 0.0;
        }
        let mut h = 0.0;
        let mut phi = 0.0;
        for &t in &self.tasks {
            let w = weights[t as usize];
            if h + w > threshold {
                // Cutting or above: counts fully toward φ_r.
                phi += w;
            }
            h += w;
        }
        phi
    }

    /// `ψ_r = ⌈φ_r / w_max⌉` — the minimum number of departures needed to
    /// drop below the threshold (Observation 9).
    pub fn psi(&self, threshold: f64, weights: &[f64], w_max: f64) -> u64 {
        let phi = self.phi(threshold, weights);
        if phi <= 0.0 {
            0
        } else {
            (phi / w_max).ceil() as u64
        }
    }

    /// Remove and return all *active* tasks (`I_a ∪ I_c`: cutting or above
    /// the threshold), keeping the accepted prefix — the removal step of
    /// the resource-controlled protocol (Algorithm 5.1).
    ///
    /// Because heights are cumulative, the active tasks are exactly the
    /// tasks from the first threshold violation upward, so this is a split
    /// of the stack.
    pub fn remove_active(&mut self, threshold: f64, weights: &[f64]) -> Vec<TaskId> {
        let mut out = Vec::new();
        self.remove_active_into(threshold, weights, &mut out);
        out
    }

    /// Allocation-free [`remove_active`](Self::remove_active): appends the
    /// removed tasks to `out` (bottom-to-top) and returns how many were
    /// removed. The protocol inner loops call this once per overloaded
    /// resource per round with a reused buffer, so it must not allocate on
    /// its own. The cached load is reset to the exact accepted-prefix
    /// height, which also clears any accumulated f64 drift.
    pub fn remove_active_into(
        &mut self,
        threshold: f64,
        weights: &[f64],
        out: &mut Vec<TaskId>,
    ) -> usize {
        let mut h = 0.0;
        let mut split = self.tasks.len();
        for (pos, &t) in self.tasks.iter().enumerate() {
            let w = weights[t as usize];
            if h + w > threshold {
                split = pos;
                break;
            }
            h += w;
        }
        let removed = self.tasks.len() - split;
        out.extend_from_slice(&self.tasks[split..]);
        self.tasks.truncate(split);
        self.load = h;
        removed
    }

    /// Independently remove each task with probability `p` (the
    /// user-controlled migration draw); remaining tasks keep their relative
    /// order (the stack compacts and heights are implicitly reassigned).
    /// Returns the migrants bottom-to-top.
    pub fn drain_bernoulli<R: Rng + ?Sized>(
        &mut self,
        p: f64,
        weights: &[f64],
        rng: &mut R,
    ) -> Vec<TaskId> {
        let mut out = Vec::new();
        self.drain_bernoulli_into(p, weights, rng, &mut out);
        out
    }

    /// Allocation-free [`drain_bernoulli`](Self::drain_bernoulli): appends
    /// the migrants to `out` (bottom-to-top) and returns how many were
    /// drawn. The user-controlled inner loop calls this once per
    /// overloaded resource per round with its reused migrant buffer.
    pub fn drain_bernoulli_into<R: Rng + ?Sized>(
        &mut self,
        p: f64,
        weights: &[f64],
        rng: &mut R,
        out: &mut Vec<TaskId>,
    ) -> usize {
        if p <= 0.0 || self.tasks.is_empty() {
            return 0;
        }
        let before = out.len();
        let mut removed_weight = 0.0;
        self.tasks.retain(|&t| {
            if rng.gen_bool(p.min(1.0)) {
                out.push(t);
                removed_weight += weights[t as usize];
                false
            } else {
                true
            }
        });
        self.load -= removed_weight;
        out.len() - before
    }

    /// Recompute the cached load from scratch (guards against f64 drift in
    /// long simulations; called periodically by the protocols).
    pub fn rebuild_load(&mut self, weights: &[f64]) {
        self.load = self.tasks.iter().map(|&t| weights[t as usize]).sum();
    }
}

/// Classify `(height, weight)` against a threshold.
#[inline]
pub fn band(height: f64, weight: f64, threshold: f64) -> Band {
    if height + weight <= threshold {
        Band::Below
    } else if height >= threshold {
        Band::Above
    } else {
        Band::Cutting
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// weights[i] indexed by task id.
    fn stack_of(ids_weights: &[(TaskId, f64)]) -> (ResourceStack, Vec<f64>) {
        let max_id = ids_weights.iter().map(|&(i, _)| i).max().unwrap_or(0);
        let mut weights = vec![1.0; max_id as usize + 1];
        let mut s = ResourceStack::new();
        for &(id, w) in ids_weights {
            weights[id as usize] = w;
            s.push(id, w);
        }
        (s, weights)
    }

    #[test]
    fn load_and_heights() {
        let (s, weights) = stack_of(&[(0, 2.0), (1, 3.0), (2, 1.0)]);
        assert_eq!(s.load(), 6.0);
        assert_eq!(s.num_tasks(), 3);
        assert_eq!(s.height_at(0, &weights), 0.0);
        assert_eq!(s.height_at(1, &weights), 2.0);
        assert_eq!(s.height_at(2, &weights), 5.0);
    }

    #[test]
    fn band_classification() {
        // T = 4: task0 (h=0,w=2) below; task1 (h=2,w=3) cutting (2<4<5);
        // task2 (h=5,w=1) above.
        let (s, weights) = stack_of(&[(0, 2.0), (1, 3.0), (2, 1.0)]);
        assert_eq!(s.band_at(0, 4.0, &weights), Band::Below);
        assert_eq!(s.band_at(1, 4.0, &weights), Band::Cutting);
        assert_eq!(s.band_at(2, 4.0, &weights), Band::Above);
    }

    #[test]
    fn band_boundary_exact_fit_counts_as_below() {
        // h + w == T is accepted ("less than or equal to the threshold").
        assert_eq!(band(1.0, 3.0, 4.0), Band::Below);
        assert_eq!(band(4.0, 1.0, 4.0), Band::Above);
    }

    #[test]
    fn phi_counts_cutting_plus_above() {
        let (s, weights) = stack_of(&[(0, 2.0), (1, 3.0), (2, 1.0)]);
        // T = 4: phi = w1 + w2 = 4
        assert_eq!(s.phi(4.0, &weights), 4.0);
        // Not overloaded => phi = 0
        assert_eq!(s.phi(6.0, &weights), 0.0);
        assert_eq!(s.phi(100.0, &weights), 0.0);
    }

    #[test]
    fn psi_ceiling() {
        let (s, weights) = stack_of(&[(0, 2.0), (1, 3.0), (2, 1.0)]);
        // phi = 4, wmax = 3 -> psi = 2
        assert_eq!(s.psi(4.0, &weights, 3.0), 2);
        assert_eq!(s.psi(4.0, &weights, 4.0), 1);
        assert_eq!(s.psi(6.0, &weights, 3.0), 0);
    }

    #[test]
    fn remove_active_splits_at_first_violation() {
        let (mut s, weights) = stack_of(&[(0, 2.0), (1, 3.0), (2, 1.0)]);
        let removed = s.remove_active(4.0, &weights);
        assert_eq!(removed, vec![1, 2]);
        assert_eq!(s.tasks(), &[0]);
        assert_eq!(s.load(), 2.0);
        // Now under threshold: nothing to remove.
        assert!(s.remove_active(4.0, &weights).is_empty());
    }

    #[test]
    fn remove_active_on_exact_threshold_removes_nothing() {
        let (mut s, weights) = stack_of(&[(0, 2.0), (1, 2.0)]);
        assert!(s.remove_active(4.0, &weights).is_empty());
        assert_eq!(s.num_tasks(), 2);
    }

    #[test]
    fn remove_active_into_reuses_buffer() {
        let (mut a, weights) = stack_of(&[(0, 2.0), (1, 3.0), (2, 1.0)]);
        let mut b = ResourceStack::new();
        b.push(3, 1.0);
        b.push(0, 2.0);
        let mut weights = weights;
        weights.push(1.0); // id 3
        let mut out = Vec::new();
        assert_eq!(a.remove_active_into(4.0, &weights, &mut out), 2);
        // Appends without clearing: a second resource drains into the same
        // buffer behind the first one's migrants.
        assert_eq!(b.remove_active_into(1.0, &weights, &mut out), 1);
        assert_eq!(out, vec![1, 2, 0]);
        assert_eq!(a.load(), 2.0);
        assert_eq!(b.load(), 1.0);
    }

    #[test]
    fn drain_bernoulli_into_appends() {
        let (mut s, weights) = stack_of(&[(0, 2.0), (1, 3.0)]);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut out = vec![9];
        assert_eq!(s.drain_bernoulli_into(1.0, &weights, &mut rng, &mut out), 2);
        assert_eq!(out, vec![9, 0, 1]);
        assert!(s.is_empty());
    }

    #[test]
    fn drain_bernoulli_extremes() {
        let (mut s, weights) = stack_of(&[(0, 2.0), (1, 3.0)]);
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(s.drain_bernoulli(0.0, &weights, &mut rng).is_empty());
        assert_eq!(s.num_tasks(), 2);
        let all = s.drain_bernoulli(1.0, &weights, &mut rng);
        assert_eq!(all, vec![0, 1]);
        assert_eq!(s.load(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn drain_bernoulli_rate_statistics() {
        let mut rng = SmallRng::seed_from_u64(123);
        let trials = 2000;
        let mut total_migrants = 0usize;
        for _ in 0..trials {
            let (mut s, weights) = stack_of(&(0..10).map(|i| (i, 1.0)).collect::<Vec<_>>());
            total_migrants += s.drain_bernoulli(0.3, &weights, &mut rng).len();
        }
        let rate = total_migrants as f64 / (trials * 10) as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn rebuild_load_fixes_drift() {
        let (mut s, weights) = stack_of(&[(0, 0.1), (1, 0.2)]);
        s.rebuild_load(&weights);
        assert!((s.load() - 0.30000000000000004).abs() < 1e-15);
    }

    #[test]
    fn phi_with_single_giant_task() {
        // One task heavier than the threshold: it cuts (h=0 < T < w).
        let (s, weights) = stack_of(&[(0, 10.0)]);
        assert_eq!(s.phi(4.0, &weights), 10.0);
        assert_eq!(s.band_at(0, 4.0, &weights), Band::Cutting);
    }
}
