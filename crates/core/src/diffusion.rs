//! Diffusion-based average-load estimation (paper Section 1, footnote 1).
//!
//! The paper assumes each resource can learn the average load `W/n` (to
//! set its threshold) by simulating *continuous diffusion*: every resource
//! initializes an estimate with its own load and repeatedly averages with
//! its neighbours through the max-degree dynamics
//!
//! ```text
//! e_r(t+1) = e_r(t) + (1/d) · Σ_{u ~ r} (e_u(t) − e_r(t))
//! ```
//!
//! which is exactly `e(t+1) = P·e(t)` for the symmetric max-degree matrix
//! `P`. After mixing-time many steps the estimates concentrate around the
//! true average. This module implements the dynamics, the fixed-step
//! estimator, and a tolerance-driven variant.

use tlb_graphs::Graph;

/// Diffusion dynamics variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffusionKind {
    /// Exactly the paper's `P`: averaging weight `1/d` per edge. On
    /// bipartite *regular* graphs (hypercube, even cycle, grid) this chain
    /// is periodic and never converges pointwise.
    MaxDegree,
    /// Averaging weight `1/(d+1)` per edge (first-order scheme with a
    /// guaranteed self-loop everywhere). Aperiodic — and hence convergent —
    /// on every connected graph; this is what a deployment would run.
    Damped,
}

fn step_with_denominator(g: &Graph, estimates: &[f64], out: &mut [f64], denom: f64) {
    for v in g.nodes() {
        let ev = estimates[v as usize];
        let mut acc = ev;
        for &u in g.neighbors(v) {
            acc += (estimates[u as usize] - ev) / denom;
        }
        out[v as usize] = acc;
    }
}

/// One synchronous diffusion step, computed edge-wise in `O(|E|)` without
/// materializing a matrix.
pub fn diffusion_step(g: &Graph, estimates: &[f64], out: &mut [f64], kind: DiffusionKind) {
    let n = g.num_nodes();
    assert_eq!(estimates.len(), n, "estimate vector length mismatch");
    assert_eq!(out.len(), n, "output vector length mismatch");
    let d = g.max_degree() as f64;
    let denom = match kind {
        DiffusionKind::MaxDegree => d,
        DiffusionKind::Damped => d + 1.0,
    };
    if denom == 0.0 {
        out.copy_from_slice(estimates);
        return;
    }
    step_with_denominator(g, estimates, out, denom);
}

/// Run `steps` diffusion steps from the initial loads; returns the final
/// per-resource estimates.
pub fn estimate_average(
    g: &Graph,
    initial_loads: &[f64],
    steps: usize,
    kind: DiffusionKind,
) -> Vec<f64> {
    let mut cur = initial_loads.to_vec();
    let mut next = vec![0.0; cur.len()];
    for _ in 0..steps {
        diffusion_step(g, &cur, &mut next, kind);
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// Run diffusion until every estimate is within `tol` of the true average
/// (which diffusion conserves), up to `max_steps`. Returns
/// `(estimates, steps_taken)`; `steps_taken == max_steps` may mean the
/// tolerance was not reached (periodic chains on bipartite graphs with
/// [`DiffusionKind::MaxDegree`]).
pub fn estimate_average_to_tolerance(
    g: &Graph,
    initial_loads: &[f64],
    tol: f64,
    max_steps: usize,
    kind: DiffusionKind,
) -> (Vec<f64>, usize) {
    let n = g.num_nodes();
    let avg = initial_loads.iter().sum::<f64>() / n as f64;
    let mut cur = initial_loads.to_vec();
    let mut next = vec![0.0; n];
    for step in 0..max_steps {
        if max_error(&cur, avg) <= tol {
            return (cur, step);
        }
        diffusion_step(g, &cur, &mut next, kind);
        std::mem::swap(&mut cur, &mut next);
    }
    (cur, max_steps)
}

/// Largest absolute deviation of the estimates from the true average.
pub fn max_error(estimates: &[f64], average: f64) -> f64 {
    estimates.iter().map(|e| (e - average).abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlb_graphs::generators::{complete, cycle, grid2d, hypercube, star};

    #[test]
    fn diffusion_conserves_total_mass() {
        let g = grid2d(4, 4);
        let init: Vec<f64> = (0..16).map(|i| (i * i % 7) as f64).collect();
        let total: f64 = init.iter().sum();
        for kind in [DiffusionKind::MaxDegree, DiffusionKind::Damped] {
            let est = estimate_average(&g, &init, 50, kind);
            assert!((est.iter().sum::<f64>() - total).abs() < 1e-9, "{kind:?}");
        }
    }

    #[test]
    fn complete_graph_converges_fast() {
        let n = 32;
        let g = complete(n);
        let mut init = vec![0.0; n];
        init[0] = n as f64; // hotspot: average is 1
        let (est, steps) =
            estimate_average_to_tolerance(&g, &init, 1e-6, 1000, DiffusionKind::MaxDegree);
        assert!(steps <= 20, "complete graph should diffuse in O(1)-ish steps, took {steps}");
        assert!(max_error(&est, 1.0) <= 1e-6);
    }

    #[test]
    fn hypercube_needs_damping_then_converges_fast() {
        // Q_6 is bipartite and regular: the pure max-degree chain is
        // periodic; the damped chain converges in O(log n log log n)-ish
        // steps.
        let g = hypercube(6); // n = 64
        let mut init = vec![0.0; 64];
        init[5] = 64.0;
        let (_, steps_pure) =
            estimate_average_to_tolerance(&g, &init, 1e-3, 300, DiffusionKind::MaxDegree);
        assert_eq!(steps_pure, 300, "periodic chain must not claim convergence");
        let (est, steps) =
            estimate_average_to_tolerance(&g, &init, 1e-3, 10_000, DiffusionKind::Damped);
        assert!(max_error(&est, 1.0) <= 1e-3);
        assert!(steps < 500, "hypercube took {steps} steps");
    }

    #[test]
    fn star_converges_despite_irregularity() {
        let g = star(20);
        let init: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let avg = init.iter().sum::<f64>() / 20.0;
        let (est, _steps) =
            estimate_average_to_tolerance(&g, &init, 1e-6, 100_000, DiffusionKind::MaxDegree);
        assert!(max_error(&est, avg) <= 1e-6);
    }

    #[test]
    fn even_cycle_periodic_odd_cycle_converges() {
        // C_n is 2-regular so pure max-degree diffusion has no damping and
        // is periodic for even n.
        let g = cycle(8);
        let mut init = vec![0.0; 8];
        init[0] = 8.0;
        let (_, steps) =
            estimate_average_to_tolerance(&g, &init, 1e-9, 500, DiffusionKind::MaxDegree);
        assert_eq!(steps, 500, "periodic diffusion must not claim convergence");
        // Damped version converges even on the even cycle.
        let (est_damped, steps_damped) =
            estimate_average_to_tolerance(&g, &init, 1e-3, 100_000, DiffusionKind::Damped);
        assert!(steps_damped < 100_000);
        assert!(max_error(&est_damped, 1.0) <= 1e-3);
        // Odd cycle is aperiodic and converges without damping.
        let g2 = cycle(9);
        let mut init2 = vec![0.0; 9];
        init2[0] = 9.0;
        let (est2, steps2) =
            estimate_average_to_tolerance(&g2, &init2, 1e-3, 100_000, DiffusionKind::MaxDegree);
        assert!(steps2 < 100_000);
        assert!(max_error(&est2, 1.0) <= 1e-3);
    }

    #[test]
    fn edgeless_graph_is_a_fixed_point() {
        let g = tlb_graphs::GraphBuilder::new(3).build();
        let init = vec![1.0, 2.0, 3.0];
        let est = estimate_average(&g, &init, 10, DiffusionKind::MaxDegree);
        assert_eq!(est, init);
    }

    #[test]
    fn single_step_matches_hand_computation() {
        // Path 0-1-2, d = 2. e = [4, 0, 0]:
        // e0' = 4 + (0-4)/2 = 2; e1' = 0 + (4-0)/2 + (0-0)/2 = 2; e2' = 0.
        let g = tlb_graphs::generators::path(3);
        let mut out = vec![0.0; 3];
        diffusion_step(&g, &[4.0, 0.0, 0.0], &mut out, DiffusionKind::MaxDegree);
        assert_eq!(out, vec![2.0, 2.0, 0.0]);
    }
}
