//! The protocol abstraction: one round engine, one stepping contract.
//!
//! The three threshold-rebalancing variants ([`resource_protocol`],
//! [`user_protocol`], [`mixed_protocol`]) share everything about a round
//! except the departure rule and the movement rule: collect a cohort of
//! departing tasks off the overloaded stacks, move the cohort, stack the
//! arrivals, account (migration counter, potential series, trace), check
//! balance. This module owns that shared machinery and the contract the
//! rest of the system programs against:
//!
//! * [`RoundEngine`] — the shared round state every stepper embeds: the
//!   per-resource stacks, weight vector, threshold, cached batched walk
//!   kernel, reused round buffers, and the counters/series/trace. A
//!   variant's `step` is `begin_round → (its departure + movement phases,
//!   touching the engine's public buffers) → finish_round`.
//! * [`ProtocolOutcome`] — the one outcome shape every run reports (the
//!   per-variant outcome names are aliases of it).
//! * [`Protocol`] — the **object-safe** stepping surface
//!   (`step(&Graph, &mut dyn RngCore) -> bool`, `is_done`, `rounds`,
//!   `migrations`, `threshold`, `stacks`, `into_parts`, `into_outcome`),
//!   implemented by all three steppers here and by the baseline adapters
//!   in `tlb-baselines`. Layers that dispatch over protocol variants
//!   (the online simulation, the experiment harness, the
//!   `protocol_matrix` driver) hold an [`AnyStepper`] instead of
//!   re-implementing a per-variant `match`.
//! * [`ProtocolSpec`] — the associated-types half of the contract
//!   (`Config`/`Outcome` plus the constructors), for code generic over a
//!   *statically known* protocol.
//! * [`ProtocolKind`] — the serializable "which variant + its config"
//!   value that constructs an [`AnyStepper`].
//!
//! ## RNG-stream guarantee
//!
//! Trait dispatch adds **no draws and reorders none**: `Protocol::step`
//! delegates to the very same monomorphic round body the inherent
//! `step` runs, with the RNG behind a `&mut dyn RngCore` — the word
//! stream is identical, so an [`AnyStepper`]-driven run is bit-identical
//! to calling the concrete stepper directly (pinned per variant in
//! `tests/integration_protocol_trait.rs`).
//!
//! [`resource_protocol`]: crate::resource_protocol
//! [`user_protocol`]: crate::user_protocol
//! [`mixed_protocol`]: crate::mixed_protocol

use rand::RngCore;
use serde::{Deserialize, Serialize};
use tlb_graphs::{Graph, NodeId};
use tlb_walks::{BatchWalker, WalkKind};

use crate::mixed_protocol::{MixedConfig, MixedStepper};
use crate::placement::Placement;
use crate::potential::{is_balanced, max_load, total_potential};
use crate::resource_protocol::{ResourceControlledConfig, ResourceControlledStepper};
use crate::stack::ResourceStack;
use crate::task::{TaskId, TaskSet};
use crate::trace::RoundTrace;
use crate::user_protocol::{UserControlledConfig, UserControlledStepper};

/// Result of any protocol run. The per-variant outcome names
/// (`ResourceControlledOutcome`, `UserControlledOutcome`, `MixedOutcome`)
/// are aliases of this struct, so outcomes from different variants can be
/// aggregated side by side.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolOutcome {
    /// Rounds executed until balance (or until the cap).
    pub rounds: u64,
    /// Whether balance was reached within the round cap.
    pub completed: bool,
    /// Total task migrations (one per task per round moved).
    pub migrations: u64,
    /// The threshold value used.
    pub threshold: f64,
    /// `Φ` after each round, if tracking was enabled (index 0 is the
    /// initial potential).
    pub potential_series: Vec<f64>,
    /// Maximum load at termination.
    pub final_max_load: f64,
    /// Per-resource loads at termination (index = resource id).
    pub final_loads: Vec<f64>,
    /// Full per-round trace, if `record_trace` was enabled.
    pub trace: Option<RoundTrace>,
}

impl ProtocolOutcome {
    /// Whether the run ended balanced.
    pub fn balanced(&self) -> bool {
        self.completed
    }
}

/// Largest weight among the *stacked* tasks (0 when no task is stacked).
/// The checkpoint surface of variants that never read `w_max` uses this
/// instead of carrying a dead value around.
pub fn live_w_max(stacks: &[ResourceStack], weights: &[f64]) -> f64 {
    stacks
        .iter()
        .flat_map(|s| s.tasks().iter())
        .map(|&t| weights[t as usize])
        .fold(0.0, f64::max)
}

/// The serializable resume surface of a protocol stepper: everything
/// [`ProtocolSpec::resume`] needs to rebuild one, captured by
/// [`Protocol::snapshot_parts`]. Counters (rounds, migrations) are *not*
/// part of it — they are per-pass accounting a dynamic caller reads off
/// before checkpointing, and a resumed stepper starts its own pass.
///
/// Pair it with a [`ProtocolKind`] (or a `ProtocolSpec::Config`) to get
/// a running stepper back: `kind.resume_parts(parts)` is bit-identical
/// to the stepper the parts were taken from, for every variant and the
/// baseline adapters (proptested in `tests/proptests.rs`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolParts {
    /// Per-resource stacks (index = resource id).
    pub stacks: Vec<ResourceStack>,
    /// Weight per task id.
    pub weights: Vec<f64>,
    /// The threshold the pass balances against.
    pub threshold: f64,
    /// The `w_max` the user/mixed migration law divides by (recomputed
    /// over the stacked tasks for variants that never read it).
    pub w_max: f64,
}

/// Deterministic per-pass observability counters, accumulated by the
/// round engine as a side effect of quantities every round computes
/// anyway (cohort lengths) — a handful of integer adds per *round*, so
/// tracking is unconditional and costs nothing measurable.
///
/// These are pure functions of the stack configuration, threshold, and
/// seed: none of them reads a clock or consumes an RNG word, so they are
/// bit-identical across thread counts and identical for a replayed
/// stream. They are *not* part of [`ProtocolOutcome`] (whose serialized
/// shape is pinned by goldens); the obs layer reads them off through
/// [`Protocol::obs_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Walk-kernel steps taken (one per cohort member per batched step).
    pub walk_steps: u64,
    /// Lazy-walk fused coin+neighbor words drawn (one per walker per
    /// step under [`WalkKind::Lazy`]).
    pub fused_word_draws: u64,
    /// Steps served by the kernel's regular fast path (affine CSR
    /// offsets; taken whenever the graph is regular with degree > 0).
    pub regular_fast_path_hits: u64,
    /// Uniform re-placement words drawn (user-style arrival phase).
    pub uniform_jump_draws: u64,
    /// Largest single-round migration cohort seen this pass.
    pub max_round_cohort: u64,
}

impl EngineStats {
    /// Fold another pass's counters into this one (sums; max for the
    /// cohort high-water mark).
    pub fn merge(&mut self, other: &EngineStats) {
        self.walk_steps += other.walk_steps;
        self.fused_word_draws += other.fused_word_draws;
        self.regular_fast_path_hits += other.regular_fast_path_hits;
        self.uniform_jump_draws += other.uniform_jump_draws;
        self.max_round_cohort = self.max_round_cohort.max(other.max_round_cohort);
    }
}

/// The shared round state every protocol stepper embeds (see the module
/// docs). Variant `step` implementations work directly on the public
/// buffers between [`begin_round`](Self::begin_round) and
/// [`finish_round`](Self::finish_round); the counters, potential series,
/// trace, and completion flag are private so the accounting cannot drift
/// between variants.
#[derive(Debug, Clone)]
pub struct RoundEngine {
    /// Per-resource stacks (index = resource id).
    pub stacks: Vec<ResourceStack>,
    /// Weight per task id.
    pub weights: Vec<f64>,
    /// Batched walk kernel, cached for the whole run (topology is re-read
    /// from the graph every step, so swapping graphs between rounds stays
    /// sound).
    pub walker: BatchWalker,
    /// Round buffer: the departing tasks of the current round, in
    /// ejection order. Cleared by [`begin_round`](Self::begin_round).
    pub cohort: Vec<TaskId>,
    /// Round buffer parallel to `cohort`: source positions going in, walk
    /// destinations after a batched step. Cleared by `begin_round`.
    pub positions: Vec<NodeId>,
    /// Round buffer: arrival task ids, parallel to
    /// [`pending_dests`](Self::pending_dests), for variants that
    /// materialize (and possibly shuffle) the arrival order. Stored as
    /// two flat parallel arrays rather than a `Vec<(TaskId, NodeId)>`:
    /// the arrival loop reads ids and destinations in separate streams,
    /// and the structure-of-arrays form keeps each stream dense (8 B per
    /// entry per array instead of one padded 8 B tuple holding both) —
    /// shuffling applies one permutation to both via
    /// [`rand::seq::shuffle_paired`], which draws the exact words the
    /// tuple shuffle drew.
    pub pending_tasks: Vec<TaskId>,
    /// Round buffer: arrival destinations, parallel to
    /// [`pending_tasks`](Self::pending_tasks).
    pub pending_dests: Vec<NodeId>,
    /// Round buffer: bulk-generated destination words (user-style uniform
    /// re-placement).
    pub dest_words: Vec<u64>,
    threshold: f64,
    max_rounds: u64,
    track_potential: bool,
    rounds: u64,
    migrations: u64,
    stats: EngineStats,
    potential_series: Vec<f64>,
    trace: Option<RoundTrace>,
    completed: bool,
    /// Counting-sort scratch for [`sort_cohort_by_degree`]
    /// (bucket cursors, then the sorted copies); reused across rounds so
    /// steady-state sorting allocates nothing.
    sort_counts: Vec<usize>,
    sort_tasks: Vec<TaskId>,
    sort_positions: Vec<NodeId>,
}

impl RoundEngine {
    /// Build the engine over an existing stack configuration (consumes no
    /// RNG) and take the initial potential/trace snapshots.
    ///
    /// # Panics
    /// If the stack vector is empty.
    pub fn new(
        stacks: Vec<ResourceStack>,
        weights: Vec<f64>,
        threshold: f64,
        max_rounds: u64,
        track_potential: bool,
        record_trace: bool,
    ) -> Self {
        assert!(!stacks.is_empty(), "need at least one resource");
        let completed = is_balanced(&stacks, threshold);
        let mut potential_series = Vec::new();
        if track_potential {
            potential_series.push(total_potential(&stacks, threshold, &weights));
        }
        let trace = record_trace.then(|| RoundTrace::start(&stacks, threshold, &weights));
        RoundEngine {
            stacks,
            weights,
            walker: BatchWalker::new(),
            cohort: Vec::new(),
            positions: Vec::new(),
            pending_tasks: Vec::new(),
            pending_dests: Vec::new(),
            dest_words: Vec::new(),
            threshold,
            max_rounds,
            track_potential,
            rounds: 0,
            migrations: 0,
            stats: EngineStats::default(),
            potential_series,
            trace,
            completed,
            sort_counts: Vec::new(),
            sort_tasks: Vec::new(),
            sort_positions: Vec::new(),
        }
    }

    /// Reorder the round cohort (and its parallel source positions) by
    /// ascending source degree — a stable counting sort, so entries
    /// within one degree bucket keep their ejection order. On irregular
    /// graphs this groups the batched kernel's work into
    /// near-regular runs: the `slot < deg(v)` self-loop test in the lazy
    /// path becomes predictable per bucket instead of per walker, and
    /// neighbour-list lengths stop alternating between cache lines.
    ///
    /// On a regular graph (one bucket) the sort is the identity, so the
    /// method returns without touching the buffers. Callers only invoke
    /// it for [`WalkKind::Lazy`]: the lazy stream assigns lane words by
    /// cohort *index*, so reordering moves which word each task gets —
    /// fine under the re-pinned lazy stream, but it would break the
    /// MaxDegree/Simple scalar-parity goldens, whose cohorts therefore
    /// stay in ejection order.
    pub fn sort_cohort_by_degree(&mut self, g: &Graph) {
        debug_assert_eq!(self.cohort.len(), self.positions.len());
        if g.is_regular() || self.cohort.len() <= 1 {
            return;
        }
        let buckets = g.max_degree() as usize + 1;
        self.sort_counts.clear();
        self.sort_counts.resize(buckets, 0);
        for &v in &self.positions {
            self.sort_counts[g.degree(v)] += 1;
        }
        // Prefix sums turn the histogram into per-bucket write cursors.
        let mut acc = 0usize;
        for c in self.sort_counts.iter_mut() {
            let n = *c;
            *c = acc;
            acc += n;
        }
        self.sort_tasks.resize(self.cohort.len(), 0);
        self.sort_positions.resize(self.positions.len(), 0);
        for i in 0..self.cohort.len() {
            let v = self.positions[i];
            let slot = self.sort_counts[g.degree(v)];
            self.sort_counts[g.degree(v)] += 1;
            self.sort_tasks[slot] = self.cohort[i];
            self.sort_positions[slot] = v;
        }
        std::mem::swap(&mut self.cohort, &mut self.sort_tasks);
        std::mem::swap(&mut self.positions, &mut self.sort_positions);
    }

    /// Whether every load is at most the threshold.
    pub fn is_balanced(&self) -> bool {
        self.completed
    }

    /// Whether the run is over: balanced, or the round cap was hit.
    pub fn is_done(&self) -> bool {
        self.completed || self.rounds >= self.max_rounds
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Migrations performed so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// The threshold this run balances against.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Deterministic observability counters accumulated so far.
    pub fn obs_stats(&self) -> EngineStats {
        self.stats
    }

    /// Account one batched walk step of the current cohort (call right
    /// after `walker.step_batch`): `positions.len()` steps, classified by
    /// walk kind and by whether the kernel's regular fast path applies.
    /// Reads only lengths and cached degree bounds — no RNG, no clock.
    pub fn note_walk_batch(&mut self, g: &Graph, kind: WalkKind) {
        let n = self.positions.len() as u64;
        self.stats.walk_steps += n;
        if kind == WalkKind::Lazy {
            self.stats.fused_word_draws += n;
        }
        if g.max_degree() > 0 && g.is_regular() {
            self.stats.regular_fast_path_hits += n;
        }
    }

    /// Account one bulk uniform re-placement (user-style arrival phase):
    /// one destination word per cohort member.
    pub fn note_uniform_batch(&mut self) {
        self.stats.uniform_jump_draws += self.cohort.len() as u64;
    }

    /// Open a round: bump the round counter and clear the cohort buffers.
    /// Callers must have checked [`is_done`](Self::is_done) first.
    pub fn begin_round(&mut self) {
        debug_assert!(!self.is_done(), "begin_round on a finished run");
        self.rounds += 1;
        self.cohort.clear();
        self.positions.clear();
    }

    /// Close a round after `migrated` tasks were re-stacked: update the
    /// migration counter, potential series, trace, and completion flag.
    /// Returns [`is_done`](Self::is_done) after the round.
    pub fn finish_round(&mut self, migrated: u64) -> bool {
        self.migrations += migrated;
        self.stats.max_round_cohort = self.stats.max_round_cohort.max(migrated);
        if self.track_potential {
            self.potential_series.push(total_potential(
                &self.stacks,
                self.threshold,
                &self.weights,
            ));
        }
        if let Some(trace) = &mut self.trace {
            trace.record(self.rounds, &self.stacks, &self.weights, migrated);
        }
        self.completed = is_balanced(&self.stacks, self.threshold);
        self.is_done()
    }

    /// Finish: consume the engine into the outcome every one-shot entry
    /// point reports.
    pub fn into_outcome(self) -> ProtocolOutcome {
        ProtocolOutcome {
            rounds: self.rounds,
            completed: self.completed,
            migrations: self.migrations,
            threshold: self.threshold,
            potential_series: self.potential_series,
            final_max_load: max_load(&self.stacks),
            final_loads: self.stacks.iter().map(ResourceStack::load).collect(),
            trace: self.trace,
        }
    }

    /// Hand the stacks and weight vector back to a dynamic caller (the
    /// inverse of [`new`](Self::new)). Read the counters before calling
    /// this.
    pub fn into_parts(self) -> (Vec<ResourceStack>, Vec<f64>) {
        (self.stacks, self.weights)
    }
}

/// The object-safe stepping surface every protocol engine exposes — the
/// three paper/extension steppers here and the baseline adapters in
/// `tlb-baselines`. One `step` call is one round; the graph is passed
/// into every step so callers may swap it between rounds (the user
/// protocol ignores it — Algorithm 6.1 jumps uniformly).
///
/// Dispatching through `dyn Protocol` consumes exactly the RNG stream
/// the concrete stepper would (see the module docs).
pub trait Protocol {
    /// Execute one round unless the run is already done; returns
    /// [`is_done`](Self::is_done) after the round.
    fn step(&mut self, g: &Graph, rng: &mut dyn RngCore) -> bool;

    /// Step until balanced or the round cap.
    fn run(&mut self, g: &Graph, rng: &mut dyn RngCore) {
        while !self.step(g, rng) {}
    }

    /// Whether the run is over: balanced, or the round cap was hit.
    fn is_done(&self) -> bool;

    /// Whether every load is at most the threshold.
    fn is_balanced(&self) -> bool;

    /// Rounds executed so far.
    fn rounds(&self) -> u64;

    /// Migrations performed so far.
    fn migrations(&self) -> u64;

    /// The threshold this run balances against.
    fn threshold(&self) -> f64;

    /// The per-resource stacks (index = resource id).
    fn stacks(&self) -> &[ResourceStack];

    /// Weight per task id (freed slots of dynamic callers included).
    fn weights(&self) -> &[f64];

    /// The `w_max` of the resume surface: the value the user/mixed
    /// migration law divides by, or the live maximum for variants that
    /// never read it.
    fn w_max(&self) -> f64;

    /// Deterministic observability counters accumulated so far. Defaults
    /// to zeros for steppers that do not embed the round engine (the
    /// baseline adapters).
    fn obs_stats(&self) -> EngineStats {
        EngineStats::default()
    }

    /// Capture the serializable resume surface without consuming the
    /// stepper — the checkpoint half of the
    /// [`ProtocolParts`]/[`ProtocolKind::resume_parts`] round trip.
    fn snapshot_parts(&self) -> ProtocolParts {
        ProtocolParts {
            stacks: self.stacks().to_vec(),
            weights: self.weights().to_vec(),
            threshold: self.threshold(),
            w_max: self.w_max(),
        }
    }

    /// Hand the stacks and weight vector back to a dynamic caller.
    fn into_parts(self: Box<Self>) -> (Vec<ResourceStack>, Vec<f64>);

    /// Consume the engine into its outcome.
    fn into_outcome(self: Box<Self>) -> ProtocolOutcome;
}

/// A boxed protocol engine — the dispatch type the online simulation and
/// the experiment harness drive.
pub type AnyStepper = Box<dyn Protocol + Send>;

/// The associated-types half of the protocol contract: which `Config`
/// drives the variant, which `Outcome` it reports, and the constructors
/// — for code generic over a *statically known* protocol. (The stepping
/// surface lives on [`Protocol`], which stays object-safe.)
pub trait ProtocolSpec: Protocol + Sized {
    /// Per-variant configuration.
    type Config: Clone;
    /// Per-variant outcome (an alias of [`ProtocolOutcome`] for all
    /// in-tree variants).
    type Outcome;

    /// Set up a run: materialize the placement (consuming RNG exactly as
    /// the one-shot entry points always have) and take the initial
    /// snapshots.
    fn new_stepper(
        g: &Graph,
        tasks: &TaskSet,
        placement: Placement,
        cfg: &Self::Config,
        rng: &mut dyn RngCore,
    ) -> Self;

    /// Resume from an existing stack configuration (consumes no RNG).
    /// `w_max` is taken as given so dynamic callers can compute it over
    /// their live population; variants that do not need it ignore it.
    fn resume(
        stacks: Vec<ResourceStack>,
        weights: Vec<f64>,
        threshold: f64,
        w_max: f64,
        cfg: Self::Config,
    ) -> Self;

    /// Resume from a captured [`ProtocolParts`] (consumes no RNG) — the
    /// statically typed restore half of
    /// [`Protocol::snapshot_parts`].
    fn resume_parts(parts: ProtocolParts, cfg: Self::Config) -> Self {
        Self::resume(parts.stacks, parts.weights, parts.threshold, parts.w_max, cfg)
    }

    /// Consume the engine into its (statically typed) outcome.
    fn outcome(self) -> Self::Outcome;
}

/// Which protocol variant to run, with its configuration — the
/// serializable value config files and drivers hold, and the factory for
/// [`AnyStepper`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// Resource-controlled (Algorithm 5.1) on arbitrary graphs.
    Resource(ResourceControlledConfig),
    /// User-controlled (Algorithm 6.1); ignores the graph (uniform
    /// jumps over all resources).
    User(UserControlledConfig),
    /// The Section-8 mixed protocol (user-style departures,
    /// resource-style walk movement).
    Mixed(MixedConfig),
}

impl ProtocolKind {
    /// Short stable name (report/CSV key).
    pub fn label(&self) -> &'static str {
        match self {
            ProtocolKind::Resource(_) => "resource",
            ProtocolKind::User(_) => "user",
            ProtocolKind::Mixed(_) => "mixed",
        }
    }

    /// Construct a fresh stepper over `(g, tasks, placement)`, consuming
    /// RNG exactly as the variant's one-shot entry point would.
    pub fn new_stepper(
        &self,
        g: &Graph,
        tasks: &TaskSet,
        placement: Placement,
        rng: &mut dyn RngCore,
    ) -> AnyStepper {
        match self {
            ProtocolKind::Resource(cfg) => {
                Box::new(ResourceControlledStepper::new(g, tasks, placement, cfg, rng))
            }
            ProtocolKind::User(cfg) => {
                Box::new(UserControlledStepper::new(g.num_nodes(), tasks, placement, cfg, rng))
            }
            ProtocolKind::Mixed(cfg) => Box::new(MixedStepper::new(g, tasks, placement, cfg, rng)),
        }
    }

    /// Resume a stepper from an existing stack configuration (consumes no
    /// RNG) — the online simulation's entry point. Variants that do not
    /// need `w_max` ignore it.
    pub fn stepper_from_parts(
        &self,
        stacks: Vec<ResourceStack>,
        weights: Vec<f64>,
        threshold: f64,
        w_max: f64,
    ) -> AnyStepper {
        match self {
            ProtocolKind::Resource(cfg) => Box::new(ResourceControlledStepper::from_parts(
                stacks,
                weights,
                threshold,
                cfg.clone(),
            )),
            ProtocolKind::User(cfg) => Box::new(UserControlledStepper::from_parts(
                stacks,
                weights,
                threshold,
                w_max,
                cfg.clone(),
            )),
            ProtocolKind::Mixed(cfg) => {
                Box::new(MixedStepper::from_parts(stacks, weights, threshold, w_max, cfg.clone()))
            }
        }
    }

    /// Resume a stepper from a captured [`ProtocolParts`] (consumes no
    /// RNG) — the dynamic restore half of [`Protocol::snapshot_parts`].
    /// The resumed stepper's future word stream is bit-identical to the
    /// one it was captured from.
    pub fn resume_parts(&self, parts: ProtocolParts) -> AnyStepper {
        self.stepper_from_parts(parts.stacks, parts.weights, parts.threshold, parts.w_max)
    }
}

macro_rules! impl_protocol_via_engine {
    ($stepper:ty) => {
        impl Protocol for $stepper {
            fn step(&mut self, g: &Graph, rng: &mut dyn RngCore) -> bool {
                <$stepper>::step(self, g, rng)
            }

            fn is_done(&self) -> bool {
                <$stepper>::is_done(self)
            }

            fn is_balanced(&self) -> bool {
                <$stepper>::is_balanced(self)
            }

            fn rounds(&self) -> u64 {
                <$stepper>::rounds(self)
            }

            fn migrations(&self) -> u64 {
                <$stepper>::migrations(self)
            }

            fn threshold(&self) -> f64 {
                <$stepper>::threshold(self)
            }

            fn stacks(&self) -> &[ResourceStack] {
                <$stepper>::stacks(self)
            }

            fn weights(&self) -> &[f64] {
                <$stepper>::weights(self)
            }

            fn w_max(&self) -> f64 {
                <$stepper>::w_max(self)
            }

            fn obs_stats(&self) -> EngineStats {
                <$stepper>::obs_stats(self)
            }

            fn into_parts(self: Box<Self>) -> (Vec<ResourceStack>, Vec<f64>) {
                <$stepper>::into_parts(*self)
            }

            fn into_outcome(self: Box<Self>) -> ProtocolOutcome {
                <$stepper>::into_outcome(*self)
            }
        }
    };
}

impl_protocol_via_engine!(ResourceControlledStepper);
impl_protocol_via_engine!(UserControlledStepper);
impl_protocol_via_engine!(MixedStepper);

impl ProtocolSpec for ResourceControlledStepper {
    type Config = ResourceControlledConfig;
    type Outcome = ProtocolOutcome;

    fn new_stepper(
        g: &Graph,
        tasks: &TaskSet,
        placement: Placement,
        cfg: &Self::Config,
        rng: &mut dyn RngCore,
    ) -> Self {
        Self::new(g, tasks, placement, cfg, rng)
    }

    fn resume(
        stacks: Vec<ResourceStack>,
        weights: Vec<f64>,
        threshold: f64,
        _w_max: f64,
        cfg: Self::Config,
    ) -> Self {
        Self::from_parts(stacks, weights, threshold, cfg)
    }

    fn outcome(self) -> ProtocolOutcome {
        self.into_outcome()
    }
}

impl ProtocolSpec for UserControlledStepper {
    type Config = UserControlledConfig;
    type Outcome = ProtocolOutcome;

    fn new_stepper(
        g: &Graph,
        tasks: &TaskSet,
        placement: Placement,
        cfg: &Self::Config,
        rng: &mut dyn RngCore,
    ) -> Self {
        Self::new(g.num_nodes(), tasks, placement, cfg, rng)
    }

    fn resume(
        stacks: Vec<ResourceStack>,
        weights: Vec<f64>,
        threshold: f64,
        w_max: f64,
        cfg: Self::Config,
    ) -> Self {
        Self::from_parts(stacks, weights, threshold, w_max, cfg)
    }

    fn outcome(self) -> ProtocolOutcome {
        self.into_outcome()
    }
}

impl ProtocolSpec for MixedStepper {
    type Config = MixedConfig;
    type Outcome = ProtocolOutcome;

    fn new_stepper(
        g: &Graph,
        tasks: &TaskSet,
        placement: Placement,
        cfg: &Self::Config,
        rng: &mut dyn RngCore,
    ) -> Self {
        Self::new(g, tasks, placement, cfg, rng)
    }

    fn resume(
        stacks: Vec<ResourceStack>,
        weights: Vec<f64>,
        threshold: f64,
        w_max: f64,
        cfg: Self::Config,
    ) -> Self {
        Self::from_parts(stacks, weights, threshold, w_max, cfg)
    }

    fn outcome(self) -> ProtocolOutcome {
        self.into_outcome()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource_protocol::run_resource_controlled;
    use crate::threshold::ThresholdPolicy;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tlb_graphs::generators::{complete, torus2d};

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ProtocolKind::Resource(Default::default()).label(), "resource");
        assert_eq!(ProtocolKind::User(Default::default()).label(), "user");
        assert_eq!(ProtocolKind::Mixed(Default::default()).label(), "mixed");
    }

    #[test]
    fn any_stepper_matches_one_shot_resource_run() {
        let g = torus2d(5, 5);
        let tasks = TaskSet::new((0..200).map(|i| 1.0 + (i % 3) as f64).collect::<Vec<_>>());
        let cfg = ResourceControlledConfig { track_potential: true, ..Default::default() };
        let direct = run_resource_controlled(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng(7));

        let kind = ProtocolKind::Resource(cfg);
        let mut r = rng(7);
        let mut s = kind.new_stepper(&g, &tasks, Placement::AllOnOne(0), &mut r);
        s.run(&g, &mut r);
        assert_eq!(s.rounds(), direct.rounds);
        assert_eq!(s.into_outcome(), direct);
    }

    #[test]
    fn any_stepper_user_ignores_topology() {
        // The user protocol on a cycle must behave exactly as on the
        // complete graph with the same node count: the trait threads a
        // graph through, but Algorithm 6.1 never reads it.
        let tasks = TaskSet::uniform(120);
        let kind = ProtocolKind::User(Default::default());
        let run_on = |g: &Graph| -> ProtocolOutcome {
            let mut r = rng(9);
            let mut s = kind.new_stepper(g, &tasks, Placement::AllOnOne(0), &mut r);
            s.run(g, &mut r);
            s.into_outcome()
        };
        let on_complete = run_on(&complete(12));
        let on_cycle = run_on(&tlb_graphs::generators::cycle(12));
        assert_eq!(on_complete, on_cycle);
        assert!(on_complete.balanced());
    }

    #[test]
    fn obs_stats_count_walks_and_cohorts_deterministically() {
        let g = torus2d(5, 5); // 4-regular: every step hits the fast path
        let tasks = TaskSet::new((0..200).map(|i| 1.0 + (i % 3) as f64).collect::<Vec<_>>());
        let run_once = |walk: WalkKind| {
            let cfg = ResourceControlledConfig { walk, ..Default::default() };
            let kind = ProtocolKind::Resource(cfg);
            let mut r = rng(11);
            let mut s = kind.new_stepper(&g, &tasks, Placement::AllOnOne(0), &mut r);
            s.run(&g, &mut r);
            (s.obs_stats(), s.migrations())
        };
        let (stats, migrations) = run_once(WalkKind::MaxDegree);
        // The resource protocol moves exactly the walked cohort each
        // round, so steps == migrations; on a regular graph every step is
        // a fast-path hit; max-degree walks draw no fused words.
        assert_eq!(stats.walk_steps, migrations);
        assert_eq!(stats.regular_fast_path_hits, stats.walk_steps);
        assert_eq!(stats.fused_word_draws, 0);
        assert_eq!(stats.uniform_jump_draws, 0);
        assert!(stats.max_round_cohort > 0);
        assert!(stats.max_round_cohort <= migrations);
        // Counters are a pure function of the seed: identical on re-run.
        assert_eq!(run_once(WalkKind::MaxDegree).0, stats);
        // A lazy walk draws exactly one fused word per step.
        let (lazy_stats, _) = run_once(WalkKind::Lazy);
        assert_eq!(lazy_stats.fused_word_draws, lazy_stats.walk_steps);
        assert!(lazy_stats.fused_word_draws > 0);

        // The user protocol draws uniform words instead of walk steps,
        // and the baseline default keeps zeros.
        let kind = ProtocolKind::User(Default::default());
        let mut r = rng(11);
        let mut s = kind.new_stepper(&g, &tasks, Placement::AllOnOne(0), &mut r);
        s.run(&g, &mut r);
        let ustats = s.obs_stats();
        assert_eq!(ustats.uniform_jump_draws, s.migrations());
        assert_eq!(ustats.walk_steps, 0);

        // Merging folds sums and maxes.
        let mut merged = stats;
        merged.merge(&ustats);
        assert_eq!(merged.walk_steps, stats.walk_steps);
        assert_eq!(merged.uniform_jump_draws, ustats.uniform_jump_draws);
        assert_eq!(merged.max_round_cohort, stats.max_round_cohort.max(ustats.max_round_cohort));
    }

    #[test]
    fn stepper_from_parts_round_trips_through_the_trait() {
        let g = torus2d(4, 4);
        let tasks = TaskSet::uniform(96);
        let kind = ProtocolKind::Mixed(MixedConfig { max_rounds: 3, ..Default::default() });
        let mut r = rng(5);
        let mut first = kind.new_stepper(&g, &tasks, Placement::AllOnOne(0), &mut r);
        first.run(&g, &mut r);
        assert!(!first.is_balanced());
        let threshold = first.threshold();
        let (stacks, weights) = first.into_parts();

        let resume_kind = ProtocolKind::Mixed(MixedConfig::default());
        let mut second = resume_kind.stepper_from_parts(stacks, weights, threshold, 1.0);
        second.run(&g, &mut r);
        assert!(second.is_balanced());
        let out = second.into_outcome();
        let total: f64 = out.final_loads.iter().sum();
        assert!((total - tasks.total_weight()).abs() < 1e-6);
    }

    #[test]
    fn snapshot_parts_resume_is_bit_identical_mid_run() {
        // Pause every variant mid-run, serialize the resume surface
        // through the JSON tree, resume in a "fresh process", and require
        // the continuation to match the uninterrupted run exactly. The
        // user/mixed variants re-draw from the same RNG state; to compare
        // streams we clone the RNG at the pause point.
        let g = torus2d(5, 5);
        let tasks = TaskSet::new((0..180).map(|i| 1.0 + (i % 4) as f64).collect::<Vec<_>>());
        for kind in [
            ProtocolKind::Resource(Default::default()),
            ProtocolKind::User(Default::default()),
            ProtocolKind::Mixed(Default::default()),
        ] {
            let mut r = rng(13);
            let mut stepper = kind.new_stepper(&g, &tasks, Placement::AllOnOne(0), &mut r);
            for _ in 0..2 {
                if stepper.is_done() {
                    break;
                }
                stepper.step(&g, &mut r);
            }
            let pre_migrations = stepper.migrations();
            let parts = stepper.snapshot_parts();
            let json = serde_json::to_string(&parts).unwrap();
            let back: ProtocolParts = serde_json::from_str(&json).unwrap();
            assert_eq!(back, parts, "{}: parts must round-trip bit-exactly", kind.label());

            // A resumed stepper starts its own pass: counters restart at
            // zero, the word stream continues exactly.
            let mut resumed = kind.resume_parts(back);
            let mut r2 = r.clone();
            resumed.run(&g, &mut r2);
            stepper.run(&g, &mut r);
            assert_eq!(
                pre_migrations + resumed.migrations(),
                stepper.migrations(),
                "{}: resumed migrations diverged",
                kind.label()
            );
            let resumed_out = resumed.into_outcome();
            let direct_out = stepper.into_outcome();
            assert_eq!(resumed_out.final_loads, direct_out.final_loads, "{}", kind.label());
            assert_eq!(resumed_out.completed, direct_out.completed, "{}", kind.label());
        }
    }

    #[test]
    fn w_max_is_preserved_for_the_variants_that_read_it() {
        let g = complete(8);
        let mut weights: Vec<f64> = vec![1.0; 40];
        weights[17] = 9.5;
        let tasks = TaskSet::new(weights);
        let kind = ProtocolKind::Mixed(Default::default());
        let mut r = rng(2);
        let stepper = kind.new_stepper(&g, &tasks, Placement::AllOnOne(0), &mut r);
        assert_eq!(stepper.w_max(), 9.5);
        assert_eq!(stepper.snapshot_parts().w_max, 9.5);
    }

    #[test]
    fn engine_accounting_matches_manual_bookkeeping() {
        // Drive a RoundEngine by hand (no variant logic) and check the
        // counters, series, and trace stay in lock-step.
        let mut stacks = vec![ResourceStack::new(); 2];
        let weights = vec![2.0, 2.0, 2.0];
        for id in 0..3 {
            stacks[0].push(id, 2.0);
        }
        let mut eng = RoundEngine::new(stacks, weights, 4.0, 100, true, true);
        assert!(!eng.is_balanced());
        assert_eq!(eng.rounds(), 0);

        eng.begin_round();
        // Move the top task across by hand.
        let moved = eng.stacks[0].remove_active(4.0, &eng.weights.clone());
        assert_eq!(moved.len(), 1);
        for t in moved {
            eng.stacks[1].push(t, eng.weights[t as usize]);
        }
        let done = eng.finish_round(1);
        assert!(done && eng.is_balanced());
        assert_eq!(eng.rounds(), 1);
        assert_eq!(eng.migrations(), 1);
        let out = eng.into_outcome();
        assert_eq!(out.potential_series.len(), 2);
        assert_eq!(out.potential_series[1], 0.0);
        let trace = out.trace.expect("trace was recorded");
        assert_eq!(trace.rounds(), 1);
        assert_eq!(trace.total_migrations(), 1);
    }

    #[test]
    #[should_panic(expected = "need at least one resource")]
    fn engine_rejects_empty_stacks() {
        RoundEngine::new(Vec::new(), Vec::new(), 1.0, 10, false, false);
    }

    #[test]
    fn protocol_spec_constructors_match_kind_dispatch() {
        let g = complete(10);
        let tasks = TaskSet::uniform(60);
        let cfg = UserControlledConfig { threshold: ThresholdPolicy::Tight, ..Default::default() };
        let mut r1 = rng(3);
        let mut a = <UserControlledStepper as ProtocolSpec>::new_stepper(
            &g,
            &tasks,
            Placement::AllOnOne(0),
            &cfg,
            &mut r1,
        );
        let mut r2 = rng(3);
        let mut b =
            ProtocolKind::User(cfg).new_stepper(&g, &tasks, Placement::AllOnOne(0), &mut r2);
        a.run(&g, &mut r1);
        b.run(&g, &mut r2);
        assert_eq!(a.outcome(), b.into_outcome());
    }
}
