//! Stepper state as shard-sized fragments.
//!
//! The resumable steppers expose their state through `into_parts()` as a
//! flat `Vec<ResourceStack>` indexed by node id. A [`StackFragment`] is a
//! contiguous slice of that state — the stacks of one shard of a
//! `tlb_graphs::Partition` — that a worker thread can own exclusively
//! while the sharded engine steps all shards in parallel.
//! [`StackFragment::split`] and [`StackFragment::join`] convert between
//! the flat representation and the fragment list in `O(k)` pointer moves
//! (the per-stack `Vec`s are moved, never copied), so fragmenting is free
//! on the per-epoch hot path and `split ∘ join` is the identity.
//!
//! The fragment offers exactly the per-round operations of the
//! resource-controlled protocol (Algorithm 5.1), restricted to its node
//! range: eject every cutting/above task in ascending node order
//! ([`StackFragment::eject_overloaded`], the sharded counterpart of
//! [`ResourceStack::remove_active_into`] over a whole range) and accept
//! routed arrivals ([`StackFragment::push`]). Concatenating all
//! fragments' ejections in shard order therefore reproduces the global
//! ascending-node-order cohort of the sequential stepper exactly.

use tlb_graphs::{NodeId, Partition};

use crate::stack::ResourceStack;
use crate::task::TaskId;

/// The per-resource stacks of one contiguous node range, owned
/// exclusively by one shard of the sharded engine.
#[derive(Debug, Clone, PartialEq)]
pub struct StackFragment {
    /// Global node id of `stacks[0]`.
    start: NodeId,
    /// Stacks of nodes `start .. start + stacks.len()`.
    stacks: Vec<ResourceStack>,
}

impl StackFragment {
    /// Split a flat stack array (a stepper's `into_parts()` output) into
    /// one fragment per shard of `partition`.
    ///
    /// # Panics
    /// If the partition does not cover exactly `stacks.len()` nodes.
    pub fn split(stacks: Vec<ResourceStack>, partition: &Partition) -> Vec<StackFragment> {
        assert_eq!(
            partition.num_nodes(),
            stacks.len(),
            "partition covers {} nodes but there are {} stacks",
            partition.num_nodes(),
            stacks.len()
        );
        let mut rest = stacks.into_iter();
        partition
            .ranges()
            .map(|r| StackFragment {
                start: r.start,
                stacks: rest.by_ref().take(r.len()).collect(),
            })
            .collect()
    }

    /// Reassemble fragments (in shard order) into the flat stack array.
    /// Inverse of [`split`](Self::split).
    ///
    /// # Panics
    /// If the fragments are not contiguous from node 0.
    pub fn join(fragments: Vec<StackFragment>) -> Vec<ResourceStack> {
        let mut out = Vec::with_capacity(fragments.iter().map(|f| f.stacks.len()).sum());
        for frag in fragments {
            assert_eq!(
                frag.start as usize,
                out.len(),
                "fragment starting at node {} joined out of order",
                frag.start
            );
            out.extend(frag.stacks);
        }
        out
    }

    /// Global node id of the first resource in this fragment.
    #[inline]
    pub fn start(&self) -> NodeId {
        self.start
    }

    /// Number of resources in this fragment.
    #[inline]
    pub fn len(&self) -> usize {
        self.stacks.len()
    }

    /// Whether the fragment holds no resources.
    pub fn is_empty(&self) -> bool {
        self.stacks.is_empty()
    }

    /// The fragment's stacks (index 0 = global node [`start`](Self::start)).
    pub fn stacks(&self) -> &[ResourceStack] {
        &self.stacks
    }

    /// Eject every cutting/above task from every overloaded resource in
    /// this fragment, scanning nodes in ascending id order — the removal
    /// step of Algorithm 5.1 restricted to this shard. Appends ejected
    /// task ids to `cohort` (bottom-to-top within a stack) and each
    /// task's *global* source node to `sources` (parallel arrays);
    /// returns how many tasks were ejected.
    pub fn eject_overloaded(
        &mut self,
        threshold: f64,
        weights: &[f64],
        cohort: &mut Vec<TaskId>,
        sources: &mut Vec<NodeId>,
    ) -> usize {
        let before = cohort.len();
        for (i, stack) in self.stacks.iter_mut().enumerate() {
            if stack.is_overloaded(threshold) {
                let removed = stack.remove_active_into(threshold, weights, cohort);
                let v = self.start + i as NodeId;
                sources.extend(std::iter::repeat_n(v, removed));
            }
        }
        cohort.len() - before
    }

    /// Push a task onto the stack of global node `v`.
    ///
    /// # Panics
    /// If `v` is outside this fragment's range.
    #[inline]
    pub fn push(&mut self, v: NodeId, id: TaskId, weight: f64) {
        let local = (v - self.start) as usize;
        self.stacks[local].push(id, weight);
    }

    /// Maximum load over this fragment's resources (0 when empty).
    pub fn max_load(&self) -> f64 {
        self.stacks.iter().map(ResourceStack::load).fold(0.0, f64::max)
    }

    /// Whether no resource in this fragment exceeds `threshold`.
    pub fn is_balanced(&self, threshold: f64) -> bool {
        self.stacks.iter().all(|s| !s.is_overloaded(threshold))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stacks_with_loads(loads: &[&[f64]]) -> (Vec<ResourceStack>, Vec<f64>) {
        let mut weights = Vec::new();
        let mut stacks = Vec::new();
        for node_loads in loads {
            let mut s = ResourceStack::new();
            for &w in *node_loads {
                let id = weights.len() as TaskId;
                weights.push(w);
                s.push(id, w);
            }
            stacks.push(s);
        }
        (stacks, weights)
    }

    #[test]
    fn split_join_is_identity() {
        let (stacks, _) = stacks_with_loads(&[&[1.0], &[2.0, 3.0], &[], &[4.0], &[5.0]]);
        for k in 1..=5 {
            let p = Partition::contiguous(stacks.len(), k);
            let frags = StackFragment::split(stacks.clone(), &p);
            assert_eq!(frags.len(), p.num_shards());
            for (s, frag) in frags.iter().enumerate() {
                assert_eq!(frag.start(), p.range(s).start);
                assert_eq!(frag.len(), p.range(s).len());
            }
            assert_eq!(StackFragment::join(frags), stacks);
        }
    }

    #[test]
    fn sharded_ejection_concatenates_to_the_global_cohort() {
        // Global reference: remove_active_into over all stacks in node
        // order must equal the concatenation of per-fragment ejections.
        let (stacks, weights) =
            stacks_with_loads(&[&[3.0, 3.0], &[1.0], &[2.0, 2.0, 2.0], &[], &[5.0, 1.0]]);
        let threshold = 3.5;
        let mut global = stacks.clone();
        let mut want = Vec::new();
        for s in global.iter_mut() {
            if s.is_overloaded(threshold) {
                s.remove_active_into(threshold, &weights, &mut want);
            }
        }
        for k in [1usize, 2, 3, 5] {
            let p = Partition::contiguous(stacks.len(), k);
            let mut frags = StackFragment::split(stacks.clone(), &p);
            let mut cohort = Vec::new();
            let mut sources = Vec::new();
            for frag in frags.iter_mut() {
                frag.eject_overloaded(threshold, &weights, &mut cohort, &mut sources);
            }
            assert_eq!(cohort, want, "cohort diverged at k={k}");
            assert_eq!(cohort.len(), sources.len());
            // Sources are the ascending global owners of the ejections.
            assert!(sources.windows(2).all(|w| w[0] <= w[1]));
            assert_eq!(StackFragment::join(frags), global);
        }
    }

    #[test]
    fn push_routes_to_global_ids_and_balance_is_local() {
        let (stacks, weights) = stacks_with_loads(&[&[1.0], &[1.0], &[1.0], &[1.0]]);
        let p = Partition::contiguous(4, 2);
        let mut frags = StackFragment::split(stacks, &p);
        frags[1].push(3, 99, 4.0);
        assert_eq!(frags[1].stacks()[1].tasks().last(), Some(&99));
        assert_eq!(frags[1].max_load(), 5.0);
        assert!(frags[0].is_balanced(2.0));
        assert!(!frags[1].is_balanced(2.0));
        let joined = StackFragment::join(frags);
        assert_eq!(joined[3].load(), 5.0);
        let _ = weights;
    }

    #[test]
    #[should_panic(expected = "joined out of order")]
    fn join_rejects_out_of_order_fragments() {
        let (stacks, _) = stacks_with_loads(&[&[1.0], &[2.0]]);
        let p = Partition::contiguous(2, 2);
        let mut frags = StackFragment::split(stacks, &p);
        frags.swap(0, 1);
        StackFragment::join(frags);
    }
}
