//! The user-controlled protocol (paper Algorithm 6.1), on complete graphs.
//!
//! Every round, each task on an overloaded resource `r` (`x_r > T`)
//! independently migrates to a uniformly random resource with probability
//!
//! ```text
//! p_r = α · ⌈φ_r / w_max⌉ · (1 / b_r)
//! ```
//!
//! where `φ_r` is the weight of the cutting-plus-above tasks and `b_r` the
//! number of tasks on `r`. Tasks need only know `α`, `φ_r`, `w_max` and
//! `b_r` — a fully decentralized rule.
//!
//! Like the resource-controlled module, the protocol is exposed as the
//! one-shot [`run_user_controlled`] plus the resumable
//! [`UserControlledStepper`] engine it wraps (`new → step → into_outcome`).
//!
//! Analysis reproduced by the experiments:
//! * Theorem 11 — above-average thresholds with `α = ε/(120(1+ε))`:
//!   `E[T] = 2(1+ε)/(αε)·(w_max/w_min)·log m`.
//! * Theorem 12 — tight threshold `W/n + w_max` with `α ≤ 1/(120n)`:
//!   `E[T] = 2(n/α)·(w_max/w_min)·log m`.
//!
//! The paper's own simulations (Section 7) run `α = 1`, `ε = 0.2` and show
//! the conservative `α` of the analysis is unnecessary in practice; the
//! harness reproduces exactly that setting.

use rand::seq::SliceRandom;
use rand::{lemire_u64, Rng};
use serde::{Deserialize, Serialize};
use tlb_graphs::Graph;

use crate::placement::Placement;
use crate::protocol::{EngineStats, ProtocolOutcome, RoundEngine};
use crate::stack::ResourceStack;
use crate::task::{TaskId, TaskSet};
use crate::threshold::ThresholdPolicy;

/// Configuration of a user-controlled run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserControlledConfig {
    /// Threshold policy (above-average for Theorem 11, `Tight` for
    /// Theorem 12).
    pub threshold: ThresholdPolicy,
    /// Migration damping `α`. The paper's analysis needs
    /// `ε/(120(1+ε))` (resp. `≤ 1/(120n)`); its simulations use `1.0`.
    pub alpha: f64,
    /// Safety cap on rounds.
    pub max_rounds: u64,
    /// Record `Φ(t)` after every round.
    pub track_potential: bool,
    /// Shuffle arrival order each round (the paper allows arbitrary
    /// order; this ablates it).
    pub shuffle_arrivals: bool,
    /// Record a full [`RoundTrace`] in the outcome (one stack scan per
    /// resource per round, like `track_potential`).
    pub record_trace: bool,
}

impl Default for UserControlledConfig {
    fn default() -> Self {
        UserControlledConfig {
            threshold: ThresholdPolicy::AboveAverage { epsilon: 0.2 },
            alpha: 1.0,
            max_rounds: 10_000_000,
            track_potential: false,
            shuffle_arrivals: false,
            record_trace: false,
        }
    }
}

/// Result of a user-controlled run (an alias of the unified
/// [`ProtocolOutcome`]).
pub type UserControlledOutcome = ProtocolOutcome;

/// Resumable engine of the user-controlled protocol: one [`step`] call is
/// one round of Algorithm 6.1 on the implicit complete graph over `n`
/// resources. `step` takes a `&Graph` like its sibling steppers so all
/// three share one signature, but ignores it — Algorithm 6.1 jumps
/// uniformly over all resources regardless of topology.
///
/// [`step`]: UserControlledStepper::step
#[derive(Debug, Clone)]
pub struct UserControlledStepper {
    cfg: UserControlledConfig,
    w_max: f64,
    eng: RoundEngine,
}

impl UserControlledStepper {
    /// Set up a run: materialize the placement (consuming RNG exactly as
    /// the one-shot entry point always has) and take the initial
    /// snapshots.
    ///
    /// # Panics
    /// If `n == 0`, `alpha <= 0`, or the placement is invalid.
    pub fn new<R: Rng + ?Sized>(
        n: usize,
        tasks: &TaskSet,
        placement: Placement,
        cfg: &UserControlledConfig,
        rng: &mut R,
    ) -> Self {
        assert!(n > 0, "need at least one resource");
        let weights = tasks.weights().to_vec();
        let w_max = tasks.w_max();
        let threshold = cfg.threshold.value(tasks.total_weight(), n, w_max);

        let mut stacks: Vec<ResourceStack> = vec![ResourceStack::new(); n];
        for (i, &loc) in placement.materialize(tasks.len(), n, rng).iter().enumerate() {
            stacks[loc as usize].push(i as TaskId, weights[i]);
        }

        Self::from_parts(stacks, weights, threshold, w_max, cfg.clone())
    }

    /// Resume from an existing stack configuration (the online-simulation
    /// entry point; consumes no RNG). `threshold` and `w_max` are taken as
    /// given so a dynamic caller can compute them over its live population
    /// only.
    ///
    /// # Panics
    /// If the stack vector is empty or `alpha <= 0`.
    pub fn from_parts(
        stacks: Vec<ResourceStack>,
        weights: Vec<f64>,
        threshold: f64,
        w_max: f64,
        cfg: UserControlledConfig,
    ) -> Self {
        assert!(cfg.alpha > 0.0, "alpha must be positive, got {}", cfg.alpha);
        let eng = RoundEngine::new(
            stacks,
            weights,
            threshold,
            cfg.max_rounds,
            cfg.track_potential,
            cfg.record_trace,
        );
        UserControlledStepper { cfg, w_max, eng }
    }

    /// Whether every load is at most the threshold.
    pub fn is_balanced(&self) -> bool {
        self.eng.is_balanced()
    }

    /// Whether the run is over: balanced, or the round cap was hit.
    pub fn is_done(&self) -> bool {
        self.eng.is_done()
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.eng.rounds()
    }

    /// Migrations performed so far.
    pub fn migrations(&self) -> u64 {
        self.eng.migrations()
    }

    /// The threshold this run balances against.
    pub fn threshold(&self) -> f64 {
        self.eng.threshold()
    }

    /// The per-resource stacks (index = resource id).
    pub fn stacks(&self) -> &[ResourceStack] {
        &self.eng.stacks
    }

    /// Weight per task id (freed slots of dynamic callers included).
    pub fn weights(&self) -> &[f64] {
        &self.eng.weights
    }

    /// The `w_max` this run's departure probabilities divide by — part of
    /// the resume surface, so a checkpointed stepper restarts with the
    /// identical migration law.
    pub fn w_max(&self) -> f64 {
        self.w_max
    }

    /// Deterministic observability counters accumulated so far.
    pub fn obs_stats(&self) -> EngineStats {
        self.eng.obs_stats()
    }

    /// One round of Algorithm 6.1 — the graph-free body `step` wraps.
    fn round<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        if self.is_done() {
            return true;
        }
        self.eng.begin_round();
        let threshold = self.eng.threshold();
        let (alpha, w_max) = (self.cfg.alpha, self.w_max);
        let eng = &mut self.eng;
        let n = eng.stacks.len() as u64;
        // Departure phase: every task on an overloaded resource flips an
        // independent coin with the resource's migration probability.
        for stack in eng.stacks.iter_mut() {
            if !stack.is_overloaded(threshold) {
                continue;
            }
            let psi = stack.psi(threshold, &eng.weights, w_max);
            debug_assert!(psi >= 1, "overloaded resource must have psi >= 1");
            let p = (alpha * psi as f64 / stack.num_tasks() as f64).min(1.0);
            // Appends into the round-reused buffer — no per-resource
            // allocation in the departure phase.
            stack.drain_bernoulli_into(p, &eng.weights, rng, &mut eng.cohort);
        }
        if self.cfg.shuffle_arrivals {
            eng.cohort.shuffle(rng);
        }
        // Arrival phase: uniformly random destination for each migrant.
        // Destinations are bulk-generated (one word per migrant, mapped
        // with the same Lemire multiply `gen_range` uses), so the draw
        // sequence is bit-identical to the old per-migrant `gen_range`
        // loop while the RNG virtual-call round-trips collapse into one
        // register-resident fill.
        let migrated = eng.cohort.len() as u64;
        // Resize only (no clear): the fill overwrites every live slot, so
        // re-zeroing the buffer each round would be a wasted memset.
        eng.dest_words.resize(eng.cohort.len(), 0);
        rng.fill_u64(&mut eng.dest_words);
        eng.note_uniform_batch();
        for (&t, &word) in eng.cohort.iter().zip(eng.dest_words.iter()) {
            let dest = lemire_u64(word, n) as usize;
            eng.stacks[dest].push(t, eng.weights[t as usize]);
        }
        eng.finish_round(migrated)
    }

    /// Execute one round (departure coin flips, uniform re-placement)
    /// unless the run is already done. Returns
    /// [`is_done`](Self::is_done) after the round.
    ///
    /// The graph parameter exists so all three steppers share one `step`
    /// signature (and one [`Protocol`] trait); Algorithm 6.1 ignores it.
    ///
    /// [`Protocol`]: crate::protocol::Protocol
    pub fn step<R: Rng + ?Sized>(&mut self, _g: &Graph, rng: &mut R) -> bool {
        self.round(rng)
    }

    /// Step until balanced or the round cap (the graph is ignored, like
    /// in [`step`](Self::step)).
    pub fn run<R: Rng + ?Sized>(&mut self, _g: &Graph, rng: &mut R) {
        while !self.round(rng) {}
    }

    /// Finish: consume the engine into the outcome the one-shot entry
    /// point reports.
    pub fn into_outcome(self) -> UserControlledOutcome {
        self.eng.into_outcome()
    }

    /// Hand the stacks and weight vector back to a dynamic caller (the
    /// inverse of [`from_parts`](Self::from_parts)). Read the counters
    /// before calling this.
    pub fn into_parts(self) -> (Vec<ResourceStack>, Vec<f64>) {
        self.eng.into_parts()
    }
}

/// Run the user-controlled protocol on the complete graph with `n`
/// resources.
///
/// The complete graph is implicit (the paper restricts this protocol to
/// it): destinations are sampled uniformly from all `n` resources.
///
/// # Panics
/// If `n == 0`, `alpha <= 0`, or the placement is invalid.
pub fn run_user_controlled<R: Rng + ?Sized>(
    n: usize,
    tasks: &TaskSet,
    placement: Placement,
    cfg: &UserControlledConfig,
    rng: &mut R,
) -> UserControlledOutcome {
    run_user_controlled_with_stats(n, tasks, placement, cfg, rng).0
}

/// [`run_user_controlled`] plus the engine's deterministic observability
/// counters — the sweep drivers aggregate these per sweep without
/// holding a stepper across the harness fan-out. Reading the counters
/// touches no RNG, so both entry points consume the identical stream.
pub fn run_user_controlled_with_stats<R: Rng + ?Sized>(
    n: usize,
    tasks: &TaskSet,
    placement: Placement,
    cfg: &UserControlledConfig,
    rng: &mut R,
) -> (UserControlledOutcome, EngineStats) {
    let mut stepper = UserControlledStepper::new(n, tasks, placement, cfg, rng);
    while !stepper.round(rng) {}
    let stats = stepper.obs_stats();
    (stepper.into_outcome(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn balanced_start_takes_zero_rounds() {
        let out = run_user_controlled(
            10,
            &TaskSet::uniform(10),
            Placement::RoundRobin,
            &UserControlledConfig::default(),
            &mut rng(1),
        );
        assert_eq!(out.rounds, 0);
        assert!(out.balanced());
    }

    #[test]
    fn paper_simulation_setting_balances() {
        // Section 7 setting (scaled down): n = 100, all tasks on one
        // resource, eps = 0.2, alpha = 1.
        let tasks = TaskSet::new(
            std::iter::repeat_n(50.0, 5)
                .chain(std::iter::repeat_n(1.0, 750))
                .collect::<Vec<_>>(),
        );
        let out = run_user_controlled(
            100,
            &tasks,
            Placement::AllOnOne(0),
            &UserControlledConfig::default(),
            &mut rng(2),
        );
        assert!(out.balanced());
        assert!(out.final_max_load <= out.threshold);
        // Theorem-11 magnitude: O((wmax/wmin) log m) with tiny constants at
        // alpha = 1; generous cap to keep the test robust.
        assert!(out.rounds < 5_000, "took {} rounds", out.rounds);
    }

    #[test]
    fn tight_threshold_balances() {
        let tasks = TaskSet::uniform(200);
        let cfg = UserControlledConfig { threshold: ThresholdPolicy::Tight, ..Default::default() };
        let out = run_user_controlled(20, &tasks, Placement::AllOnOne(0), &cfg, &mut rng(3));
        assert!(out.balanced());
        assert!(out.final_max_load <= out.threshold);
    }

    #[test]
    fn heavier_heterogeneity_takes_longer_on_average() {
        // Theorem 11's wmax/wmin factor should be visible: average rounds
        // with wmax = 32 must exceed average rounds with wmax = 1.
        let n = 50;
        let trials = 30;
        let mean_rounds = |w_max: f64, seed0: u64| -> f64 {
            let tasks = if w_max > 1.0 {
                let mut w = vec![1.0; 499];
                w.push(w_max);
                TaskSet::new(w)
            } else {
                TaskSet::uniform(500)
            };
            let total: u64 = (0..trials)
                .map(|s| {
                    run_user_controlled(
                        n,
                        &tasks,
                        Placement::AllOnOne(0),
                        &UserControlledConfig::default(),
                        &mut rng(seed0 + s),
                    )
                    .rounds
                })
                .sum();
            total as f64 / trials as f64
        };
        let light = mean_rounds(1.0, 100);
        let heavy = mean_rounds(32.0, 200);
        assert!(heavy > light, "heterogeneity should slow balancing: light {light}, heavy {heavy}");
    }

    #[test]
    fn small_alpha_slows_balancing() {
        let tasks = TaskSet::uniform(300);
        let trials = 20;
        let mean = |alpha: f64| -> f64 {
            let cfg = UserControlledConfig { alpha, ..Default::default() };
            (0..trials)
                .map(|s| {
                    run_user_controlled(30, &tasks, Placement::AllOnOne(0), &cfg, &mut rng(s))
                        .rounds as f64
                })
                .sum::<f64>()
                / trials as f64
        };
        assert!(mean(0.1) > mean(1.0));
    }

    #[test]
    fn round_cap_reports_incomplete() {
        let tasks = TaskSet::uniform(1000);
        let cfg = UserControlledConfig { max_rounds: 1, ..Default::default() };
        let out = run_user_controlled(100, &tasks, Placement::AllOnOne(0), &cfg, &mut rng(5));
        assert!(!out.balanced());
        assert_eq!(out.rounds, 1);
    }

    #[test]
    fn potential_hits_zero_at_balance() {
        let tasks = TaskSet::new((0..150).map(|i| 1.0 + (i % 4) as f64).collect::<Vec<_>>());
        let cfg = UserControlledConfig { track_potential: true, ..Default::default() };
        let out = run_user_controlled(25, &tasks, Placement::AllOnOne(0), &cfg, &mut rng(6));
        assert!(out.balanced());
        assert_eq!(*out.potential_series.last().unwrap(), 0.0);
        assert!(out.potential_series[0] > 0.0);
    }

    #[test]
    fn user_potential_can_increase_transiently() {
        // Unlike the resource-controlled potential (Observation 4), the
        // user-controlled potential may go up: a task migrating from below
        // the threshold can land above the threshold elsewhere. Verify the
        // potential bookkeeping permits this with a hand-built move: the
        // simulator must not enforce monotonicity.
        use crate::potential::total_potential;
        use crate::stack::ResourceStack;
        // Weights: task 0 is heavy (4.0) and sits *below* T = 5 on r0;
        // r1 is exactly at the threshold.
        let weights = vec![4.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 5.0];
        let t = 5.0;
        let mut r0 = ResourceStack::new();
        r0.push(0, 4.0); // below (h=0, 0+4<=5)
        for id in 1..=3 {
            r0.push(id, 1.0); // heights 4,5,6: task1 below, 2 above? h=5 >= T -> above
        }
        let mut r1 = ResourceStack::new();
        r1.push(8, 5.0); // exactly at threshold: not overloaded
        let stacks_before = vec![r0.clone(), r1.clone()];
        let phi_before = total_potential(&stacks_before, t, &weights);
        assert!(phi_before > 0.0);

        // Move the heavy below-threshold task 0 from r0 to r1. r0's stack
        // compacts (everything becomes below), r1 becomes overloaded by 4.
        let mut r0_after = ResourceStack::new();
        for id in 1..=3 {
            r0_after.push(id, 1.0);
        }
        let mut r1_after = r1.clone();
        r1_after.push(0, 4.0);
        let stacks_after = vec![r0_after, r1_after];
        let phi_after = total_potential(&stacks_after, t, &weights);
        assert!(
            phi_after > phi_before,
            "moving a heavy below-task onto a full resource must raise Φ: {phi_before} -> {phi_after}"
        );
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let tasks = TaskSet::uniform(100);
        let cfg = UserControlledConfig::default();
        let a = run_user_controlled(10, &tasks, Placement::AllOnOne(0), &cfg, &mut rng(42));
        let b = run_user_controlled(10, &tasks, Placement::AllOnOne(0), &cfg, &mut rng(42));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn zero_alpha_rejected() {
        let cfg = UserControlledConfig { alpha: 0.0, ..Default::default() };
        run_user_controlled(5, &TaskSet::uniform(10), Placement::AllOnOne(0), &cfg, &mut rng(0));
    }

    #[test]
    fn giant_task_cutting_threshold_still_terminates() {
        // One task heavier than W/n: it always cuts wherever it lands, but
        // the threshold includes +wmax so some resource can accept it.
        let mut w = vec![1.0; 50];
        w.push(40.0);
        let tasks = TaskSet::new(w);
        let out = run_user_controlled(
            10,
            &tasks,
            Placement::AllOnOne(0),
            &UserControlledConfig::default(),
            &mut rng(8),
        );
        assert!(out.balanced());
    }

    #[test]
    fn manual_stepping_matches_one_shot_run() {
        let tasks = TaskSet::new((0..120).map(|i| 1.0 + (i % 6) as f64).collect::<Vec<_>>());
        let cfg = UserControlledConfig { track_potential: true, ..Default::default() };
        let one_shot = run_user_controlled(30, &tasks, Placement::AllOnOne(0), &cfg, &mut rng(91));

        // `step` ignores the graph (it exists only for signature parity
        // with the sibling steppers), so any graph drives it.
        let g = tlb_graphs::generators::complete(1);
        let mut r = rng(91);
        let mut stepper =
            UserControlledStepper::new(30, &tasks, Placement::AllOnOne(0), &cfg, &mut r);
        while !stepper.step(&g, &mut r) {}
        assert_eq!(stepper.into_outcome(), one_shot);
    }

    #[test]
    fn trace_recording_matches_outcome_aggregates() {
        let tasks = TaskSet::new((0..150).map(|i| 1.0 + (i % 4) as f64).collect::<Vec<_>>());
        let cfg = UserControlledConfig {
            record_trace: true,
            track_potential: true,
            ..Default::default()
        };
        let out = run_user_controlled(25, &tasks, Placement::AllOnOne(0), &cfg, &mut rng(6));
        assert!(out.balanced());
        let trace = out.trace.as_ref().expect("record_trace must produce a trace");
        assert_eq!(trace.rounds() as u64, out.rounds);
        assert_eq!(trace.total_migrations(), out.migrations);
        assert_eq!(trace.potential_series(), out.potential_series);
        assert_eq!(trace.records.last().unwrap().max_load, out.final_max_load);
    }
}
