//! The drift theorem (paper Theorem 6, after Doerr–Pohl) and the paper's
//! closed-form balancing-time bounds derived from it.
//!
//! These are executable versions of the paper's statements; the experiment
//! harness prints them next to measured balancing times so EXPERIMENTS.md
//! can compare shape and constants.

/// Theorem 6: if `E[V(t) − V(t+1) | V(t) = s] ≥ δ·s` then
/// `E[T] ≤ (1 + ln(s₀/s_min)) / δ`.
///
/// # Panics
/// If `delta <= 0`, `s0 < s_min`, or `s_min <= 0`.
pub fn drift_bound(delta: f64, s0: f64, s_min: f64) -> f64 {
    assert!(delta > 0.0, "drift theorem needs positive expected decay");
    assert!(s_min > 0.0 && s0 >= s_min, "need 0 < s_min <= s0");
    (1.0 + (s0 / s_min).ln()) / delta
}

/// Theorem 3 (resource-controlled, above-average threshold): with
/// probability at least `1 − n^{-c}` all tasks are allocated within
/// `2(c+1)·τ(G)·log m / log(2(1+ε)/(2+ε))` steps.
pub fn theorem3_steps(c: f64, epsilon: f64, mixing_time: f64, m: usize) -> f64 {
    assert!(epsilon > 0.0, "Theorem 3 needs a strictly above-average threshold");
    assert!(c > 0.0 && mixing_time > 0.0 && m >= 1);
    let base = (2.0 * (1.0 + epsilon) / (2.0 + epsilon)).ln();
    2.0 * (c + 1.0) * mixing_time * (m as f64).ln() / base
}

/// Theorem 7 (resource-controlled, tight threshold `W/n + 2w_max`):
/// `E[T] = O(H(G)·ln W)`. The constant from the proof is `δ = 1/4` per
/// `2H(G)`-step phase with `s₀ ≤ W`, `s_min = w_min = 1`:
/// `E[T] ≤ 2H(G)·(1 + ln W)·4`.
pub fn theorem7_bound(hitting_time: f64, total_weight: f64) -> f64 {
    assert!(hitting_time > 0.0 && total_weight >= 1.0);
    2.0 * hitting_time * drift_bound(0.25, total_weight, 1.0)
}

/// The α the user-controlled analysis requires for above-average
/// thresholds (Lemma 10): `α = ε / (120(1+ε))`.
pub fn analysis_alpha(epsilon: f64) -> f64 {
    assert!(epsilon > 0.0);
    epsilon / (120.0 * (1.0 + epsilon))
}

/// Theorem 11 (user-controlled, above-average threshold, complete graph):
/// `E[T] = 2·(1+ε)/(α·ε)·(w_max/w_min)·log m`.
pub fn theorem11_bound(epsilon: f64, alpha: f64, w_max: f64, w_min: f64, m: usize) -> f64 {
    assert!(epsilon > 0.0 && alpha > 0.0 && w_max >= w_min && w_min > 0.0 && m >= 1);
    2.0 * (1.0 + epsilon) / (alpha * epsilon) * (w_max / w_min) * (m as f64).ln()
}

/// Theorem 12 (user-controlled, tight threshold `W/n + w_max`, complete
/// graph, `α ≤ 1/(120n)`): `E[T] = 2·(n/α)·(w_max/w_min)·log m`.
pub fn theorem12_bound(n: usize, alpha: f64, w_max: f64, w_min: f64, m: usize) -> f64 {
    assert!(n >= 1 && alpha > 0.0 && w_max >= w_min && w_min > 0.0 && m >= 1);
    2.0 * (n as f64 / alpha) * (w_max / w_min) * (m as f64).ln()
}

/// Lemma 10's per-step expected relative potential decay
/// `δ = α·ε/(2(1+ε)) · w_min/w_max` — the quantity experiment A6 measures
/// empirically.
pub fn lemma10_delta(epsilon: f64, alpha: f64, w_max: f64, w_min: f64) -> f64 {
    assert!(epsilon > 0.0 && alpha > 0.0 && w_max >= w_min && w_min > 0.0);
    alpha * epsilon / (2.0 * (1.0 + epsilon)) * (w_min / w_max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_bound_matches_formula() {
        // delta = 1/2, s0 = e, smin = 1 => (1 + 1)/0.5 = 4
        let b = drift_bound(0.5, std::f64::consts::E, 1.0);
        assert!((b - 4.0).abs() < 1e-12);
    }

    #[test]
    fn drift_bound_monotone_in_s0() {
        assert!(drift_bound(0.1, 100.0, 1.0) < drift_bound(0.1, 1000.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "positive expected decay")]
    fn drift_bound_rejects_zero_delta() {
        drift_bound(0.0, 10.0, 1.0);
    }

    #[test]
    fn theorem3_scales_with_mixing_and_log_m() {
        let t1 = theorem3_steps(1.0, 0.2, 10.0, 1000);
        let t2 = theorem3_steps(1.0, 0.2, 20.0, 1000);
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
        let t3 = theorem3_steps(1.0, 0.2, 10.0, 1_000_000);
        assert!((t3 / t1 - 2.0).abs() < 1e-12); // log m doubles
    }

    #[test]
    fn theorem3_decreases_with_epsilon() {
        assert!(theorem3_steps(1.0, 1.0, 10.0, 100) < theorem3_steps(1.0, 0.1, 10.0, 100));
    }

    #[test]
    fn theorem7_linear_in_hitting_time() {
        let a = theorem7_bound(100.0, 1e6);
        let b = theorem7_bound(200.0, 1e6);
        assert!((b / a - 2.0).abs() < 1e-12);
    }

    #[test]
    fn analysis_alpha_is_conservative() {
        // For eps = 0.2 the paper's alpha is 1/720 — far below the
        // simulated alpha = 1, which is the point of Section 7.
        let a = analysis_alpha(0.2);
        assert!((a - 0.2 / 144.0).abs() < 1e-12);
        assert!(a < 0.01);
    }

    #[test]
    fn theorem11_carries_heterogeneity_factor() {
        let uniform = theorem11_bound(0.2, 1.0, 1.0, 1.0, 1000);
        let weighted = theorem11_bound(0.2, 1.0, 50.0, 1.0, 1000);
        assert!((weighted / uniform - 50.0).abs() < 1e-9);
    }

    #[test]
    fn theorem12_carries_n_over_alpha() {
        let b1 = theorem12_bound(100, 1.0 / 12000.0, 1.0, 1.0, 1000);
        let b2 = theorem12_bound(200, 1.0 / 24000.0, 1.0, 1.0, 1000);
        assert!((b2 / b1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn lemma10_delta_at_paper_alpha() {
        let eps = 0.2;
        let alpha = analysis_alpha(eps);
        let d = lemma10_delta(eps, alpha, 50.0, 1.0);
        assert!(d > 0.0 && d < 1.0);
        // delta shrinks linearly with heterogeneity
        let d_uniform = lemma10_delta(eps, alpha, 1.0, 1.0);
        assert!((d_uniform / d - 50.0).abs() < 1e-9);
    }
}
