//! Weight distributions / workload generators.
//!
//! The paper's two simulation workloads are generated exactly:
//!
//! * [`WeightSpec::TwoPoint`] — Figure 1: `k` heavy tasks of weight
//!   `w_max = 50` and `m(W, k) = W − k·w_max` unit tasks, parameterized by
//!   total weight `W`.
//! * [`WeightSpec::SingleHeavy`] — Figure 2: one task of weight `w_max`,
//!   the remaining `m − 1` of weight 1.
//!
//! Additional distributions (uniform range, exponential, truncated Pareto)
//! support the extension experiments; all samplers clamp to `w ≥ 1`
//! following the paper's `w_min = 1` normalization.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::task::TaskSet;

/// Sample one weight from Pareto(1, `alpha`) truncated at `cap` by
/// inverse CDF: `F(x) = (1 − x^−α) / (1 − cap^−α)`. Shared by
/// [`WeightSpec::ParetoTruncated`] and the online simulation's arrival
/// weights, so both draw from the same distribution.
///
/// # Panics
/// If `alpha <= 0` or `cap < 1`.
pub fn sample_pareto_truncated<R: Rng + ?Sized>(alpha: f64, cap: f64, rng: &mut R) -> f64 {
    assert!(alpha > 0.0 && cap >= 1.0, "invalid Pareto parameters ({alpha}, {cap})");
    let tail = 1.0 - cap.powf(-alpha);
    let u: f64 = rng.gen_range(0.0..1.0);
    (1.0 - u * tail).powf(-1.0 / alpha).min(cap)
}

/// A recipe for generating a weighted task set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WeightSpec {
    /// `m` unit-weight tasks — the Ackermann/Hoefer–Sauerwald baseline.
    Uniform {
        /// Number of tasks.
        m: usize,
    },
    /// Figure-1 workload: `k` tasks of weight `heavy` plus enough unit
    /// tasks to reach total weight `total` exactly.
    TwoPoint {
        /// Target total weight `W`.
        total: f64,
        /// Number of heavy tasks `k`.
        k: usize,
        /// Heavy task weight `w_max` (50 in the paper's Figure 1).
        heavy: f64,
    },
    /// Figure-2 workload: one task of weight `heavy`, `m − 1` unit tasks.
    SingleHeavy {
        /// Number of tasks `m` (including the heavy one).
        m: usize,
        /// Weight of the single heavy task.
        heavy: f64,
    },
    /// Independent `Uniform[1, hi]` weights.
    UniformRange {
        /// Number of tasks.
        m: usize,
        /// Upper endpoint (inclusive); must be `>= 1`.
        hi: f64,
    },
    /// `1 + Exp(mean − 1)` weights — exponential service times shifted to
    /// respect `w_min = 1`.
    Exponential {
        /// Number of tasks.
        m: usize,
        /// Mean weight (must be `>= 1`).
        mean: f64,
    },
    /// Truncated Pareto on `[1, cap]` with shape `alpha` — heavy-tailed
    /// workloads, the regime where `w_max/w_min` in Theorem 11 bites.
    ParetoTruncated {
        /// Number of tasks.
        m: usize,
        /// Tail exponent (`> 0`); smaller is heavier.
        alpha: f64,
        /// Upper truncation (`>= 1`).
        cap: f64,
    },
}

impl WeightSpec {
    /// Number of tasks this spec will generate.
    pub fn num_tasks(&self) -> usize {
        match *self {
            WeightSpec::Uniform { m }
            | WeightSpec::SingleHeavy { m, .. }
            | WeightSpec::UniformRange { m, .. }
            | WeightSpec::Exponential { m, .. }
            | WeightSpec::ParetoTruncated { m, .. } => m,
            WeightSpec::TwoPoint { total, k, heavy } => {
                let units = (total - k as f64 * heavy).max(0.0).round() as usize;
                units + k
            }
        }
    }

    /// Generate the task set. Deterministic specs ignore the RNG.
    ///
    /// # Panics
    /// On infeasible parameters (e.g. `TwoPoint` with `k·heavy > total`,
    /// or `m == 0`).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> TaskSet {
        match *self {
            WeightSpec::Uniform { m } => TaskSet::uniform(m),
            WeightSpec::TwoPoint { total, k, heavy } => {
                assert!(heavy >= 1.0, "heavy weight must be >= 1");
                let heavy_total = k as f64 * heavy;
                assert!(
                    heavy_total <= total,
                    "k*heavy = {heavy_total} exceeds requested total weight {total}"
                );
                let units = (total - heavy_total).round() as usize;
                assert!(units + k > 0, "empty workload");
                let mut w = Vec::with_capacity(units + k);
                w.extend(std::iter::repeat_n(heavy, k));
                w.extend(std::iter::repeat_n(1.0, units));
                TaskSet::new(w)
            }
            WeightSpec::SingleHeavy { m, heavy } => {
                assert!(m >= 1, "need at least the heavy task");
                assert!(heavy >= 1.0, "heavy weight must be >= 1");
                let mut w = Vec::with_capacity(m);
                w.push(heavy);
                w.extend(std::iter::repeat_n(1.0, m - 1));
                TaskSet::new(w)
            }
            WeightSpec::UniformRange { m, hi } => {
                assert!(m >= 1 && hi >= 1.0, "need m >= 1 and hi >= 1");
                TaskSet::new((0..m).map(|_| rng.gen_range(1.0..=hi)).collect())
            }
            WeightSpec::Exponential { m, mean } => {
                assert!(m >= 1 && mean >= 1.0, "need m >= 1 and mean >= 1");
                let lambda_inv = mean - 1.0;
                TaskSet::new(
                    (0..m)
                        .map(|_| {
                            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                            1.0 + lambda_inv * (-u.ln())
                        })
                        .collect(),
                )
            }
            WeightSpec::ParetoTruncated { m, alpha, cap } => {
                assert!(m >= 1 && alpha > 0.0 && cap >= 1.0, "invalid Pareto parameters");
                TaskSet::new((0..m).map(|_| sample_pareto_truncated(alpha, cap, rng)).collect())
            }
        }
    }

    /// Paper Figure 1 workload: total weight `w_total`, `k` heavy tasks of
    /// weight 50.
    pub fn figure1(w_total: f64, k: usize) -> Self {
        WeightSpec::TwoPoint { total: w_total, k, heavy: 50.0 }
    }

    /// Paper Figure 2 workload: `m` tasks, one of weight `w_max`.
    pub fn figure2(m: usize, w_max: f64) -> Self {
        if w_max <= 1.0 {
            WeightSpec::Uniform { m }
        } else {
            WeightSpec::SingleHeavy { m, heavy: w_max }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xDEADBEEF)
    }

    #[test]
    fn two_point_hits_total_weight_exactly() {
        let spec = WeightSpec::figure1(5000.0, 20);
        let t = spec.generate(&mut rng());
        assert_eq!(t.total_weight(), 5000.0);
        assert_eq!(t.w_max(), 50.0);
        assert_eq!(t.w_min(), 1.0);
        // m(W, k) = W - k*wmax unit tasks plus k heavy ones.
        assert_eq!(t.len(), 5000 - 20 * 50 + 20);
        assert_eq!(spec.num_tasks(), t.len());
    }

    #[test]
    fn two_point_all_heavy_edge_case() {
        let spec = WeightSpec::TwoPoint { total: 100.0, k: 2, heavy: 50.0 };
        let t = spec.generate(&mut rng());
        assert_eq!(t.len(), 2);
        assert!(t.is_uniform());
    }

    #[test]
    #[should_panic(expected = "exceeds requested total")]
    fn two_point_rejects_overweight_heavies() {
        WeightSpec::TwoPoint { total: 99.0, k: 2, heavy: 50.0 }.generate(&mut rng());
    }

    #[test]
    fn single_heavy_structure() {
        let t = WeightSpec::figure2(1000, 64.0).generate(&mut rng());
        assert_eq!(t.len(), 1000);
        assert_eq!(t.w_max(), 64.0);
        assert_eq!(t.weights().iter().filter(|&&w| w > 1.0).count(), 1);
        assert_eq!(t.total_weight(), 999.0 + 64.0);
    }

    #[test]
    fn figure2_with_unit_wmax_degrades_to_uniform() {
        let t = WeightSpec::figure2(10, 1.0).generate(&mut rng());
        assert!(t.is_uniform());
    }

    #[test]
    fn uniform_range_respects_bounds() {
        let t = WeightSpec::UniformRange { m: 500, hi: 9.0 }.generate(&mut rng());
        assert!(t.w_min() >= 1.0);
        assert!(t.w_max() <= 9.0);
        assert_eq!(t.len(), 500);
    }

    #[test]
    fn exponential_mean_roughly_right() {
        let t = WeightSpec::Exponential { m: 30_000, mean: 4.0 }.generate(&mut rng());
        assert!(t.w_min() >= 1.0);
        let avg = t.w_avg();
        assert!((avg - 4.0).abs() < 0.1, "avg {avg}");
    }

    #[test]
    fn pareto_respects_truncation() {
        let t =
            WeightSpec::ParetoTruncated { m: 10_000, alpha: 1.2, cap: 100.0 }.generate(&mut rng());
        assert!(t.w_min() >= 1.0);
        assert!(t.w_max() <= 100.0 + 1e-9);
        // Heavy-tailed: the max should land well above the mean.
        assert!(t.w_max() > 3.0 * t.w_avg());
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let spec = WeightSpec::Exponential { m: 100, mean: 2.0 };
        let a = spec.generate(&mut SmallRng::seed_from_u64(5));
        let b = spec.generate(&mut SmallRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
