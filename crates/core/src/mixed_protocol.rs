//! Extension (paper Section 8 future work): a **mixed protocol** that is
//! both resource-based and user-based.
//!
//! The paper's conclusion asks about protocols combining both migration
//! modes. This implementation composes them on arbitrary graphs:
//!
//! * **user-style decisions** — each task on an overloaded resource `r`
//!   independently decides to leave with the Algorithm-6.1 probability
//!   `α·⌈φ_r/w_max⌉/b_r` (no resource-side coordination), and
//! * **resource-style movement** — a leaving task travels one max-degree
//!   random-walk step along the graph (no global view; works on any
//!   topology, unlike Algorithm 6.1's uniform jump).
//!
//! The two paper protocols are recovered at the extremes:
//!
//! * with `departure = Departure::AllActive` the decision rule degenerates
//!   to Algorithm 5.1 exactly (every cutting/above task leaves each
//!   round), and
//! * on the complete graph with `Departure::Bernoulli`, a walk step *is* a
//!   uniform jump over the other `n−1` resources, so the protocol is
//!   Algorithm 6.1 up to self-jumps.
//!
//! The key behavioural difference from Algorithm 5.1: under Bernoulli
//! departures a task below the threshold may leave (and later land above
//! it elsewhere), so the potential is **not** monotone — the mixed
//! protocol inherits the user-controlled analysis, not Observation 4.

use rand::Rng;
use serde::{Deserialize, Serialize};
use tlb_graphs::{Graph, NodeId};
use tlb_walks::{WalkKind, Walker};

use crate::placement::Placement;
use crate::potential::{is_balanced, max_load, total_potential};
use crate::stack::ResourceStack;
use crate::task::{TaskId, TaskSet};
use crate::threshold::ThresholdPolicy;

/// Departure rule of the mixed protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Departure {
    /// Every cutting/above task leaves each round (Algorithm-5.1 rule).
    AllActive,
    /// Each task on an overloaded resource leaves independently with
    /// probability `α·⌈φ_r/w_max⌉/b_r` (Algorithm-6.1 rule).
    Bernoulli,
}

/// Configuration of a mixed run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedConfig {
    /// Threshold policy.
    pub threshold: ThresholdPolicy,
    /// Departure rule.
    pub departure: Departure,
    /// Migration damping `α` (only used by [`Departure::Bernoulli`]).
    pub alpha: f64,
    /// Which walk moves departing tasks.
    pub walk: WalkKind,
    /// Safety cap on rounds.
    pub max_rounds: u64,
    /// Record `Φ(t)` after every round.
    pub track_potential: bool,
}

impl Default for MixedConfig {
    fn default() -> Self {
        MixedConfig {
            threshold: ThresholdPolicy::AboveAverage { epsilon: 0.2 },
            departure: Departure::Bernoulli,
            alpha: 1.0,
            walk: WalkKind::MaxDegree,
            max_rounds: 10_000_000,
            track_potential: false,
        }
    }
}

/// Result of a mixed run (same shape as the paper protocols' outcomes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedOutcome {
    /// Rounds executed until balance (or the cap).
    pub rounds: u64,
    /// Whether balance was reached within `max_rounds`.
    pub completed: bool,
    /// Total migrations performed.
    pub migrations: u64,
    /// The threshold value used.
    pub threshold: f64,
    /// `Φ` after each round if tracked.
    pub potential_series: Vec<f64>,
    /// Maximum load at termination.
    pub final_max_load: f64,
    /// Per-resource loads at termination.
    pub final_loads: Vec<f64>,
}

impl MixedOutcome {
    /// Whether the run ended balanced.
    pub fn balanced(&self) -> bool {
        self.completed
    }
}

/// Run the mixed protocol on an arbitrary graph.
///
/// # Panics
/// If the graph is empty, `alpha <= 0` with Bernoulli departures, or the
/// placement is invalid.
pub fn run_mixed<R: Rng + ?Sized>(
    g: &Graph,
    tasks: &TaskSet,
    placement: Placement,
    cfg: &MixedConfig,
    rng: &mut R,
) -> MixedOutcome {
    let n = g.num_nodes();
    assert!(n > 0, "need at least one resource");
    if cfg.departure == Departure::Bernoulli {
        assert!(cfg.alpha > 0.0, "alpha must be positive, got {}", cfg.alpha);
    }
    let weights = tasks.weights();
    let w_max = tasks.w_max();
    let threshold = cfg.threshold.value(tasks.total_weight(), n, w_max);
    let walker = Walker::new(g, cfg.walk);

    let mut stacks: Vec<ResourceStack> = vec![ResourceStack::new(); n];
    for (i, &loc) in placement.materialize(tasks.len(), n, rng).iter().enumerate() {
        stacks[loc as usize].push(i as TaskId, weights[i]);
    }

    let mut potential_series = Vec::new();
    if cfg.track_potential {
        potential_series.push(total_potential(&stacks, threshold, weights));
    }

    let mut migrations = 0u64;
    let mut pending: Vec<(TaskId, NodeId)> = Vec::new();
    // Reused across rounds: the stack drains append into this buffer
    // instead of allocating a fresh vector per overloaded resource.
    let mut departing: Vec<TaskId> = Vec::new();
    let mut rounds = 0u64;
    let mut completed = is_balanced(&stacks, threshold);

    while !completed && rounds < cfg.max_rounds {
        rounds += 1;
        pending.clear();
        for r in 0..n as NodeId {
            let stack = &mut stacks[r as usize];
            if !stack.is_overloaded(threshold) {
                continue;
            }
            departing.clear();
            match cfg.departure {
                Departure::AllActive => {
                    stack.remove_active_into(threshold, weights, &mut departing);
                }
                Departure::Bernoulli => {
                    let psi = stack.psi(threshold, weights, w_max);
                    let p = (cfg.alpha * psi as f64 / stack.num_tasks() as f64).min(1.0);
                    stack.drain_bernoulli_into(p, weights, rng, &mut departing);
                }
            }
            for &t in &departing {
                pending.push((t, walker.step(r, rng)));
            }
        }
        migrations += pending.len() as u64;
        for &(t, dest) in &pending {
            stacks[dest as usize].push(t, weights[t as usize]);
        }
        if cfg.track_potential {
            potential_series.push(total_potential(&stacks, threshold, weights));
        }
        completed = is_balanced(&stacks, threshold);
    }

    MixedOutcome {
        rounds,
        completed,
        migrations,
        threshold,
        potential_series,
        final_max_load: max_load(&stacks),
        final_loads: stacks.iter().map(ResourceStack::load).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tlb_graphs::generators::{complete, torus2d};

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn mixed_balances_on_torus_with_bernoulli_departures() {
        let g = torus2d(8, 8);
        let tasks = TaskSet::new((0..640).map(|i| 1.0 + (i % 7) as f64).collect::<Vec<_>>());
        let out =
            run_mixed(&g, &tasks, Placement::AllOnOne(0), &MixedConfig::default(), &mut rng(1));
        assert!(out.balanced());
        assert!(out.final_max_load <= out.threshold);
        let total: f64 = out.final_loads.iter().sum();
        assert!((total - tasks.total_weight()).abs() < 1e-6);
    }

    #[test]
    fn all_active_mode_equals_resource_protocol_distributionally() {
        // With AllActive departures the mixed protocol IS Algorithm 5.1;
        // under the same seed both must produce identical round counts.
        use crate::resource_protocol::{run_resource_controlled, ResourceControlledConfig};
        let g = torus2d(6, 6);
        let tasks = TaskSet::uniform(360);
        let mixed_cfg = MixedConfig { departure: Departure::AllActive, ..Default::default() };
        let res_cfg = ResourceControlledConfig::default();
        let a = run_mixed(&g, &tasks, Placement::AllOnOne(0), &mixed_cfg, &mut rng(9));
        let b = run_resource_controlled(&g, &tasks, Placement::AllOnOne(0), &res_cfg, &mut rng(9));
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.final_loads, b.final_loads);
    }

    #[test]
    fn mixed_on_complete_graph_tracks_user_protocol_scale() {
        // On K_n a walk step is a uniform jump (excluding self), so the
        // mixed Bernoulli protocol should balance within a small factor of
        // Algorithm 6.1's round count.
        use crate::user_protocol::{run_user_controlled, UserControlledConfig};
        let n = 100;
        let g = complete(n);
        let tasks = TaskSet::uniform(1000);
        let trials = 20;
        let mean = |f: &mut dyn FnMut(u64) -> u64| -> f64 {
            (0..trials).map(|s| f(s) as f64).sum::<f64>() / trials as f64
        };
        let mixed_cfg = MixedConfig::default();
        let user_cfg = UserControlledConfig::default();
        let mixed_mean = mean(&mut |s| {
            run_mixed(&g, &tasks, Placement::AllOnOne(0), &mixed_cfg, &mut rng(s)).rounds
        });
        let user_mean = mean(&mut |s| {
            run_user_controlled(n, &tasks, Placement::AllOnOne(0), &user_cfg, &mut rng(1000 + s))
                .rounds
        });
        let ratio = mixed_mean / user_mean;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "mixed ({mixed_mean}) vs user ({user_mean}) diverge: ratio {ratio}"
        );
    }

    #[test]
    fn mixed_potential_not_necessarily_monotone() {
        // Bernoulli departures can move below-threshold tasks, so Φ may
        // rise transiently; make sure tracking records real values and the
        // series ends at zero.
        let g = torus2d(5, 5);
        let tasks = TaskSet::new((0..500).map(|i| 1.0 + (i % 3) as f64).collect::<Vec<_>>());
        let cfg = MixedConfig { track_potential: true, ..Default::default() };
        let out = run_mixed(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng(3));
        assert!(out.balanced());
        assert_eq!(*out.potential_series.last().unwrap(), 0.0);
        assert!(out.potential_series[0] > 0.0);
    }

    #[test]
    fn round_cap_respected() {
        let g = torus2d(8, 8);
        let tasks = TaskSet::uniform(6400);
        let cfg = MixedConfig { max_rounds: 2, ..Default::default() };
        let out = run_mixed(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng(4));
        assert!(!out.balanced());
        assert_eq!(out.rounds, 2);
    }
}
