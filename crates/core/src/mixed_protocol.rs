//! Extension (paper Section 8 future work): a **mixed protocol** that is
//! both resource-based and user-based.
//!
//! The paper's conclusion asks about protocols combining both migration
//! modes. This implementation composes them on arbitrary graphs:
//!
//! * **user-style decisions** — each task on an overloaded resource `r`
//!   independently decides to leave with the Algorithm-6.1 probability
//!   `α·⌈φ_r/w_max⌉/b_r` (no resource-side coordination), and
//! * **resource-style movement** — a leaving task travels one max-degree
//!   random-walk step along the graph (no global view; works on any
//!   topology, unlike Algorithm 6.1's uniform jump).
//!
//! Exposed as the one-shot [`run_mixed`] plus the resumable
//! [`MixedStepper`] engine it wraps, like the two paper protocols.
//!
//! The two paper protocols are recovered at the extremes:
//!
//! * with `departure = Departure::AllActive` the decision rule degenerates
//!   to Algorithm 5.1 exactly (every cutting/above task leaves each
//!   round), and
//! * on the complete graph with `Departure::Bernoulli`, a walk step *is* a
//!   uniform jump over the other `n−1` resources, so the protocol is
//!   Algorithm 6.1 up to self-jumps.
//!
//! The key behavioural difference from Algorithm 5.1: under Bernoulli
//! departures a task below the threshold may leave (and later land above
//! it elsewhere), so the potential is **not** monotone — the mixed
//! protocol inherits the user-controlled analysis, not Observation 4.

use rand::Rng;
use serde::{Deserialize, Serialize};
use tlb_graphs::{Graph, NodeId};
use tlb_walks::WalkKind;

use crate::placement::Placement;
use crate::protocol::{EngineStats, ProtocolOutcome, RoundEngine};
use crate::stack::ResourceStack;
use crate::task::{TaskId, TaskSet};
use crate::threshold::ThresholdPolicy;

/// Departure rule of the mixed protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Departure {
    /// Every cutting/above task leaves each round (Algorithm-5.1 rule).
    AllActive,
    /// Each task on an overloaded resource leaves independently with
    /// probability `α·⌈φ_r/w_max⌉/b_r` (Algorithm-6.1 rule).
    Bernoulli,
}

/// Configuration of a mixed run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedConfig {
    /// Threshold policy.
    pub threshold: ThresholdPolicy,
    /// Departure rule.
    pub departure: Departure,
    /// Migration damping `α` (only used by [`Departure::Bernoulli`]).
    pub alpha: f64,
    /// Which walk moves departing tasks.
    pub walk: WalkKind,
    /// Safety cap on rounds.
    pub max_rounds: u64,
    /// Record `Φ(t)` after every round.
    pub track_potential: bool,
    /// Record a full `RoundTrace` in the outcome (one stack scan per
    /// resource per round, like `track_potential`).
    pub record_trace: bool,
}

impl Default for MixedConfig {
    fn default() -> Self {
        MixedConfig {
            threshold: ThresholdPolicy::AboveAverage { epsilon: 0.2 },
            departure: Departure::Bernoulli,
            alpha: 1.0,
            walk: WalkKind::MaxDegree,
            max_rounds: 10_000_000,
            track_potential: false,
            record_trace: false,
        }
    }
}

/// Result of a mixed run (an alias of the unified [`ProtocolOutcome`]).
pub type MixedOutcome = ProtocolOutcome;

/// Resumable engine of the mixed protocol: one [`step`] call is one round
/// (user-style departure coins, resource-style walk moves). The graph is
/// passed into each step, so the caller may swap it between rounds — the
/// online simulation runs this engine over a churned topology.
///
/// [`step`]: MixedStepper::step
#[derive(Debug, Clone)]
pub struct MixedStepper {
    cfg: MixedConfig,
    w_max: f64,
    eng: RoundEngine,
}

impl MixedStepper {
    /// Set up a run: materialize the placement (consuming RNG exactly as
    /// the one-shot entry point always has) and take the initial
    /// snapshots.
    ///
    /// # Panics
    /// If the graph is empty, `alpha <= 0` with Bernoulli departures, the
    /// placement is invalid, or `cfg.walk` is [`WalkKind::Simple`] on a
    /// graph with an isolated node (undefined there — rejected at
    /// construction instead of mid-trial).
    pub fn new<R: Rng + ?Sized>(
        g: &Graph,
        tasks: &TaskSet,
        placement: Placement,
        cfg: &MixedConfig,
        rng: &mut R,
    ) -> Self {
        let n = g.num_nodes();
        assert!(n > 0, "need at least one resource");
        assert!(
            cfg.walk != WalkKind::Simple || g.min_degree() > 0,
            "WalkKind::Simple is undefined on isolated nodes; this graph has one"
        );
        let weights = tasks.weights().to_vec();
        let w_max = tasks.w_max();
        let threshold = cfg.threshold.value(tasks.total_weight(), n, w_max);

        let mut stacks: Vec<ResourceStack> = vec![ResourceStack::new(); n];
        for (i, &loc) in placement.materialize(tasks.len(), n, rng).iter().enumerate() {
            stacks[loc as usize].push(i as TaskId, weights[i]);
        }

        Self::from_parts(stacks, weights, threshold, w_max, cfg.clone())
    }

    /// Resume from an existing stack configuration (the online-simulation
    /// entry point; consumes no RNG). `threshold` and `w_max` are taken as
    /// given so a dynamic caller can compute them over its live population
    /// only.
    ///
    /// # Panics
    /// If the stack vector is empty, or `alpha <= 0` with Bernoulli
    /// departures.
    pub fn from_parts(
        stacks: Vec<ResourceStack>,
        weights: Vec<f64>,
        threshold: f64,
        w_max: f64,
        cfg: MixedConfig,
    ) -> Self {
        if cfg.departure == Departure::Bernoulli {
            assert!(cfg.alpha > 0.0, "alpha must be positive, got {}", cfg.alpha);
        }
        let eng = RoundEngine::new(
            stacks,
            weights,
            threshold,
            cfg.max_rounds,
            cfg.track_potential,
            cfg.record_trace,
        );
        MixedStepper { cfg, w_max, eng }
    }

    /// Whether every load is at most the threshold.
    pub fn is_balanced(&self) -> bool {
        self.eng.is_balanced()
    }

    /// Whether the run is over: balanced, or the round cap was hit.
    pub fn is_done(&self) -> bool {
        self.eng.is_done()
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.eng.rounds()
    }

    /// Migrations performed so far.
    pub fn migrations(&self) -> u64 {
        self.eng.migrations()
    }

    /// The threshold this run balances against.
    pub fn threshold(&self) -> f64 {
        self.eng.threshold()
    }

    /// The per-resource stacks (index = resource id).
    pub fn stacks(&self) -> &[ResourceStack] {
        &self.eng.stacks
    }

    /// Weight per task id (freed slots of dynamic callers included).
    pub fn weights(&self) -> &[f64] {
        &self.eng.weights
    }

    /// The `w_max` this run's departure probabilities divide by — part of
    /// the resume surface, so a checkpointed stepper restarts with the
    /// identical migration law.
    pub fn w_max(&self) -> f64 {
        self.w_max
    }

    /// Deterministic observability counters accumulated so far.
    pub fn obs_stats(&self) -> EngineStats {
        self.eng.obs_stats()
    }

    /// Execute one round unless the run is already done. Returns
    /// [`is_done`](Self::is_done) after the round.
    pub fn step<R: Rng + ?Sized>(&mut self, g: &Graph, rng: &mut R) -> bool {
        if self.is_done() {
            return true;
        }
        // `new()` already rejects this, but `from_parts` has no graph and
        // the caller may swap in a churned graph between rounds — re-check
        // here (O(1): min_degree is cached) so an isolated node fails fast
        // instead of panicking per-task deep in the batched kernel.
        assert!(
            self.cfg.walk != WalkKind::Simple || g.min_degree() > 0,
            "WalkKind::Simple is undefined on isolated nodes; this graph has one"
        );
        self.eng.begin_round();
        let threshold = self.eng.threshold();
        let (alpha, w_max) = (self.cfg.alpha, self.w_max);
        let eng = &mut self.eng;
        // Departure phase: collect the whole round's cohort first
        // (`cohort[i]` leaves from `positions[i]`), then take one
        // batched walk step for everyone. Under Bernoulli departures this
        // draws all departure coins *before* any walk word — a different
        // RNG interleaving than the old per-resource loop (same per-step
        // law; see the stream policy in `tlb_core` docs), which is why
        // the mixed goldens were re-pinned once for this version.
        for r in 0..eng.stacks.len() as NodeId {
            let stack = &mut eng.stacks[r as usize];
            if !stack.is_overloaded(threshold) {
                continue;
            }
            match self.cfg.departure {
                Departure::AllActive => {
                    stack.remove_active_into(threshold, &eng.weights, &mut eng.cohort);
                }
                Departure::Bernoulli => {
                    let psi = stack.psi(threshold, &eng.weights, w_max);
                    let p = (alpha * psi as f64 / stack.num_tasks() as f64).min(1.0);
                    stack.drain_bernoulli_into(p, &eng.weights, rng, &mut eng.cohort);
                }
            }
            eng.positions.resize(eng.cohort.len(), r);
        }
        // Degree-bucket the cohort for the kernel's benefit — Lazy only,
        // for the same stream reasons as the resource stepper (lane
        // words are index-assigned; MaxDegree keeps scalar parity).
        if self.cfg.walk == WalkKind::Lazy {
            eng.sort_cohort_by_degree(g);
        }
        eng.walker.step_batch(g, self.cfg.walk, &mut eng.positions, rng);
        eng.note_walk_batch(g, self.cfg.walk);
        // Arrival phase straight off the stepped cohort — the mixed
        // protocol has no shuffle ablation, so no materialized (task,
        // dest) list is needed.
        let migrated = eng.cohort.len() as u64;
        for (&t, &dest) in eng.cohort.iter().zip(eng.positions.iter()) {
            eng.stacks[dest as usize].push(t, eng.weights[t as usize]);
        }
        eng.finish_round(migrated)
    }

    /// Step until balanced or the round cap.
    pub fn run<R: Rng + ?Sized>(&mut self, g: &Graph, rng: &mut R) {
        while !self.step(g, rng) {}
    }

    /// Finish: consume the engine into the outcome the one-shot entry
    /// point reports.
    pub fn into_outcome(self) -> MixedOutcome {
        self.eng.into_outcome()
    }

    /// Hand the stacks and weight vector back to a dynamic caller (the
    /// inverse of [`from_parts`](Self::from_parts)). Read the counters
    /// before calling this.
    pub fn into_parts(self) -> (Vec<ResourceStack>, Vec<f64>) {
        self.eng.into_parts()
    }
}

/// Run the mixed protocol on an arbitrary graph.
///
/// # Panics
/// If the graph is empty, `alpha <= 0` with Bernoulli departures, or the
/// placement is invalid.
pub fn run_mixed<R: Rng + ?Sized>(
    g: &Graph,
    tasks: &TaskSet,
    placement: Placement,
    cfg: &MixedConfig,
    rng: &mut R,
) -> MixedOutcome {
    let mut stepper = MixedStepper::new(g, tasks, placement, cfg, rng);
    stepper.run(g, rng);
    stepper.into_outcome()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tlb_graphs::generators::{complete, torus2d};

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn mixed_balances_on_torus_with_bernoulli_departures() {
        let g = torus2d(8, 8);
        let tasks = TaskSet::new((0..640).map(|i| 1.0 + (i % 7) as f64).collect::<Vec<_>>());
        let out =
            run_mixed(&g, &tasks, Placement::AllOnOne(0), &MixedConfig::default(), &mut rng(1));
        assert!(out.balanced());
        assert!(out.final_max_load <= out.threshold);
        let total: f64 = out.final_loads.iter().sum();
        assert!((total - tasks.total_weight()).abs() < 1e-6);
    }

    #[test]
    fn all_active_mode_equals_resource_protocol_distributionally() {
        // With AllActive departures the mixed protocol IS Algorithm 5.1;
        // under the same seed both must produce identical round counts.
        use crate::resource_protocol::{run_resource_controlled, ResourceControlledConfig};
        let g = torus2d(6, 6);
        let tasks = TaskSet::uniform(360);
        let mixed_cfg = MixedConfig { departure: Departure::AllActive, ..Default::default() };
        let res_cfg = ResourceControlledConfig::default();
        let a = run_mixed(&g, &tasks, Placement::AllOnOne(0), &mixed_cfg, &mut rng(9));
        let b = run_resource_controlled(&g, &tasks, Placement::AllOnOne(0), &res_cfg, &mut rng(9));
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.final_loads, b.final_loads);
    }

    #[test]
    fn mixed_on_complete_graph_tracks_user_protocol_scale() {
        // On K_n a walk step is a uniform jump (excluding self), so the
        // mixed Bernoulli protocol should balance within a small factor of
        // Algorithm 6.1's round count.
        use crate::user_protocol::{run_user_controlled, UserControlledConfig};
        let n = 100;
        let g = complete(n);
        let tasks = TaskSet::uniform(1000);
        let trials = 20;
        let mean = |f: &mut dyn FnMut(u64) -> u64| -> f64 {
            (0..trials).map(|s| f(s) as f64).sum::<f64>() / trials as f64
        };
        let mixed_cfg = MixedConfig::default();
        let user_cfg = UserControlledConfig::default();
        let mixed_mean = mean(&mut |s| {
            run_mixed(&g, &tasks, Placement::AllOnOne(0), &mixed_cfg, &mut rng(s)).rounds
        });
        let user_mean = mean(&mut |s| {
            run_user_controlled(n, &tasks, Placement::AllOnOne(0), &user_cfg, &mut rng(1000 + s))
                .rounds
        });
        let ratio = mixed_mean / user_mean;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "mixed ({mixed_mean}) vs user ({user_mean}) diverge: ratio {ratio}"
        );
    }

    #[test]
    fn mixed_potential_not_necessarily_monotone() {
        // Bernoulli departures can move below-threshold tasks, so Φ may
        // rise transiently; make sure tracking records real values and the
        // series ends at zero.
        let g = torus2d(5, 5);
        let tasks = TaskSet::new((0..500).map(|i| 1.0 + (i % 3) as f64).collect::<Vec<_>>());
        let cfg = MixedConfig { track_potential: true, ..Default::default() };
        let out = run_mixed(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng(3));
        assert!(out.balanced());
        assert_eq!(*out.potential_series.last().unwrap(), 0.0);
        assert!(out.potential_series[0] > 0.0);
    }

    #[test]
    fn round_cap_respected() {
        let g = torus2d(8, 8);
        let tasks = TaskSet::uniform(6400);
        let cfg = MixedConfig { max_rounds: 2, ..Default::default() };
        let out = run_mixed(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng(4));
        assert!(!out.balanced());
        assert_eq!(out.rounds, 2);
    }

    #[test]
    fn manual_stepping_matches_one_shot_run() {
        let g = torus2d(5, 5);
        let tasks = TaskSet::new((0..300).map(|i| 1.0 + (i % 4) as f64).collect::<Vec<_>>());
        let cfg = MixedConfig { track_potential: true, ..Default::default() };
        let one_shot = run_mixed(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng(55));

        let mut r = rng(55);
        let mut stepper = MixedStepper::new(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut r);
        while !stepper.step(&g, &mut r) {}
        assert_eq!(stepper.into_outcome(), one_shot);
    }

    #[test]
    fn trace_recording_matches_outcome_aggregates() {
        // The shared round engine gives the mixed protocol the same trace
        // machinery as its siblings: per-round records in lock-step with
        // the outcome aggregates.
        let g = torus2d(5, 5);
        let tasks = TaskSet::new((0..300).map(|i| 1.0 + (i % 4) as f64).collect::<Vec<_>>());
        let cfg = MixedConfig { record_trace: true, track_potential: true, ..Default::default() };
        let out = run_mixed(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng(17));
        assert!(out.balanced());
        let trace = out.trace.as_ref().expect("record_trace must produce a trace");
        assert_eq!(trace.rounds() as u64, out.rounds);
        assert_eq!(trace.total_migrations(), out.migrations);
        assert_eq!(trace.potential_series(), out.potential_series);
        assert_eq!(trace.threshold, out.threshold);
        assert_eq!(trace.records.last().unwrap().max_load, out.final_max_load);
        // Trace snapshots consume no randomness: the traced run's
        // trajectory matches an untraced one under the same seed.
        let bare =
            run_mixed(&g, &tasks, Placement::AllOnOne(0), &MixedConfig::default(), &mut rng(17));
        assert_eq!(bare.rounds, out.rounds);
        assert_eq!(bare.final_loads, out.final_loads);
        assert!(bare.trace.is_none());
    }

    #[test]
    #[should_panic(expected = "undefined on isolated nodes")]
    fn simple_walk_on_graph_with_isolated_node_fails_at_construction() {
        let mut b = tlb_graphs::GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        let g = b.build();
        let cfg = MixedConfig { walk: WalkKind::Simple, ..Default::default() };
        run_mixed(&g, &TaskSet::uniform(9), Placement::AllOnOne(0), &cfg, &mut rng(1));
    }
}
