//! # tlb-core
//!
//! The primary contribution of *Threshold Load Balancing with Weighted
//! Tasks* (Berenbrink, Friedetzky, Mallmann-Trenn, Meshkinfamfard, Wastell;
//! JPDC 2018 / IPPS 2015), implemented as a library:
//!
//! * the **resource-controlled protocol** (Algorithm 5.1) on arbitrary
//!   graphs — overloaded resources push their above-threshold and cutting
//!   tasks one max-degree random-walk step per round
//!   ([`resource_protocol`]),
//! * the **user-controlled protocol** (Algorithm 6.1) on complete graphs —
//!   every task on an overloaded resource independently migrates to a
//!   uniformly random resource with probability `α·⌈φ_r/w_max⌉·(1/b_r)`
//!   ([`user_protocol`]),
//! * each protocol both as a one-shot `run_*` entry point and as the
//!   resumable stepper engine underneath it (`new → step → into_outcome`),
//!   which the online simulation crate (`tlb-sim`) drives round by round
//!   between streaming arrivals and resource churn,
//! * the **protocol abstraction** ([`protocol`]) every stepper plugs
//!   into: the shared [`protocol::RoundEngine`] round machinery, the
//!   object-safe [`protocol::Protocol`] stepping trait, and the
//!   [`protocol::ProtocolKind`]/[`protocol::AnyStepper`] dispatch pair
//!   (see "Protocol abstraction" below),
//! * the **fragment surface** ([`fragment`]): the stepper state from
//!   `into_parts()` split into contiguous per-shard
//!   [`fragment::StackFragment`]s, the unit of parallelism of the
//!   sharded online engine in `tlb-sim`,
//! * the model substrate both share: weighted tasks ([`task`], [`weights`]),
//!   stack semantics with heights and threshold cutting ([`stack`]),
//!   threshold policies ([`threshold`]), initial placements ([`placement`]),
//!   the potential function `Φ` of Eq. (1) ([`potential`]), the
//!   drift-theorem machinery of Theorem 6 ([`drift`]),
//! * the analysis-side substrates the paper references: proper first-fit
//!   assignments ([`assignment`], Section 5.2) and the footnote-1 diffusion
//!   scheme for estimating the average load ([`diffusion`]).
//!
//! ## Protocol abstraction
//!
//! All protocol variants — the two paper protocols, the Section-8 mixed
//! extension, and the baseline adapters in `tlb-baselines` — implement
//! one contract, [`protocol::Protocol`]:
//!
//! * **object-safe stepping surface** — `step(&Graph, &mut dyn RngCore)
//!   -> bool` (one round; `true` when done), `is_done`, `is_balanced`,
//!   `rounds`, `migrations`, `threshold`, `stacks`, `into_parts`,
//!   `into_outcome`. Every variant takes the graph in `step` (the
//!   user-controlled protocol ignores it), so a `Box<dyn Protocol>`
//!   ([`protocol::AnyStepper`]) drives any variant without per-variant
//!   dispatch;
//! * **associated `Config`/`Outcome`** — on [`protocol::ProtocolSpec`],
//!   together with the `new_stepper`/`resume` constructors, for code
//!   generic over a statically known variant. All in-tree outcomes are
//!   aliases of the unified [`protocol::ProtocolOutcome`];
//! * **one round engine** — the shared machinery (cohort collection
//!   buffers, cached `BatchWalker`, migration/potential/trace
//!   accounting, completion detection) lives in
//!   [`protocol::RoundEngine`]; a variant contributes only its departure
//!   and movement rules between `begin_round` and `finish_round`.
//!
//! **RNG-stream guarantee of the trait surface:** dispatching through
//! `dyn Protocol` (or constructing through
//! [`protocol::ProtocolKind::new_stepper`]) consumes exactly the word
//! stream the concrete stepper consumes — same draws, same order — so
//! trait-driven runs are bit-identical to direct stepper calls. This is
//! part of the per-version determinism contract below and is pinned by
//! `tests/integration_protocol_trait.rs` for every variant.
//!
//! ## Determinism & RNG stream policy
//!
//! Every protocol run is a pure function of its seed. Within one version
//! of this repository, runs are **bit-identical across
//! `RAYON_NUM_THREADS` settings and across reruns** — the round loops
//! draw from a single sequential RNG, and the experiment harness derives
//! per-trial seeds independent of scheduling. The round loops sample
//! through the batched kernel (`tlb_walks::BatchWalker` for walk steps,
//! bulk destination words for the user protocol), which consumes the
//! *same stream* the scalar reference would for max-degree and simple
//! walks, and a fused one-word-per-step stream for lazy walks.
//!
//! **Not guaranteed:** stream stability across versions. A PR may change
//! the draw count or order (this is exactly what the batched kernel did
//! to the lazy walk and to the mixed protocol's coin/walk interleaving);
//! it must then re-pin the golden outcome values once, justified by the
//! chi-square distribution-equivalence tests in `tlb_walks::batch`, with
//! the old values recorded in the test comment. See "Determinism & RNG
//! stream policy" in `vendor/README.md` for the full contract.
//!
//! ## Quickstart
//!
//! ```
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//! use tlb_core::prelude::*;
//! use tlb_graphs::generators::complete;
//!
//! // 100 unit-weight tasks plus one heavy task, all starting on node 0.
//! let mut weights = vec![1.0; 100];
//! weights.push(8.0);
//! let tasks = TaskSet::new(weights);
//! let g = complete(16);
//! let cfg = UserControlledConfig {
//!     threshold: ThresholdPolicy::AboveAverage { epsilon: 0.2 },
//!     alpha: 1.0,
//!     ..Default::default()
//! };
//! let mut rng = SmallRng::seed_from_u64(1);
//! let out = run_user_controlled(g.num_nodes(), &tasks, Placement::AllOnOne(0), &cfg, &mut rng);
//! assert!(out.balanced());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod assignment;
pub mod diffusion;
pub mod drift;
pub mod fragment;
pub mod mixed_protocol;
pub mod nonuniform;
pub mod placement;
pub mod potential;
pub mod protocol;
pub mod resource_protocol;
pub mod stack;
pub mod task;
pub mod threshold;
pub mod trace;
pub mod user_protocol;
pub mod weights;

/// Convenient re-exports of the types most programs need.
pub mod prelude {
    pub use crate::fragment::StackFragment;
    pub use crate::placement::Placement;
    pub use crate::protocol::{
        AnyStepper, Protocol, ProtocolKind, ProtocolOutcome, ProtocolParts, ProtocolSpec,
        RoundEngine,
    };
    pub use crate::resource_protocol::{
        run_resource_controlled, run_resource_controlled_with_stats, ResourceControlledConfig,
        ResourceControlledOutcome, ResourceControlledStepper,
    };
    pub use crate::task::{TaskId, TaskSet};
    pub use crate::threshold::ThresholdPolicy;
    pub use crate::user_protocol::{
        run_user_controlled, run_user_controlled_with_stats, UserControlledConfig,
        UserControlledOutcome, UserControlledStepper,
    };
    pub use crate::weights::WeightSpec;
}
