//! Structured per-round traces.
//!
//! The outcome structs report end-of-run aggregates; research tooling
//! often needs the *trajectory* — per-round potential, overload counts,
//! load spread, migration volume. [`RoundTrace`] captures that compactly
//! (fixed-size record per round) and serializes with serde, so traces can
//! be diffed across protocol variants and plotted externally.

use serde::{Deserialize, Serialize};

use crate::potential;
use crate::stack::ResourceStack;

/// One round's snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round index (0 = initial state).
    pub round: u64,
    /// Potential `Φ` (Eq. 1).
    pub potential: f64,
    /// Number of overloaded resources.
    pub overloaded: usize,
    /// Maximum load.
    pub max_load: f64,
    /// Migrations performed *in* this round (0 for the initial record).
    pub migrations: u64,
}

/// A full trajectory plus the run's static parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RoundTrace {
    /// The threshold the run used.
    pub threshold: f64,
    /// Per-round records, index 0 = initial state.
    pub records: Vec<RoundRecord>,
}

impl RoundTrace {
    /// Start a trace with the initial snapshot.
    pub fn start(stacks: &[ResourceStack], threshold: f64, weights: &[f64]) -> Self {
        let mut t = RoundTrace { threshold, records: Vec::new() };
        t.records.push(Self::snapshot(0, stacks, threshold, weights, 0));
        t
    }

    /// Append a snapshot after a round.
    pub fn record(
        &mut self,
        round: u64,
        stacks: &[ResourceStack],
        weights: &[f64],
        migrations: u64,
    ) {
        self.records
            .push(Self::snapshot(round, stacks, self.threshold, weights, migrations));
    }

    fn snapshot(
        round: u64,
        stacks: &[ResourceStack],
        threshold: f64,
        weights: &[f64],
        migrations: u64,
    ) -> RoundRecord {
        RoundRecord {
            round,
            potential: potential::total_potential(stacks, threshold, weights),
            overloaded: potential::num_overloaded(stacks, threshold),
            max_load: potential::max_load(stacks),
            migrations,
        }
    }

    /// Number of recorded rounds (excluding the initial record).
    pub fn rounds(&self) -> usize {
        self.records.len().saturating_sub(1)
    }

    /// Total migrations across the trace.
    pub fn total_migrations(&self) -> u64 {
        self.records.iter().map(|r| r.migrations).sum()
    }

    /// Potential series (convenience for plotting / decay fitting).
    pub fn potential_series(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.potential).collect()
    }

    /// Render as CSV (`round,potential,overloaded,max_load,migrations`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("round,potential,overloaded,max_load,migrations\n");
        for r in &self.records {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                r.round, r.potential, r.overloaded, r.max_load, r.migrations
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stacks_with(loads: &[&[f64]]) -> (Vec<ResourceStack>, Vec<f64>) {
        let mut weights = Vec::new();
        let mut stacks = Vec::new();
        for tasks in loads {
            let mut s = ResourceStack::new();
            for &w in *tasks {
                let id = weights.len() as u32;
                weights.push(w);
                s.push(id, w);
            }
            stacks.push(s);
        }
        (stacks, weights)
    }

    #[test]
    fn trace_records_snapshots() {
        let (stacks, weights) = stacks_with(&[&[2.0, 3.0], &[1.0]]);
        let mut trace = RoundTrace::start(&stacks, 3.0, &weights);
        assert_eq!(trace.rounds(), 0);
        assert_eq!(trace.records[0].overloaded, 1);
        assert_eq!(trace.records[0].max_load, 5.0);
        assert_eq!(trace.records[0].potential, 3.0); // task of weight 3 cuts

        trace.record(1, &stacks, &weights, 7);
        assert_eq!(trace.rounds(), 1);
        assert_eq!(trace.total_migrations(), 7);
        assert_eq!(trace.potential_series(), vec![3.0, 3.0]);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let (stacks, weights) = stacks_with(&[&[1.0]]);
        let trace = RoundTrace::start(&stacks, 2.0, &weights);
        let csv = trace.to_csv();
        assert!(csv.starts_with("round,potential,"));
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn serde_roundtrip() {
        let (stacks, weights) = stacks_with(&[&[2.0, 2.0], &[]]);
        let trace = RoundTrace::start(&stacks, 3.0, &weights);
        let json = serde_json::to_string(&trace).unwrap();
        let back: RoundTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
    }
}
