//! The paper's potential function (Eq. 1 and Section 6).
//!
//! `Φ(t) = Σ_r φ_r(t)` where `φ_r` is the weight of the cutting task plus
//! all tasks above the threshold on resource `r` (zero when `r` is not
//! overloaded). `Φ = 0` iff the system is balanced; both analyses bound
//! balancing time through the expected one-step decay of `Φ`.

use crate::stack::ResourceStack;

/// Total potential `Φ` over all resource stacks.
pub fn total_potential(stacks: &[ResourceStack], threshold: f64, weights: &[f64]) -> f64 {
    stacks.iter().map(|s| s.phi(threshold, weights)).sum()
}

/// Per-resource potentials `φ_r`.
pub fn per_resource_potential(
    stacks: &[ResourceStack],
    threshold: f64,
    weights: &[f64],
) -> Vec<f64> {
    stacks.iter().map(|s| s.phi(threshold, weights)).collect()
}

/// A system is balanced iff every load is at most the threshold —
/// equivalently `Φ = 0`.
pub fn is_balanced(stacks: &[ResourceStack], threshold: f64) -> bool {
    stacks.iter().all(|s| !s.is_overloaded(threshold))
}

/// Maximum load over resources.
pub fn max_load(stacks: &[ResourceStack]) -> f64 {
    stacks.iter().map(ResourceStack::load).fold(0.0, f64::max)
}

/// Number of overloaded resources.
pub fn num_overloaded(stacks: &[ResourceStack], threshold: f64) -> usize {
    stacks.iter().filter(|s| s.is_overloaded(threshold)).count()
}

/// Lemma 1 (pigeonhole): at any time at least `⌈ε/(1+ε)·n⌉` resources can
/// accept one more task of any weight `≤ w_max`, i.e. have load
/// `≤ T − w_max`. Returns the measured fraction, which must be at least
/// `ε/(1+ε)` whenever the threshold is `(1+ε)·W/n + w_max`.
pub fn fraction_accepting(stacks: &[ResourceStack], threshold: f64, w_max: f64) -> f64 {
    let n = stacks.len();
    if n == 0 {
        return 0.0;
    }
    let ok = stacks.iter().filter(|s| s.load() <= threshold - w_max).count();
    ok as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::ResourceStack;

    fn build(loads: &[&[f64]]) -> (Vec<ResourceStack>, Vec<f64>) {
        let mut weights = Vec::new();
        let mut stacks = Vec::new();
        for tasks in loads {
            let mut s = ResourceStack::new();
            for &w in *tasks {
                let id = weights.len() as u32;
                weights.push(w);
                s.push(id, w);
            }
            stacks.push(s);
        }
        (stacks, weights)
    }

    #[test]
    fn potential_sums_per_resource() {
        let (stacks, weights) = build(&[&[2.0, 3.0, 1.0], &[1.0], &[5.0, 5.0]]);
        // T = 4: stack0 phi = 4 (cutting 3 + above 1); stack1 phi = 0;
        // stack2 phi = 10 (first 5 cuts: 0<4<5; second above).
        assert_eq!(total_potential(&stacks, 4.0, &weights), 14.0);
        assert_eq!(per_resource_potential(&stacks, 4.0, &weights), vec![4.0, 0.0, 10.0]);
    }

    #[test]
    fn balanced_iff_zero_potential() {
        let (stacks, weights) = build(&[&[2.0], &[3.0]]);
        assert!(is_balanced(&stacks, 3.0));
        assert_eq!(total_potential(&stacks, 3.0, &weights), 0.0);
        assert!(!is_balanced(&stacks, 2.5));
        assert!(total_potential(&stacks, 2.5, &weights) > 0.0);
    }

    #[test]
    fn max_load_and_overloaded_count() {
        let (stacks, _) = build(&[&[2.0], &[3.0, 3.0], &[]]);
        assert_eq!(max_load(&stacks), 6.0);
        assert_eq!(num_overloaded(&stacks, 2.5), 1);
        assert_eq!(num_overloaded(&stacks, 1.0), 2);
    }

    #[test]
    fn lemma1_fraction_holds_for_above_average_threshold() {
        // n = 4 resources, W = 8, eps = 1 => T = 2*2 + wmax.
        // Any configuration must leave >= eps/(1+eps) = 1/2 of resources
        // with load <= T - wmax = 4.
        let (stacks, _) = build(&[&[8.0], &[], &[], &[]]);
        let w_max = 8.0;
        let t = 2.0 * 2.0 + w_max;
        assert!(fraction_accepting(&stacks, t, w_max) >= 0.5);

        // Spread case as well.
        let (stacks2, _) = build(&[&[2.0, 2.0], &[2.0], &[2.0], &[]]);
        let w_max2 = 2.0;
        let t2 = 2.0 * 2.0 + w_max2;
        assert!(fraction_accepting(&stacks2, t2, w_max2) >= 0.5);
    }

    #[test]
    fn empty_system_edge_cases() {
        let stacks: Vec<ResourceStack> = vec![];
        assert_eq!(fraction_accepting(&stacks, 1.0, 1.0), 0.0);
        assert!(is_balanced(&stacks, 0.0));
        assert_eq!(max_load(&stacks), 0.0);
    }
}
