//! Weighted tasks (the paper's "balls").
//!
//! Task weights are `f64` with the paper's normalization `w_min ≥ 1`
//! (Section 4: "If this is not the case, then one can easily scale all
//! parameters, such that w_min = 1"). [`TaskSet::rescaled`] performs that
//! scaling.

use serde::{Deserialize, Serialize};

/// Task identifier: index into the weight array.
pub type TaskId = u32;

/// An immutable collection of weighted tasks plus the aggregate statistics
/// every protocol and threshold computation needs (`W`, `w_max`, `w_min`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSet {
    weights: Vec<f64>,
    total_weight: f64,
    w_max: f64,
    w_min: f64,
}

impl TaskSet {
    /// Build from raw weights.
    ///
    /// # Panics
    /// If `weights` is empty, or any weight is non-finite or `<= 0`.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "a task set needs at least one task");
        let mut w_max = f64::MIN;
        let mut w_min = f64::MAX;
        let mut total = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            assert!(w.is_finite() && w > 0.0, "task {i} has invalid weight {w}");
            w_max = w_max.max(w);
            w_min = w_min.min(w);
            total += w;
        }
        TaskSet { weights, total_weight: total, w_max, w_min }
    }

    /// Build a uniform (unit-weight) task set — the Ackermann et al. /
    /// Hoefer–Sauerwald baseline setting.
    pub fn uniform(m: usize) -> Self {
        TaskSet::new(vec![1.0; m])
    }

    /// Number of tasks `m`.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether there are no tasks (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Weight of task `i`.
    #[inline]
    pub fn weight(&self, i: TaskId) -> f64 {
        self.weights[i as usize]
    }

    /// All weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Total weight `W`.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Maximum weight `w_max`.
    pub fn w_max(&self) -> f64 {
        self.w_max
    }

    /// Minimum weight `w_min`.
    pub fn w_min(&self) -> f64 {
        self.w_min
    }

    /// Average weight `W/m`.
    pub fn w_avg(&self) -> f64 {
        self.total_weight / self.len() as f64
    }

    /// The paper's heterogeneity ratio `w_max / w_min` that multiplies the
    /// user-controlled bounds (Theorems 11 and 12).
    pub fn heterogeneity(&self) -> f64 {
        self.w_max / self.w_min
    }

    /// Rescale so `w_min = 1` (the paper's normalization). No-op if already
    /// normalized.
    pub fn rescaled(&self) -> Self {
        if (self.w_min - 1.0).abs() < 1e-15 {
            return self.clone();
        }
        let s = 1.0 / self.w_min;
        TaskSet::new(self.weights.iter().map(|w| w * s).collect())
    }

    /// True if every task has the same weight (the uniform baseline).
    pub fn is_uniform(&self) -> bool {
        (self.w_max - self.w_min).abs() < 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_computed_correctly() {
        let t = TaskSet::new(vec![1.0, 4.0, 2.5]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_weight(), 7.5);
        assert_eq!(t.w_max(), 4.0);
        assert_eq!(t.w_min(), 1.0);
        assert_eq!(t.w_avg(), 2.5);
        assert_eq!(t.heterogeneity(), 4.0);
        assert!(!t.is_uniform());
    }

    #[test]
    fn uniform_set() {
        let t = TaskSet::uniform(10);
        assert_eq!(t.len(), 10);
        assert_eq!(t.total_weight(), 10.0);
        assert!(t.is_uniform());
        assert_eq!(t.heterogeneity(), 1.0);
    }

    #[test]
    fn rescaling_normalizes_w_min() {
        let t = TaskSet::new(vec![0.5, 2.0, 1.0]);
        let r = t.rescaled();
        assert_eq!(r.w_min(), 1.0);
        assert_eq!(r.w_max(), 4.0);
        assert_eq!(r.total_weight(), 7.0);
        // heterogeneity is scale-invariant
        assert!((r.heterogeneity() - t.heterogeneity()).abs() < 1e-12);
    }

    #[test]
    fn rescaling_is_idempotent() {
        let t = TaskSet::new(vec![1.0, 3.0]);
        assert_eq!(t.rescaled(), t);
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn empty_set_panics() {
        TaskSet::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "invalid weight")]
    fn zero_weight_panics() {
        TaskSet::new(vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "invalid weight")]
    fn nan_weight_panics() {
        TaskSet::new(vec![f64::NAN]);
    }
}
