//! Initial task placements.
//!
//! The paper's model allows an arbitrary initial distribution; its
//! simulations (Section 7) start with *all tasks on one resource* — the
//! adversarial single-hotspot start. The harness also supports uniform
//! random and explicit placements.

use rand::Rng;
use serde::{Deserialize, Serialize};
use tlb_graphs::NodeId;

/// How tasks are initially assigned to resources.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Placement {
    /// Every task starts on the given resource (the paper's simulation
    /// setting and the natural worst case).
    AllOnOne(
        /// The hotspot resource.
        NodeId,
    ),
    /// Each task starts on an independently uniform resource.
    UniformRandom,
    /// Tasks spread round-robin over resources `0..n` (an almost-balanced
    /// start; useful as a best-case control).
    RoundRobin,
    /// Explicit per-task locations.
    Explicit(
        /// `locations[i]` is task `i`'s starting resource.
        Vec<NodeId>,
    ),
}

impl Placement {
    /// Materialize per-task starting locations.
    ///
    /// # Panics
    /// If a location is out of range or an explicit vector has the wrong
    /// length.
    pub fn materialize<R: Rng + ?Sized>(&self, m: usize, n: usize, rng: &mut R) -> Vec<NodeId> {
        assert!(n > 0, "need at least one resource");
        match self {
            Placement::AllOnOne(r) => {
                assert!((*r as usize) < n, "hotspot {r} out of range (n = {n})");
                vec![*r; m]
            }
            Placement::UniformRandom => (0..m).map(|_| rng.gen_range(0..n) as NodeId).collect(),
            Placement::RoundRobin => (0..m).map(|i| (i % n) as NodeId).collect(),
            Placement::Explicit(locs) => {
                assert_eq!(locs.len(), m, "explicit placement length mismatch");
                for &r in locs {
                    assert!((r as usize) < n, "placement {r} out of range (n = {n})");
                }
                locs.clone()
            }
        }
    }

    /// Short stable label for CSV output.
    pub fn label(&self) -> String {
        match self {
            Placement::AllOnOne(r) => format!("all-on-{r}"),
            Placement::UniformRandom => "uniform".into(),
            Placement::RoundRobin => "round-robin".into(),
            Placement::Explicit(_) => "explicit".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn all_on_one_puts_everything_on_hotspot() {
        let mut rng = SmallRng::seed_from_u64(0);
        let locs = Placement::AllOnOne(3).materialize(10, 5, &mut rng);
        assert_eq!(locs, vec![3; 10]);
    }

    #[test]
    fn round_robin_is_balanced() {
        let mut rng = SmallRng::seed_from_u64(0);
        let locs = Placement::RoundRobin.materialize(10, 4, &mut rng);
        let mut counts = [0; 4];
        for &l in &locs {
            counts[l as usize] += 1;
        }
        assert_eq!(counts, [3, 3, 2, 2]);
    }

    #[test]
    fn uniform_random_in_range_and_seeded() {
        let a = Placement::UniformRandom.materialize(100, 7, &mut SmallRng::seed_from_u64(9));
        let b = Placement::UniformRandom.materialize(100, 7, &mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
        assert!(a.iter().all(|&r| (r as usize) < 7));
    }

    #[test]
    fn explicit_roundtrips() {
        let mut rng = SmallRng::seed_from_u64(0);
        let locs = vec![0, 2, 1];
        assert_eq!(Placement::Explicit(locs.clone()).materialize(3, 3, &mut rng), locs);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hotspot_out_of_range_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        Placement::AllOnOne(5).materialize(3, 5, &mut rng);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn explicit_length_mismatch_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        Placement::Explicit(vec![0, 1]).materialize(3, 5, &mut rng);
    }
}
