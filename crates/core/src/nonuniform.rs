//! Extension (paper Section 8 future work): **non-uniform thresholds**.
//!
//! The paper fixes one threshold for all resources and names per-resource
//! thresholds as an open direction. This module provides them: each
//! resource `r` has its own `T_r` (e.g. speed-proportional for
//! heterogeneous machines), with the natural feasibility condition that
//! mirrors the uniform pigeonhole (Lemma 1):
//!
//! ```text
//! Σ_r (T_r − w_max) ≥ W        (every task can be accepted somewhere)
//! ```
//!
//! The user-controlled protocol carries over verbatim — the migration
//! probability uses the *local* `φ_r` against `T_r` — and the balancing
//! time keeps the Theorem-11 shape as long as the slack
//! `Σ T_r − W − n·w_max` stays a constant fraction of `W` (the analog of
//! `ε`).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::placement::Placement;
use crate::stack::ResourceStack;
use crate::task::{TaskId, TaskSet};

/// Per-resource threshold vector with feasibility validation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdVector {
    values: Vec<f64>,
}

impl ThresholdVector {
    /// Build from explicit values, checking the pigeonhole feasibility
    /// condition `Σ (T_r − w_max) ≥ W`.
    ///
    /// # Errors
    /// A human-readable message when infeasible.
    pub fn new(values: Vec<f64>, total_weight: f64, w_max: f64) -> Result<Self, String> {
        if values.is_empty() {
            return Err("need at least one resource".into());
        }
        let capacity: f64 = values.iter().map(|t| t - w_max).sum();
        if capacity < total_weight - 1e-9 {
            return Err(format!(
                "infeasible thresholds: sum(T_r - w_max) = {capacity} < W = {total_weight}"
            ));
        }
        Ok(ThresholdVector { values })
    }

    /// Speed-proportional thresholds for heterogeneous machines:
    /// `T_r = (1+ε)·W·s_r/S + w_max` where `s_r` is resource `r`'s speed
    /// and `S = Σ s_r`. Feasible for every `ε ≥ 0`.
    ///
    /// # Panics
    /// If speeds are empty or non-positive.
    pub fn speed_proportional(speeds: &[f64], total_weight: f64, w_max: f64, epsilon: f64) -> Self {
        assert!(!speeds.is_empty(), "need at least one speed");
        assert!(speeds.iter().all(|&s| s > 0.0), "speeds must be positive");
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        let total_speed: f64 = speeds.iter().sum();
        let values = speeds
            .iter()
            .map(|&s| (1.0 + epsilon) * total_weight * s / total_speed + w_max)
            .collect();
        ThresholdVector::new(values, total_weight, w_max)
            .expect("speed-proportional thresholds are feasible by construction")
    }

    /// Uniform thresholds (degenerates to the paper's model).
    pub fn uniform(
        n: usize,
        threshold: f64,
        total_weight: f64,
        w_max: f64,
    ) -> Result<Self, String> {
        ThresholdVector::new(vec![threshold; n], total_weight, w_max)
    }

    /// Threshold of resource `r`.
    #[inline]
    pub fn of(&self, r: usize) -> f64 {
        self.values[r]
    }

    /// Number of resources.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the vector is empty (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// Configuration of a non-uniform-threshold user-controlled run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NonUniformConfig {
    /// Migration damping `α`.
    pub alpha: f64,
    /// Safety cap on rounds.
    pub max_rounds: u64,
}

impl Default for NonUniformConfig {
    fn default() -> Self {
        NonUniformConfig { alpha: 1.0, max_rounds: 10_000_000 }
    }
}

/// Outcome of a non-uniform run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NonUniformOutcome {
    /// Rounds executed until balance (or the cap).
    pub rounds: u64,
    /// Whether every resource ended at/below its own threshold.
    pub completed: bool,
    /// Total migrations performed.
    pub migrations: u64,
    /// Per-resource loads at termination.
    pub final_loads: Vec<f64>,
}

impl NonUniformOutcome {
    /// Whether the run ended balanced.
    pub fn balanced(&self) -> bool {
        self.completed
    }
}

/// User-controlled protocol on the complete graph with per-resource
/// thresholds: each task on a resource with `x_r > T_r` migrates with
/// probability `α·⌈φ_r/w_max⌉/b_r` to a uniformly random resource, where
/// `φ_r` is computed against the local `T_r`.
pub fn run_user_controlled_nonuniform<R: Rng + ?Sized>(
    tasks: &TaskSet,
    thresholds: &ThresholdVector,
    placement: Placement,
    cfg: &NonUniformConfig,
    rng: &mut R,
) -> NonUniformOutcome {
    let n = thresholds.len();
    assert!(cfg.alpha > 0.0, "alpha must be positive");
    let weights = tasks.weights();
    let w_max = tasks.w_max();

    let mut stacks: Vec<ResourceStack> = vec![ResourceStack::new(); n];
    for (i, &loc) in placement.materialize(tasks.len(), n, rng).iter().enumerate() {
        stacks[loc as usize].push(i as TaskId, weights[i]);
    }

    let balanced = |stacks: &[ResourceStack]| {
        stacks.iter().enumerate().all(|(r, s)| !s.is_overloaded(thresholds.of(r)))
    };

    let mut migrations = 0u64;
    let mut migrants: Vec<TaskId> = Vec::new();
    let mut rounds = 0u64;
    let mut completed = balanced(&stacks);

    while !completed && rounds < cfg.max_rounds {
        rounds += 1;
        migrants.clear();
        for (r, stack) in stacks.iter_mut().enumerate() {
            let t_r = thresholds.of(r);
            if !stack.is_overloaded(t_r) {
                continue;
            }
            let psi = stack.psi(t_r, weights, w_max);
            let p = (cfg.alpha * psi as f64 / stack.num_tasks() as f64).min(1.0);
            // Appends into the round-reused buffer — no per-resource
            // allocation in the departure phase.
            stack.drain_bernoulli_into(p, weights, rng, &mut migrants);
        }
        migrations += migrants.len() as u64;
        for &t in &migrants {
            let dest = rng.gen_range(0..n);
            stacks[dest].push(t, weights[t as usize]);
        }
        completed = balanced(&stacks);
    }

    NonUniformOutcome {
        rounds,
        completed,
        migrations,
        final_loads: stacks.iter().map(ResourceStack::load).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn feasibility_validation() {
        assert!(ThresholdVector::new(vec![5.0, 5.0], 8.0, 1.0).is_ok());
        // capacity (5-1)+(5-1) = 8 >= W = 8: ok; W = 9: infeasible
        assert!(ThresholdVector::new(vec![5.0, 5.0], 9.0, 1.0).is_err());
        assert!(ThresholdVector::new(vec![], 1.0, 1.0).is_err());
    }

    #[test]
    fn speed_proportional_construction() {
        let tv = ThresholdVector::speed_proportional(&[1.0, 2.0, 3.0], 60.0, 2.0, 0.2);
        // T_r = 1.2*60*s/6 + 2 = 12s/... : s=1 -> 14, s=2 -> 26, s=3 -> 38
        assert!((tv.of(0) - 14.0).abs() < 1e-9);
        assert!((tv.of(1) - 26.0).abs() < 1e-9);
        assert!((tv.of(2) - 38.0).abs() < 1e-9);
    }

    #[test]
    fn heterogeneous_machines_balance_proportionally() {
        // 3 fast machines (speed 4) and 27 slow ones (speed 1): the fast
        // machines' thresholds are 4x higher and the final loads respect
        // every local threshold.
        let mut speeds = vec![4.0; 3];
        speeds.extend(std::iter::repeat_n(1.0, 27));
        let tasks = TaskSet::new((0..600).map(|i| 1.0 + (i % 5) as f64).collect::<Vec<_>>());
        let tv =
            ThresholdVector::speed_proportional(&speeds, tasks.total_weight(), tasks.w_max(), 0.2);
        let out = run_user_controlled_nonuniform(
            &tasks,
            &tv,
            Placement::AllOnOne(5),
            &NonUniformConfig::default(),
            &mut rng(1),
        );
        assert!(out.balanced(), "did not balance in {} rounds", out.rounds);
        for (r, &load) in out.final_loads.iter().enumerate() {
            assert!(load <= tv.of(r) + 1e-9, "resource {r}: {load} > {}", tv.of(r));
        }
        // Weight conserved.
        let total: f64 = out.final_loads.iter().sum();
        assert!((total - tasks.total_weight()).abs() < 1e-6);
    }

    #[test]
    fn uniform_vector_matches_paper_protocol() {
        use crate::threshold::ThresholdPolicy;
        use crate::user_protocol::{run_user_controlled, UserControlledConfig};
        let n = 30;
        let tasks = TaskSet::uniform(300);
        let t = ThresholdPolicy::AboveAverage { epsilon: 0.2 }.value(
            tasks.total_weight(),
            n,
            tasks.w_max(),
        );
        let tv = ThresholdVector::uniform(n, t, tasks.total_weight(), tasks.w_max()).unwrap();
        // Same seed, same rule => identical runs.
        let a = run_user_controlled_nonuniform(
            &tasks,
            &tv,
            Placement::AllOnOne(0),
            &NonUniformConfig::default(),
            &mut rng(7),
        );
        let b = run_user_controlled(
            n,
            &tasks,
            Placement::AllOnOne(0),
            &UserControlledConfig::default(),
            &mut rng(7),
        );
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.final_loads, b.final_loads);
    }

    #[test]
    fn tighter_slack_takes_longer() {
        let tasks = TaskSet::uniform(400);
        let speeds = vec![1.0; 20];
        let mean = |eps: f64, seed0: u64| -> f64 {
            let tv = ThresholdVector::speed_proportional(
                &speeds,
                tasks.total_weight(),
                tasks.w_max(),
                eps,
            );
            (0..20)
                .map(|s| {
                    run_user_controlled_nonuniform(
                        &tasks,
                        &tv,
                        Placement::AllOnOne(0),
                        &NonUniformConfig::default(),
                        &mut rng(seed0 + s),
                    )
                    .rounds as f64
                })
                .sum::<f64>()
                / 20.0
        };
        assert!(mean(0.0, 10) > mean(1.0, 30));
    }
}
