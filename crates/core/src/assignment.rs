//! Proper assignments (paper Section 5.2).
//!
//! An assignment of weighted tasks to resources is *proper* if no resource
//! receives more than `W/n + w_max`. The paper notes a proper assignment is
//! "trivial to calculate in a centralized manner — the simple first fit
//! rule will work"; the Lemma-5 analysis uses one as the random-walk target
//! of each active task. This module implements first fit plus the
//! verification predicate, and serves as the centralized baseline the
//! decentralized protocols are compared against.

use tlb_graphs::NodeId;

use crate::task::TaskSet;

/// First-fit proper assignment: tasks are poured into resource 0, 1, …,
/// advancing to the next resource once the current one reaches `W/n`.
///
/// Guarantees every resource ends with load `≤ W/n + w_max` and all tasks
/// are placed within `n` resources.
///
/// # Panics
/// If `n == 0`.
pub fn first_fit(tasks: &TaskSet, n: usize) -> Vec<NodeId> {
    assert!(n > 0, "need at least one resource");
    let target = tasks.total_weight() / n as f64;
    let mut assignment = Vec::with_capacity(tasks.len());
    let mut resource = 0usize;
    let mut load = 0.0f64;
    for i in 0..tasks.len() {
        let w = tasks.weight(i as u32);
        // Advance while the current resource is already at/over target.
        // Every resource is closed only after reaching >= target, so total
        // weight guarantees we never run past resource n-1.
        if load >= target && resource + 1 < n {
            resource += 1;
            load = 0.0;
        }
        assignment.push(resource as NodeId);
        load += w;
    }
    assignment
}

/// Per-resource loads induced by an assignment.
pub fn loads_of(tasks: &TaskSet, assignment: &[NodeId], n: usize) -> Vec<f64> {
    let mut loads = vec![0.0; n];
    for (i, &r) in assignment.iter().enumerate() {
        loads[r as usize] += tasks.weight(i as u32);
    }
    loads
}

/// Whether an assignment is proper: max load `≤ W/n + w_max` (with a tiny
/// float tolerance).
pub fn is_proper(tasks: &TaskSet, assignment: &[NodeId], n: usize) -> bool {
    let bound = tasks.total_weight() / n as f64 + tasks.w_max() + 1e-9;
    loads_of(tasks, assignment, n).iter().all(|&l| l <= bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_fit_is_proper_uniform() {
        let tasks = TaskSet::uniform(103);
        let n = 10;
        let a = first_fit(&tasks, n);
        assert!(is_proper(&tasks, &a, n));
        assert_eq!(a.len(), 103);
    }

    #[test]
    fn first_fit_is_proper_heavy_tasks() {
        let mut w = vec![1.0; 90];
        w.extend(std::iter::repeat_n(17.0, 10));
        let tasks = TaskSet::new(w);
        let n = 7;
        let a = first_fit(&tasks, n);
        assert!(is_proper(&tasks, &a, n));
    }

    #[test]
    fn first_fit_single_resource() {
        let tasks = TaskSet::uniform(5);
        let a = first_fit(&tasks, 1);
        assert!(a.iter().all(|&r| r == 0));
        assert!(is_proper(&tasks, &a, 1));
    }

    #[test]
    fn first_fit_more_resources_than_tasks() {
        let tasks = TaskSet::uniform(3);
        let a = first_fit(&tasks, 10);
        assert!(is_proper(&tasks, &a, 10));
        // W/n = 0.3: each task alone exceeds the target, so tasks spread.
        assert_eq!(a, vec![0, 1, 2]);
    }

    #[test]
    fn improper_assignment_detected() {
        let tasks = TaskSet::uniform(10);
        // All on one resource with n = 5: load 10 > 10/5 + 1 = 3.
        let a = vec![0 as NodeId; 10];
        assert!(!is_proper(&tasks, &a, 5));
    }

    #[test]
    fn loads_sum_to_total_weight() {
        let tasks = TaskSet::new(vec![2.0, 3.5, 1.0, 4.5]);
        let a = first_fit(&tasks, 3);
        let loads = loads_of(&tasks, &a, 3);
        assert!((loads.iter().sum::<f64>() - tasks.total_weight()).abs() < 1e-12);
    }

    #[test]
    fn adversarial_descending_weights_stay_proper() {
        let w: Vec<f64> = (1..=60).rev().map(|x| x as f64).collect();
        let tasks = TaskSet::new(w);
        for n in [1usize, 2, 3, 5, 13, 60] {
            let a = first_fit(&tasks, n);
            assert!(is_proper(&tasks, &a, n), "n = {n} not proper");
        }
    }
}
