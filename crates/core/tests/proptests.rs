//! Property-based tests for the protocol crate: conservation, feasibility
//! and termination invariants that must hold for *every* workload.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tlb_core::assignment;
use tlb_core::placement::Placement;
use tlb_core::resource_protocol::{run_resource_controlled, ResourceControlledConfig};
use tlb_core::task::TaskSet;
use tlb_core::threshold::ThresholdPolicy;
use tlb_core::user_protocol::{run_user_controlled, UserControlledConfig};
use tlb_core::weights::WeightSpec;
use tlb_graphs::generators;

fn arb_weights() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1u32..40, 1..120)
        .prop_map(|v| v.into_iter().map(|w| w as f64).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// User-controlled runs conserve total weight and finish under the
    /// threshold for every workload and seed.
    #[test]
    fn user_protocol_conserves_weight_and_balances(
        weights in arb_weights(),
        n in 2usize..20,
        seed in any::<u64>(),
        eps in prop_oneof![Just(0.0f64), Just(0.2), Just(1.0)],
    ) {
        let tasks = TaskSet::new(weights);
        let cfg = UserControlledConfig {
            threshold: if eps == 0.0 {
                ThresholdPolicy::Tight
            } else {
                ThresholdPolicy::AboveAverage { epsilon: eps }
            },
            max_rounds: 2_000_000,
            ..Default::default()
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        let out = run_user_controlled(n, &tasks, Placement::AllOnOne(0), &cfg, &mut rng);
        prop_assert!(out.balanced(), "did not balance in {} rounds", out.rounds);
        let total: f64 = out.final_loads.iter().sum();
        prop_assert!((total - tasks.total_weight()).abs() < 1e-6,
            "weight not conserved: {total} vs {}", tasks.total_weight());
        prop_assert!(out.final_max_load <= out.threshold + 1e-9);
        prop_assert_eq!(out.final_loads.len(), n);
    }

    /// Resource-controlled runs conserve weight and balance on connected
    /// random regular graphs.
    #[test]
    fn resource_protocol_conserves_weight_and_balances(
        weights in arb_weights(),
        n in 4usize..24,
        seed in any::<u64>(),
    ) {
        let d = 3usize;
        prop_assume!((n * d).is_multiple_of(2));
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::random_regular(n, d, &mut rng).unwrap();
        let tasks = TaskSet::new(weights);
        let cfg = ResourceControlledConfig { max_rounds: 2_000_000, ..Default::default() };
        let out = run_resource_controlled(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng);
        prop_assert!(out.balanced(), "did not balance in {} rounds", out.rounds);
        let total: f64 = out.final_loads.iter().sum();
        prop_assert!((total - tasks.total_weight()).abs() < 1e-6);
        prop_assert!(out.final_max_load <= out.threshold + 1e-9);
    }

    /// Observation 4: the resource-controlled potential never increases,
    /// on any graph, for any workload.
    #[test]
    fn resource_potential_monotone(
        weights in arb_weights(),
        rows in 2usize..5,
        cols in 2usize..5,
        seed in any::<u64>(),
    ) {
        let g = generators::torus2d(rows, cols);
        let tasks = TaskSet::new(weights);
        let cfg = ResourceControlledConfig {
            track_potential: true,
            max_rounds: 2_000_000,
            ..Default::default()
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        let out = run_resource_controlled(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng);
        prop_assert!(out.balanced());
        for w in out.potential_series.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-9, "potential increased: {} -> {}", w[0], w[1]);
        }
    }

    /// First-fit assignments are proper for every weight vector and n.
    #[test]
    fn first_fit_always_proper(weights in arb_weights(), n in 1usize..30) {
        let tasks = TaskSet::new(weights);
        let a = assignment::first_fit(&tasks, n);
        prop_assert!(assignment::is_proper(&tasks, &a, n));
        // every task assigned to a valid resource
        prop_assert!(a.iter().all(|&r| (r as usize) < n));
        prop_assert_eq!(a.len(), tasks.len());
    }

    /// Weight specs produce sets consistent with their declared size and
    /// the w_min >= 1 normalization.
    #[test]
    fn weight_specs_well_formed(
        m in 1usize..400,
        hi in 1.0f64..64.0,
        seed in any::<u64>(),
        which in 0usize..4,
    ) {
        let spec = match which {
            0 => WeightSpec::Uniform { m },
            1 => WeightSpec::SingleHeavy { m, heavy: hi.max(1.0) },
            2 => WeightSpec::UniformRange { m, hi: hi.max(1.0) },
            _ => WeightSpec::ParetoTruncated { m, alpha: 1.5, cap: hi.max(1.0) },
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        let tasks = spec.generate(&mut rng);
        prop_assert_eq!(tasks.len(), m);
        prop_assert_eq!(spec.num_tasks(), m);
        prop_assert!(tasks.w_min() >= 1.0 - 1e-12);
        prop_assert!(tasks.w_max() <= hi.max(1.0) + 1e-9);
        prop_assert!((tasks.weights().iter().sum::<f64>() - tasks.total_weight()).abs() < 1e-9);
    }

    /// The balancing time never exceeds the Theorem-11 style bound scaled
    /// by a safety factor (empirically the bound is loose by orders of
    /// magnitude — here we only assert the direction).
    #[test]
    fn user_rounds_within_theorem11_envelope(
        m in 50usize..300,
        heavy in 2.0f64..32.0,
        seed in any::<u64>(),
    ) {
        let tasks = WeightSpec::SingleHeavy { m, heavy }.generate(
            &mut SmallRng::seed_from_u64(seed ^ 1),
        );
        let n = 20usize;
        let cfg = UserControlledConfig::default();
        let mut rng = SmallRng::seed_from_u64(seed);
        let out = run_user_controlled(n, &tasks, Placement::AllOnOne(0), &cfg, &mut rng);
        prop_assert!(out.balanced());
        let bound = tlb_core::drift::theorem11_bound(0.2, 1.0, heavy, 1.0, m);
        // At alpha = 1 the measured time sits far below the analytic bound.
        prop_assert!(
            (out.rounds as f64) <= bound,
            "rounds {} above Theorem-11 bound {bound}",
            out.rounds
        );
    }
}

// ---------------------------------------------------------------------
// Wide-lane kernel layout properties: degree-bucketed cohort sorting and
// the SoA fragment surface.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Degree-bucketed cohort sorting is a pure permutation of the
    /// (task, source) pairs — stable within each degree bucket, ordered
    /// by ascending source degree — and it does not change the *set* of
    /// moves the lazy word law produces when each task keeps its own
    /// word: sorted and unsorted cohorts yield the same multiset of
    /// (task, destination) pairs on irregular graphs.
    #[test]
    fn cohort_degree_sort_is_a_stable_permutation(
        n in 4usize..32,
        cohort_len in 1usize..200,
        p in 0.1f64..0.9,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(n, p, &mut rng).unwrap();
        prop_assume!(g.max_degree() > 0);

        // A cohort with repeated sources and arbitrary task ids.
        let positions: Vec<u32> =
            (0..cohort_len).map(|_| rng.gen_range(0..n as u32)).collect();
        let cohort: Vec<u32> = (0..cohort_len as u32).collect();

        let mut eng = tlb_core::protocol::RoundEngine::new(
            vec![tlb_core::stack::ResourceStack::new()],
            vec![],
            1.0,
            1,
            false,
            false,
        );
        eng.cohort = cohort.clone();
        eng.positions = positions.clone();
        eng.sort_cohort_by_degree(&g);

        // Permutation: same multiset of (task, source) pairs.
        let mut before: Vec<(u32, u32)> =
            cohort.iter().copied().zip(positions.iter().copied()).collect();
        let mut after: Vec<(u32, u32)> =
            eng.cohort.iter().copied().zip(eng.positions.iter().copied()).collect();
        before.sort_unstable();
        after.sort_unstable();
        prop_assert_eq!(&before, &after, "sorting must permute, not rewrite");

        // Ordered by ascending degree, stable within a bucket (task ids
        // were assigned in cohort order, so within equal degree they must
        // stay increasing).
        for w in eng.positions.windows(2) {
            prop_assert!(g.degree(w[0]) <= g.degree(w[1]), "not degree-sorted");
        }
        for i in 1..eng.positions.len() {
            if g.degree(eng.positions[i - 1]) == g.degree(eng.positions[i]) {
                prop_assert!(
                    eng.cohort[i - 1] < eng.cohort[i],
                    "counting sort must be stable within a degree bucket"
                );
            }
        }

        // Same moves: give every task a fixed word of its own (keyed by
        // task id, not cohort index) and apply the lazy word law to the
        // sorted and unsorted orders — the multiset of (task,
        // destination) moves must coincide.
        let word_of = |t: u32| -> u64 {
            (t as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ seed
        };
        let mut dest_unsorted = positions.clone();
        let words: Vec<u64> = cohort.iter().map(|&t| word_of(t)).collect();
        tlb_walks::step_lazy_with_words(&g, &mut dest_unsorted, &words);
        let mut dest_sorted = eng.positions.clone();
        let words: Vec<u64> = eng.cohort.iter().map(|&t| word_of(t)).collect();
        tlb_walks::step_lazy_with_words(&g, &mut dest_sorted, &words);
        let mut moves_unsorted: Vec<(u32, u32)> =
            cohort.iter().copied().zip(dest_unsorted).collect();
        let mut moves_sorted: Vec<(u32, u32)> =
            eng.cohort.iter().copied().zip(dest_sorted).collect();
        moves_unsorted.sort_unstable();
        moves_sorted.sort_unstable();
        prop_assert_eq!(moves_unsorted, moves_sorted);
    }

    /// `StackFragment::split` then `join` round-trips the SoA stepper
    /// state bit-identically at every shard count — loads, task order
    /// within each stack, everything — so sharding the engine can never
    /// move a trajectory by reshaping state.
    #[test]
    fn fragment_split_join_round_trips_across_shard_counts(
        n in 1usize..40,
        m in 0usize..160,
        shards in 1usize..12,
        seed in any::<u64>(),
    ) {
        use tlb_core::fragment::StackFragment;
        use tlb_core::stack::ResourceStack;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut stacks: Vec<ResourceStack> = (0..n).map(|_| ResourceStack::new()).collect();
        let mut weights = Vec::new();
        for t in 0..m as u32 {
            let w = 1.0 + (rng.gen_range(0u32..64) as f64) / 8.0;
            weights.push(w);
            let v = rng.gen_range(0..n);
            stacks[v].push(t, w);
        }
        let partition = tlb_graphs::Partition::contiguous(n, shards);
        let fragments = StackFragment::split(stacks.clone(), &partition);
        prop_assert_eq!(fragments.len(), partition.num_shards());
        let rejoined = StackFragment::join(fragments);
        // PartialEq on ResourceStack compares task ids in stack order and
        // exact load bits — bit-identity, not just equal sums.
        prop_assert_eq!(&stacks, &rejoined);
        let before: f64 = stacks.iter().map(|s| s.load()).sum();
        let after: f64 = rejoined.iter().map(|s| s.load()).sum();
        prop_assert_eq!(before.to_bits(), after.to_bits());
    }
}
