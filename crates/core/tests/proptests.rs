//! Property-based tests for the protocol crate: conservation, feasibility
//! and termination invariants that must hold for *every* workload.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_core::assignment;
use tlb_core::placement::Placement;
use tlb_core::resource_protocol::{run_resource_controlled, ResourceControlledConfig};
use tlb_core::task::TaskSet;
use tlb_core::threshold::ThresholdPolicy;
use tlb_core::user_protocol::{run_user_controlled, UserControlledConfig};
use tlb_core::weights::WeightSpec;
use tlb_graphs::generators;

fn arb_weights() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1u32..40, 1..120)
        .prop_map(|v| v.into_iter().map(|w| w as f64).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// User-controlled runs conserve total weight and finish under the
    /// threshold for every workload and seed.
    #[test]
    fn user_protocol_conserves_weight_and_balances(
        weights in arb_weights(),
        n in 2usize..20,
        seed in any::<u64>(),
        eps in prop_oneof![Just(0.0f64), Just(0.2), Just(1.0)],
    ) {
        let tasks = TaskSet::new(weights);
        let cfg = UserControlledConfig {
            threshold: if eps == 0.0 {
                ThresholdPolicy::Tight
            } else {
                ThresholdPolicy::AboveAverage { epsilon: eps }
            },
            max_rounds: 2_000_000,
            ..Default::default()
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        let out = run_user_controlled(n, &tasks, Placement::AllOnOne(0), &cfg, &mut rng);
        prop_assert!(out.balanced(), "did not balance in {} rounds", out.rounds);
        let total: f64 = out.final_loads.iter().sum();
        prop_assert!((total - tasks.total_weight()).abs() < 1e-6,
            "weight not conserved: {total} vs {}", tasks.total_weight());
        prop_assert!(out.final_max_load <= out.threshold + 1e-9);
        prop_assert_eq!(out.final_loads.len(), n);
    }

    /// Resource-controlled runs conserve weight and balance on connected
    /// random regular graphs.
    #[test]
    fn resource_protocol_conserves_weight_and_balances(
        weights in arb_weights(),
        n in 4usize..24,
        seed in any::<u64>(),
    ) {
        let d = 3usize;
        prop_assume!((n * d).is_multiple_of(2));
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::random_regular(n, d, &mut rng).unwrap();
        let tasks = TaskSet::new(weights);
        let cfg = ResourceControlledConfig { max_rounds: 2_000_000, ..Default::default() };
        let out = run_resource_controlled(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng);
        prop_assert!(out.balanced(), "did not balance in {} rounds", out.rounds);
        let total: f64 = out.final_loads.iter().sum();
        prop_assert!((total - tasks.total_weight()).abs() < 1e-6);
        prop_assert!(out.final_max_load <= out.threshold + 1e-9);
    }

    /// Observation 4: the resource-controlled potential never increases,
    /// on any graph, for any workload.
    #[test]
    fn resource_potential_monotone(
        weights in arb_weights(),
        rows in 2usize..5,
        cols in 2usize..5,
        seed in any::<u64>(),
    ) {
        let g = generators::torus2d(rows, cols);
        let tasks = TaskSet::new(weights);
        let cfg = ResourceControlledConfig {
            track_potential: true,
            max_rounds: 2_000_000,
            ..Default::default()
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        let out = run_resource_controlled(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng);
        prop_assert!(out.balanced());
        for w in out.potential_series.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-9, "potential increased: {} -> {}", w[0], w[1]);
        }
    }

    /// First-fit assignments are proper for every weight vector and n.
    #[test]
    fn first_fit_always_proper(weights in arb_weights(), n in 1usize..30) {
        let tasks = TaskSet::new(weights);
        let a = assignment::first_fit(&tasks, n);
        prop_assert!(assignment::is_proper(&tasks, &a, n));
        // every task assigned to a valid resource
        prop_assert!(a.iter().all(|&r| (r as usize) < n));
        prop_assert_eq!(a.len(), tasks.len());
    }

    /// Weight specs produce sets consistent with their declared size and
    /// the w_min >= 1 normalization.
    #[test]
    fn weight_specs_well_formed(
        m in 1usize..400,
        hi in 1.0f64..64.0,
        seed in any::<u64>(),
        which in 0usize..4,
    ) {
        let spec = match which {
            0 => WeightSpec::Uniform { m },
            1 => WeightSpec::SingleHeavy { m, heavy: hi.max(1.0) },
            2 => WeightSpec::UniformRange { m, hi: hi.max(1.0) },
            _ => WeightSpec::ParetoTruncated { m, alpha: 1.5, cap: hi.max(1.0) },
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        let tasks = spec.generate(&mut rng);
        prop_assert_eq!(tasks.len(), m);
        prop_assert_eq!(spec.num_tasks(), m);
        prop_assert!(tasks.w_min() >= 1.0 - 1e-12);
        prop_assert!(tasks.w_max() <= hi.max(1.0) + 1e-9);
        prop_assert!((tasks.weights().iter().sum::<f64>() - tasks.total_weight()).abs() < 1e-9);
    }

    /// The balancing time never exceeds the Theorem-11 style bound scaled
    /// by a safety factor (empirically the bound is loose by orders of
    /// magnitude — here we only assert the direction).
    #[test]
    fn user_rounds_within_theorem11_envelope(
        m in 50usize..300,
        heavy in 2.0f64..32.0,
        seed in any::<u64>(),
    ) {
        let tasks = WeightSpec::SingleHeavy { m, heavy }.generate(
            &mut SmallRng::seed_from_u64(seed ^ 1),
        );
        let n = 20usize;
        let cfg = UserControlledConfig::default();
        let mut rng = SmallRng::seed_from_u64(seed);
        let out = run_user_controlled(n, &tasks, Placement::AllOnOne(0), &cfg, &mut rng);
        prop_assert!(out.balanced());
        let bound = tlb_core::drift::theorem11_bound(0.2, 1.0, heavy, 1.0, m);
        // At alpha = 1 the measured time sits far below the analytic bound.
        prop_assert!(
            (out.rounds as f64) <= bound,
            "rounds {} above Theorem-11 bound {bound}",
            out.rounds
        );
    }
}
