//! Multi-tenant threshold SLOs.
//!
//! The paper's protocols share one global threshold. A multi-tenant
//! service instead promises each tenant class its own bound: tenant `c`
//! with policy `P_c` is *violated* on resource `r` when the tenant's own
//! load there exceeds `T_c = P_c(W_c, n_active, w_max_c)` — the threshold
//! the tenant's tasks would satisfy if balanced in isolation. The engine
//! rebalances globally (it does not see tenants) and reports per-tenant
//! violation counts per epoch, so tighter-policy tenants surface as the
//! first to degrade under pressure.

use serde::{Deserialize, Serialize};
use tlb_core::stack::ResourceStack;
use tlb_core::threshold::ThresholdPolicy;

/// One tenant class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Display name (report key).
    pub name: String,
    /// The tenant's SLO threshold policy.
    pub policy: ThresholdPolicy,
    /// Relative share of arriving tasks assigned to this tenant
    /// (normalized over all tenants; must be `> 0`).
    pub share: f64,
}

impl TenantSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, policy: ThresholdPolicy, share: f64) -> Self {
        TenantSpec { name: name.into(), policy, share }
    }
}

/// The tenant classes of a run, with cumulative shares for sampling.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSet {
    specs: Vec<TenantSpec>,
    cumulative: Vec<f64>,
}

impl TenantSet {
    /// Build from specs; shares are normalized.
    ///
    /// # Panics
    /// If `specs` is empty or any share is non-positive.
    pub fn new(specs: Vec<TenantSpec>) -> Self {
        assert!(!specs.is_empty(), "need at least one tenant");
        let total: f64 = specs
            .iter()
            .map(|s| {
                assert!(s.share > 0.0, "tenant {} has non-positive share {}", s.name, s.share);
                s.share
            })
            .sum();
        let mut acc = 0.0;
        let cumulative = specs
            .iter()
            .map(|s| {
                acc += s.share / total;
                acc
            })
            .collect();
        TenantSet { specs, cumulative }
    }

    /// A single default tenant taking all traffic.
    pub fn single(policy: ThresholdPolicy) -> Self {
        TenantSet::new(vec![TenantSpec::new("default", policy, 1.0)])
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether there are no tenants (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The tenant specs.
    pub fn specs(&self) -> &[TenantSpec] {
        &self.specs
    }

    /// Tenant names in spec order.
    pub fn names(&self) -> Vec<String> {
        self.specs.iter().map(|s| s.name.clone()).collect()
    }

    /// Map a uniform draw `u ∈ [0, 1)` to a tenant index by share.
    pub fn pick(&self, u: f64) -> u16 {
        self.cumulative.iter().position(|&c| u < c).unwrap_or(self.specs.len() - 1) as u16
    }

    /// Count, for every tenant, the resources whose tenant-local load
    /// exceeds the tenant's own threshold. `weights` and `tenant_of` are
    /// indexed by task id; `n_active` is the denominator of the per-tenant
    /// averages.
    pub fn violations(
        &self,
        stacks: &[ResourceStack],
        weights: &[f64],
        tenant_of: &[u16],
        n_active: usize,
    ) -> Vec<u64> {
        let t = self.specs.len();
        // Tenant-local load per (tenant, resource), plus per-tenant W and
        // w_max, in one pass over the stacked tasks.
        let mut load = vec![0.0f64; t * stacks.len()];
        let mut total = vec![0.0f64; t];
        let mut w_max = vec![0.0f64; t];
        for (r, stack) in stacks.iter().enumerate() {
            for &task in stack.tasks() {
                let c = tenant_of[task as usize] as usize;
                let w = weights[task as usize];
                load[c * stacks.len() + r] += w;
                total[c] += w;
                if w > w_max[c] {
                    w_max[c] = w;
                }
            }
        }
        (0..t)
            .map(|c| {
                if total[c] <= 0.0 || n_active == 0 {
                    return 0;
                }
                let threshold = self.specs[c].policy.value(total[c], n_active, w_max[c]);
                load[c * stacks.len()..(c + 1) * stacks.len()]
                    .iter()
                    .filter(|&&l| l > threshold)
                    .count() as u64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_normalize_and_pick_respects_boundaries() {
        let ts = TenantSet::new(vec![
            TenantSpec::new("a", ThresholdPolicy::Tight, 3.0),
            TenantSpec::new("b", ThresholdPolicy::Tight, 1.0),
        ]);
        assert_eq!(ts.pick(0.0), 0);
        assert_eq!(ts.pick(0.74), 0);
        assert_eq!(ts.pick(0.76), 1);
        assert_eq!(ts.pick(0.999_999), 1);
    }

    #[test]
    fn violations_count_per_tenant_overloads() {
        // Two tenants, two resources. Tenant 0: three unit tasks all on
        // r0 (W=3, wmax=1, tight T = 3/2 + 1 = 2.5 -> r0 violates).
        // Tenant 1: one task on each resource (W=2, T = 2 -> none).
        let ts = TenantSet::new(vec![
            TenantSpec::new("tight", ThresholdPolicy::Tight, 1.0),
            TenantSpec::new("calm", ThresholdPolicy::Tight, 1.0),
        ]);
        let weights = vec![1.0; 5];
        let tenant_of = vec![0, 0, 0, 1, 1];
        let mut r0 = ResourceStack::new();
        r0.push(0, 1.0);
        r0.push(1, 1.0);
        r0.push(2, 1.0);
        r0.push(3, 1.0);
        let mut r1 = ResourceStack::new();
        r1.push(4, 1.0);
        let v = ts.violations(&[r0, r1], &weights, &tenant_of, 2);
        assert_eq!(v, vec![1, 0]);
    }

    #[test]
    fn absent_tenant_reports_zero_violations() {
        let ts = TenantSet::new(vec![
            TenantSpec::new("a", ThresholdPolicy::Tight, 1.0),
            TenantSpec::new("ghost", ThresholdPolicy::Tight, 1.0),
        ]);
        let mut r0 = ResourceStack::new();
        r0.push(0, 2.0);
        let v = ts.violations(&[r0], &[2.0], &[0], 1);
        assert_eq!(v, vec![0, 0], "single resource holds its own average");
    }

    #[test]
    #[should_panic(expected = "non-positive share")]
    fn zero_share_rejected() {
        TenantSet::new(vec![TenantSpec::new("z", ThresholdPolicy::Tight, 0.0)]);
    }
}
