//! The sharded rebalancing engine: Algorithm 5.1 rounds over
//! fragment-partitioned state, stepped in parallel on the rayon pool.
//!
//! ## Shard model
//!
//! The node id space is split into contiguous ranges by a
//! [`Partition`]; each shard owns the [`StackFragment`] of its range.
//! One protocol round runs in three phases:
//!
//! 1. **eject + walk** (parallel, one task per shard): every overloaded
//!    resource in the shard ejects its cutting/above tasks in ascending
//!    node order, and each ejected task takes one walk step, producing
//!    the shard's *outbox* of `(task, destination)` handoffs;
//! 2. **route** (sequential barrier): outboxes are concatenated in shard
//!    order — which by contiguity *is* the global ascending-node-order
//!    cohort of the sequential stepper — and routed into per-destination
//!    shard inboxes, preserving that order;
//! 3. **apply** (parallel): each shard pushes its inbox in routed order
//!    and reports whether its range is balanced; the round is globally
//!    balanced iff every shard is.
//!
//! ## Determinism: counter-based walk words
//!
//! Parallel shards cannot share a sequential RNG without making the
//! stream depend on scheduling. Instead, the walk word of the ejected
//! task with per-source slot `s` on node `v` in round `r` is the
//! *counter-based* draw `mix(mix(stream_seed, r), v · 2³² + s)` where
//! `mix` is the engine's splitmix64 [`epoch_seed`] finalizer — a pure
//! function of `(stream_seed, r, v, s)`, independent of shard count,
//! thread count, and scheduling order. The word is mapped to a
//! destination by [`walk_dest`], which reproduces the batched kernel's
//! one-word-per-walker law (`tlb_walks::BatchWalker`) bit for bit: the
//! same Lemire widening multiply for the slot, the same top-bit fused
//! stay-coin for the lazy walk. Distribution equivalence against the
//! exact transition matrix is chi-square-pinned in this module's tests —
//! the justification, per the repo's RNG stream policy, for the one-time
//! golden re-pin that moving the online resource-policy path onto this
//! engine required.
//!
//! Because every phase is a pure function of the phase inputs and the
//! rayon shim's `collect` preserves input order, a run is bit-identical
//! across `RAYON_NUM_THREADS` *and* across shard counts; the engine at
//! `shards = 1` is the reference sequential semantics.

use std::time::Instant;

use rayon::prelude::*;
use tlb_core::fragment::StackFragment;
use tlb_core::stack::ResourceStack;
use tlb_core::task::TaskId;
use tlb_graphs::{Graph, NodeId, Partition};
use tlb_walks::WalkKind;

use crate::engine::epoch_seed;

/// Domain-separation tag deriving the rebalance stream from an epoch
/// seed (see [`rebalance_seed`]).
const REBALANCE_STREAM_TAG: u64 = 0x5AAD_ED00_31C7_B21F;

/// Seed of the counter-based rebalance stream for `epoch`: a splitmix
/// chain off the engine's base seed, domain-separated from the epoch's
/// sequential churn/arrival RNG so neither stream can alias the other.
#[inline]
pub fn rebalance_seed(base_seed: u64, epoch: u64) -> u64 {
    epoch_seed(epoch_seed(base_seed, epoch), REBALANCE_STREAM_TAG)
}

/// The counter-based walk word for the ejected task with per-source slot
/// index `slot` on node `v` under `round_seed` (see the module docs).
/// Slot indices count a node's ejections within one round bottom-to-top.
#[inline]
pub fn walk_word(round_seed: u64, v: NodeId, slot: u64) -> u64 {
    debug_assert!(slot < u32::MAX as u64, "per-node ejection slot overflowed u32");
    epoch_seed(round_seed, ((v as u64) << 32) | slot)
}

/// Map one walk word to a destination — the batched kernel's per-word
/// law (`tlb_walks::BatchWalker::step_batch`), bit for bit:
///
/// * **max-degree**: `slot = lemire(word, Δ)`; move to `neighbors(v)[slot]`
///   if in range, else the `(Δ − deg v)/Δ` self-loop mass stays;
/// * **lazy**: top bit is the stay-coin; the remaining bits, re-aligned,
///   drive the max-degree slot.
///
/// An edgeless graph (`Δ = 0`) always stays.
///
/// # Panics
/// For [`WalkKind::Simple`] — undefined on the isolated nodes churn
/// creates; the engine rejects it at config validation.
#[inline]
pub fn walk_dest(g: &Graph, kind: WalkKind, v: NodeId, word: u64) -> NodeId {
    let d = g.max_degree() as u64;
    if d == 0 {
        return v;
    }
    match kind {
        WalkKind::MaxDegree => {
            let slot = rand::lemire_u64(word, d) as usize;
            let nbrs = g.neighbors(v);
            if slot < nbrs.len() {
                nbrs[slot]
            } else {
                v
            }
        }
        WalkKind::Lazy => {
            if word >> 63 != 0 {
                return v;
            }
            let slot = rand::lemire_u64(word << 1, d) as usize;
            let nbrs = g.neighbors(v);
            if slot < nbrs.len() {
                nbrs[slot]
            } else {
                v
            }
        }
        WalkKind::Simple => panic!("the simple walk cannot drive the sharded engine"),
    }
}

/// Per-pass observability for the sharded engine, collected only when
/// [`ShardedEngine::enable_obs`] was called (a pass with obs off never
/// reads a clock and skips every tally).
///
/// The split follows the obs contract (`tlb-obs` crate docs):
///
/// * `ejected` / `max_round_cohort` are **deterministic and
///   shard-count-invariant** — pure functions of the pass inputs,
///   accumulated shard-locally and merged in shard order at the round's
///   sequential route barrier;
/// * `cross_shard_handoffs` is deterministic **for a fixed shard
///   layout** (one shard has none by construction) — an execution-layout
///   diagnostic;
/// * the `*_ns` fields are wall clock: total and per-shard time inside
///   each of the three round phases.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardPassStats {
    /// Tasks ejected over the pass (equals `migrations()`).
    pub ejected: u64,
    /// Largest single-round global cohort.
    pub max_round_cohort: u64,
    /// Handoffs whose destination lay on a different shard than their
    /// source.
    pub cross_shard_handoffs: u64,
    /// Wall time inside the parallel eject+walk phase, summed over
    /// shards.
    pub eject_walk_ns: u64,
    /// Wall time of the sequential route barrier.
    pub route_ns: u64,
    /// Wall time inside the parallel apply+balance phase, summed over
    /// shards.
    pub apply_ns: u64,
    /// Per-shard eject+walk wall time (index = shard).
    pub per_shard_eject_walk_ns: Vec<u64>,
    /// Per-shard apply+balance wall time (index = shard).
    pub per_shard_apply_ns: Vec<u64>,
}

/// A resumable sharded rebalancing pass: the resource-controlled
/// protocol's round loop over fragment-partitioned stacks. Construct
/// from live stepper state with [`ShardedEngine::from_parts`], drive
/// with [`ShardedEngine::run`], and take the stacks back with
/// [`ShardedEngine::into_parts`] — the same resume surface the
/// sequential steppers expose, minus the RNG (the engine draws its
/// counter-based stream from the seed passed to `run`).
#[derive(Debug, Clone)]
pub struct ShardedEngine {
    partition: Partition,
    fragments: Vec<StackFragment>,
    threshold: f64,
    walk: WalkKind,
    max_rounds: u64,
    rounds: u64,
    migrations: u64,
    balanced: bool,
    obs: Option<Box<ShardPassStats>>,
}

impl ShardedEngine {
    /// Split `stacks` (a stepper's `into_parts()` surface) into
    /// `partition`'s fragments and set up a pass enforcing `threshold`
    /// with up to `max_rounds` rounds of `walk` steps.
    ///
    /// # Panics
    /// If the partition does not cover exactly `stacks.len()` nodes.
    pub fn from_parts(
        stacks: Vec<ResourceStack>,
        partition: Partition,
        threshold: f64,
        walk: WalkKind,
        max_rounds: u64,
    ) -> Self {
        let fragments = StackFragment::split(stacks, &partition);
        let balanced = fragments.iter().all(|f| f.is_balanced(threshold));
        ShardedEngine {
            partition,
            fragments,
            threshold,
            walk,
            max_rounds,
            rounds: 0,
            migrations: 0,
            balanced,
            obs: None,
        }
    }

    /// Turn on per-pass observability (idempotent). Off by default: a
    /// pass without it takes no timestamps and keeps no tallies.
    pub fn enable_obs(&mut self) {
        if self.obs.is_none() {
            let shards = self.partition.num_shards();
            self.obs = Some(Box::new(ShardPassStats {
                per_shard_eject_walk_ns: vec![0; shards],
                per_shard_apply_ns: vec![0; shards],
                ..ShardPassStats::default()
            }));
        }
    }

    /// The pass statistics, if [`enable_obs`](Self::enable_obs) was
    /// called.
    pub fn obs(&self) -> Option<&ShardPassStats> {
        self.obs.as_deref()
    }

    /// Run rounds until balanced or the round budget is spent. `weights`
    /// is the global task-weight table; `stream_seed` roots the
    /// counter-based walk stream (see [`rebalance_seed`]).
    pub fn run(&mut self, g: &Graph, weights: &[f64], stream_seed: u64) {
        while !self.balanced && self.rounds < self.max_rounds {
            let round_seed = epoch_seed(stream_seed, self.rounds);
            self.round(g, weights, round_seed);
        }
    }

    /// One three-phase round (see the module docs).
    fn round(&mut self, g: &Graph, weights: &[f64], round_seed: u64) {
        /// Phase-1 result per shard: the fragment handed back, its outbox
        /// of `(task, destination)` walk handoffs, and the eject+walk
        /// wall time in ns (always 0 when obs is off — no clock is read).
        type EjectedShard = (StackFragment, Vec<(TaskId, NodeId)>, u64);
        let threshold = self.threshold;
        let walk = self.walk;
        // Phase 1: eject + walk, one pool task per shard. Each outbox is
        // in ascending (node, slot) order within its shard.
        let timed = self.obs.is_some();
        let fragments = std::mem::take(&mut self.fragments);
        let ejected: Vec<EjectedShard> = fragments
            .into_par_iter()
            .map(|mut frag| {
                let t0 = timed.then(Instant::now);
                let mut cohort: Vec<TaskId> = Vec::new();
                let mut sources: Vec<NodeId> = Vec::new();
                frag.eject_overloaded(threshold, weights, &mut cohort, &mut sources);
                let mut outbox = Vec::with_capacity(cohort.len());
                let mut prev = NodeId::MAX;
                let mut slot = 0u64;
                for (&t, &v) in cohort.iter().zip(&sources) {
                    slot = if v == prev { slot + 1 } else { 0 };
                    prev = v;
                    let dest = walk_dest(g, walk, v, walk_word(round_seed, v, slot));
                    outbox.push((t, dest));
                }
                let ns = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
                (frag, outbox, ns)
            })
            .collect();
        // Phase 2: route handoffs. Iterating shards in order keeps each
        // inbox in canonical global cohort order, so the apply phase
        // stacks arrivals exactly as the sequential stepper would.
        let t_route = timed.then(Instant::now);
        let mut inboxes: Vec<Vec<(TaskId, NodeId)>> = vec![Vec::new(); self.partition.num_shards()];
        for (_, outbox, _) in &ejected {
            self.migrations += outbox.len() as u64;
            for &(t, dest) in outbox {
                inboxes[self.partition.shard_of(dest)].push((t, dest));
            }
        }
        // Obs tallies walk the same shard order as the route loop, so the
        // deterministic counters merge identically for every shard count.
        let partition = &self.partition;
        if let Some(obs) = self.obs.as_deref_mut() {
            let mut round_cohort = 0u64;
            for (shard, (_, outbox, ns)) in ejected.iter().enumerate() {
                round_cohort += outbox.len() as u64;
                obs.cross_shard_handoffs +=
                    outbox.iter().filter(|&&(_, dest)| partition.shard_of(dest) != shard).count()
                        as u64;
                obs.per_shard_eject_walk_ns[shard] += ns;
                obs.eject_walk_ns += ns;
            }
            obs.ejected += round_cohort;
            obs.max_round_cohort = obs.max_round_cohort.max(round_cohort);
            obs.route_ns += t_route.map_or(0, |t| t.elapsed().as_nanos() as u64);
        }
        // Phase 3: apply inboxes and check balance per shard.
        let work: Vec<(StackFragment, Vec<(TaskId, NodeId)>)> =
            ejected.into_iter().map(|(f, _, _)| f).zip(inboxes).collect();
        let applied: Vec<(StackFragment, bool, u64)> = work
            .into_par_iter()
            .map(|(mut frag, inbox)| {
                let t0 = timed.then(Instant::now);
                for (t, dest) in inbox {
                    frag.push(dest, t, weights[t as usize]);
                }
                let balanced = frag.is_balanced(threshold);
                let ns = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
                (frag, balanced, ns)
            })
            .collect();
        if let Some(obs) = self.obs.as_deref_mut() {
            for (shard, &(_, _, ns)) in applied.iter().enumerate() {
                obs.per_shard_apply_ns[shard] += ns;
                obs.apply_ns += ns;
            }
        }
        self.balanced = applied.iter().all(|&(_, ok, _)| ok);
        self.fragments = applied.into_iter().map(|(f, _, _)| f).collect();
        self.rounds += 1;
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total walk steps taken (every ejected task counts, stays included
    /// — the sequential steppers' convention).
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Whether no resource exceeded the threshold after the last round.
    pub fn is_balanced(&self) -> bool {
        self.balanced
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.partition.num_shards()
    }

    /// Reassemble and return the flat per-resource stacks.
    pub fn into_parts(self) -> Vec<ResourceStack> {
        StackFragment::join(self.fragments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngCore, SeedableRng};
    use tlb_graphs::generators::{complete, star, torus2d};
    use tlb_walks::{BatchWalker, TransitionMatrix};

    /// An `RngCore` replaying a fixed word list — drives the real batched
    /// kernel with chosen words to pin `walk_dest` to its per-word law.
    struct FixedWords(Vec<u64>, usize);
    impl RngCore for FixedWords {
        fn next_u64(&mut self) -> u64 {
            let w = self.0[self.1];
            self.1 += 1;
            w
        }
    }

    #[test]
    fn walk_dest_matches_the_batched_kernel_per_word() {
        // Irregular (star: hub 24, leaves 1) and regular (torus) graphs
        // cover both kernel paths; a word sweep covers both coin halves.
        //
        // The max-degree kernel applies one caller word per walker, so
        // `word` feeds `walk_dest` directly. The lazy kernel draws one
        // *parent* word and fans it out through the lane-striped
        // [`WideRng`] block; the word its mapping actually applies to
        // walker 0 is the first word of that expansion, so the law is
        // pinned against exactly that word.
        for g in [star(25), torus2d(5, 5)] {
            for kind in [WalkKind::MaxDegree, WalkKind::Lazy] {
                for (i, v) in (0..g.num_nodes() as NodeId).enumerate() {
                    let word = epoch_seed(0xD15EA5E, i as u64);
                    let mut pos = vec![v];
                    let mut rng = FixedWords(vec![word], 0);
                    BatchWalker::new().step_batch(&g, kind, &mut pos, &mut rng);
                    let applied = match kind {
                        WalkKind::Lazy => {
                            let mut lane0 = [0u64; 1];
                            rand::rngs::WideRng::seed_from_u64(word).fill_u64(&mut lane0);
                            lane0[0]
                        }
                        _ => word,
                    };
                    assert_eq!(
                        walk_dest(&g, kind, v, applied),
                        pos[0],
                        "{kind:?} diverged from the kernel at {v} word {applied:#x}"
                    );
                }
            }
        }
    }

    /// Chi-square pin (the re-pin justification per the stream policy):
    /// counter-based words drive `walk_dest` to the exact one-step
    /// transition law, just as the sequential stream does.
    #[test]
    fn counter_words_reproduce_the_transition_row() {
        let graphs: Vec<(&str, Graph, NodeId)> = vec![
            ("star_hub", star(8), 0),
            ("torus", torus2d(4, 4), 5),
            ("complete", complete(6), 2),
        ];
        let total = 120_000u64;
        for (name, g, start) in &graphs {
            for kind in [WalkKind::MaxDegree, WalkKind::Lazy] {
                let probs = TransitionMatrix::build(g, kind);
                let probs = probs.matrix().row(*start as usize);
                let mut counts = vec![0u64; g.num_nodes()];
                for i in 0..total {
                    // Vary both the round seed and the slot, as the
                    // engine does across rounds and stack positions.
                    let word = walk_word(epoch_seed(7, i / 97), *start, i % 97);
                    counts[walk_dest(g, kind, *start, word) as usize] += 1;
                }
                let (mut stat, mut df) = (0.0f64, 0usize);
                for (&c, &p) in counts.iter().zip(probs) {
                    if p <= 0.0 {
                        assert_eq!(c, 0, "mass on a zero-probability destination");
                        continue;
                    }
                    let e = p * total as f64;
                    stat += (c as f64 - e) * (c as f64 - e) / e;
                    df += 1;
                }
                let df = df.saturating_sub(1);
                // χ²(df, 0.999) upper bound, as in tlb_walks::batch.
                let crit = df as f64 + 4.0 * (2.0 * df as f64).sqrt() + 10.0;
                assert!(
                    if df == 0 { stat == 0.0 } else { stat < crit },
                    "{name}/{kind:?}: chi2 {stat:.2} >= {crit:.2} (df {df})"
                );
            }
        }
    }

    fn loaded_stacks(n: usize, tasks_on: &[(NodeId, usize)]) -> (Vec<ResourceStack>, Vec<f64>) {
        let mut stacks = vec![ResourceStack::new(); n];
        let mut weights = Vec::new();
        for &(v, k) in tasks_on {
            for i in 0..k {
                let id = weights.len() as TaskId;
                weights.push(1.0 + (i % 3) as f64);
                stacks[v as usize].push(id, weights[id as usize]);
            }
        }
        (stacks, weights)
    }

    #[test]
    fn output_is_invariant_to_shard_count() {
        let g = torus2d(6, 6);
        let (stacks, weights) = loaded_stacks(36, &[(0, 40), (17, 25), (35, 10)]);
        let run_at = |k: usize| {
            let p = Partition::contiguous(36, k);
            let mut eng =
                ShardedEngine::from_parts(stacks.clone(), p, 5.0, WalkKind::MaxDegree, 64);
            eng.run(&g, &weights, 0xFEED);
            (eng.rounds(), eng.migrations(), eng.is_balanced(), eng.into_parts())
        };
        let reference = run_at(1);
        for k in [2usize, 3, 5, 8, 36] {
            assert_eq!(run_at(k), reference, "shard count {k} diverged");
        }
        assert!(reference.2, "reference run should balance on the torus");
    }

    #[test]
    fn obs_counters_are_shard_count_invariant_and_off_by_default() {
        let g = torus2d(6, 6);
        let (stacks, weights) = loaded_stacks(36, &[(0, 40), (17, 25), (35, 10)]);
        let run_at = |k: usize, obs: bool| {
            let p = Partition::contiguous(36, k);
            let mut eng =
                ShardedEngine::from_parts(stacks.clone(), p, 5.0, WalkKind::MaxDegree, 64);
            if obs {
                eng.enable_obs();
            }
            eng.run(&g, &weights, 0xFEED);
            let stats = eng.obs().cloned();
            (eng.rounds(), eng.migrations(), eng.into_parts(), stats)
        };
        // Obs off: no stats, and the pass output matches the obs-on runs.
        let (rounds, migrations, parts, none) = run_at(1, false);
        assert_eq!(none, None, "obs must be opt-in");
        let reference = run_at(1, true);
        assert_eq!((reference.0, reference.1, &reference.2), (rounds, migrations, &parts));
        let ref_stats = reference.3.expect("obs was enabled");
        assert_eq!(ref_stats.ejected, migrations);
        assert!(ref_stats.max_round_cohort > 0);
        assert!(ref_stats.max_round_cohort <= migrations);
        assert_eq!(ref_stats.cross_shard_handoffs, 0, "one shard has no handoffs");
        for k in [2usize, 3, 8] {
            let run = run_at(k, true);
            assert_eq!((run.0, run.1, &run.2), (rounds, migrations, &parts));
            let stats = run.3.expect("obs was enabled");
            assert_eq!(stats.ejected, ref_stats.ejected, "shard count {k}");
            assert_eq!(stats.max_round_cohort, ref_stats.max_round_cohort, "shard count {k}");
            assert_eq!(stats.per_shard_eject_walk_ns.len(), k);
            assert_eq!(stats.per_shard_apply_ns.len(), k);
            assert!(stats.cross_shard_handoffs <= stats.ejected);
        }
    }

    #[test]
    fn from_parts_into_parts_round_trips_without_rounds() {
        let (stacks, _) = loaded_stacks(10, &[(2, 5), (7, 3)]);
        for k in [1usize, 2, 4, 10] {
            let p = Partition::contiguous(10, k);
            let eng =
                ShardedEngine::from_parts(stacks.clone(), p, f64::INFINITY, WalkKind::Lazy, 8);
            assert!(eng.is_balanced());
            assert_eq!(eng.into_parts(), stacks);
        }
    }

    #[test]
    fn round_budget_is_respected() {
        let g = complete(4);
        // All load on one node, threshold so tight it cannot balance.
        let (stacks, weights) = loaded_stacks(4, &[(0, 50)]);
        let p = Partition::contiguous(4, 2);
        let mut eng = ShardedEngine::from_parts(stacks, p, 0.5, WalkKind::MaxDegree, 6);
        eng.run(&g, &weights, 9);
        assert_eq!(eng.rounds(), 6);
        assert!(!eng.is_balanced());
        assert!(eng.migrations() > 0);
    }
}
