//! The epoch-driven online simulation engine.
//!
//! Each epoch the engine: (1) applies resource churn (scripted rack
//! drains and stochastic failures/recoveries, draining tasks off leaving
//! resources), (2) departs tasks, (3) admits streaming arrivals, then
//! (4) runs the configured threshold protocol as an *incremental*
//! rebalancing pass — up to `rounds_per_epoch` protocol rounds through
//! the resumable steppers of `tlb-core` — and (5) records an
//! [`EpochRecord`]. The threshold is recomputed every epoch from the
//! *live* population (total weight, active resources, live `w_max`), so
//! the target tracks the traffic.
//!
//! ## Determinism
//!
//! Every epoch draws all its randomness from a fresh `SmallRng` seeded
//! with [`epoch_seed`]`(base_seed, epoch)`. The engine is strictly
//! sequential and never touches the rayon pool, so a run is a pure
//! function of `(config, base graph)` — bit-identical across thread
//! counts, and epoch `e`'s draw stream is independent of how much
//! randomness earlier epochs consumed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tlb_baselines::{BaselineConfig, BaselineRule};
use tlb_core::mixed_protocol::{Departure, MixedConfig};
use tlb_core::potential::{is_balanced, max_load, num_overloaded, total_potential};
use tlb_core::protocol::{AnyStepper, ProtocolKind};
use tlb_core::resource_protocol::ResourceControlledConfig;
use tlb_core::stack::ResourceStack;
use tlb_core::task::TaskId;
use tlb_core::threshold::ThresholdPolicy;
use tlb_graphs::{DynamicGraph, Graph, NodeId};
use tlb_walks::WalkKind;

use crate::arrivals::{ArrivalPlacement, ArrivalProcess, ArrivalWeights};
use crate::churn::{ChurnEvent, ChurnProcess};
use crate::metrics::{EpochRecord, SimReport};
use crate::tenants::{TenantSet, TenantSpec};

/// Derive epoch `e`'s seed from the base seed (splitmix64 over the pair,
/// the same mix `tlb-experiments::harness::trial_seed` uses for trials,
/// so neighbouring epochs get decorrelated streams).
#[inline]
pub fn epoch_seed(base: u64, epoch: u64) -> u64 {
    let mut z = base ^ epoch.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Which protocol the per-epoch rebalancing pass runs. Every variant
/// resolves to an [`AnyStepper`] via [`RebalancePolicy::make_stepper`],
/// so the epoch loop drives one trait object instead of per-protocol
/// match arms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RebalancePolicy {
    /// Resource-controlled (Algorithm 5.1): overloaded resources eject
    /// every cutting/above task, one walk step each.
    Resource {
        /// Walk moving ejected tasks.
        walk: WalkKind,
    },
    /// Mixed protocol: user-style Bernoulli departures, resource-style
    /// walk movement (works on any topology).
    Mixed {
        /// Departure rule.
        departure: Departure,
        /// Migration damping `α`.
        alpha: f64,
        /// Walk moving departing tasks.
        walk: WalkKind,
    },
    /// A related-work baseline (`tlb-baselines` stepper adapter):
    /// Algorithm-5.1 ejection with the baseline's global re-placement
    /// rule. Safe under churn — the adapters never place tasks on
    /// isolated (deactivated) resources.
    Baseline {
        /// Placement rule moving ejected tasks.
        rule: BaselineRule,
    },
}

impl RebalancePolicy {
    /// Build the protocol stepper for one epoch's rebalancing pass
    /// (resumes from the live stacks; consumes no RNG).
    fn make_stepper(
        &self,
        threshold_policy: ThresholdPolicy,
        rounds_per_epoch: u64,
        stacks: Vec<ResourceStack>,
        weights: Vec<f64>,
        threshold: f64,
        w_max: f64,
    ) -> AnyStepper {
        match *self {
            RebalancePolicy::Resource { walk } => {
                ProtocolKind::Resource(ResourceControlledConfig {
                    threshold: threshold_policy,
                    walk,
                    max_rounds: rounds_per_epoch,
                    ..Default::default()
                })
                .stepper_from_parts(stacks, weights, threshold, w_max)
            }
            RebalancePolicy::Mixed { departure, alpha, walk } => ProtocolKind::Mixed(MixedConfig {
                threshold: threshold_policy,
                departure,
                alpha,
                walk,
                max_rounds: rounds_per_epoch,
                ..Default::default()
            })
            .stepper_from_parts(stacks, weights, threshold, w_max),
            RebalancePolicy::Baseline { rule } => BaselineConfig {
                threshold: threshold_policy,
                rule,
                max_rounds: rounds_per_epoch,
                ..Default::default()
            }
            .stepper_from_parts(stacks, weights, threshold),
        }
    }
}

/// Full configuration of an online run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Scenario name (report key).
    pub name: String,
    /// Epochs to run.
    pub epochs: u64,
    /// Base seed; see [`epoch_seed`].
    pub seed: u64,
    /// Arrival count process.
    pub arrivals: ArrivalProcess,
    /// If set, arrivals only happen while `epoch < window` (the tail of
    /// the run is a pure drain/convergence phase).
    pub arrival_window: Option<u64>,
    /// Where arrivals land.
    pub arrival_placement: ArrivalPlacement,
    /// Arrival weight distribution.
    pub arrival_weights: ArrivalWeights,
    /// Per-task per-epoch departure probability (`0 ≤ p < 1`).
    pub departure_prob: f64,
    /// Resource churn.
    pub churn: ChurnProcess,
    /// Tenant classes (arrival shares and per-tenant SLO policies).
    pub tenants: Vec<TenantSpec>,
    /// Global threshold policy the rebalancing pass enforces, recomputed
    /// each epoch over the live population.
    pub threshold: ThresholdPolicy,
    /// Which protocol rebalances.
    pub rebalance: RebalancePolicy,
    /// Protocol-round budget per epoch (the pass stops early once
    /// balanced).
    pub rounds_per_epoch: u64,
    /// Compact the churn overlay back to CSR once this many edge deltas
    /// accumulate.
    pub compact_after_ops: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            name: "online".into(),
            epochs: 200,
            seed: 0,
            arrivals: ArrivalProcess::Poisson { rate: 20.0 },
            arrival_window: None,
            arrival_placement: ArrivalPlacement::Uniform,
            arrival_weights: ArrivalWeights::Unit,
            departure_prob: 0.0,
            churn: ChurnProcess::none(),
            tenants: vec![TenantSpec::new(
                "default",
                ThresholdPolicy::AboveAverage { epsilon: 0.2 },
                1.0,
            )],
            threshold: ThresholdPolicy::AboveAverage { epsilon: 0.2 },
            rebalance: RebalancePolicy::Resource { walk: WalkKind::MaxDegree },
            rounds_per_epoch: 16,
            compact_after_ops: 64,
        }
    }
}

/// The online simulation state.
#[derive(Debug, Clone)]
pub struct OnlineSim {
    cfg: SimConfig,
    tenants: TenantSet,
    dg: DynamicGraph,
    /// CSR snapshot of the effective graph the walk kernels use;
    /// refreshed whenever churn changes the topology.
    walk_graph: Graph,
    stacks: Vec<ResourceStack>,
    /// Weight slot per task id; slots of departed tasks are recycled via
    /// `free_ids`, so memory tracks the live population, not the arrival
    /// total.
    weights: Vec<f64>,
    /// Tenant index per task id (parallel to `weights`).
    tenant_of: Vec<u16>,
    free_ids: Vec<TaskId>,
    live: usize,
    epoch: u64,
    records: Vec<EpochRecord>,
    // Reused per-epoch buffer for departure draws.
    departed: Vec<TaskId>,
}

impl OnlineSim {
    /// Create an engine over `base` with no tasks.
    ///
    /// # Panics
    /// If the graph is empty, the tenant list is empty or has
    /// non-positive shares, `departure_prob` is not in `[0, 1)`, or a
    /// churn probability is not in `[0, 1]`.
    pub fn new(base: Graph, cfg: SimConfig) -> Self {
        let n = base.num_nodes();
        assert!(n > 0, "need at least one resource");
        Self::validate(&cfg);
        let tenants = TenantSet::new(cfg.tenants.clone());
        let dg = DynamicGraph::new(base);
        let walk_graph = dg.snapshot();
        OnlineSim {
            cfg,
            tenants,
            dg,
            walk_graph,
            stacks: vec![ResourceStack::new(); n],
            weights: Vec::new(),
            tenant_of: Vec::new(),
            free_ids: Vec::new(),
            live: 0,
            epoch: 0,
            records: Vec::new(),
            departed: Vec::new(),
        }
    }

    /// Parameters come from config literals, so reject bad ones up front
    /// instead of panicking deep inside a sampler mid-run.
    fn validate(cfg: &SimConfig) {
        assert!(
            (0.0..1.0).contains(&cfg.departure_prob),
            "departure_prob must be in [0, 1), got {}",
            cfg.departure_prob
        );
        for (name, p) in
            [("random_down", cfg.churn.random_down), ("random_up", cfg.churn.random_up)]
        {
            assert!((0.0..=1.0).contains(&p), "churn {name} must be in [0, 1], got {p}");
        }
        cfg.arrivals.validate();
        cfg.arrival_weights.validate();
        // Churn can isolate an active node; the max-degree and lazy walks
        // self-loop there, but the simple walk is undefined on isolated
        // nodes, so it cannot drive an online run. (Baselines use no walk
        // and filter isolated destinations themselves.)
        let walk = match cfg.rebalance {
            RebalancePolicy::Resource { walk } => Some(walk),
            RebalancePolicy::Mixed { walk, .. } => Some(walk),
            RebalancePolicy::Baseline { .. } => None,
        };
        assert!(
            walk != Some(WalkKind::Simple),
            "WalkKind::Simple cannot rebalance a churned graph (undefined on isolated nodes)"
        );
    }

    /// Swap the configuration between runs (phase-driven scenarios: a new
    /// arrival process or round budget for the next batch of epochs)
    /// while keeping all engine state — stacks, churn overlay, epoch
    /// counter, records. The tenant list must be unchanged, because
    /// task→tenant assignments are indices into it.
    pub fn with_config(mut self, cfg: SimConfig) -> Self {
        assert_eq!(self.cfg.tenants, cfg.tenants, "tenant classes cannot change mid-run");
        Self::validate(&cfg);
        self.cfg = cfg;
        self
    }

    /// Number of live tasks.
    pub fn live_tasks(&self) -> usize {
        self.live
    }

    /// Epochs executed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The churn overlay (for inspection).
    pub fn graph(&self) -> &DynamicGraph {
        &self.dg
    }

    /// The per-resource stacks (index = resource id).
    pub fn stacks(&self) -> &[ResourceStack] {
        &self.stacks
    }

    /// Records taken so far.
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// Capacity of the task-id space (live slots + recycled free slots) —
    /// the engine's memory footprint per task, for the bounded-memory
    /// tests.
    pub fn id_capacity(&self) -> usize {
        self.weights.len()
    }

    /// Run `cfg.epochs` epochs (on top of any already run) and assemble
    /// the report.
    pub fn run(&mut self) -> SimReport {
        for _ in 0..self.cfg.epochs {
            self.run_epoch();
        }
        SimReport::from_records(
            self.cfg.name.clone(),
            self.cfg.seed,
            self.tenants.names(),
            self.records.clone(),
        )
    }

    /// Execute one epoch: churn → departures → arrivals → rebalance →
    /// metrics.
    pub fn run_epoch(&mut self) {
        let mut rng = SmallRng::seed_from_u64(epoch_seed(self.cfg.seed, self.epoch));
        let mut drained = 0u64;
        let mut topology_changed = false;

        // --- 1. churn: scripted events in list order, then stochastic.
        let events: Vec<ChurnEvent> = self.cfg.churn.events_at(self.epoch).collect();
        for ev in events {
            drained += self.apply_event(ev, &mut rng, &mut topology_changed);
        }
        if self.cfg.churn.random_down > 0.0 && rng.gen_bool(self.cfg.churn.random_down) {
            let active = self.active_ids();
            if active.len() > 1 {
                let v = active[rng.gen_range(0..active.len())];
                drained +=
                    self.apply_event(ChurnEvent::Deactivate(v), &mut rng, &mut topology_changed);
            }
        }
        if self.cfg.churn.random_up > 0.0 && rng.gen_bool(self.cfg.churn.random_up) {
            let inactive: Vec<NodeId> =
                (0..self.dg.num_nodes() as NodeId).filter(|&v| !self.dg.is_active(v)).collect();
            if !inactive.is_empty() {
                let v = inactive[rng.gen_range(0..inactive.len())];
                self.apply_event(ChurnEvent::Activate(v), &mut rng, &mut topology_changed);
            }
        }
        if topology_changed {
            if self.dg.delta_ops() >= self.cfg.compact_after_ops {
                self.dg.compact();
            }
            self.walk_graph = self.dg.snapshot();
        }

        // --- 2. departures: every live task flips an independent coin.
        let mut departures = 0u64;
        if self.cfg.departure_prob > 0.0 && self.live > 0 {
            self.departed.clear();
            for stack in self.stacks.iter_mut() {
                stack.drain_bernoulli_into(
                    self.cfg.departure_prob,
                    &self.weights,
                    &mut rng,
                    &mut self.departed,
                );
            }
            departures = self.departed.len() as u64;
            self.live -= self.departed.len();
            self.free_ids.append(&mut self.departed);
        }

        // --- 3. arrivals.
        let mut arrivals = 0u64;
        let in_window = self.cfg.arrival_window.is_none_or(|w| self.epoch < w);
        if in_window {
            let count = self.cfg.arrivals.sample_count(self.epoch, &mut rng);
            let active = self.active_ids();
            for _ in 0..count {
                let tenant = self.tenants.pick(rng.gen::<f64>());
                let weight = self.cfg.arrival_weights.sample(&mut rng);
                let dest = self.arrival_destination(&active, &mut rng);
                let id = match self.free_ids.pop() {
                    Some(id) => {
                        self.weights[id as usize] = weight;
                        self.tenant_of[id as usize] = tenant;
                        id
                    }
                    None => {
                        self.weights.push(weight);
                        self.tenant_of.push(tenant);
                        (self.weights.len() - 1) as TaskId
                    }
                };
                self.stacks[dest as usize].push(id, weight);
                self.live += 1;
                arrivals += 1;
            }
        }

        // --- 4. recompute the live threshold.
        let n_active = self.dg.num_active();
        let total_weight: f64 = self.stacks.iter().map(ResourceStack::load).sum();
        let w_max = self
            .stacks
            .iter()
            .flat_map(|s| s.tasks().iter())
            .map(|&t| self.weights[t as usize])
            .fold(0.0, f64::max);
        let threshold = if self.live > 0 {
            self.cfg.threshold.value(total_weight, n_active, w_max)
        } else {
            0.0
        };

        // --- 5. incremental rebalancing pass through the core steppers.
        let mut rebalance_rounds = 0u64;
        let mut migrations = 0u64;
        if self.live > 0 && !is_balanced(&self.stacks, threshold) {
            let stacks = std::mem::take(&mut self.stacks);
            let weights = std::mem::take(&mut self.weights);
            // One trait object covers every policy — paper protocols and
            // baseline adapters alike (same draws as driving the concrete
            // stepper directly; see the tlb-core stream policy).
            let mut stepper = self.cfg.rebalance.make_stepper(
                self.cfg.threshold,
                self.cfg.rounds_per_epoch,
                stacks,
                weights,
                threshold,
                w_max,
            );
            stepper.run(&self.walk_graph, &mut rng);
            rebalance_rounds = stepper.rounds();
            migrations = stepper.migrations();
            (self.stacks, self.weights) = stepper.into_parts();
        }

        // --- 6. metrics snapshot.
        let max_load = max_load(&self.stacks);
        let overloaded = num_overloaded(&self.stacks, threshold);
        let balanced = overloaded == 0;
        self.records.push(EpochRecord {
            epoch: self.epoch,
            live_tasks: self.live,
            active_resources: n_active,
            arrivals,
            departures,
            drained,
            rebalance_rounds,
            migrations,
            threshold,
            max_load,
            mean_load: if n_active > 0 { total_weight / n_active as f64 } else { 0.0 },
            overload_fraction: if n_active > 0 { overloaded as f64 / n_active as f64 } else { 0.0 },
            potential: total_potential(&self.stacks, threshold, &self.weights),
            balanced,
            tenant_violations: self.tenants.violations(
                &self.stacks,
                &self.weights,
                &self.tenant_of,
                n_active,
            ),
        });
        self.epoch += 1;
    }

    /// Apply one churn event. Deactivating a resource drains its tasks to
    /// uniformly random surviving resources (the orchestrator's forced
    /// migration — these do not count as protocol migrations). Returns
    /// the number of drained tasks. Deactivation of the last active
    /// resource is skipped: the system never loses all capacity.
    fn apply_event<R: Rng + ?Sized>(
        &mut self,
        ev: ChurnEvent,
        rng: &mut R,
        topology_changed: &mut bool,
    ) -> u64 {
        match ev {
            ChurnEvent::Deactivate(v) => self.deactivate_one(v, rng, topology_changed),
            ChurnEvent::Activate(v) => {
                if self.dg.activate(v) {
                    *topology_changed = true;
                }
                0
            }
            ChurnEvent::DeactivateRange { from, to } => {
                // Take the whole rack down before re-placing anything, so
                // no task is drained onto a sibling that leaves in the
                // same event (and then drained again).
                let mut orphans: Vec<TaskId> = Vec::new();
                for v in from..to {
                    if let Some(stack) = self.deactivate_collect(v, topology_changed) {
                        orphans.extend_from_slice(stack.tasks());
                    }
                }
                self.place_orphans(&orphans, rng)
            }
            ChurnEvent::ActivateRange { from, to } => {
                for v in from..to {
                    if self.dg.activate(v) {
                        *topology_changed = true;
                    }
                }
                0
            }
            ChurnEvent::AddEdge(u, v) => {
                if self.dg.add_edge(u, v).expect("scripted edge must be valid") {
                    *topology_changed = true;
                }
                0
            }
            ChurnEvent::RemoveEdge(u, v) => {
                if self.dg.remove_edge(u, v).expect("scripted edge must be valid") {
                    *topology_changed = true;
                }
                0
            }
        }
    }

    fn deactivate_one<R: Rng + ?Sized>(
        &mut self,
        v: NodeId,
        rng: &mut R,
        topology_changed: &mut bool,
    ) -> u64 {
        match self.deactivate_collect(v, topology_changed) {
            Some(orphan) => {
                let tasks = orphan.tasks().to_vec();
                self.place_orphans(&tasks, rng)
            }
            None => 0,
        }
    }

    /// Deactivate `v` (unless it is the last active resource) and take
    /// its stack without re-placing the tasks yet.
    fn deactivate_collect(
        &mut self,
        v: NodeId,
        topology_changed: &mut bool,
    ) -> Option<ResourceStack> {
        if !self.dg.is_active(v) || self.dg.num_active() <= 1 {
            return None;
        }
        self.dg.deactivate(v);
        *topology_changed = true;
        Some(std::mem::take(&mut self.stacks[v as usize]))
    }

    /// Re-place drained tasks on uniformly random surviving resources;
    /// returns how many were placed.
    fn place_orphans<R: Rng + ?Sized>(&mut self, orphans: &[TaskId], rng: &mut R) -> u64 {
        if orphans.is_empty() {
            return 0;
        }
        let survivors = self.active_ids();
        for &t in orphans {
            let dest = survivors[rng.gen_range(0..survivors.len())];
            self.stacks[dest as usize].push(t, self.weights[t as usize]);
        }
        orphans.len() as u64
    }

    fn active_ids(&self) -> Vec<NodeId> {
        (0..self.dg.num_nodes() as NodeId).filter(|&v| self.dg.is_active(v)).collect()
    }

    fn arrival_destination<R: Rng + ?Sized>(&self, active: &[NodeId], rng: &mut R) -> NodeId {
        match self.cfg.arrival_placement {
            ArrivalPlacement::Uniform => active[rng.gen_range(0..active.len())],
            ArrivalPlacement::HotSpot(v) => {
                if self.dg.is_active(v) {
                    v
                } else {
                    active[0]
                }
            }
            ArrivalPlacement::MostLoaded => active
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    self.stacks[a as usize]
                        .load()
                        .partial_cmp(&self.stacks[b as usize].load())
                        .expect("loads are finite")
                        // Ties go to the lowest id: prefer `a` on equal.
                        .then(b.cmp(&a))
                })
                .expect("at least one active resource"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlb_graphs::generators::{complete, torus2d};

    fn quick_cfg(name: &str) -> SimConfig {
        SimConfig {
            name: name.into(),
            epochs: 60,
            seed: 11,
            arrivals: ArrivalProcess::Poisson { rate: 12.0 },
            departure_prob: 0.05,
            rounds_per_epoch: 8,
            ..Default::default()
        }
    }

    #[test]
    fn steady_state_stays_mostly_balanced() {
        let mut sim = OnlineSim::new(complete(16), quick_cfg("steady"));
        let report = sim.run();
        assert_eq!(report.epochs, 60);
        assert!(report.total_arrivals > 0);
        assert!(report.total_departures > 0);
        // On K_16 with a generous round budget the pass should end most
        // epochs balanced.
        assert!(report.balanced_fraction > 0.8, "fraction {}", report.balanced_fraction);
    }

    #[test]
    fn runs_are_bit_identical() {
        let a = OnlineSim::new(torus2d(4, 4), quick_cfg("det")).run();
        let b = OnlineSim::new(torus2d(4, 4), quick_cfg("det")).run();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn epoch_seeding_decouples_epochs_from_history() {
        // Changing epoch 0's workload must not change epoch 5's draws:
        // run two configs that differ only in the arrival window and
        // compare the *churn* draws indirectly via the seed function.
        assert_ne!(epoch_seed(1, 0), epoch_seed(1, 1));
        assert_eq!(epoch_seed(9, 4), epoch_seed(9, 4));
        assert_ne!(epoch_seed(1, 4), epoch_seed(2, 4));
    }

    #[test]
    fn drain_preserves_tasks_and_weight() {
        let mut cfg = quick_cfg("drain");
        cfg.departure_prob = 0.0;
        cfg.arrival_window = Some(10);
        cfg.epochs = 30;
        cfg.churn = ChurnProcess::scripted(vec![
            (12, ChurnEvent::Deactivate(0)),
            (13, ChurnEvent::Deactivate(1)),
        ]);
        let mut sim = OnlineSim::new(complete(8), cfg);
        let report = sim.run();
        let live_after_arrivals = report.records[10].live_tasks;
        assert!(live_after_arrivals > 0);
        // No departures configured: draining moves tasks, never loses them.
        let last = report.last().unwrap();
        assert_eq!(last.live_tasks, live_after_arrivals);
        assert_eq!(last.active_resources, 6);
        assert!(report.records[12].drained > 0 || report.records[13].drained > 0);
        // Drained resources hold nothing.
        assert!(sim.stacks()[0].is_empty());
        assert!(sim.stacks()[1].is_empty());
    }

    #[test]
    fn last_resource_is_never_deactivated() {
        let mut cfg = quick_cfg("last");
        cfg.epochs = 5;
        cfg.churn =
            ChurnProcess::scripted(vec![(0, ChurnEvent::DeactivateRange { from: 0, to: 4 })]);
        let mut sim = OnlineSim::new(complete(4), cfg);
        let report = sim.run();
        assert_eq!(report.records[0].active_resources, 1);
    }

    #[test]
    fn hotspot_arrivals_pile_onto_target_then_rebalance() {
        let mut cfg = quick_cfg("hotspot");
        cfg.arrival_placement = ArrivalPlacement::HotSpot(3);
        cfg.rounds_per_epoch = 0; // no rebalancing: observe the pile-up
        cfg.departure_prob = 0.0;
        cfg.epochs = 5;
        let mut sim = OnlineSim::new(complete(8), cfg);
        sim.run();
        let on_target = sim.stacks()[3].num_tasks();
        let elsewhere: usize = sim
            .stacks()
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != 3)
            .map(|(_, s)| s.num_tasks())
            .sum();
        assert!(on_target > 0);
        assert_eq!(elsewhere, 0);
    }

    #[test]
    fn id_slots_are_recycled() {
        let mut cfg = quick_cfg("recycle");
        cfg.epochs = 400;
        cfg.arrivals = ArrivalProcess::Poisson { rate: 10.0 };
        cfg.departure_prob = 0.2; // equilibrium population ~ rate/p = 50
        let mut sim = OnlineSim::new(complete(12), cfg);
        let report = sim.run();
        assert!(report.total_arrivals > 2000);
        // Without slot recycling the id space would match total arrivals;
        // with it, it tracks the peak live population instead.
        assert!(
            sim.id_capacity() < report.total_arrivals as usize / 4,
            "id capacity {} vs arrivals {}",
            sim.id_capacity(),
            report.total_arrivals
        );
    }

    #[test]
    fn multi_tenant_violations_reported_per_tenant() {
        let mut cfg = quick_cfg("tenants");
        cfg.tenants = vec![
            TenantSpec::new("strict", ThresholdPolicy::Tight, 1.0),
            TenantSpec::new("relaxed", ThresholdPolicy::AboveAverage { epsilon: 2.0 }, 1.0),
        ];
        cfg.epochs = 80;
        let mut sim = OnlineSim::new(complete(10), cfg);
        let report = sim.run();
        assert_eq!(report.tenants, vec!["strict".to_string(), "relaxed".to_string()]);
        assert_eq!(report.tenant_violation_rates.len(), 2);
        // The tight tenant must violate at least as often as the relaxed
        // one (its threshold is strictly lower for the same traffic).
        assert!(
            report.tenant_violation_rates[0] >= report.tenant_violation_rates[1],
            "rates {:?}",
            report.tenant_violation_rates
        );
    }

    #[test]
    fn mixed_policy_also_converges() {
        let mut cfg = quick_cfg("mixed");
        cfg.rebalance = RebalancePolicy::Mixed {
            departure: Departure::Bernoulli,
            alpha: 1.0,
            walk: WalkKind::MaxDegree,
        };
        cfg.arrival_window = Some(20);
        cfg.departure_prob = 0.0;
        cfg.epochs = 120;
        let report = OnlineSim::new(complete(12), cfg).run();
        let last = report.last().unwrap();
        assert!(last.balanced, "mixed pass did not converge: {last:?}");
        assert_eq!(last.arrivals, 0);
    }

    #[test]
    fn baseline_policy_rebalances_online() {
        // A related-work baseline driving the online engine — the path no
        // pre-trait layer could express. Greedy[2] ejection/re-placement
        // must keep a steady stream balanced on K_12.
        let mut cfg = quick_cfg("baseline");
        cfg.rebalance = RebalancePolicy::Baseline { rule: BaselineRule::Greedy { d: 2 } };
        cfg.arrival_window = Some(20);
        cfg.departure_prob = 0.0;
        cfg.epochs = 120;
        let report = OnlineSim::new(complete(12), cfg).run();
        let last = report.last().unwrap();
        assert!(last.balanced, "baseline pass did not converge: {last:?}");
        assert!(report.total_migrations > 0);
    }

    #[test]
    fn baseline_policy_survives_churn_without_placing_on_inactive_nodes() {
        let mut cfg = quick_cfg("baseline-churn");
        cfg.rebalance =
            RebalancePolicy::Baseline { rule: BaselineRule::SequentialThreshold { retries: 3 } };
        cfg.churn = ChurnProcess::scripted(vec![(5, ChurnEvent::Deactivate(2))]);
        cfg.epochs = 40;
        let mut sim = OnlineSim::new(complete(8), cfg);
        sim.run();
        // Node 2 left at epoch 5 and never returned: the baseline must
        // not have used it as a destination afterwards.
        assert!(sim.stacks()[2].is_empty(), "baseline placed tasks on a deactivated resource");
    }

    #[test]
    fn empty_system_epochs_are_trivially_balanced() {
        let mut cfg = quick_cfg("empty");
        cfg.arrivals = ArrivalProcess::Off;
        cfg.departure_prob = 0.0;
        cfg.epochs = 3;
        let report = OnlineSim::new(complete(4), cfg).run();
        assert_eq!(report.balanced_fraction, 1.0);
        assert_eq!(report.last().unwrap().threshold, 0.0);
        assert_eq!(report.last().unwrap().live_tasks, 0);
    }
}
