//! The epoch-driven online simulation engine — the *scheduler* half of
//! the state/scheduler split (the state half lives in [`crate::state`]).
//!
//! Each epoch the scheduler: (1) applies resource churn (scripted rack
//! drains and stochastic failures/recoveries, draining tasks off leaving
//! resources), (2) departs tasks, (3) admits streaming arrivals, then
//! (4) runs the configured threshold protocol as an *incremental*
//! rebalancing pass — up to `rounds_per_epoch` protocol rounds — and
//! (5) records an [`EpochRecord`]. The threshold is recomputed every
//! epoch from the *live* population (total weight, active resources,
//! live `w_max`), so the target tracks the traffic.
//!
//! The rebalancing pass is pluggable per [`RebalancePolicy`]. The
//! resource-controlled policy (the paper's Algorithm 5.1, the default)
//! runs through the sharded engine of [`crate::shard`]: the stacks are
//! split into `SimConfig::shards` contiguous fragments, each stepped as
//! one task on the persistent rayon pool, with cross-shard walk handoffs
//! batched at round boundaries. Mixed and baseline policies run through
//! the sequential `tlb-core` steppers (and reject `shards > 1`).
//!
//! ## Determinism
//!
//! Epoch `e` draws its churn/departure/arrival randomness from a fresh
//! sequential `SmallRng` seeded with [`epoch_seed`]`(base_seed, e)`, so
//! epoch `e`'s stream is independent of how much randomness earlier
//! epochs consumed. The resource-policy rebalancing pass draws nothing
//! from that RNG: its walk words come from the *counter-based* stream
//! rooted at [`crate::shard::rebalance_seed`]`(base_seed, e)` — a pure
//! function of `(seed, epoch, round, node, slot)` — which is what keeps
//! a run bit-identical across `RAYON_NUM_THREADS` **and** across shard
//! counts (see `crate::shard` for the law and its chi-square pin).
//! Mixed/baseline passes consume the epoch RNG sequentially, exactly as
//! before the split.
//!
//! ## Observability
//!
//! [`OnlineSim::enable_obs`] turns on a per-run [`tlb_obs::Registry`]
//! fed every epoch: deterministic protocol counters (arrivals, ejection
//! cohorts, walk draws — identical across thread and shard counts),
//! wall-clock phase timings (churn / arrivals / rebalance / record), and
//! execution-layout diagnostics (rayon pool deltas, cross-shard
//! handoffs). With obs off the loop takes no timestamps and keeps no
//! tallies; with it on, nothing touches any RNG stream, so records and
//! snapshots stay bit-identical either way. While obs is on, lifecycle
//! transitions (obs start, checkpoint, reconfigure) also emit one-line
//! JSON events on stderr.

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tlb_baselines::{BaselineConfig, BaselineRule};
use tlb_core::mixed_protocol::{Departure, MixedConfig};
use tlb_core::potential::{is_balanced, max_load, num_overloaded, total_potential};
use tlb_core::protocol::{AnyStepper, ProtocolKind};
use tlb_core::stack::ResourceStack;
use tlb_core::threshold::ThresholdPolicy;
use tlb_graphs::DynamicGraph;
use tlb_graphs::Graph;
use tlb_obs::{ObsReport, Registry};
use tlb_walks::WalkKind;

use crate::admission::AdmissionPolicy;
use crate::arrivals::{ArrivalPlacement, ArrivalProcess, ArrivalWeights};
use crate::churn::{ChurnEvent, ChurnProcess};
use crate::domains::{validate_domain_list, validate_domains_against_graph, DomainSteering};
use crate::metrics::{EpochRecord, RunningSummary, SimReport};
use crate::shard::{rebalance_seed, ShardedEngine};
use crate::sink::MetricsSink;
use crate::snapshot::{SimSnapshot, SNAPSHOT_VERSION};
use crate::state::SimState;
use crate::tenants::{TenantSet, TenantSpec};

/// Derive epoch `e`'s seed from the base seed (splitmix64 over the pair,
/// the same mix `tlb-experiments::harness::trial_seed` uses for trials,
/// so neighbouring epochs get decorrelated streams).
#[inline]
pub fn epoch_seed(base: u64, epoch: u64) -> u64 {
    let mut z = base ^ epoch.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Which protocol the per-epoch rebalancing pass runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RebalancePolicy {
    /// Resource-controlled (Algorithm 5.1): overloaded resources eject
    /// every cutting/above task, one walk step each. Runs through the
    /// sharded engine ([`crate::shard::ShardedEngine`]); honours
    /// [`SimConfig::shards`].
    Resource {
        /// Walk moving ejected tasks.
        walk: WalkKind,
    },
    /// Mixed protocol: user-style Bernoulli departures, resource-style
    /// walk movement (works on any topology). Sequential.
    Mixed {
        /// Departure rule.
        departure: Departure,
        /// Migration damping `α`.
        alpha: f64,
        /// Walk moving departing tasks.
        walk: WalkKind,
    },
    /// A related-work baseline (`tlb-baselines` stepper adapter):
    /// Algorithm-5.1 ejection with the baseline's global re-placement
    /// rule. Safe under churn — the adapters never place tasks on
    /// isolated (deactivated) resources. Sequential.
    Baseline {
        /// Placement rule moving ejected tasks.
        rule: BaselineRule,
    },
}

impl RebalancePolicy {
    /// Build the sequential protocol stepper for one epoch's rebalancing
    /// pass (resumes from the live stacks; consumes no RNG). Only the
    /// mixed and baseline policies use this path — the resource policy
    /// goes through [`ShardedEngine`] instead.
    fn make_stepper(
        &self,
        threshold_policy: ThresholdPolicy,
        rounds_per_epoch: u64,
        stacks: Vec<ResourceStack>,
        weights: Vec<f64>,
        threshold: f64,
        w_max: f64,
    ) -> AnyStepper {
        match *self {
            RebalancePolicy::Resource { .. } => {
                unreachable!("the resource policy runs through the sharded engine")
            }
            RebalancePolicy::Mixed { departure, alpha, walk } => ProtocolKind::Mixed(MixedConfig {
                threshold: threshold_policy,
                departure,
                alpha,
                walk,
                max_rounds: rounds_per_epoch,
                ..Default::default()
            })
            .stepper_from_parts(stacks, weights, threshold, w_max),
            RebalancePolicy::Baseline { rule } => BaselineConfig {
                threshold: threshold_policy,
                rule,
                max_rounds: rounds_per_epoch,
                ..Default::default()
            }
            .stepper_from_parts(stacks, weights, threshold),
        }
    }
}

/// Full configuration of an online run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Scenario name (report key).
    pub name: String,
    /// Epochs to run.
    pub epochs: u64,
    /// Base seed; see [`epoch_seed`].
    pub seed: u64,
    /// Arrival count process.
    pub arrivals: ArrivalProcess,
    /// If set, arrivals only happen while `epoch < window` (the tail of
    /// the run is a pure drain/convergence phase).
    pub arrival_window: Option<u64>,
    /// Where arrivals land.
    pub arrival_placement: ArrivalPlacement,
    /// Arrival weight distribution.
    pub arrival_weights: ArrivalWeights,
    /// Per-task per-epoch departure probability (`0 ≤ p < 1`).
    pub departure_prob: f64,
    /// Resource churn (independent flap, scripted events, and
    /// correlated failure-domain outages).
    pub churn: ChurnProcess,
    /// Admission policy gating arrivals before placement (RNG-free
    /// decisions; see [`crate::admission`]).
    pub admission: AdmissionPolicy,
    /// Tenant classes (arrival shares and per-tenant SLO policies).
    pub tenants: Vec<TenantSpec>,
    /// Global threshold policy the rebalancing pass enforces, recomputed
    /// each epoch over the live population.
    pub threshold: ThresholdPolicy,
    /// Which protocol rebalances.
    pub rebalance: RebalancePolicy,
    /// Protocol-round budget per epoch (the pass stops early once
    /// balanced).
    pub rounds_per_epoch: u64,
    /// Compact the churn overlay back to CSR once this many edge deltas
    /// accumulate.
    pub compact_after_ops: usize,
    /// Shard count of the rebalancing pass (resource policy only; the
    /// output is bit-identical at every shard count, so this is purely a
    /// throughput knob — see `crate::shard`). Clamped to the node count.
    pub shards: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            name: "online".into(),
            epochs: 200,
            seed: 0,
            arrivals: ArrivalProcess::Poisson { rate: 20.0 },
            arrival_window: None,
            arrival_placement: ArrivalPlacement::Uniform,
            arrival_weights: ArrivalWeights::Unit,
            departure_prob: 0.0,
            churn: ChurnProcess::none(),
            admission: AdmissionPolicy::None,
            tenants: vec![TenantSpec::new(
                "default",
                ThresholdPolicy::AboveAverage { epsilon: 0.2 },
                1.0,
            )],
            threshold: ThresholdPolicy::AboveAverage { epsilon: 0.2 },
            rebalance: RebalancePolicy::Resource { walk: WalkKind::MaxDegree },
            rounds_per_epoch: 16,
            compact_after_ops: 64,
            shards: 1,
        }
    }
}

/// Observability state of a run: the registry every epoch feeds, plus
/// the pool-statistics baseline captured at enable time so the report
/// carries this run's deltas rather than process-lifetime totals.
#[derive(Debug)]
struct ObsState {
    reg: Registry,
    pool_base: rayon::PoolStats,
}

/// The online simulation: a [`SimState`] plus the epoch scheduler
/// driving it (see the module docs for the split).
#[derive(Debug)]
pub struct OnlineSim {
    cfg: SimConfig,
    tenants: TenantSet,
    /// Pristine copy of the base graph the run started on — the
    /// reference [`SimSnapshot`] deltas are computed against.
    base: Graph,
    state: SimState,
    epoch: u64,
    records: Vec<EpochRecord>,
    /// Streaming run-level aggregates; fed every epoch whether or not
    /// the record itself is buffered.
    summary: RunningSummary,
    /// Whether epoch records accumulate in `records` (batch mode). Off
    /// in service mode so memory stays flat over unbounded runs.
    buffer_records: bool,
    /// Optional streaming destination for every epoch record.
    sink: Option<Box<dyn MetricsSink>>,
    /// Per-run observability; `None` (the default) keeps the epoch loop
    /// on its uninstrumented path.
    obs: Option<ObsState>,
}

impl OnlineSim {
    /// Create an engine over `base` with no tasks.
    ///
    /// # Panics
    /// If the graph is empty, the tenant list is empty or has
    /// non-positive shares, `departure_prob` is not in `[0, 1)`, a churn
    /// probability is not in `[0, 1]`, `shards` is zero, or `shards > 1`
    /// with a sequential (mixed/baseline) rebalance policy.
    pub fn new(base: Graph, cfg: SimConfig) -> Self {
        let n = base.num_nodes();
        assert!(n > 0, "need at least one resource");
        Self::validate(&cfg);
        if let Err(msg) = validate_domains_against_graph(&cfg.churn.domains, n) {
            panic!("{msg}");
        }
        let tenants = TenantSet::new(cfg.tenants.clone());
        let mut state = SimState::new(base.clone());
        state.domain_down_until = vec![0; cfg.churn.domains.len()];
        state.admission_tokens = cfg.admission.initial_tokens(tenants.len());
        OnlineSim {
            cfg,
            tenants,
            base,
            state,
            epoch: 0,
            records: Vec::new(),
            summary: RunningSummary::default(),
            buffer_records: true,
            sink: None,
            obs: None,
        }
    }

    /// Parameters come from config literals, so reject bad ones up front
    /// instead of panicking deep inside a sampler mid-run.
    ///
    /// # Panics
    /// Via the arrival/weight sub-validators on malformed distribution
    /// literals (those have no `Result` surface).
    fn try_validate(cfg: &SimConfig) -> Result<(), String> {
        if !(0.0..1.0).contains(&cfg.departure_prob) {
            return Err(format!("departure_prob must be in [0, 1), got {}", cfg.departure_prob));
        }
        for (name, p) in [
            ("random_down", cfg.churn.random_down),
            ("random_up", cfg.churn.random_up),
            ("domain_outage", cfg.churn.domain_outage),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("churn {name} must be in [0, 1], got {p}"));
            }
        }
        validate_domain_list(&cfg.churn.domains)?;
        cfg.churn.outage.validate()?;
        for (epoch, ev) in &cfg.churn.scripted {
            if let ChurnEvent::DomainOutage { domain, duration } = ev {
                if *domain as usize >= cfg.churn.domains.len() {
                    return Err(format!(
                        "scripted DomainOutage at epoch {epoch} names domain {domain}, but only \
                         {} domains are configured",
                        cfg.churn.domains.len()
                    ));
                }
                if *duration == 0 {
                    return Err(format!(
                        "scripted DomainOutage at epoch {epoch} must last >= 1 epoch"
                    ));
                }
            }
        }
        cfg.admission.validate()?;
        cfg.arrivals.validate();
        cfg.arrival_weights.validate();
        cfg.arrival_placement.validate();
        if cfg.shards == 0 {
            return Err("shards must be >= 1".to_string());
        }
        if cfg.shards > 1 && !matches!(cfg.rebalance, RebalancePolicy::Resource { .. }) {
            return Err(format!(
                "only the resource-controlled policy rebalances sharded (shards = {})",
                cfg.shards
            ));
        }
        // Churn can isolate an active node; the max-degree and lazy walks
        // self-loop there, but the simple walk is undefined on isolated
        // nodes, so it cannot drive an online run. (Baselines use no walk
        // and filter isolated destinations themselves.)
        let walk = match cfg.rebalance {
            RebalancePolicy::Resource { walk } => Some(walk),
            RebalancePolicy::Mixed { walk, .. } => Some(walk),
            RebalancePolicy::Baseline { .. } => None,
        };
        if walk == Some(WalkKind::Simple) {
            return Err(
                "WalkKind::Simple cannot rebalance a churned graph (undefined on isolated nodes)"
                    .to_string(),
            );
        }
        Ok(())
    }

    /// Panicking form of [`try_validate`](Self::try_validate), for the
    /// constructor paths where a bad config is a programming error.
    fn validate(cfg: &SimConfig) {
        if let Err(msg) = Self::try_validate(cfg) {
            panic!("{msg}");
        }
    }

    /// Swap the configuration between runs (phase-driven scenarios: a new
    /// arrival process or round budget for the next batch of epochs)
    /// while keeping all engine state — stacks, churn overlay, epoch
    /// counter, records. The tenant list must be unchanged, because
    /// task→tenant assignments are indices into it.
    ///
    /// Panicking builder form of [`reconfigure`](Self::reconfigure).
    pub fn with_config(mut self, cfg: SimConfig) -> Self {
        self.reconfigure(cfg).unwrap_or_else(|e| panic!("{e}"));
        self
    }

    /// Validated in-place configuration swap for a live service: apply a
    /// new phase's config between epochs, keeping all engine state.
    ///
    /// Rejected swaps (returned as errors, the engine untouched):
    ///
    /// * a changed tenant list — task→tenant assignments are indices
    ///   into it;
    /// * a changed failure-domain list — the recovery deadlines index
    ///   into it (swapping outage probability/duration/steering is
    ///   fine);
    /// * any config [`try_validate`](Self::try_validate) rejects, which
    ///   includes the swaps that would corrupt the deterministic stream
    ///   contract — e.g. `shards > 1` onto a sequential (mixed/baseline)
    ///   policy, or `WalkKind::Simple` onto a churned graph.
    ///
    /// Swapping the *admission* policy resets its token balances to the
    /// new policy's initial state (an unchanged policy keeps mid-bucket
    /// state, so a pure phase swap stays bit-identical).
    ///
    /// # Errors
    /// As above; the current configuration stays in force on error.
    pub fn reconfigure(&mut self, cfg: SimConfig) -> anyhow::Result<()> {
        anyhow::ensure!(self.cfg.tenants == cfg.tenants, "tenant classes cannot change mid-run");
        anyhow::ensure!(
            self.cfg.churn.domains == cfg.churn.domains,
            "failure domains cannot change mid-run (recovery deadlines index into them)"
        );
        Self::try_validate(&cfg).map_err(anyhow::Error::msg)?;
        if self.cfg.admission != cfg.admission {
            self.state.admission_tokens = cfg.admission.initial_tokens(self.tenants.len());
        }
        self.cfg = cfg;
        self.obs_event("reconfigure");
        Ok(())
    }

    /// Number of live tasks.
    pub fn live_tasks(&self) -> usize {
        self.state.live
    }

    /// Epochs executed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The churn overlay (for inspection).
    pub fn graph(&self) -> &DynamicGraph {
        &self.state.dg
    }

    /// The per-resource stacks (index = resource id).
    pub fn stacks(&self) -> &[ResourceStack] {
        &self.state.stacks
    }

    /// Records taken so far.
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// Capacity of the task-id space (live slots + recycled free slots) —
    /// the engine's memory footprint per task, for the bounded-memory
    /// tests.
    pub fn id_capacity(&self) -> usize {
        self.state.weights.len()
    }

    /// Streaming run-level aggregates over every epoch executed by this
    /// engine (including epochs before a [`restore`](Self::restore)).
    pub fn summary(&self) -> &RunningSummary {
        &self.summary
    }

    /// Attach a streaming destination for epoch records; replaces (and
    /// returns) any previous sink. Pass `None` to detach.
    pub fn set_sink(&mut self, sink: Option<Box<dyn MetricsSink>>) -> Option<Box<dyn MetricsSink>> {
        std::mem::replace(&mut self.sink, sink)
    }

    /// Turn the in-memory record buffer on (batch mode, the default) or
    /// off (service mode: memory stays flat; the series goes to the
    /// sink, aggregates to [`summary`](Self::summary)). Turning it off
    /// clears any already-buffered records.
    pub fn set_record_buffering(&mut self, on: bool) {
        self.buffer_records = on;
        if !on {
            self.records = Vec::new();
        }
    }

    /// Turn on observability for this run (idempotent). Captures the
    /// rayon pool-statistics baseline (so [`obs_report`](Self::obs_report)
    /// carries deltas), starts the registry the epoch loop feeds, and
    /// emits an `obs_start` event line on stderr. After a
    /// [`restore`](Self::restore), call this again on the resumed
    /// engine — the event's `epoch` field records the resume point.
    ///
    /// Determinism-neutral: nothing here or in the instrumented loop
    /// touches an RNG stream, so records, snapshots, and reports are
    /// bit-identical to an obs-off run.
    pub fn enable_obs(&mut self) {
        if self.obs.is_none() {
            self.obs = Some(ObsState { reg: Registry::new(), pool_base: rayon::pool_stats() });
            self.obs_event("obs_start");
        }
    }

    /// Snapshot the observability report, if
    /// [`enable_obs`](Self::enable_obs) was called: deterministic
    /// protocol counters, wall-clock phase timings, and execution-layout
    /// diagnostics including the pool-statistics delta since enable (see
    /// `tlb-obs` for the three-way split).
    pub fn obs_report(&self) -> Option<ObsReport> {
        let obs = self.obs.as_ref()?;
        let pool = rayon::pool_stats();
        let base = &obs.pool_base;
        obs.reg.set_exec("pool.threads", pool.threads as u64);
        obs.reg.set_exec("pool.workers_spawned", pool.workers_spawned as u64);
        obs.reg.set_exec("pool.batches", pool.batches.saturating_sub(base.batches));
        obs.reg.set_exec(
            "pool.chunks_claimed",
            pool.chunks_claimed.saturating_sub(base.chunks_claimed),
        );
        obs.reg
            .set_exec("pool.inline_nested", pool.inline_nested.saturating_sub(base.inline_nested));
        obs.reg.set_exec(
            "pool.inline_contended",
            pool.inline_contended.saturating_sub(base.inline_contended),
        );
        Some(obs.reg.snapshot())
    }

    /// One structured JSON event line on stderr — only while obs is on.
    fn obs_event(&self, kind: &str) {
        if self.obs.is_some() {
            eprintln!(
                "{{\"tlb_obs_event\":\"{kind}\",\"epoch\":{},\"live_tasks\":{},\"active_resources\":{}}}",
                self.epoch,
                self.state.live,
                self.state.dg.num_active()
            );
        }
    }

    /// Run `cfg.epochs` epochs (on top of any already run) and assemble
    /// the report.
    ///
    /// # Panics
    /// If an attached metrics sink fails; use [`try_run`](Self::try_run)
    /// to handle sink errors.
    pub fn run(&mut self) -> SimReport {
        self.try_run().expect("online run failed")
    }

    /// Fallible form of [`run`](Self::run): run `cfg.epochs` epochs,
    /// flush the sink, and assemble the report. With record buffering on
    /// the report carries the buffered series; with it off the series is
    /// empty and the summary fields come from the streaming aggregates
    /// (bit-equal to the buffered computation).
    ///
    /// # Errors
    /// If the attached metrics sink fails to record or flush.
    pub fn try_run(&mut self) -> anyhow::Result<SimReport> {
        for _ in 0..self.cfg.epochs {
            self.try_run_epoch()?;
        }
        if let Some(sink) = self.sink.as_mut() {
            sink.flush()?;
        }
        Ok(self.report())
    }

    /// Assemble a report for the epochs this engine has run: the
    /// buffered series in batch mode, or the streaming aggregates (with
    /// an empty series — it went to the sink) in service mode.
    pub fn report(&self) -> SimReport {
        if self.buffer_records {
            SimReport::from_records(
                self.cfg.name.clone(),
                self.cfg.seed,
                self.tenants.names(),
                self.records.clone(),
            )
        } else {
            self.summary
                .to_report(self.cfg.name.clone(), self.cfg.seed, self.tenants.names())
        }
    }

    /// Checkpoint the engine at the current epoch boundary.
    ///
    /// Flushes the sink first so the metrics stream on disk never lags
    /// the snapshot, then captures config, epoch counter, churn overlay
    /// (as a canonical delta against the pristine base graph), stacks,
    /// task tables, and the streaming summary. See [`crate::snapshot`]
    /// for why no RNG state is needed.
    ///
    /// # Errors
    /// If the sink flush fails.
    pub fn checkpoint(&mut self) -> anyhow::Result<SimSnapshot> {
        if let Some(sink) = self.sink.as_mut() {
            sink.flush()?;
        }
        self.obs_event("checkpoint");
        Ok(SimSnapshot {
            version: SNAPSHOT_VERSION,
            config: self.cfg.clone(),
            epoch: self.epoch,
            graph: self.state.dg.delta_from(&self.base),
            stacks: self.state.stacks.clone(),
            weights: self.state.weights.clone(),
            tenant_of: self.state.tenant_of.clone(),
            free_ids: self.state.free_ids.clone(),
            live: self.state.live,
            domain_down_until: self.state.domain_down_until.clone(),
            admission_tokens: self.state.admission_tokens.clone(),
            summary: self.summary.clone(),
        })
    }

    /// Rebuild an engine from a checkpoint plus the pristine base graph
    /// the original run was started on. The resumed engine continues
    /// **bit-identically** to the uninterrupted run — same records, same
    /// stream draws — across thread and shard counts, because all
    /// randomness re-derives from `(seed, epoch)` at epoch boundaries.
    ///
    /// The record buffer starts empty (records before the checkpoint
    /// live wherever the original run's sink put them);
    /// [`summary`](Self::summary) continues from the checkpointed
    /// aggregates. No sink is attached; re-attach one with
    /// [`set_sink`](Self::set_sink).
    ///
    /// # Errors
    /// If the snapshot version is unsupported, the config fails
    /// validation, the graph delta does not apply to `base`, or the task
    /// tables are inconsistent (stacked tasks vs. live count, freelist
    /// vs. slot capacity).
    pub fn restore(snap: SimSnapshot, base: Graph) -> anyhow::Result<Self> {
        anyhow::ensure!(
            snap.version == SNAPSHOT_VERSION,
            "snapshot version {} unsupported (this build reads version {})",
            snap.version,
            SNAPSHOT_VERSION
        );
        Self::try_validate(&snap.config).map_err(anyhow::Error::msg)?;
        let n = base.num_nodes();
        anyhow::ensure!(n > 0, "need at least one resource");
        validate_domains_against_graph(&snap.config.churn.domains, n)
            .map_err(anyhow::Error::msg)?;
        anyhow::ensure!(
            snap.domain_down_until.len() == snap.config.churn.domains.len(),
            "snapshot carries {} domain deadlines for {} configured domains",
            snap.domain_down_until.len(),
            snap.config.churn.domains.len()
        );
        let expected_tokens = match snap.config.admission {
            AdmissionPolicy::TokenBucket { .. } => snap.config.tenants.len(),
            _ => 0,
        };
        anyhow::ensure!(
            snap.admission_tokens.len() == expected_tokens,
            "snapshot carries {} admission token balances, expected {expected_tokens} for the \
             configured policy",
            snap.admission_tokens.len()
        );
        if let AdmissionPolicy::TokenBucket { burst, .. } = snap.config.admission {
            anyhow::ensure!(
                snap.admission_tokens.iter().all(|t| t.is_finite() && (0.0..=burst).contains(t)),
                "admission token balance outside [0, {burst}]"
            );
        }
        let dg = DynamicGraph::from_delta(base.clone(), &snap.graph)
            .map_err(|e| anyhow::anyhow!("snapshot graph delta does not apply: {e}"))?;
        anyhow::ensure!(
            snap.stacks.len() == n,
            "snapshot has {} stacks for a {n}-node base graph",
            snap.stacks.len()
        );
        anyhow::ensure!(
            snap.weights.len() == snap.tenant_of.len(),
            "task tables out of sync: {} weights vs {} tenant slots",
            snap.weights.len(),
            snap.tenant_of.len()
        );
        let stacked: usize = snap.stacks.iter().map(|s| s.num_tasks()).sum();
        anyhow::ensure!(
            stacked == snap.live,
            "snapshot stacks hold {stacked} tasks but live = {}",
            snap.live
        );
        anyhow::ensure!(
            snap.live + snap.free_ids.len() == snap.weights.len(),
            "id accounting broken: live {} + free {} != capacity {}",
            snap.live,
            snap.free_ids.len(),
            snap.weights.len()
        );
        for &t in snap.stacks.iter().flat_map(|s| s.tasks()) {
            anyhow::ensure!(
                (t as usize) < snap.weights.len(),
                "stacked task id {t} outside the {}-slot table",
                snap.weights.len()
            );
        }
        let tenants = TenantSet::new(snap.config.tenants.clone());
        // At an epoch boundary the walk graph always equals the overlay
        // snapshot (any topology change refreshes it within the epoch),
        // so re-deriving it here preserves bit-identity.
        let walk_graph = dg.snapshot();
        let mut state = SimState::new(base.clone());
        state.dg = dg;
        state.walk_graph = walk_graph;
        state.stacks = snap.stacks;
        state.weights = snap.weights;
        state.tenant_of = snap.tenant_of;
        state.free_ids = snap.free_ids;
        state.live = snap.live;
        state.domain_down_until = snap.domain_down_until;
        state.admission_tokens = snap.admission_tokens;
        Ok(OnlineSim {
            cfg: snap.config,
            tenants,
            base,
            state,
            epoch: snap.epoch,
            records: Vec::new(),
            summary: snap.summary,
            buffer_records: true,
            sink: None,
            obs: None,
        })
    }

    /// Execute one epoch: churn → departures → arrivals → rebalance →
    /// metrics.
    ///
    /// # Panics
    /// If an attached metrics sink fails; use
    /// [`try_run_epoch`](Self::try_run_epoch) to handle sink errors.
    pub fn run_epoch(&mut self) {
        self.try_run_epoch().expect("online epoch failed")
    }

    /// Fallible form of [`run_epoch`](Self::run_epoch).
    ///
    /// # Errors
    /// If the attached metrics sink fails to record.
    pub fn try_run_epoch(&mut self) -> anyhow::Result<()> {
        let obs_on = self.obs.is_some();
        let t_start = obs_on.then(Instant::now);
        let mut rng = SmallRng::seed_from_u64(epoch_seed(self.cfg.seed, self.epoch));
        let state = &mut self.state;
        let mut drained = 0u64;
        let mut topology_changed = false;
        let epoch = self.epoch;
        let domains = &self.cfg.churn.domains;

        // The adaptive arrival adversary reacts to the loads as last
        // epoch's rebalancing pass left them — capture the ranking
        // before this epoch's churn/departures disturb it. Every branch
        // below is feature-gated, so configs without the new knobs draw
        // the exact RNG sequence they always did.
        let adaptive_ranking =
            matches!(self.cfg.arrival_placement, ArrivalPlacement::Adaptive { .. })
                .then(|| state.load_ranking());

        // --- 1. churn: due domain recoveries (scheduled, no RNG), then
        // scripted events in list order, then the stochastic domain
        // outage, then independent down/up flaps.
        if !domains.is_empty() {
            state.recover_due_domains(domains, epoch, &mut topology_changed);
        }
        let events: Vec<ChurnEvent> = self.cfg.churn.events_at(epoch).collect();
        for ev in events {
            drained += match ev {
                ChurnEvent::DomainOutage { domain, duration } => state.domain_outage(
                    domains,
                    domain as usize,
                    epoch + duration,
                    &mut rng,
                    &mut topology_changed,
                ),
                ev => state.apply_event(ev, &mut rng, &mut topology_changed),
            };
        }
        if !domains.is_empty()
            && self.cfg.churn.domain_outage > 0.0
            && rng.gen_bool(self.cfg.churn.domain_outage)
        {
            let healthy: Vec<usize> =
                (0..domains.len()).filter(|&d| state.domain_down_until[d] == 0).collect();
            if !healthy.is_empty() {
                let d = match self.cfg.churn.steering {
                    DomainSteering::Oblivious => healthy[rng.gen_range(0..healthy.len())],
                    // The adversary shoots the most-loaded healthy
                    // domain — a pure function of the stacks, no draw.
                    DomainSteering::Adaptive => healthy
                        .iter()
                        .copied()
                        .max_by(|&a, &b| {
                            state
                                .domain_load(domains, a)
                                .partial_cmp(&state.domain_load(domains, b))
                                .expect("loads are finite")
                                .then(b.cmp(&a))
                        })
                        .expect("healthy is non-empty"),
                };
                let duration = self.cfg.churn.outage.sample(&mut rng);
                drained += state.domain_outage(
                    domains,
                    d,
                    epoch + duration,
                    &mut rng,
                    &mut topology_changed,
                );
            }
        }
        if self.cfg.churn.random_down > 0.0 && rng.gen_bool(self.cfg.churn.random_down) {
            let active = state.active_ids();
            if active.len() > 1 {
                let v = active[rng.gen_range(0..active.len())];
                drained +=
                    state.apply_event(ChurnEvent::Deactivate(v), &mut rng, &mut topology_changed);
            }
        }
        if self.cfg.churn.random_up > 0.0 && rng.gen_bool(self.cfg.churn.random_up) {
            // A down domain recovers as a unit on its deadline — its
            // nodes are not eligible for one-at-a-time resurrection.
            let inactive: Vec<tlb_graphs::NodeId> = (0..state.dg.num_nodes() as tlb_graphs::NodeId)
                .filter(|&v| {
                    !state.dg.is_active(v)
                        && (domains.is_empty() || !state.in_down_domain(domains, v, epoch))
                })
                .collect();
            if !inactive.is_empty() {
                let v = inactive[rng.gen_range(0..inactive.len())];
                state.apply_event(ChurnEvent::Activate(v), &mut rng, &mut topology_changed);
            }
        }
        if topology_changed {
            state.refresh_walk_graph(self.cfg.compact_after_ops);
        }
        let t_churn = obs_on.then(Instant::now);

        // --- 2. departures: every live task flips an independent coin.
        let departures = state.depart_bernoulli(self.cfg.departure_prob, &mut rng);

        // --- 3. arrivals, gated by admission. The offered stream
        // (tenant + weight draws) is identical whatever the policy
        // decides, and the decisions themselves consume no RNG, so the
        // only stream difference a policy makes is the destination
        // draws it skips for rejected tasks.
        let mut arrivals = 0u64;
        let mut admitted = 0u64;
        let mut rejected = 0u64;
        let mut tenant_admitted = vec![0u64; self.tenants.len()];
        let mut tenant_rejected = vec![0u64; self.tenants.len()];
        self.cfg.admission.refill(&mut state.admission_tokens);
        let in_window = self.cfg.arrival_window.is_none_or(|w| self.epoch < w);
        if in_window {
            let count = self.cfg.arrivals.sample_count(self.epoch, &mut rng);
            let active = state.active_ids();
            // The adaptive adversary's targets for this whole epoch:
            // last epoch's `spread` most-loaded resources still active.
            let adaptive_targets: Option<Vec<tlb_graphs::NodeId>> =
                adaptive_ranking.as_ref().map(|ranking| {
                    let spread = match self.cfg.arrival_placement {
                        ArrivalPlacement::Adaptive { spread } => spread,
                        _ => unreachable!("ranking only captured for adaptive placement"),
                    };
                    ranking
                        .iter()
                        .copied()
                        .filter(|&v| state.dg.is_active(v))
                        .take(spread)
                        .collect()
                });
            // Projected total live weight, tracked incrementally for
            // the load-shedding decision (unused by the other policies,
            // so their epochs skip the O(n) sum).
            let mut projected_weight = match self.cfg.admission {
                AdmissionPolicy::LoadShed { .. } => state.total_weight(),
                _ => 0.0,
            };
            for _ in 0..count {
                let tenant = self.tenants.pick(rng.gen::<f64>());
                let weight = self.cfg.arrival_weights.sample(&mut rng);
                arrivals += 1;
                let admit = self.cfg.admission.admit(
                    tenant,
                    weight,
                    state.live,
                    projected_weight,
                    active.len(),
                    &mut state.admission_tokens,
                );
                if !admit {
                    rejected += 1;
                    tenant_rejected[tenant as usize] += 1;
                    continue;
                }
                let dest = match &adaptive_targets {
                    // Round-robin over the targets by admitted index.
                    Some(targets) => targets[admitted as usize % targets.len()],
                    None => {
                        state.arrival_destination(self.cfg.arrival_placement, &active, &mut rng)
                    }
                };
                state.admit(weight, tenant, dest);
                projected_weight += weight;
                admitted += 1;
                tenant_admitted[tenant as usize] += 1;
            }
        }

        // --- 4. recompute the live threshold.
        let n_active = state.dg.num_active();
        let total_weight = state.total_weight();
        let w_max = state.live_w_max();
        let threshold = if state.live > 0 {
            self.cfg.threshold.value(total_weight, n_active, w_max)
        } else {
            0.0
        };

        // --- 5. incremental rebalancing pass.
        let mut rebalance_rounds = 0u64;
        let mut migrations = 0u64;
        let t_arrivals = obs_on.then(Instant::now);
        if state.live > 0 && !is_balanced(&state.stacks, threshold) {
            match self.cfg.rebalance {
                RebalancePolicy::Resource { walk } => {
                    // The sharded engine — at shards = 1 this *is* the
                    // reference sequential semantics, so every resource
                    // run goes through one code path regardless of k.
                    let stacks = std::mem::take(&mut state.stacks);
                    let partition = state.dg.partition(self.cfg.shards);
                    let mut engine = ShardedEngine::from_parts(
                        stacks,
                        partition,
                        threshold,
                        walk,
                        self.cfg.rounds_per_epoch,
                    );
                    if obs_on {
                        engine.enable_obs();
                    }
                    engine.run(
                        &state.walk_graph,
                        &state.weights,
                        rebalance_seed(self.cfg.seed, self.epoch),
                    );
                    rebalance_rounds = engine.rounds();
                    migrations = engine.migrations();
                    if let (Some(obs), Some(s)) = (&self.obs, engine.obs()) {
                        let reg = &obs.reg;
                        // Shard-count-invariant (counters subtree).
                        reg.add("rebalance.ejected", s.ejected);
                        reg.gauge("rebalance.max_round_cohort").record_max(s.max_round_cohort);
                        // Layout-dependent (exec) and wall clock (timings).
                        obs.reg.add_exec("shard.cross_shard_handoffs", s.cross_shard_handoffs);
                        reg.record_ns("shard.eject_walk_ns", s.eject_walk_ns);
                        reg.record_ns("shard.route_ns", s.route_ns);
                        reg.record_ns("shard.apply_ns", s.apply_ns);
                    }
                    state.stacks = engine.into_parts();
                }
                _ => {
                    // Sequential stepper path (mixed/baseline): same
                    // draws as driving the concrete stepper directly.
                    let stacks = std::mem::take(&mut state.stacks);
                    let weights = std::mem::take(&mut state.weights);
                    let mut stepper = self.cfg.rebalance.make_stepper(
                        self.cfg.threshold,
                        self.cfg.rounds_per_epoch,
                        stacks,
                        weights,
                        threshold,
                        w_max,
                    );
                    stepper.run(&state.walk_graph, &mut rng);
                    rebalance_rounds = stepper.rounds();
                    migrations = stepper.migrations();
                    if let Some(obs) = &self.obs {
                        let s = stepper.obs_stats();
                        let reg = &obs.reg;
                        reg.add("rebalance.walk_steps", s.walk_steps);
                        reg.add("rebalance.fused_word_draws", s.fused_word_draws);
                        reg.add("rebalance.regular_fast_path_hits", s.regular_fast_path_hits);
                        reg.add("rebalance.uniform_jump_draws", s.uniform_jump_draws);
                        reg.gauge("rebalance.max_round_cohort").record_max(s.max_round_cohort);
                    }
                    (state.stacks, state.weights) = stepper.into_parts();
                }
            }
        }

        let t_rebalance = obs_on.then(Instant::now);

        // --- 6. metrics snapshot.
        let max_load = max_load(&state.stacks);
        let overloaded = num_overloaded(&state.stacks, threshold);
        let balanced = overloaded == 0;
        let tenant_violations =
            self.tenants
                .violations(&state.stacks, &state.weights, &state.tenant_of, n_active);
        if let Some(obs) = &self.obs {
            // Per-tenant SLO ledger, inside the deterministic counters
            // subtree: violated vs rejected vs admitted work.
            let reg = &obs.reg;
            for (c, spec) in self.tenants.specs().iter().enumerate() {
                reg.add(&format!("tenant.{}.violations", spec.name), tenant_violations[c]);
                reg.add(&format!("tenant.{}.admitted", spec.name), tenant_admitted[c]);
                reg.add(&format!("tenant.{}.rejected", spec.name), tenant_rejected[c]);
            }
        }
        let record = EpochRecord {
            epoch: self.epoch,
            live_tasks: state.live,
            active_resources: n_active,
            arrivals,
            admitted,
            rejected,
            departures,
            drained,
            rebalance_rounds,
            migrations,
            threshold,
            max_load,
            mean_load: if n_active > 0 { total_weight / n_active as f64 } else { 0.0 },
            overload_fraction: if n_active > 0 { overloaded as f64 / n_active as f64 } else { 0.0 },
            potential: total_potential(&state.stacks, threshold, &state.weights),
            balanced,
            tenant_violations,
            tenant_admitted,
            tenant_rejected,
        };
        self.summary.observe(&record);
        if let Some(sink) = self.sink.as_mut() {
            sink.record(&record)?;
        }
        if self.buffer_records {
            self.records.push(record);
        }
        if let Some(obs) = &self.obs {
            let reg = &obs.reg;
            reg.add("sim.epochs", 1);
            reg.add("sim.arrivals", arrivals);
            reg.add("sim.admitted", admitted);
            reg.add("sim.rejected", rejected);
            reg.add("sim.departures", departures);
            reg.add("sim.drained", drained);
            reg.add("sim.migrations", migrations);
            reg.add("sim.rebalance_rounds", rebalance_rounds);
            if balanced {
                reg.add("sim.balanced_epochs", 1);
            }
            let t_end = Instant::now();
            let span = |a: Option<Instant>, b: Instant| {
                (b - a.expect("obs boundaries exist while obs is on")).as_nanos() as u64
            };
            reg.record_ns("epoch.churn_ns", span(t_start, t_churn.unwrap()));
            reg.record_ns("epoch.arrivals_ns", span(t_churn, t_arrivals.unwrap()));
            reg.record_ns("epoch.rebalance_ns", span(t_arrivals, t_rebalance.unwrap()));
            reg.record_ns("epoch.record_ns", span(t_rebalance, t_end));
            reg.record_ns("epoch.total_ns", span(t_start, t_end));
        }
        self.epoch += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::OutageDuration;
    use tlb_graphs::generators::{complete, torus2d};

    fn quick_cfg(name: &str) -> SimConfig {
        SimConfig {
            name: name.into(),
            epochs: 60,
            seed: 11,
            arrivals: ArrivalProcess::Poisson { rate: 12.0 },
            departure_prob: 0.05,
            rounds_per_epoch: 8,
            ..Default::default()
        }
    }

    #[test]
    fn steady_state_stays_mostly_balanced() {
        let mut sim = OnlineSim::new(complete(16), quick_cfg("steady"));
        let report = sim.run();
        assert_eq!(report.epochs, 60);
        assert!(report.total_arrivals > 0);
        assert!(report.total_departures > 0);
        // On K_16 with a generous round budget the pass should end most
        // epochs balanced.
        assert!(report.balanced_fraction > 0.8, "fraction {}", report.balanced_fraction);
    }

    #[test]
    fn runs_are_bit_identical() {
        let a = OnlineSim::new(torus2d(4, 4), quick_cfg("det")).run();
        let b = OnlineSim::new(torus2d(4, 4), quick_cfg("det")).run();
        assert_eq!(a, b);
        assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
    }

    #[test]
    fn sharded_runs_match_the_single_shard_reference() {
        // The online acceptance form of the shard-invariance law: whole
        // reports (every record field, bit for bit) are independent of
        // the shard count.
        let mut cfg = quick_cfg("shards");
        cfg.churn = ChurnProcess {
            scripted: vec![],
            random_down: 0.05,
            random_up: 0.08,
            ..Default::default()
        };
        let reference = OnlineSim::new(torus2d(4, 4), cfg.clone()).run();
        for shards in [2usize, 3, 7, 16] {
            cfg.shards = shards;
            let sharded = OnlineSim::new(torus2d(4, 4), cfg.clone()).run();
            assert_eq!(sharded, reference, "shard count {shards} diverged");
        }
    }

    #[test]
    fn epoch_seeding_decouples_epochs_from_history() {
        // Changing epoch 0's workload must not change epoch 5's draws:
        // run two configs that differ only in the arrival window and
        // compare the *churn* draws indirectly via the seed function.
        assert_ne!(epoch_seed(1, 0), epoch_seed(1, 1));
        assert_eq!(epoch_seed(9, 4), epoch_seed(9, 4));
        assert_ne!(epoch_seed(1, 4), epoch_seed(2, 4));
    }

    #[test]
    fn drain_preserves_tasks_and_weight() {
        let mut cfg = quick_cfg("drain");
        cfg.departure_prob = 0.0;
        cfg.arrival_window = Some(10);
        cfg.epochs = 30;
        cfg.churn = ChurnProcess::scripted(vec![
            (12, ChurnEvent::Deactivate(0)),
            (13, ChurnEvent::Deactivate(1)),
        ]);
        let mut sim = OnlineSim::new(complete(8), cfg);
        let report = sim.run();
        let live_after_arrivals = report.records[10].live_tasks;
        assert!(live_after_arrivals > 0);
        // No departures configured: draining moves tasks, never loses them.
        let last = report.last().unwrap();
        assert_eq!(last.live_tasks, live_after_arrivals);
        assert_eq!(last.active_resources, 6);
        assert!(report.records[12].drained > 0 || report.records[13].drained > 0);
        // Drained resources hold nothing.
        assert!(sim.stacks()[0].is_empty());
        assert!(sim.stacks()[1].is_empty());
    }

    #[test]
    fn last_resource_is_never_deactivated() {
        let mut cfg = quick_cfg("last");
        cfg.epochs = 5;
        cfg.churn =
            ChurnProcess::scripted(vec![(0, ChurnEvent::DeactivateRange { from: 0, to: 4 })]);
        let mut sim = OnlineSim::new(complete(4), cfg);
        let report = sim.run();
        assert_eq!(report.records[0].active_resources, 1);
    }

    #[test]
    fn hotspot_arrivals_pile_onto_target_then_rebalance() {
        let mut cfg = quick_cfg("hotspot");
        cfg.arrival_placement = ArrivalPlacement::HotSpot(3);
        cfg.rounds_per_epoch = 0; // no rebalancing: observe the pile-up
        cfg.departure_prob = 0.0;
        cfg.epochs = 5;
        let mut sim = OnlineSim::new(complete(8), cfg);
        sim.run();
        let on_target = sim.stacks()[3].num_tasks();
        let elsewhere: usize = sim
            .stacks()
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != 3)
            .map(|(_, s)| s.num_tasks())
            .sum();
        assert!(on_target > 0);
        assert_eq!(elsewhere, 0);
    }

    #[test]
    fn id_slots_are_recycled() {
        let mut cfg = quick_cfg("recycle");
        cfg.epochs = 400;
        cfg.arrivals = ArrivalProcess::Poisson { rate: 10.0 };
        cfg.departure_prob = 0.2; // equilibrium population ~ rate/p = 50
        let mut sim = OnlineSim::new(complete(12), cfg);
        let report = sim.run();
        assert!(report.total_arrivals > 2000);
        // Without slot recycling the id space would match total arrivals;
        // with it, it tracks the peak live population instead.
        assert!(
            sim.id_capacity() < report.total_arrivals as usize / 4,
            "id capacity {} vs arrivals {}",
            sim.id_capacity(),
            report.total_arrivals
        );
    }

    #[test]
    fn multi_tenant_violations_reported_per_tenant() {
        let mut cfg = quick_cfg("tenants");
        cfg.tenants = vec![
            TenantSpec::new("strict", ThresholdPolicy::Tight, 1.0),
            TenantSpec::new("relaxed", ThresholdPolicy::AboveAverage { epsilon: 2.0 }, 1.0),
        ];
        cfg.epochs = 80;
        let mut sim = OnlineSim::new(complete(10), cfg);
        let report = sim.run();
        assert_eq!(report.tenants, vec!["strict".to_string(), "relaxed".to_string()]);
        assert_eq!(report.tenant_violation_rates.len(), 2);
        // The tight tenant must violate at least as often as the relaxed
        // one (its threshold is strictly lower for the same traffic).
        assert!(
            report.tenant_violation_rates[0] >= report.tenant_violation_rates[1],
            "rates {:?}",
            report.tenant_violation_rates
        );
    }

    #[test]
    fn mixed_policy_also_converges() {
        let mut cfg = quick_cfg("mixed");
        cfg.rebalance = RebalancePolicy::Mixed {
            departure: Departure::Bernoulli,
            alpha: 1.0,
            walk: WalkKind::MaxDegree,
        };
        cfg.arrival_window = Some(20);
        cfg.departure_prob = 0.0;
        cfg.epochs = 120;
        let report = OnlineSim::new(complete(12), cfg).run();
        let last = report.last().unwrap();
        assert!(last.balanced, "mixed pass did not converge: {last:?}");
        assert_eq!(last.arrivals, 0);
    }

    #[test]
    #[should_panic(expected = "only the resource-controlled policy rebalances sharded")]
    fn sequential_policies_reject_sharding() {
        let mut cfg = quick_cfg("mixed-sharded");
        cfg.rebalance = RebalancePolicy::Mixed {
            departure: Departure::Bernoulli,
            alpha: 1.0,
            walk: WalkKind::MaxDegree,
        };
        cfg.shards = 2;
        let _ = OnlineSim::new(complete(4), cfg);
    }

    #[test]
    fn baseline_policy_rebalances_online() {
        // A related-work baseline driving the online engine — the path no
        // pre-trait layer could express. Greedy[2] ejection/re-placement
        // must keep a steady stream balanced on K_12.
        let mut cfg = quick_cfg("baseline");
        cfg.rebalance = RebalancePolicy::Baseline { rule: BaselineRule::Greedy { d: 2 } };
        cfg.arrival_window = Some(20);
        cfg.departure_prob = 0.0;
        cfg.epochs = 120;
        let report = OnlineSim::new(complete(12), cfg).run();
        let last = report.last().unwrap();
        assert!(last.balanced, "baseline pass did not converge: {last:?}");
        assert!(report.total_migrations > 0);
    }

    #[test]
    fn baseline_policy_survives_churn_without_placing_on_inactive_nodes() {
        let mut cfg = quick_cfg("baseline-churn");
        cfg.rebalance =
            RebalancePolicy::Baseline { rule: BaselineRule::SequentialThreshold { retries: 3 } };
        cfg.churn = ChurnProcess::scripted(vec![(5, ChurnEvent::Deactivate(2))]);
        cfg.epochs = 40;
        let mut sim = OnlineSim::new(complete(8), cfg);
        sim.run();
        // Node 2 left at epoch 5 and never returned: the baseline must
        // not have used it as a destination afterwards.
        assert!(sim.stacks()[2].is_empty(), "baseline placed tasks on a deactivated resource");
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identically() {
        // Segmented run (pause at epoch 25, serialize, restore, finish)
        // vs the uninterrupted run: every post-restore record and the
        // whole-run summary must match bit for bit.
        let mut cfg = quick_cfg("ckpt");
        cfg.churn = ChurnProcess {
            scripted: vec![],
            random_down: 0.05,
            random_up: 0.08,
            ..Default::default()
        };
        let full = OnlineSim::new(torus2d(4, 4), cfg.clone()).run();

        let mut first = OnlineSim::new(torus2d(4, 4), cfg.clone());
        for _ in 0..25 {
            first.run_epoch();
        }
        let snap = first.checkpoint().unwrap();
        let json = snap.to_json().unwrap();
        let back = crate::snapshot::SimSnapshot::from_json(&json).unwrap();
        assert_eq!(back, snap, "snapshot must survive serde");

        let mut resumed = OnlineSim::restore(back, torus2d(4, 4)).unwrap();
        assert_eq!(resumed.epoch(), 25);
        for _ in 25..60 {
            resumed.run_epoch();
        }
        assert_eq!(resumed.records(), &full.records[25..]);
        let summary_report = resumed.summary().to_report("ckpt", cfg.seed, full.tenants.clone());
        assert_eq!(summary_report.total_migrations, full.total_migrations);
        assert_eq!(summary_report.peak_load.to_bits(), full.peak_load.to_bits());
        assert_eq!(summary_report.balanced_fraction.to_bits(), full.balanced_fraction.to_bits());
    }

    #[test]
    fn restore_rejects_corrupt_snapshots() {
        let mut sim = OnlineSim::new(complete(8), quick_cfg("corrupt"));
        for _ in 0..5 {
            sim.run_epoch();
        }
        let snap = sim.checkpoint().unwrap();

        let mut wrong_version = snap.clone();
        wrong_version.version = 99;
        assert!(OnlineSim::restore(wrong_version, complete(8)).is_err());

        let mut wrong_live = snap.clone();
        wrong_live.live += 1;
        assert!(OnlineSim::restore(wrong_live, complete(8)).is_err());

        let mut wrong_tables = snap.clone();
        wrong_tables.tenant_of.push(0);
        assert!(OnlineSim::restore(wrong_tables, complete(8)).is_err());

        // Wrong base graph: node count mismatch surfaces as a delta error.
        assert!(OnlineSim::restore(snap, complete(9)).is_err());
    }

    #[test]
    fn reconfigure_rejects_determinism_corrupting_swaps() {
        let mut sim = OnlineSim::new(complete(8), quick_cfg("reconf"));
        for _ in 0..3 {
            sim.run_epoch();
        }

        // Sharding a sequential policy is rejected, engine untouched.
        let mut bad = quick_cfg("reconf");
        bad.rebalance = RebalancePolicy::Mixed {
            departure: Departure::Bernoulli,
            alpha: 1.0,
            walk: WalkKind::MaxDegree,
        };
        bad.shards = 2;
        assert!(sim.reconfigure(bad).is_err());

        // Tenant list changes are rejected.
        let mut tenants = quick_cfg("reconf");
        tenants.tenants.push(TenantSpec::new("late", ThresholdPolicy::Tight, 1.0));
        assert!(sim.reconfigure(tenants).is_err());

        // A legal phase swap applies and the run continues.
        let mut ok = quick_cfg("reconf");
        ok.arrivals = ArrivalProcess::Off;
        ok.epochs = 2;
        sim.reconfigure(ok).unwrap();
        let report = sim.run();
        assert_eq!(report.last().unwrap().arrivals, 0);
    }

    #[test]
    fn streaming_mode_matches_buffered_aggregates_with_flat_records() {
        let cfg = quick_cfg("stream");
        let buffered = OnlineSim::new(complete(12), cfg.clone()).run();

        let mut streaming = OnlineSim::new(complete(12), cfg);
        streaming.set_record_buffering(false);
        streaming.set_sink(Some(Box::new(crate::sink::MemorySink::new(4))));
        let report = streaming.try_run().unwrap();
        assert!(report.records.is_empty(), "service mode must not buffer the series");
        assert_eq!(streaming.records().len(), 0);
        assert_eq!(report.epochs, buffered.epochs);
        assert_eq!(report.total_arrivals, buffered.total_arrivals);
        assert_eq!(report.total_departures, buffered.total_departures);
        assert_eq!(report.total_migrations, buffered.total_migrations);
        assert_eq!(report.balanced_fraction.to_bits(), buffered.balanced_fraction.to_bits());
        assert_eq!(report.peak_load.to_bits(), buffered.peak_load.to_bits());
        assert_eq!(report.tenant_violation_rates, buffered.tenant_violation_rates);
    }

    #[test]
    fn obs_is_off_by_default_and_determinism_neutral_when_on() {
        let mut cfg = quick_cfg("obs");
        cfg.churn = ChurnProcess {
            scripted: vec![],
            random_down: 0.05,
            random_up: 0.08,
            ..Default::default()
        };
        let plain = OnlineSim::new(torus2d(4, 4), cfg.clone()).run();

        let run_obs = |shards: usize| {
            let mut cfg = cfg.clone();
            cfg.shards = shards;
            let mut sim = OnlineSim::new(torus2d(4, 4), cfg);
            assert!(sim.obs_report().is_none(), "obs must be opt-in");
            sim.enable_obs();
            let report = sim.run();
            (report, sim.obs_report().expect("obs was enabled"))
        };
        let (report, obs) = run_obs(1);
        // Neutrality: the instrumented run's records are bit-identical.
        assert_eq!(report, plain);
        // Counter semantics against the run-level report.
        assert_eq!(obs.counters["sim.epochs"], plain.epochs);
        assert_eq!(obs.counters["sim.arrivals"], plain.total_arrivals);
        assert_eq!(obs.counters["sim.migrations"], plain.total_migrations);
        assert_eq!(obs.counters["rebalance.ejected"], plain.total_migrations);
        assert!(obs.counters["rebalance.max_round_cohort"] > 0);
        assert!(obs.timings.contains_key("epoch.total_ns"));
        assert!(obs.timings.contains_key("shard.route_ns"));
        assert!(obs.exec.contains_key("pool.threads"));
        assert_eq!(obs.exec["shard.cross_shard_handoffs"], 0);

        // The counters subtree is byte-identical across shard counts;
        // exec (layout diagnostics) legitimately differs.
        for shards in [2usize, 5] {
            let (sharded_report, sharded_obs) = run_obs(shards);
            assert_eq!(sharded_report, plain, "shard count {shards} diverged");
            assert_eq!(
                sharded_obs.counters_json(),
                obs.counters_json(),
                "obs counters diverged at shard count {shards}"
            );
        }
    }

    #[test]
    fn sequential_policy_obs_counts_walk_draws() {
        let mut cfg = quick_cfg("obs-mixed");
        cfg.rebalance = RebalancePolicy::Mixed {
            departure: Departure::Bernoulli,
            alpha: 1.0,
            walk: WalkKind::Lazy,
        };
        let mut sim = OnlineSim::new(complete(12), cfg);
        sim.enable_obs();
        let report = sim.run();
        let obs = sim.obs_report().unwrap();
        assert_eq!(obs.counters["rebalance.walk_steps"], report.total_migrations);
        assert_eq!(
            obs.counters["rebalance.fused_word_draws"], obs.counters["rebalance.walk_steps"],
            "the lazy walk fuses its coin and neighbour draws"
        );
    }

    fn two_rack_cfg(name: &str) -> SimConfig {
        let mut cfg = quick_cfg(name);
        cfg.churn.domains = vec![
            crate::domains::DomainSpec::new("rack-a", 0, 8),
            crate::domains::DomainSpec::new("rack-b", 8, 16),
        ];
        cfg
    }

    #[test]
    fn scripted_domain_outage_drops_the_rack_and_recovers_on_schedule() {
        let mut cfg = two_rack_cfg("dom-script");
        cfg.epochs = 20;
        cfg.churn.scripted = vec![(5, ChurnEvent::DomainOutage { domain: 0, duration: 4 })];
        let report = OnlineSim::new(torus2d(4, 4), cfg).run();
        // Epochs 5..9 run with rack-a (8 nodes) down; the recovery fires
        // at the start of epoch 9.
        for e in 0..20usize {
            let expect = if (5..9).contains(&e) { 8 } else { 16 };
            assert_eq!(
                report.records[e].active_resources, expect,
                "epoch {e}: {:?}",
                report.records[e]
            );
        }
        // Draining moved the rack's tasks to the survivors, never lost them.
        let r = &report.records[5];
        assert_eq!(r.arrivals, r.admitted + r.rejected);
    }

    #[test]
    fn stochastic_domain_outages_are_deterministic_and_bounded() {
        let mut cfg = two_rack_cfg("dom-stoch");
        cfg.epochs = 80;
        cfg.churn.domain_outage = 0.2;
        cfg.churn.outage = OutageDuration { alpha: 1.5, min_epochs: 2, max_epochs: 6 };
        let a = OnlineSim::new(torus2d(4, 4), cfg.clone()).run();
        let b = OnlineSim::new(torus2d(4, 4), cfg.clone()).run();
        assert_eq!(a, b);
        // Some epoch must actually have lost a rack...
        assert!(a.records.iter().any(|r| r.active_resources <= 8), "no outage in 80 epochs");
        // ...and with both racks coverable the engine never takes the
        // last one down (the heal-side guard keeps >= 1 resource active).
        assert!(a.records.iter().all(|r| r.active_resources >= 1));
        // Sharding does not disturb the domain draws.
        cfg.shards = 4;
        let sharded = OnlineSim::new(torus2d(4, 4), cfg).run();
        assert_eq!(sharded, a);
    }

    #[test]
    fn domain_list_alone_is_rng_neutral() {
        // Configuring domains without an outage probability must not
        // shift any stream: the run is bit-identical to the no-domain run.
        let plain = OnlineSim::new(torus2d(4, 4), quick_cfg("dom-inert")).run();
        let with_domains = OnlineSim::new(torus2d(4, 4), two_rack_cfg("dom-inert")).run();
        assert_eq!(with_domains, plain);
    }

    #[test]
    fn adaptive_steering_shoots_the_loaded_rack() {
        // All load starts on rack-a (hot-spot arrivals onto node 2, no
        // rebalance): the adaptive adversary shoots the loaded rack
        // first, so its drained mass keeps sloshing between racks.
        let mut cfg = two_rack_cfg("dom-adapt");
        cfg.epochs = 60;
        cfg.arrival_placement = ArrivalPlacement::HotSpot(2);
        cfg.rounds_per_epoch = 0;
        cfg.departure_prob = 0.0;
        cfg.churn.domain_outage = 0.3;
        cfg.churn.outage = OutageDuration { alpha: 2.0, min_epochs: 2, max_epochs: 4 };
        cfg.churn.steering = DomainSteering::Adaptive;
        let mut sim = OnlineSim::new(torus2d(4, 4), cfg.clone());
        let report = sim.run();
        assert!(report.records.iter().any(|r| r.active_resources < 16), "no outage fired");
        // The drained hot-spot tasks land on rack-b during the outage and
        // stay there (no rebalancing); conservation holds throughout.
        for r in &report.records {
            assert_eq!(r.arrivals, r.admitted + r.rejected, "epoch {}", r.epoch);
        }
        // Determinism incl. the RNG-free victim choice.
        assert_eq!(OnlineSim::new(torus2d(4, 4), cfg).run(), report);
    }

    #[test]
    fn adaptive_placement_piles_onto_the_most_loaded_resource() {
        // The placement adversary with spread 1 and no rebalancing: the
        // epoch-0 ranking ties to node 0, and every later ranking keeps
        // node 0 on top, so the whole stream lands there.
        let mut cfg = quick_cfg("adapt-place");
        cfg.arrival_placement = ArrivalPlacement::Adaptive { spread: 1 };
        cfg.rounds_per_epoch = 0;
        cfg.departure_prob = 0.0;
        cfg.epochs = 6;
        let mut sim = OnlineSim::new(complete(8), cfg.clone());
        let report = sim.run();
        assert!(report.total_arrivals > 0);
        let elsewhere: usize =
            sim.stacks().iter().skip(1).map(tlb_core::stack::ResourceStack::num_tasks).sum();
        assert_eq!(elsewhere, 0, "adaptive spread-1 placement leaked off the top slot");
        assert_eq!(sim.stacks()[0].num_tasks() as u64, report.total_arrivals);
        // Spread 2 round-robins over exactly the top two slots.
        cfg.arrival_placement = ArrivalPlacement::Adaptive { spread: 2 };
        let mut sim2 = OnlineSim::new(complete(8), cfg);
        sim2.run();
        let nonempty = sim2.stacks().iter().filter(|s| !s.is_empty()).count();
        assert_eq!(nonempty, 2);
    }

    #[test]
    fn static_cap_admission_bounds_the_live_population() {
        let mut cfg = quick_cfg("cap");
        cfg.admission = AdmissionPolicy::StaticCap { max_live: 20 };
        cfg.departure_prob = 0.02;
        cfg.epochs = 80;
        let report = OnlineSim::new(complete(8), cfg).run();
        assert!(report.records.iter().all(|r| r.live_tasks <= 20));
        assert!(report.total_rejected > 0, "a 20-task cap must shed at this rate");
        assert_eq!(report.total_admitted + report.total_rejected, report.total_arrivals);
        assert!(report.shed_fraction > 0.0 && report.shed_fraction < 1.0);
    }

    #[test]
    fn token_bucket_admission_rate_limits_per_tenant() {
        let mut cfg = quick_cfg("bucket");
        cfg.tenants = vec![
            TenantSpec::new("gold", ThresholdPolicy::AboveAverage { epsilon: 0.2 }, 1.0),
            TenantSpec::new("bronze", ThresholdPolicy::AboveAverage { epsilon: 0.2 }, 1.0),
        ];
        cfg.admission = AdmissionPolicy::TokenBucket { rate: 2.0, burst: 6.0 };
        cfg.epochs = 100;
        let report = OnlineSim::new(complete(8), cfg).run();
        // Each tenant can admit at most burst + rate per elapsed epoch.
        let budget = (6.0 + 2.0 * 100.0) as u64;
        for (c, name) in report.tenants.iter().enumerate() {
            assert!(
                report.tenant_admitted_totals[c] <= budget,
                "tenant {name} admitted {} > budget {budget}",
                report.tenant_admitted_totals[c]
            );
        }
        assert!(report.total_rejected > 0, "a 2/epoch bucket must reject at a 12/epoch rate");
        assert_eq!(report.total_admitted + report.total_rejected, report.total_arrivals);
        let tenant_sum: u64 = report.tenant_admitted_totals.iter().sum();
        assert_eq!(tenant_sum, report.total_admitted);
    }

    #[test]
    fn load_shed_admission_keeps_mean_load_under_the_cap() {
        let mut cfg = quick_cfg("shed");
        cfg.admission = AdmissionPolicy::LoadShed { max_mean_load: 2.0 };
        cfg.departure_prob = 0.02;
        cfg.epochs = 80;
        let report = OnlineSim::new(complete(8), cfg).run();
        // No churn: the active set is fixed at 8, so the admission-time
        // bound is exactly the recorded mean.
        assert!(
            report.records.iter().all(|r| r.mean_load <= 2.0 + 1e-9),
            "mean load exceeded the shed cap"
        );
        assert!(report.total_rejected > 0);
        assert_eq!(report.total_admitted + report.total_rejected, report.total_arrivals);
    }

    #[test]
    fn admission_off_admits_everything_and_preserves_legacy_streams() {
        let report = OnlineSim::new(complete(16), quick_cfg("steady")).run();
        assert_eq!(report.total_admitted, report.total_arrivals);
        assert_eq!(report.total_rejected, 0);
        assert_eq!(report.shed_fraction, 0.0);
    }

    #[test]
    fn robustness_features_checkpoint_restore_bit_identically() {
        // Pause at epoch 10 — *inside* the scripted rack outage — with
        // admission and stochastic domain churn live, and resume.
        let mut cfg = two_rack_cfg("dom-ckpt");
        cfg.epochs = 40;
        cfg.churn.scripted = vec![(8, ChurnEvent::DomainOutage { domain: 1, duration: 6 })];
        cfg.churn.domain_outage = 0.1;
        cfg.admission = AdmissionPolicy::TokenBucket { rate: 5.0, burst: 10.0 };
        let full = OnlineSim::new(torus2d(4, 4), cfg.clone()).run();

        let mut first = OnlineSim::new(torus2d(4, 4), cfg.clone());
        for _ in 0..10 {
            first.run_epoch();
        }
        let snap = first.checkpoint().unwrap();
        assert!(snap.domain_down_until.iter().any(|&u| u > 10), "pause must be mid-outage");
        let json = snap.to_json().unwrap();
        let back = SimSnapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
        let mut resumed = OnlineSim::restore(back, torus2d(4, 4)).unwrap();
        for _ in 10..40 {
            resumed.run_epoch();
        }
        assert_eq!(resumed.records(), &full.records[10..]);
    }

    #[test]
    fn restore_rejects_corrupt_robustness_state() {
        let mut cfg = two_rack_cfg("dom-corrupt");
        cfg.admission = AdmissionPolicy::TokenBucket { rate: 1.0, burst: 4.0 };
        let mut sim = OnlineSim::new(torus2d(4, 4), cfg);
        for _ in 0..3 {
            sim.run_epoch();
        }
        let snap = sim.checkpoint().unwrap();

        let mut wrong_domains = snap.clone();
        wrong_domains.domain_down_until.push(0);
        assert!(OnlineSim::restore(wrong_domains, torus2d(4, 4)).is_err());

        let mut wrong_tokens = snap.clone();
        wrong_tokens.admission_tokens.pop();
        assert!(OnlineSim::restore(wrong_tokens, torus2d(4, 4)).is_err());

        let mut over_full = snap.clone();
        over_full.admission_tokens[0] = 99.0;
        assert!(OnlineSim::restore(over_full, torus2d(4, 4)).is_err());

        assert!(OnlineSim::restore(snap, torus2d(4, 4)).is_ok());
    }

    #[test]
    fn reconfigure_rejects_domain_list_changes() {
        let mut sim = OnlineSim::new(torus2d(4, 4), two_rack_cfg("dom-reconf"));
        for _ in 0..3 {
            sim.run_epoch();
        }
        // Changing the domain list is rejected (deadlines index into it).
        let mut bad = quick_cfg("dom-reconf");
        bad.churn.domains = vec![crate::domains::DomainSpec::new("other", 0, 16)];
        assert!(sim.reconfigure(bad).is_err());
        // Swapping outage knobs over the same list is a legal phase swap.
        let mut ok = two_rack_cfg("dom-reconf");
        ok.churn.domain_outage = 0.05;
        ok.churn.steering = DomainSteering::Adaptive;
        sim.reconfigure(ok).unwrap();
    }

    #[test]
    fn per_tenant_obs_counters_match_the_report_ledger() {
        let mut cfg = quick_cfg("obs-tenant");
        cfg.tenants = vec![
            TenantSpec::new("gold", ThresholdPolicy::AboveAverage { epsilon: 0.2 }, 1.0),
            TenantSpec::new("bronze", ThresholdPolicy::Tight, 1.0),
        ];
        cfg.admission = AdmissionPolicy::StaticCap { max_live: 30 };
        cfg.departure_prob = 0.02;
        let mut sim = OnlineSim::new(complete(8), cfg);
        sim.enable_obs();
        let report = sim.run();
        let obs = sim.obs_report().unwrap();
        for (c, name) in report.tenants.iter().enumerate() {
            assert_eq!(
                obs.counters[&format!("tenant.{name}.admitted")],
                report.tenant_admitted_totals[c]
            );
            assert_eq!(
                obs.counters[&format!("tenant.{name}.rejected")],
                report.tenant_rejected_totals[c]
            );
        }
        assert_eq!(obs.counters["sim.admitted"], report.total_admitted);
        assert_eq!(obs.counters["sim.rejected"], report.total_rejected);
    }

    #[test]
    fn empty_system_epochs_are_trivially_balanced() {
        let mut cfg = quick_cfg("empty");
        cfg.arrivals = ArrivalProcess::Off;
        cfg.departure_prob = 0.0;
        cfg.epochs = 3;
        let report = OnlineSim::new(complete(4), cfg).run();
        assert_eq!(report.balanced_fraction, 1.0);
        assert_eq!(report.last().unwrap().threshold, 0.0);
        assert_eq!(report.last().unwrap().live_tasks, 0);
    }
}
