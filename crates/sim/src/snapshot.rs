//! Versioned checkpoints of a running [`OnlineSim`](crate::OnlineSim).
//!
//! A [`SimSnapshot`] captures everything a resumed engine needs to
//! continue **bit-identically** to the uninterrupted run: the full
//! configuration, the epoch counter, the churn overlay as a canonical
//! [`DynamicDelta`] against the pristine base graph (the base CSR itself
//! is *not* serialized — the restoring side supplies it, so a snapshot
//! of a million-node run is the size of its churn, not its topology),
//! the per-resource stacks, the task tables with their id-recycling
//! freelist, and the streaming metrics summary.
//!
//! **Why no RNG state?** Checkpoints are taken at epoch boundaries, and
//! the engine's determinism design leaves *no* persistent RNG state
//! there: epoch `e` seeds a fresh `SmallRng` from
//! [`epoch_seed`](crate::epoch_seed)`(seed, e)`, and the sharded
//! rebalancing pass draws from the counter-based stream rooted at
//! `rebalance_seed(seed, e)`. The `(seed, epoch)` pair in the snapshot
//! *is* the complete RNG stream position. (The vendored RNG still
//! exports raw state via `SmallRng::to_state`/`from_state` for callers
//! that checkpoint mid-stream; the engine does not need it.)
//!
//! The format is JSON with a leading `version` field, checked on load;
//! see the "Service mode" section of the README for the restart recipe.

use serde::{Deserialize, Serialize};
use tlb_core::stack::ResourceStack;
use tlb_core::task::TaskId;
use tlb_graphs::DynamicDelta;

use anyhow::Context;

use crate::engine::SimConfig;
use crate::metrics::RunningSummary;

/// Current snapshot format version. Bumped whenever the serialized
/// layout or the determinism contract it relies on changes; `load`
/// rejects mismatches instead of misinterpreting old state.
pub const SNAPSHOT_VERSION: u32 = 1;

/// A versioned, serializable checkpoint of an online run at an epoch
/// boundary (see the module docs for what is and is not captured).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimSnapshot {
    /// Format version ([`SNAPSHOT_VERSION`] at write time).
    pub version: u32,
    /// Full configuration in force when the checkpoint was taken.
    pub config: SimConfig,
    /// Epochs executed before the checkpoint (the resumed engine runs
    /// epoch `epoch` next).
    pub epoch: u64,
    /// Churn overlay as a canonical delta against the pristine base
    /// graph the run was started with.
    pub graph: DynamicDelta,
    /// Per-resource stacks (index = resource id).
    pub stacks: Vec<ResourceStack>,
    /// Weight slot per task id (freelist slots hold stale values).
    pub weights: Vec<f64>,
    /// Tenant index per task id (parallel to `weights`).
    pub tenant_of: Vec<u16>,
    /// Recycled task-id slots, in pop order.
    pub free_ids: Vec<TaskId>,
    /// Live task count.
    pub live: usize,
    /// Streaming run-level aggregates up to the checkpoint.
    pub summary: RunningSummary,
}

impl SimSnapshot {
    /// Serialize to pretty JSON.
    ///
    /// # Errors
    /// If serialization fails.
    pub fn to_json(&self) -> anyhow::Result<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| anyhow::anyhow!("snapshot serializes: {e:?}"))
    }

    /// Parse a snapshot, rejecting version mismatches.
    ///
    /// # Errors
    /// If the JSON is malformed or the `version` field is not
    /// [`SNAPSHOT_VERSION`].
    pub fn from_json(text: &str) -> anyhow::Result<Self> {
        let snap: SimSnapshot =
            serde_json::from_str(text).map_err(|e| anyhow::anyhow!("snapshot parse: {e:?}"))?;
        anyhow::ensure!(
            snap.version == SNAPSHOT_VERSION,
            "snapshot version {} unsupported (this build reads version {})",
            snap.version,
            SNAPSHOT_VERSION
        );
        Ok(snap)
    }

    /// Write the snapshot to `path` as JSON.
    ///
    /// # Errors
    /// On serialization or I/O failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> anyhow::Result<()> {
        let path = path.as_ref();
        std::fs::write(path, self.to_json()?)
            .with_context(|| format!("writing snapshot {}", path.display()))
    }

    /// Read a snapshot from `path`.
    ///
    /// # Errors
    /// On I/O failure, malformed JSON, or a version mismatch.
    pub fn load(path: impl AsRef<std::path::Path>) -> anyhow::Result<Self> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .with_context(|| format!("reading snapshot {}", path.display()))?;
        SimSnapshot::from_json(&text)
            .map_err(|e| anyhow::anyhow!("parsing snapshot {}: {e}", path.display()))
    }
}
