//! Versioned checkpoints of a running [`OnlineSim`](crate::OnlineSim).
//!
//! A [`SimSnapshot`] captures everything a resumed engine needs to
//! continue **bit-identically** to the uninterrupted run: the full
//! configuration, the epoch counter, the churn overlay as a canonical
//! [`DynamicDelta`] against the pristine base graph (the base CSR itself
//! is *not* serialized — the restoring side supplies it, so a snapshot
//! of a million-node run is the size of its churn, not its topology),
//! the per-resource stacks, the task tables with their id-recycling
//! freelist, and the streaming metrics summary.
//!
//! **Why no RNG state?** Checkpoints are taken at epoch boundaries, and
//! the engine's determinism design leaves *no* persistent RNG state
//! there: epoch `e` seeds a fresh `SmallRng` from
//! [`epoch_seed`](crate::epoch_seed)`(seed, e)`, and the sharded
//! rebalancing pass draws from the counter-based stream rooted at
//! `rebalance_seed(seed, e)`. The `(seed, epoch)` pair in the snapshot
//! *is* the complete RNG stream position. (The vendored RNG still
//! exports raw state via `SmallRng::to_state`/`from_state` for callers
//! that checkpoint mid-stream; the engine does not need it.)
//!
//! The format is JSON with a leading `version` field, checked on load;
//! see the "Service mode" section of the README for the restart recipe.
//!
//! ## Version history
//!
//! * **v1** (PR 7): config, epoch, graph delta, stacks, task tables,
//!   summary.
//! * **v2** (robustness layer): adds the failure-domain recovery
//!   deadlines (`domain_down_until`) and the per-tenant admission token
//!   balances (`admission_tokens`); the config gained `admission` and
//!   the churn block gained `domains`/`domain_outage`/`outage`/
//!   `steering`; the summary gained the admitted/rejected ledger.
//!   [`SimSnapshot::from_json`] upgrades v1 documents in place —
//!   missing robustness state defaults to "feature off" (no domains,
//!   admit everything, every offered arrival counted as admitted),
//!   which is exactly what a v1 engine did.

use serde::{Deserialize, Serialize};
use serde_json::{Number, Value};
use tlb_core::stack::ResourceStack;
use tlb_core::task::TaskId;
use tlb_graphs::DynamicDelta;

use anyhow::Context;

use crate::engine::SimConfig;
use crate::metrics::RunningSummary;

/// Current snapshot format version. Bumped whenever the serialized
/// layout or the determinism contract it relies on changes; `load`
/// rejects mismatches instead of misinterpreting old state (known old
/// versions upgrade through a shim — see the module docs).
pub const SNAPSHOT_VERSION: u32 = 2;

/// A versioned, serializable checkpoint of an online run at an epoch
/// boundary (see the module docs for what is and is not captured).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimSnapshot {
    /// Format version ([`SNAPSHOT_VERSION`] at write time).
    pub version: u32,
    /// Full configuration in force when the checkpoint was taken.
    pub config: SimConfig,
    /// Epochs executed before the checkpoint (the resumed engine runs
    /// epoch `epoch` next).
    pub epoch: u64,
    /// Churn overlay as a canonical delta against the pristine base
    /// graph the run was started with.
    pub graph: DynamicDelta,
    /// Per-resource stacks (index = resource id).
    pub stacks: Vec<ResourceStack>,
    /// Weight slot per task id (freelist slots hold stale values).
    pub weights: Vec<f64>,
    /// Tenant index per task id (parallel to `weights`).
    pub tenant_of: Vec<u16>,
    /// Recycled task-id slots, in pop order.
    pub free_ids: Vec<TaskId>,
    /// Live task count.
    pub live: usize,
    /// Per failure domain (index = config's domain list): the epoch at
    /// whose start the domain recovers, 0 when healthy. Parallel to
    /// `config.churn.domains`. (v2)
    pub domain_down_until: Vec<u64>,
    /// Per-tenant admission token balances (token-bucket policy only;
    /// empty otherwise). (v2)
    pub admission_tokens: Vec<f64>,
    /// Streaming run-level aggregates up to the checkpoint.
    pub summary: RunningSummary,
}

impl SimSnapshot {
    /// Serialize to pretty JSON.
    ///
    /// # Errors
    /// If serialization fails.
    pub fn to_json(&self) -> anyhow::Result<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| anyhow::anyhow!("snapshot serializes: {e:?}"))
    }

    /// Parse a snapshot, upgrading known old versions through the
    /// compatibility shim and rejecting unknown ones.
    ///
    /// # Errors
    /// If the JSON is malformed or the `version` field is neither
    /// [`SNAPSHOT_VERSION`] nor an upgradable older version.
    pub fn from_json(text: &str) -> anyhow::Result<Self> {
        let mut value: Value =
            serde_json::from_str(text).map_err(|e| anyhow::anyhow!("snapshot parse: {e:?}"))?;
        let version = value
            .as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == "version"))
            .and_then(|(_, v)| v.as_u64());
        match version {
            Some(1) => {
                upgrade_v1(&mut value).map_err(|e| anyhow::anyhow!("snapshot v1 upgrade: {e}"))?;
            }
            Some(v) if v == u64::from(SNAPSHOT_VERSION) => {}
            other => anyhow::bail!(
                "snapshot version {} unsupported (this build reads versions 1..={})",
                other.map_or_else(|| "missing".to_owned(), |v| v.to_string()),
                SNAPSHOT_VERSION
            ),
        }
        let snap = <SimSnapshot as Deserialize>::from_value(&value)
            .map_err(|e| anyhow::anyhow!("snapshot parse: {e}"))?;
        Ok(snap)
    }

    /// Write the snapshot to `path` as JSON.
    ///
    /// # Errors
    /// On serialization or I/O failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> anyhow::Result<()> {
        let path = path.as_ref();
        std::fs::write(path, self.to_json()?)
            .with_context(|| format!("writing snapshot {}", path.display()))
    }

    /// Read a snapshot from `path`.
    ///
    /// # Errors
    /// On I/O failure, malformed JSON, or a version mismatch.
    pub fn load(path: impl AsRef<std::path::Path>) -> anyhow::Result<Self> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .with_context(|| format!("reading snapshot {}", path.display()))?;
        SimSnapshot::from_json(&text)
            .map_err(|e| anyhow::anyhow!("parsing snapshot {}: {e}", path.display()))
    }
}

/// The pairs of an object `Value`, or an error naming the site.
fn object_mut<'a>(v: &'a mut Value, what: &str) -> Result<&'a mut Vec<(String, Value)>, String> {
    match v {
        Value::Object(pairs) => Ok(pairs),
        other => Err(format!("{what} must be an object, found {}", other.kind())),
    }
}

/// Mutable lookup inside an object's pairs.
fn field_mut<'a>(
    pairs: &'a mut [(String, Value)],
    key: &str,
    what: &str,
) -> Result<&'a mut Value, String> {
    pairs
        .iter_mut()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("{what} is missing field {key:?}"))
}

/// Insert `key: value` unless the key already exists (an upgrade must
/// never clobber data a field-bearing document carries).
fn insert_missing(pairs: &mut Vec<(String, Value)>, key: &str, value: Value) {
    if !pairs.iter().any(|(k, _)| k == key) {
        pairs.push((key.to_string(), value));
    }
}

/// In-place v1 → v2 upgrade of a parsed snapshot document. The added
/// state all defaults to "robustness features off", which is exactly
/// the v1 engine's behaviour: no failure domains (so no recovery
/// deadlines), `AdmissionPolicy::None` (so every offered arrival was
/// admitted — the summary's new admitted total equals its arrival
/// total), and empty per-tenant admission ledgers (the engine sizes
/// them lazily on the next epoch).
fn upgrade_v1(value: &mut Value) -> Result<(), String> {
    let root = object_mut(value, "snapshot")?;
    insert_missing(root, "domain_down_until", Value::Array(Vec::new()));
    insert_missing(root, "admission_tokens", Value::Array(Vec::new()));

    let config = object_mut(field_mut(root, "config", "snapshot")?, "config")?;
    insert_missing(config, "admission", Value::String("None".to_string()));
    let churn = object_mut(field_mut(config, "churn", "config")?, "config.churn")?;
    insert_missing(churn, "domains", Value::Array(Vec::new()));
    insert_missing(churn, "domain_outage", Value::Number(Number::F(0.0)));
    insert_missing(churn, "outage", crate::domains::OutageDuration::default().to_value());
    insert_missing(churn, "steering", Value::String("Oblivious".to_string()));

    let summary = object_mut(field_mut(root, "summary", "snapshot")?, "summary")?;
    let admitted = field_mut(summary, "total_arrivals", "summary")?.clone();
    insert_missing(summary, "total_admitted", admitted);
    insert_missing(summary, "total_rejected", Value::Number(Number::U(0)));
    insert_missing(summary, "tenant_admitted_tasks", Value::Array(Vec::new()));
    insert_missing(summary, "tenant_rejected_tasks", Value::Array(Vec::new()));

    *field_mut(root, "version", "snapshot")? = Value::Number(Number::U(2));
    Ok(())
}
