//! Admission control: policies that gate arrivals *before* placement.
//!
//! The paper's protocols balance whatever load exists; a production
//! front door also decides what load to **accept**. An
//! [`AdmissionPolicy`] sits between the arrival sampler and placement:
//! every offered task is either *admitted* (placed and balanced as
//! usual) or *rejected* (counted, never placed) — so the per-tenant SLO
//! accounting can separate work the system refused from work it
//! accepted and then violated.
//!
//! Every decision is a pure function of the current engine state (live
//! count, projected mean load, per-tenant token balances) — **no RNG is
//! consumed**, which is what lets admission ride the existing
//! determinism scheme: configs without admission draw the exact RNG
//! sequence they always did, and configs with it stay bit-identical
//! across thread and shard counts.
//!
//! The token-bucket balances are the one piece of persistent state
//! (refilled once per epoch, spent per admitted task); they live in
//! [`crate::SimState`] and travel in the snapshot, so checkpoint/restore
//! resumes mid-bucket bit-identically.

use serde::{Deserialize, Serialize};

/// The admission policy of a run. All decisions are RNG-free.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum AdmissionPolicy {
    /// Admit everything (the pre-admission engine, bit for bit).
    #[default]
    None,
    /// Reject arrivals while the live population is at the cap — a hard
    /// global concurrency limit.
    StaticCap {
        /// Maximum live tasks (`>= 1`).
        max_live: usize,
    },
    /// Per-tenant token bucket: each tenant's bucket refills by `rate`
    /// tokens at the start of every epoch (capped at `burst`) and each
    /// admitted task spends one token. Tenants start with a full bucket.
    TokenBucket {
        /// Tokens added per epoch per tenant (`> 0`).
        rate: f64,
        /// Bucket capacity per tenant (`>= 1`).
        burst: f64,
    },
    /// Load shedding: reject any arrival that would push the mean load
    /// per active resource above the bound — the "stop accepting work
    /// we provably cannot balance" valve.
    LoadShed {
        /// Maximum mean load per active resource (`> 0`).
        max_mean_load: f64,
    },
}

impl AdmissionPolicy {
    /// Check the parameters.
    ///
    /// # Errors
    /// Describing the offending field.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            AdmissionPolicy::None => Ok(()),
            AdmissionPolicy::StaticCap { max_live } => {
                if max_live == 0 {
                    return Err("admission max_live must be >= 1".to_string());
                }
                Ok(())
            }
            AdmissionPolicy::TokenBucket { rate, burst } => {
                if !(rate.is_finite() && rate > 0.0) {
                    return Err(format!("token rate must be positive and finite, got {rate}"));
                }
                if !(burst.is_finite() && burst >= 1.0) {
                    return Err(format!("token burst must be >= 1 and finite, got {burst}"));
                }
                Ok(())
            }
            AdmissionPolicy::LoadShed { max_mean_load } => {
                if !(max_mean_load.is_finite() && max_mean_load > 0.0) {
                    return Err(format!(
                        "max_mean_load must be positive and finite, got {max_mean_load}"
                    ));
                }
                Ok(())
            }
        }
    }

    /// Initial per-tenant token balances: full buckets for
    /// [`TokenBucket`](Self::TokenBucket), empty (unused) otherwise.
    pub fn initial_tokens(&self, tenants: usize) -> Vec<f64> {
        match *self {
            AdmissionPolicy::TokenBucket { burst, .. } => vec![burst; tenants],
            _ => Vec::new(),
        }
    }

    /// Start-of-epoch refill (no-op for every policy but the bucket).
    pub fn refill(&self, tokens: &mut [f64]) {
        if let AdmissionPolicy::TokenBucket { rate, burst } = *self {
            for t in tokens {
                *t = (*t + rate).min(burst);
            }
        }
    }

    /// Decide one offered arrival. `live` and `total_weight` describe
    /// the system *before* this task; `n_active` is the current active
    /// resource count; `tokens` are the per-tenant balances (mutated on
    /// a token-bucket admit). Pure given its inputs — no RNG.
    pub fn admit(
        &self,
        tenant: u16,
        weight: f64,
        live: usize,
        total_weight: f64,
        n_active: usize,
        tokens: &mut [f64],
    ) -> bool {
        match *self {
            AdmissionPolicy::None => true,
            AdmissionPolicy::StaticCap { max_live } => live < max_live,
            AdmissionPolicy::TokenBucket { .. } => {
                let slot = &mut tokens[tenant as usize];
                if *slot >= 1.0 {
                    *slot -= 1.0;
                    true
                } else {
                    false
                }
            }
            AdmissionPolicy::LoadShed { max_mean_load } => {
                n_active > 0 && (total_weight + weight) / n_active as f64 <= max_mean_load
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_admits_everything() {
        let p = AdmissionPolicy::None;
        assert!(p.initial_tokens(3).is_empty());
        assert!(p.admit(0, 5.0, usize::MAX - 1, 1e12, 1, &mut []));
    }

    #[test]
    fn static_cap_cuts_at_the_limit() {
        let p = AdmissionPolicy::StaticCap { max_live: 10 };
        assert!(p.admit(0, 1.0, 9, 0.0, 4, &mut []));
        assert!(!p.admit(0, 1.0, 10, 0.0, 4, &mut []));
    }

    #[test]
    fn token_bucket_is_per_tenant_and_refills_to_burst() {
        let p = AdmissionPolicy::TokenBucket { rate: 1.5, burst: 2.0 };
        let mut tokens = p.initial_tokens(2);
        assert_eq!(tokens, vec![2.0, 2.0]);
        // Tenant 0 spends its bucket; tenant 1 is untouched.
        assert!(p.admit(0, 1.0, 0, 0.0, 1, &mut tokens));
        assert!(p.admit(0, 1.0, 0, 0.0, 1, &mut tokens));
        assert!(!p.admit(0, 1.0, 0, 0.0, 1, &mut tokens));
        assert!(p.admit(1, 1.0, 0, 0.0, 1, &mut tokens));
        // Refill is capped at burst.
        p.refill(&mut tokens);
        assert_eq!(tokens, vec![1.5, 2.0]);
        assert!(p.admit(0, 1.0, 0, 0.0, 1, &mut tokens));
        assert!(!p.admit(0, 1.0, 0, 0.0, 1, &mut tokens), "0.5 tokens buys no task");
    }

    #[test]
    fn load_shed_bounds_projected_mean_load() {
        let p = AdmissionPolicy::LoadShed { max_mean_load: 3.0 };
        // 4 active resources, total weight 11: one more unit keeps the
        // mean at 3.0 (admitted), a 2.0 task would push it over.
        assert!(p.admit(0, 1.0, 11, 11.0, 4, &mut []));
        assert!(!p.admit(0, 2.0, 11, 11.0, 4, &mut []));
        assert!(!p.admit(0, 1.0, 0, 0.0, 0, &mut []), "no capacity, no admission");
    }

    #[test]
    fn validation_rejects_bad_literals() {
        assert!(AdmissionPolicy::StaticCap { max_live: 0 }.validate().is_err());
        assert!(AdmissionPolicy::TokenBucket { rate: 0.0, burst: 4.0 }.validate().is_err());
        assert!(AdmissionPolicy::TokenBucket { rate: 1.0, burst: 0.5 }.validate().is_err());
        assert!(AdmissionPolicy::LoadShed { max_mean_load: f64::INFINITY }.validate().is_err());
        assert!(AdmissionPolicy::None.validate().is_ok());
        assert!(AdmissionPolicy::TokenBucket { rate: 0.5, burst: 8.0 }.validate().is_ok());
    }
}
