//! # tlb-sim
//!
//! An online, event-driven simulation engine over the threshold
//! load-balancing protocols of *Threshold Load Balancing with Weighted
//! Tasks* (Berenbrink, Friedetzky, Mallmann-Trenn, Meshkinfamfard,
//! Wastell — IPPS 2015 / JPDC 2018).
//!
//! The paper analyses one-shot balancing: a fixed task set on a fixed
//! graph, rebalanced until quiescent. This crate turns that into a
//! long-running open system, the regime of branching/Moran-type
//! interacting-particle models (Cox–Horton–Villemonais): tasks **arrive**
//! via pluggable processes ([`ArrivalProcess`]: Poisson, batched, bursty;
//! adversarial placement via [`ArrivalPlacement`]), tasks **depart**,
//! resources **join and leave** ([`ChurnProcess`] over a
//! `tlb_graphs::DynamicGraph` overlay), and the protocols run as
//! *incremental* rebalancing passes between events through the resumable
//! steppers of `tlb-core`. Tenant classes carry their own
//! [`ThresholdPolicy`](tlb_core::threshold::ThresholdPolicy) SLOs
//! ([`TenantSpec`]), and every epoch emits a fixed-shape
//! [`EpochRecord`]; a run serializes to JSON as a [`SimReport`].
//!
//! ## Architecture: state, scheduler, shards
//!
//! The engine is split into a *state* half ([`SimState`] in [`state`]:
//! the churn overlay, walk snapshot, stacks, and task tables, plus the
//! event primitives that mutate them) and a *scheduler* half
//! ([`OnlineSim`] in [`engine`]: the epoch loop deciding when churn,
//! departures, arrivals, and the rebalancing pass run). The
//! resource-controlled rebalancing pass runs through the **sharded
//! engine** ([`ShardedEngine`] in [`shard`]): the stacks split into
//! contiguous node-range fragments (`tlb_core::fragment`), each stepped
//! as one task on the persistent rayon pool, with cross-shard walk
//! handoffs batched at round boundaries.
//!
//! Runs are bit-reproducible across thread counts **and shard counts**:
//! each epoch's churn/departure/arrival draws come from its own
//! [`epoch_seed`]-derived sequential RNG, and the sharded pass draws
//! counter-based walk words that are a pure function of
//! `(seed, epoch, round, node, slot)` — see [`shard`] for the law.
//!
//! ## Service mode: checkpoint/restore and streaming metrics
//!
//! A long-running deployment cannot buffer its whole epoch series or
//! restart from epoch zero after a rollout. Service mode is three
//! orthogonal pieces:
//!
//! * **Checkpoint/restore** ([`SimSnapshot`] in [`snapshot`]):
//!   [`OnlineSim::checkpoint`] serializes the full engine state at an
//!   epoch boundary — config, epoch counter, the churn overlay as a
//!   canonical delta against the pristine base graph, stacks, task
//!   tables with the id-recycling freelist, and the running summary.
//!   [`OnlineSim::restore`] rebuilds an engine that continues
//!   **bit-identically** to the uninterrupted run, across thread *and*
//!   shard counts: all randomness re-derives from `(seed, epoch)` at
//!   epoch boundaries, so the `(seed, epoch)` pair in the snapshot is
//!   the complete RNG stream position.
//! * **Streaming metrics** ([`MetricsSink`] in [`sink`]): with
//!   [`OnlineSim::set_record_buffering`]`(false)` the engine stops
//!   accumulating records; each [`EpochRecord`] streams to the attached
//!   sink ([`NdjsonSink`] for soaks, [`MemorySink`] for tests) and folds
//!   into an O(1) [`RunningSummary`], so memory stays flat over
//!   unbounded runs.
//! * **Live reconfiguration**: [`OnlineSim::reconfigure`] applies a new
//!   phase's config between epochs with validation — swaps that would
//!   corrupt the deterministic stream contract (sharding a sequential
//!   policy, changing the tenant list) are rejected as errors with the
//!   engine untouched.
//!
//! ## Quickstart
//!
//! ```
//! use tlb_graphs::generators::complete;
//! use tlb_sim::{ArrivalProcess, OnlineSim, SimConfig};
//!
//! let cfg = SimConfig {
//!     name: "doc".into(),
//!     epochs: 40,
//!     arrivals: ArrivalProcess::Poisson { rate: 8.0 },
//!     departure_prob: 0.05,
//!     ..Default::default()
//! };
//! let report = OnlineSim::new(complete(8), cfg).run();
//! assert_eq!(report.epochs, 40);
//! assert!(report.balanced_fraction > 0.5);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod arrivals;
pub mod churn;
pub mod domains;
pub mod engine;
pub mod metrics;
pub mod shard;
pub mod sink;
pub mod snapshot;
pub mod state;
pub mod tenants;

pub use admission::AdmissionPolicy;
pub use arrivals::{ArrivalPlacement, ArrivalProcess, ArrivalWeights};
pub use churn::{ChurnEvent, ChurnProcess};
pub use domains::{DomainSpec, DomainSteering, OutageDuration};
pub use engine::{epoch_seed, OnlineSim, RebalancePolicy, SimConfig};
pub use metrics::{EpochRecord, RunningSummary, SimReport};
pub use shard::ShardedEngine;
pub use sink::{MemorySink, MetricsSink, NdjsonSink};
pub use snapshot::{SimSnapshot, SNAPSHOT_VERSION};
pub use state::SimState;
pub use tenants::{TenantSet, TenantSpec};
pub use tlb_baselines::BaselineRule;
