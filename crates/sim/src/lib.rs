//! # tlb-sim
//!
//! An online, event-driven simulation engine over the threshold
//! load-balancing protocols of *Threshold Load Balancing with Weighted
//! Tasks* (Berenbrink, Friedetzky, Mallmann-Trenn, Meshkinfamfard,
//! Wastell — IPPS 2015 / JPDC 2018).
//!
//! The paper analyses one-shot balancing: a fixed task set on a fixed
//! graph, rebalanced until quiescent. This crate turns that into a
//! long-running open system, the regime of branching/Moran-type
//! interacting-particle models (Cox–Horton–Villemonais): tasks **arrive**
//! via pluggable processes ([`ArrivalProcess`]: Poisson, batched, bursty;
//! adversarial placement via [`ArrivalPlacement`]), tasks **depart**,
//! resources **join and leave** ([`ChurnProcess`] over a
//! `tlb_graphs::DynamicGraph` overlay), and the protocols run as
//! *incremental* rebalancing passes between events through the resumable
//! steppers of `tlb-core`. Tenant classes carry their own
//! [`ThresholdPolicy`](tlb_core::threshold::ThresholdPolicy) SLOs
//! ([`TenantSpec`]), and every epoch emits a fixed-shape
//! [`EpochRecord`]; a run serializes to JSON as a [`SimReport`].
//!
//! Runs are bit-reproducible across thread counts: the engine is
//! sequential and each epoch draws from its own [`epoch_seed`]-derived
//! RNG.
//!
//! ## Quickstart
//!
//! ```
//! use tlb_graphs::generators::complete;
//! use tlb_sim::{ArrivalProcess, OnlineSim, SimConfig};
//!
//! let cfg = SimConfig {
//!     name: "doc".into(),
//!     epochs: 40,
//!     arrivals: ArrivalProcess::Poisson { rate: 8.0 },
//!     departure_prob: 0.05,
//!     ..Default::default()
//! };
//! let report = OnlineSim::new(complete(8), cfg).run();
//! assert_eq!(report.epochs, 40);
//! assert!(report.balanced_fraction > 0.5);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrivals;
pub mod churn;
pub mod engine;
pub mod metrics;
pub mod tenants;

pub use arrivals::{ArrivalPlacement, ArrivalProcess, ArrivalWeights};
pub use churn::{ChurnEvent, ChurnProcess};
pub use engine::{epoch_seed, OnlineSim, RebalancePolicy, SimConfig};
pub use metrics::{EpochRecord, SimReport};
pub use tenants::{TenantSet, TenantSpec};
pub use tlb_baselines::BaselineRule;
