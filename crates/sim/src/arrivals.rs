//! Streaming arrival processes.
//!
//! The one-shot protocols start from a fixed task set; the online engine
//! instead draws a number of *new* tasks every epoch from a pluggable
//! [`ArrivalProcess`], gives each a weight from [`ArrivalWeights`], and
//! drops it on a resource chosen by [`ArrivalPlacement`]. All sampling is
//! done with the engine's per-epoch RNG, so a trajectory is a pure
//! function of the base seed.

use rand::Rng;
use rand_distr::{Distribution, Poisson};
use serde::{Deserialize, Serialize};

/// How many tasks arrive in a given epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// No arrivals (a drain-only or rebalance-only scenario).
    Off,
    /// `Poisson(rate)` arrivals per epoch — the classic open-system model.
    Poisson {
        /// Mean arrivals per epoch (`> 0`).
        rate: f64,
    },
    /// A deterministic batch of `size` tasks every `every` epochs
    /// (bulk uploads, cron-style ingestion).
    Batched {
        /// Tasks per batch.
        size: usize,
        /// Epoch period between batches (`>= 1`); the batch lands on
        /// epochs where `epoch % every == 0`.
        every: u64,
    },
    /// Poisson background traffic with periodic flash crowds: rate
    /// `base` normally, `burst` during the first `burst_len` epochs of
    /// every `period`-epoch window.
    Bursty {
        /// Background mean arrivals per epoch.
        base: f64,
        /// Mean arrivals per epoch while the burst is on (`> base`).
        burst: f64,
        /// Window length in epochs (`>= 1`).
        period: u64,
        /// Burst duration at the start of each window (`<= period`).
        burst_len: u64,
    },
}

impl ArrivalProcess {
    /// Check the parameters, so a bad config literal fails at engine
    /// construction instead of at the first in-window sample.
    ///
    /// # Panics
    /// If a Poisson rate is non-positive or non-finite, or a period is
    /// zero.
    pub fn validate(&self) {
        match *self {
            ArrivalProcess::Off => {}
            ArrivalProcess::Poisson { rate } => {
                assert!(
                    rate.is_finite() && rate > 0.0,
                    "arrival rate must be positive and finite, got {rate}"
                );
            }
            ArrivalProcess::Batched { every, .. } => {
                assert!(every >= 1, "batch period must be >= 1");
            }
            ArrivalProcess::Bursty { base, burst, period, .. } => {
                assert!(period >= 1, "burst period must be >= 1");
                for (name, rate) in [("base", base), ("burst", burst)] {
                    assert!(
                        rate.is_finite() && rate >= 0.0,
                        "{name} rate must be non-negative and finite, got {rate}"
                    );
                }
            }
        }
    }

    /// Sample the number of arrivals for `epoch`.
    ///
    /// # Panics
    /// If a Poisson rate is non-positive or a period is zero.
    pub fn sample_count<R: Rng + ?Sized>(&self, epoch: u64, rng: &mut R) -> usize {
        match *self {
            ArrivalProcess::Off => 0,
            ArrivalProcess::Poisson { rate } => {
                let d = Poisson::new(rate).expect("arrival rate must be positive");
                Distribution::<u64>::sample(&d, rng) as usize
            }
            ArrivalProcess::Batched { size, every } => {
                assert!(every >= 1, "batch period must be >= 1");
                if epoch.is_multiple_of(every) {
                    size
                } else {
                    0
                }
            }
            ArrivalProcess::Bursty { base, burst, period, burst_len } => {
                assert!(period >= 1, "burst period must be >= 1");
                let rate = if epoch % period < burst_len { burst } else { base };
                if rate <= 0.0 {
                    return 0;
                }
                let d = Poisson::new(rate).expect("burst rates must be positive");
                Distribution::<u64>::sample(&d, rng) as usize
            }
        }
    }
}

/// Where an arriving task lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrivalPlacement {
    /// Uniformly random active resource (load-oblivious front-end).
    Uniform,
    /// Every arrival hits one fixed resource — the adversarial hot-spot
    /// (the paper's all-on-one start, streamed). Falls back to the
    /// lowest-id active resource if the target is inactive.
    HotSpot(
        /// The targeted resource.
        tlb_graphs::NodeId,
    ),
    /// Every arrival hits the currently most-loaded active resource
    /// (ties to the lowest id) — a worst-case adaptive adversary.
    MostLoaded,
    /// The *online* adaptive adversary: observes the per-resource loads
    /// as they stood at the **end of the previous epoch** (after that
    /// epoch's rebalancing pass — exactly what a monitoring scrape
    /// would show) and spreads this epoch's arrivals round-robin over
    /// the `spread` most-loaded resources still active, ties to the
    /// lowest id. Unlike [`MostLoaded`](Self::MostLoaded) it cannot see
    /// its own within-epoch placements, so it models a real adversary
    /// reacting to published metrics rather than an oracle. Consumes no
    /// RNG.
    Adaptive {
        /// How many top-loaded resources the arrivals are spread over
        /// (`>= 1`; `1` concentrates everything on the single worst).
        spread: usize,
    },
}

impl ArrivalPlacement {
    /// Check the parameters (see [`ArrivalProcess::validate`]).
    ///
    /// # Panics
    /// If an adaptive spread is zero.
    pub fn validate(&self) {
        if let ArrivalPlacement::Adaptive { spread } = *self {
            assert!(spread >= 1, "adaptive spread must be >= 1");
        }
    }
}

/// Weight distribution of arriving tasks (all respect the paper's
/// `w_min = 1` normalization).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalWeights {
    /// Unit weights.
    Unit,
    /// Independent `Uniform[1, hi]`.
    UniformRange {
        /// Upper endpoint (`>= 1`).
        hi: f64,
    },
    /// Truncated Pareto on `[1, cap]` with shape `alpha` — heavy-tailed
    /// object sizes (a few blockbusters, a long tail).
    ParetoTruncated {
        /// Tail exponent (`> 0`); smaller is heavier.
        alpha: f64,
        /// Upper truncation (`>= 1`).
        cap: f64,
    },
}

impl ArrivalWeights {
    /// Check the parameters (see [`ArrivalProcess::validate`]).
    ///
    /// # Panics
    /// If a bound violates the `w_min = 1` normalization or a Pareto
    /// shape is non-positive.
    pub fn validate(&self) {
        match *self {
            ArrivalWeights::Unit => {}
            ArrivalWeights::UniformRange { hi } => assert!(hi >= 1.0, "hi must be >= 1, got {hi}"),
            ArrivalWeights::ParetoTruncated { alpha, cap } => {
                assert!(alpha > 0.0 && cap >= 1.0, "invalid Pareto parameters ({alpha}, {cap})");
            }
        }
    }

    /// Sample one task weight.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            ArrivalWeights::Unit => 1.0,
            ArrivalWeights::UniformRange { hi } => {
                assert!(hi >= 1.0, "hi must be >= 1");
                rng.gen_range(1.0..=hi)
            }
            ArrivalWeights::ParetoTruncated { alpha, cap } => {
                // The exact sampler WeightSpec::ParetoTruncated uses, so
                // streamed and one-shot workloads share one distribution.
                tlb_core::weights::sample_pareto_truncated(alpha, cap, rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn off_never_arrives() {
        let mut r = rng(1);
        for e in 0..50 {
            assert_eq!(ArrivalProcess::Off.sample_count(e, &mut r), 0);
        }
    }

    #[test]
    fn poisson_rate_tracks_mean() {
        let p = ArrivalProcess::Poisson { rate: 12.0 };
        let mut r = rng(2);
        let total: usize = (0..5000).map(|e| p.sample_count(e, &mut r)).sum();
        let mean = total as f64 / 5000.0;
        assert!((mean - 12.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn batched_fires_on_period() {
        let p = ArrivalProcess::Batched { size: 7, every: 3 };
        let mut r = rng(3);
        let counts: Vec<usize> = (0..7).map(|e| p.sample_count(e, &mut r)).collect();
        assert_eq!(counts, vec![7, 0, 0, 7, 0, 0, 7]);
    }

    #[test]
    fn bursty_switches_rates() {
        let p = ArrivalProcess::Bursty { base: 2.0, burst: 200.0, period: 10, burst_len: 2 };
        let mut r = rng(4);
        // Average over many windows: burst epochs should dwarf base epochs.
        let mut burst_total = 0usize;
        let mut base_total = 0usize;
        for e in 0..1000u64 {
            let c = p.sample_count(e, &mut r);
            if e % 10 < 2 {
                burst_total += c;
            } else {
                base_total += c;
            }
        }
        let burst_mean = burst_total as f64 / 200.0;
        let base_mean = base_total as f64 / 800.0;
        assert!(burst_mean > 150.0, "burst mean {burst_mean}");
        assert!(base_mean < 4.0, "base mean {base_mean}");
    }

    #[test]
    fn weights_respect_floor_and_cap() {
        let mut r = rng(5);
        for _ in 0..500 {
            let w = ArrivalWeights::UniformRange { hi: 8.0 }.sample(&mut r);
            assert!((1.0..=8.0).contains(&w));
            let p = ArrivalWeights::ParetoTruncated { alpha: 1.1, cap: 64.0 }.sample(&mut r);
            assert!((1.0..=64.0).contains(&p));
            assert_eq!(ArrivalWeights::Unit.sample(&mut r), 1.0);
        }
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let p = ArrivalProcess::Poisson { rate: 5.0 };
        let a: Vec<usize> = {
            let mut r = rng(9);
            (0..20).map(|e| p.sample_count(e, &mut r)).collect()
        };
        let b: Vec<usize> = {
            let mut r = rng(9);
            (0..20).map(|e| p.sample_count(e, &mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
