//! Per-epoch metrics timeseries and the serialized run report.
//!
//! The one-shot outcomes report end-of-run aggregates; an online run is
//! judged by its *trajectory* — does the system stay under threshold
//! while traffic streams in, how fast does it re-converge after a drain,
//! which tenant's SLO degrades first. [`EpochRecord`] is one fixed-shape
//! sample per epoch; [`SimReport`] carries the series plus run-level
//! summaries and serializes to JSON for the CI perf-trajectory artifacts
//! (`BENCH_online.json`).
//!
//! Long-running service mode cannot afford the full series in memory:
//! [`RunningSummary`] folds each record into O(1) state as it streams
//! past (the series itself goes to a [`crate::sink::MetricsSink`]), and
//! reconstitutes the same run-level aggregates a buffered
//! [`SimReport::from_records`] would have computed.

use serde::{Deserialize, Serialize};

/// One epoch's snapshot, taken after that epoch's rebalancing pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: u64,
    /// Live tasks after arrivals/departures.
    pub live_tasks: usize,
    /// Active resources after churn.
    pub active_resources: usize,
    /// Tasks the arrival process *offered* this epoch (admitted +
    /// rejected).
    pub arrivals: u64,
    /// Offered tasks the admission policy accepted and placed this
    /// epoch (equals `arrivals` under `AdmissionPolicy::None`).
    pub admitted: u64,
    /// Offered tasks the admission policy rejected this epoch (never
    /// placed; they are *not* SLO violations).
    pub rejected: u64,
    /// Tasks that departed this epoch.
    pub departures: u64,
    /// Tasks forcibly relocated off deactivated resources this epoch.
    pub drained: u64,
    /// Protocol rounds the rebalancing pass executed this epoch.
    pub rebalance_rounds: u64,
    /// Task migrations the rebalancing pass performed this epoch.
    pub migrations: u64,
    /// The global threshold in force this epoch (0 when no tasks live).
    pub threshold: f64,
    /// Maximum resource load after rebalancing.
    pub max_load: f64,
    /// Mean load over active resources.
    pub mean_load: f64,
    /// Fraction of active resources above the threshold after
    /// rebalancing.
    pub overload_fraction: f64,
    /// Potential `Φ` against the global threshold after rebalancing.
    pub potential: f64,
    /// Whether every resource ended the epoch at or under the threshold.
    pub balanced: bool,
    /// Per-tenant count of resources violating the tenant's own
    /// threshold (index = tenant, order of the configured tenant list).
    pub tenant_violations: Vec<u64>,
    /// Per-tenant admitted arrivals this epoch (same indexing).
    pub tenant_admitted: Vec<u64>,
    /// Per-tenant rejected arrivals this epoch (same indexing) — the
    /// SLO ledger's "refused" column, disjoint from `tenant_violations`.
    pub tenant_rejected: Vec<u64>,
}

/// A whole run: configuration echo, per-epoch series, and summaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Scenario name (report key; used as the JSON artifact stem).
    pub scenario: String,
    /// Base seed of the run.
    pub seed: u64,
    /// Epochs executed.
    pub epochs: u64,
    /// Tenant names, in the order `tenant_violations` indexes.
    pub tenants: Vec<String>,
    /// The per-epoch series.
    pub records: Vec<EpochRecord>,
    /// Total offered arrivals over the run.
    pub total_arrivals: u64,
    /// Total admitted arrivals over the run.
    pub total_admitted: u64,
    /// Total rejected arrivals over the run.
    pub total_rejected: u64,
    /// Fraction of offered arrivals the admission policy shed
    /// (`total_rejected / total_arrivals`; 0 for an arrival-free run).
    pub shed_fraction: f64,
    /// Total departures over the run.
    pub total_departures: u64,
    /// Total rebalancing migrations over the run.
    pub total_migrations: u64,
    /// Fraction of epochs that ended balanced.
    pub balanced_fraction: f64,
    /// Per-tenant fraction of epochs with at least one SLO violation.
    pub tenant_violation_rates: Vec<f64>,
    /// Per-tenant total admitted arrivals.
    pub tenant_admitted_totals: Vec<u64>,
    /// Per-tenant total rejected arrivals.
    pub tenant_rejected_totals: Vec<u64>,
    /// Maximum load seen in any epoch.
    pub peak_load: f64,
}

impl SimReport {
    /// Assemble a report from a finished series.
    pub fn from_records(
        scenario: impl Into<String>,
        seed: u64,
        tenants: Vec<String>,
        records: Vec<EpochRecord>,
    ) -> Self {
        let epochs = records.len() as u64;
        let total_arrivals: u64 = records.iter().map(|r| r.arrivals).sum();
        let total_admitted: u64 = records.iter().map(|r| r.admitted).sum();
        let total_rejected: u64 = records.iter().map(|r| r.rejected).sum();
        let shed_fraction =
            if total_arrivals == 0 { 0.0 } else { total_rejected as f64 / total_arrivals as f64 };
        let total_departures = records.iter().map(|r| r.departures).sum();
        let total_migrations = records.iter().map(|r| r.migrations).sum();
        let balanced = records.iter().filter(|r| r.balanced).count();
        let balanced_fraction = if epochs == 0 { 1.0 } else { balanced as f64 / epochs as f64 };
        let tenant_violation_rates = (0..tenants.len())
            .map(|c| {
                if epochs == 0 {
                    return 0.0;
                }
                let violated = records.iter().filter(|r| r.tenant_violations[c] > 0).count();
                violated as f64 / epochs as f64
            })
            .collect();
        let per_tenant = |field: fn(&EpochRecord) -> &Vec<u64>| -> Vec<u64> {
            (0..tenants.len())
                .map(|c| records.iter().map(|r| field(r).get(c).copied().unwrap_or(0)).sum())
                .collect()
        };
        let tenant_admitted_totals = per_tenant(|r| &r.tenant_admitted);
        let tenant_rejected_totals = per_tenant(|r| &r.tenant_rejected);
        let peak_load = records.iter().map(|r| r.max_load).fold(0.0, f64::max);
        SimReport {
            scenario: scenario.into(),
            seed,
            epochs,
            tenants,
            records,
            total_arrivals,
            total_admitted,
            total_rejected,
            shed_fraction,
            total_departures,
            total_migrations,
            balanced_fraction,
            tenant_violation_rates,
            tenant_admitted_totals,
            tenant_rejected_totals,
            peak_load,
        }
    }

    /// Serialize to pretty JSON (the CI artifact format).
    ///
    /// # Errors
    /// If the report fails to serialize. In a long soak this surfaces as
    /// a run error rather than a mid-flight panic.
    pub fn to_json(&self) -> anyhow::Result<String> {
        serde_json::to_string_pretty(self).map_err(|e| anyhow::anyhow!("report serializes: {e:?}"))
    }

    /// The last epoch's record, if any.
    pub fn last(&self) -> Option<&EpochRecord> {
        self.records.last()
    }
}

/// O(1) streaming fold of the run-level aggregates.
///
/// The engine feeds every [`EpochRecord`] through
/// [`observe`](Self::observe) whether or not the record itself is
/// buffered, so a run with buffering off (service mode) can still
/// produce a [`SimReport`] — with an empty `records` series — whose
/// summary fields are bit-equal to what
/// [`SimReport::from_records`] computes over the full series. The
/// summary is part of [`crate::SimSnapshot`], so aggregates survive a
/// checkpoint/restore cycle and keep counting from where they left off.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningSummary {
    /// Epochs observed.
    pub epochs: u64,
    /// Total offered arrivals over the run.
    pub total_arrivals: u64,
    /// Total admitted arrivals over the run.
    pub total_admitted: u64,
    /// Total rejected arrivals over the run.
    pub total_rejected: u64,
    /// Total departures over the run.
    pub total_departures: u64,
    /// Total rebalancing migrations over the run.
    pub total_migrations: u64,
    /// Epochs that ended balanced.
    pub balanced_epochs: u64,
    /// Per-tenant count of epochs with at least one SLO violation.
    pub violated_epochs: Vec<u64>,
    /// Per-tenant total admitted arrivals.
    pub tenant_admitted_tasks: Vec<u64>,
    /// Per-tenant total rejected arrivals.
    pub tenant_rejected_tasks: Vec<u64>,
    /// Maximum load seen in any epoch.
    pub peak_load: f64,
}

impl RunningSummary {
    /// Fold one epoch's record into the aggregates.
    pub fn observe(&mut self, r: &EpochRecord) {
        if self.violated_epochs.is_empty() && !r.tenant_violations.is_empty() {
            self.violated_epochs = vec![0; r.tenant_violations.len()];
        }
        if self.tenant_admitted_tasks.is_empty() && !r.tenant_admitted.is_empty() {
            self.tenant_admitted_tasks = vec![0; r.tenant_admitted.len()];
        }
        if self.tenant_rejected_tasks.is_empty() && !r.tenant_rejected.is_empty() {
            self.tenant_rejected_tasks = vec![0; r.tenant_rejected.len()];
        }
        self.epochs += 1;
        self.total_arrivals += r.arrivals;
        self.total_admitted += r.admitted;
        self.total_rejected += r.rejected;
        self.total_departures += r.departures;
        self.total_migrations += r.migrations;
        if r.balanced {
            self.balanced_epochs += 1;
        }
        for (slot, &v) in self.violated_epochs.iter_mut().zip(&r.tenant_violations) {
            if v > 0 {
                *slot += 1;
            }
        }
        for (slot, &a) in self.tenant_admitted_tasks.iter_mut().zip(&r.tenant_admitted) {
            *slot += a;
        }
        for (slot, &x) in self.tenant_rejected_tasks.iter_mut().zip(&r.tenant_rejected) {
            *slot += x;
        }
        self.peak_load = self.peak_load.max(r.max_load);
    }

    /// Reconstitute a [`SimReport`] from the aggregates alone.
    ///
    /// `records` comes back empty (the series went to the sink); every
    /// summary field matches [`SimReport::from_records`] over the same
    /// series bit for bit.
    pub fn to_report(
        &self,
        scenario: impl Into<String>,
        seed: u64,
        tenants: Vec<String>,
    ) -> SimReport {
        let balanced_fraction =
            if self.epochs == 0 { 1.0 } else { self.balanced_epochs as f64 / self.epochs as f64 };
        let tenant_violation_rates = (0..tenants.len())
            .map(|c| {
                if self.epochs == 0 {
                    return 0.0;
                }
                let violated = self.violated_epochs.get(c).copied().unwrap_or(0);
                violated as f64 / self.epochs as f64
            })
            .collect();
        let shed_fraction = if self.total_arrivals == 0 {
            0.0
        } else {
            self.total_rejected as f64 / self.total_arrivals as f64
        };
        let pad = |v: &Vec<u64>| -> Vec<u64> {
            (0..tenants.len()).map(|c| v.get(c).copied().unwrap_or(0)).collect()
        };
        let tenant_admitted_totals = pad(&self.tenant_admitted_tasks);
        let tenant_rejected_totals = pad(&self.tenant_rejected_tasks);
        SimReport {
            scenario: scenario.into(),
            seed,
            epochs: self.epochs,
            tenants,
            records: Vec::new(),
            total_arrivals: self.total_arrivals,
            total_admitted: self.total_admitted,
            total_rejected: self.total_rejected,
            shed_fraction,
            total_departures: self.total_departures,
            total_migrations: self.total_migrations,
            balanced_fraction,
            tenant_violation_rates,
            tenant_admitted_totals,
            tenant_rejected_totals,
            peak_load: self.peak_load,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(epoch: u64, balanced: bool, violations: Vec<u64>) -> EpochRecord {
        let tenants = violations.len();
        EpochRecord {
            epoch,
            live_tasks: 10,
            active_resources: 4,
            arrivals: 2,
            admitted: 1,
            rejected: 1,
            departures: 1,
            drained: 0,
            rebalance_rounds: 3,
            migrations: 5,
            threshold: 4.0,
            max_load: if balanced { 3.5 } else { 6.0 },
            mean_load: 2.5,
            overload_fraction: if balanced { 0.0 } else { 0.25 },
            potential: if balanced { 0.0 } else { 2.0 },
            balanced,
            tenant_violations: violations,
            tenant_admitted: vec![1; tenants],
            tenant_rejected: vec![0; tenants],
        }
    }

    #[test]
    fn summaries_aggregate_the_series() {
        let report = SimReport::from_records(
            "unit",
            7,
            vec!["a".into(), "b".into()],
            vec![
                record(0, false, vec![1, 0]),
                record(1, true, vec![0, 0]),
                record(2, true, vec![2, 1]),
                record(3, true, vec![0, 0]),
            ],
        );
        assert_eq!(report.epochs, 4);
        assert_eq!(report.total_arrivals, 8);
        assert_eq!(report.total_admitted, 4);
        assert_eq!(report.total_rejected, 4);
        assert_eq!(report.shed_fraction, 0.5);
        assert_eq!(report.total_departures, 4);
        assert_eq!(report.total_migrations, 20);
        assert_eq!(report.balanced_fraction, 0.75);
        assert_eq!(report.tenant_violation_rates, vec![0.5, 0.25]);
        assert_eq!(report.tenant_admitted_totals, vec![4, 4]);
        assert_eq!(report.tenant_rejected_totals, vec![0, 0]);
        assert_eq!(report.peak_load, 6.0);
        assert_eq!(report.last().unwrap().epoch, 3);
    }

    #[test]
    fn json_roundtrips() {
        let report = SimReport::from_records(
            "roundtrip",
            1,
            vec!["only".into()],
            vec![record(0, true, vec![0])],
        );
        let back: SimReport = serde_json::from_str(&report.to_json().unwrap()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn running_summary_matches_from_records_bit_for_bit() {
        let records = vec![
            record(0, false, vec![1, 0]),
            record(1, true, vec![0, 0]),
            record(2, true, vec![2, 1]),
            record(3, true, vec![0, 0]),
        ];
        let mut summary = RunningSummary::default();
        for r in &records {
            summary.observe(r);
        }
        let tenants = vec!["a".to_string(), "b".to_string()];
        let buffered = SimReport::from_records("unit", 7, tenants.clone(), records);
        let streamed = summary.to_report("unit", 7, tenants);
        assert_eq!(streamed.epochs, buffered.epochs);
        assert_eq!(streamed.total_arrivals, buffered.total_arrivals);
        assert_eq!(streamed.total_admitted, buffered.total_admitted);
        assert_eq!(streamed.total_rejected, buffered.total_rejected);
        assert_eq!(streamed.shed_fraction.to_bits(), buffered.shed_fraction.to_bits());
        assert_eq!(streamed.total_departures, buffered.total_departures);
        assert_eq!(streamed.total_migrations, buffered.total_migrations);
        assert_eq!(streamed.balanced_fraction.to_bits(), buffered.balanced_fraction.to_bits());
        assert_eq!(streamed.tenant_violation_rates, buffered.tenant_violation_rates);
        assert_eq!(streamed.tenant_admitted_totals, buffered.tenant_admitted_totals);
        assert_eq!(streamed.tenant_rejected_totals, buffered.tenant_rejected_totals);
        assert_eq!(streamed.peak_load.to_bits(), buffered.peak_load.to_bits());
        assert!(streamed.records.is_empty());
    }

    #[test]
    fn empty_summary_reports_like_an_empty_run() {
        let streamed = RunningSummary::default().to_report("empty", 0, vec![]);
        let buffered = SimReport::from_records("empty", 0, vec![], vec![]);
        assert_eq!(streamed, buffered);
    }

    #[test]
    fn empty_run_is_vacuously_balanced() {
        let report = SimReport::from_records("empty", 0, vec![], vec![]);
        assert_eq!(report.balanced_fraction, 1.0);
        assert!(report.last().is_none());
    }
}
