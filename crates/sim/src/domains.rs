//! Failure domains: correlated rack/zone outages over node-id ranges.
//!
//! Independent per-node churn ([`crate::ChurnProcess::random_down`])
//! models machine flap; real fleets also lose whole *racks* — a switch
//! dies and every node behind it goes with it, for a duration that is
//! heavy-tailed in practice (most outages are a quick reboot, a few are
//! multi-hour hardware swaps). A [`DomainSpec`] names one such blast
//! radius as a contiguous id range over the `DynamicGraph`; the engine
//! takes a whole domain down at once, samples how long it stays down
//! from a truncated power law ([`OutageDuration`]), and schedules the
//! recovery — deterministic given `(seed, epoch)`, like every other
//! draw. [`DomainSteering`] picks *which* healthy domain fails: blind
//! ([`DomainSteering::Oblivious`]) or the adversarial counterpart that
//! always shoots the most-loaded domain
//! ([`DomainSteering::Adaptive`]).

use rand::Rng;
use serde::{Deserialize, Serialize};
use tlb_graphs::NodeId;

/// One failure domain: a named contiguous node-id range `[from, to)`
/// that fails and recovers as a unit (a rack behind one switch, a zone
/// behind one feed).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainSpec {
    /// Display name (report/obs key).
    pub name: String,
    /// First node id in the domain (inclusive).
    pub from: NodeId,
    /// One past the last node id in the domain.
    pub to: NodeId,
}

impl DomainSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, from: NodeId, to: NodeId) -> Self {
        DomainSpec { name: name.into(), from, to }
    }

    /// Whether `v` falls inside this domain.
    pub fn contains(&self, v: NodeId) -> bool {
        (self.from..self.to).contains(&v)
    }

    /// Nodes in the domain.
    pub fn len(&self) -> usize {
        (self.to - self.from) as usize
    }

    /// Whether the range is empty (rejected by validation).
    pub fn is_empty(&self) -> bool {
        self.to <= self.from
    }
}

/// How the stochastic domain-outage process picks its victim among the
/// currently healthy domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DomainSteering {
    /// Uniformly random healthy domain — correlated but blind failures.
    #[default]
    Oblivious,
    /// The adversary: always the healthy domain carrying the most load
    /// at the moment of the outage draw (ties to the lowest domain
    /// index). Maximizes the drained mass the survivors must absorb.
    /// Consumes no extra RNG — the choice is a pure function of the
    /// current stacks.
    Adaptive,
}

/// Truncated power-law (Pareto) outage duration in epochs.
///
/// `sample` draws `min_epochs · (1 − u)^(−1/alpha)` for uniform `u`,
/// capped at `max_epochs` — the classic heavy-tailed repair-time model:
/// mass near `min_epochs`, occasional outages pinned to the cap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutageDuration {
    /// Tail exponent (`> 0`); smaller is heavier.
    pub alpha: f64,
    /// Shortest outage, in epochs (`>= 1` so an outage always spans at
    /// least the epoch it starts in).
    pub min_epochs: u64,
    /// Truncation cap, in epochs (`>= min_epochs`).
    pub max_epochs: u64,
}

impl Default for OutageDuration {
    fn default() -> Self {
        OutageDuration { alpha: 1.5, min_epochs: 2, max_epochs: 64 }
    }
}

impl OutageDuration {
    /// Check the parameters.
    ///
    /// # Errors
    /// If the shape is non-positive/non-finite or the bounds are
    /// inverted or zero.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.alpha.is_finite() && self.alpha > 0.0) {
            return Err(format!("outage alpha must be positive and finite, got {}", self.alpha));
        }
        if self.min_epochs < 1 {
            return Err("outage min_epochs must be >= 1".to_string());
        }
        if self.max_epochs < self.min_epochs {
            return Err(format!(
                "outage max_epochs {} below min_epochs {}",
                self.max_epochs, self.min_epochs
            ));
        }
        Ok(())
    }

    /// Sample one outage duration in epochs (one uniform draw).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let d = self.min_epochs as f64 * (1.0 - u).powf(-1.0 / self.alpha);
        (d.floor() as u64).clamp(self.min_epochs, self.max_epochs)
    }
}

/// Static (node-count-independent) checks over a domain list: non-empty
/// ranges, no overlaps. Domain indices elsewhere in the config point
/// into this list, so the engine validates it before anything runs.
///
/// # Errors
/// Describing the first offending domain (or pair).
pub fn validate_domain_list(domains: &[DomainSpec]) -> Result<(), String> {
    for d in domains {
        if d.is_empty() {
            return Err(format!("domain {:?} has an empty range [{}, {})", d.name, d.from, d.to));
        }
    }
    for (i, a) in domains.iter().enumerate() {
        for b in &domains[i + 1..] {
            if a.from < b.to && b.from < a.to {
                return Err(format!(
                    "domains {:?} [{}, {}) and {:?} [{}, {}) overlap",
                    a.name, a.from, a.to, b.name, b.from, b.to
                ));
            }
        }
    }
    Ok(())
}

/// Node-count-dependent check: every domain fits inside the graph.
///
/// # Errors
/// Naming the out-of-range domain.
pub fn validate_domains_against_graph(domains: &[DomainSpec], n: usize) -> Result<(), String> {
    for d in domains {
        if d.to as usize > n {
            return Err(format!(
                "domain {:?} [{}, {}) exceeds the {n}-node graph",
                d.name, d.from, d.to
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn contains_respects_half_open_range() {
        let d = DomainSpec::new("rack0", 4, 8);
        assert!(!d.contains(3));
        assert!(d.contains(4));
        assert!(d.contains(7));
        assert!(!d.contains(8));
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn durations_stay_in_bounds_and_are_heavy_tailed() {
        let o = OutageDuration { alpha: 1.2, min_epochs: 2, max_epochs: 50 };
        o.validate().unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        let samples: Vec<u64> = (0..4000).map(|_| o.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&d| (2..=50).contains(&d)));
        // Power law: the mode sits at the minimum, but the tail reaches
        // the cap — both ends must appear in a few thousand draws.
        let at_min = samples.iter().filter(|&&d| d == 2).count();
        let deep_tail = samples.iter().filter(|&&d| d >= 20).count();
        assert!(at_min > samples.len() / 3, "min-duration mass {at_min}");
        assert!(deep_tail > 0, "no deep-tail outages in {} draws", samples.len());
    }

    #[test]
    fn duration_validation_rejects_bad_parameters() {
        assert!(OutageDuration { alpha: 0.0, ..Default::default() }.validate().is_err());
        assert!(OutageDuration { alpha: f64::NAN, ..Default::default() }.validate().is_err());
        assert!(OutageDuration { min_epochs: 0, ..Default::default() }.validate().is_err());
        assert!(OutageDuration { min_epochs: 9, max_epochs: 3, alpha: 1.0 }.validate().is_err());
        assert!(OutageDuration::default().validate().is_ok());
    }

    #[test]
    fn domain_list_validation_catches_overlap_and_empties() {
        let ok = vec![DomainSpec::new("a", 0, 4), DomainSpec::new("b", 4, 8)];
        assert!(validate_domain_list(&ok).is_ok());
        let empty = vec![DomainSpec::new("z", 5, 5)];
        assert!(validate_domain_list(&empty).is_err());
        let overlap = vec![DomainSpec::new("a", 0, 5), DomainSpec::new("b", 4, 8)];
        assert!(validate_domain_list(&overlap).is_err());
        assert!(validate_domains_against_graph(&ok, 8).is_ok());
        assert!(validate_domains_against_graph(&ok, 7).is_err());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let o = OutageDuration::default();
        let draw = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..32).map(|_| o.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(3), draw(3));
    }
}
