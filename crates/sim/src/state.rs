//! The engine's *state* half: everything an online run owns, with the
//! event-application primitives that mutate it — no scheduling.
//!
//! [`SimState`] bundles the churn overlay, its CSR walk snapshot, the
//! per-resource stacks, and the task tables (weights, tenant indices,
//! recycled id slots). The *scheduler* half — the epoch loop in
//! [`crate::engine`] that decides **when** churn, departures, arrivals,
//! and the rebalancing pass run, and which engine runs the pass — calls
//! into these primitives. The split is what makes sharding possible: the
//! scheduler can hand the stacks to the parallel
//! [`crate::shard::ShardedEngine`] (or a sequential `tlb-core` stepper)
//! without either engine knowing how the state is stored between epochs.

use rand::Rng;
use tlb_core::stack::ResourceStack;
use tlb_core::task::TaskId;
use tlb_graphs::{DynamicGraph, Graph, NodeId};

use crate::arrivals::ArrivalPlacement;
use crate::churn::ChurnEvent;
use crate::domains::DomainSpec;

/// All state an online simulation owns between epochs (see the module
/// docs for the state/scheduler split).
#[derive(Debug, Clone)]
pub struct SimState {
    /// The churn overlay.
    pub(crate) dg: DynamicGraph,
    /// CSR snapshot of the effective graph the walk kernels use;
    /// refreshed whenever churn changes the topology.
    pub(crate) walk_graph: Graph,
    /// Per-resource stacks (index = resource id).
    pub(crate) stacks: Vec<ResourceStack>,
    /// Weight slot per task id; slots of departed tasks are recycled via
    /// `free_ids`, so memory tracks the live population, not the arrival
    /// total.
    pub(crate) weights: Vec<f64>,
    /// Tenant index per task id (parallel to `weights`).
    pub(crate) tenant_of: Vec<u16>,
    pub(crate) free_ids: Vec<TaskId>,
    pub(crate) live: usize,
    /// Reused per-epoch buffer for departure draws.
    pub(crate) departed: Vec<TaskId>,
    /// Per failure domain (index = position in the config's domain
    /// list): the epoch at whose start the domain recovers, or 0 when
    /// the domain is healthy. Non-RNG persistent state — it travels in
    /// the snapshot so a restored run replays the same recoveries.
    pub(crate) domain_down_until: Vec<u64>,
    /// Per-tenant admission token balances (token-bucket policy only;
    /// empty otherwise). Snapshot state, like `domain_down_until`.
    pub(crate) admission_tokens: Vec<f64>,
}

impl SimState {
    /// Empty state over `base`: all resources active, no tasks.
    pub(crate) fn new(base: Graph) -> Self {
        let n = base.num_nodes();
        let dg = DynamicGraph::new(base);
        let walk_graph = dg.snapshot();
        SimState {
            dg,
            walk_graph,
            stacks: vec![ResourceStack::new(); n],
            weights: Vec::new(),
            tenant_of: Vec::new(),
            free_ids: Vec::new(),
            live: 0,
            departed: Vec::new(),
            domain_down_until: Vec::new(),
            admission_tokens: Vec::new(),
        }
    }

    /// Re-snapshot the walk graph after churn, compacting the overlay
    /// first once enough edge deltas accumulated.
    pub(crate) fn refresh_walk_graph(&mut self, compact_after_ops: usize) {
        if self.dg.delta_ops() >= compact_after_ops {
            self.dg.compact();
        }
        self.walk_graph = self.dg.snapshot();
    }

    /// Apply one churn event. Deactivating a resource drains its tasks to
    /// uniformly random surviving resources (the orchestrator's forced
    /// migration — these do not count as protocol migrations). Returns
    /// the number of drained tasks. Deactivation of the last active
    /// resource is skipped: the system never loses all capacity.
    pub(crate) fn apply_event<R: Rng + ?Sized>(
        &mut self,
        ev: ChurnEvent,
        rng: &mut R,
        topology_changed: &mut bool,
    ) -> u64 {
        match ev {
            ChurnEvent::Deactivate(v) => self.deactivate_one(v, rng, topology_changed),
            ChurnEvent::Activate(v) => {
                if self.dg.activate(v) {
                    *topology_changed = true;
                }
                0
            }
            ChurnEvent::DeactivateRange { from, to } => {
                // Take the whole rack down before re-placing anything, so
                // no task is drained onto a sibling that leaves in the
                // same event (and then drained again).
                let mut orphans: Vec<TaskId> = Vec::new();
                for v in from..to {
                    if let Some(stack) = self.deactivate_collect(v, topology_changed) {
                        orphans.extend_from_slice(stack.tasks());
                    }
                }
                self.place_orphans(&orphans, rng)
            }
            ChurnEvent::ActivateRange { from, to } => {
                for v in from..to {
                    if self.dg.activate(v) {
                        *topology_changed = true;
                    }
                }
                0
            }
            ChurnEvent::AddEdge(u, v) => {
                if self.dg.add_edge(u, v).expect("scripted edge must be valid") {
                    *topology_changed = true;
                }
                0
            }
            ChurnEvent::RemoveEdge(u, v) => {
                if self.dg.remove_edge(u, v).expect("scripted edge must be valid") {
                    *topology_changed = true;
                }
                0
            }
            ChurnEvent::DomainOutage { .. } => {
                // The scheduler resolves this against the config's domain
                // list (it owns the recovery deadlines) and applies the
                // range deactivation via `domain_outage` below.
                unreachable!("DomainOutage is resolved by the scheduler")
            }
        }
    }

    /// Take failure domain `d` down until epoch `until`: record the
    /// recovery deadline (extending any outage already in force) and
    /// drain the whole range. Returns the number of drained tasks.
    pub(crate) fn domain_outage<R: Rng + ?Sized>(
        &mut self,
        domains: &[DomainSpec],
        d: usize,
        until: u64,
        rng: &mut R,
        topology_changed: &mut bool,
    ) -> u64 {
        self.domain_down_until[d] = self.domain_down_until[d].max(until);
        let DomainSpec { from, to, .. } = domains[d];
        self.apply_event(ChurnEvent::DeactivateRange { from, to }, rng, topology_changed)
    }

    /// Recover every domain whose outage deadline has arrived:
    /// reactivate the whole range (no RNG) and clear the deadline.
    /// Returns the number of domains recovered.
    pub(crate) fn recover_due_domains(
        &mut self,
        domains: &[DomainSpec],
        epoch: u64,
        topology_changed: &mut bool,
    ) -> u64 {
        let mut recovered = 0;
        for (deadline, spec) in self.domain_down_until.iter_mut().zip(domains) {
            if *deadline != 0 && *deadline <= epoch {
                *deadline = 0;
                recovered += 1;
                for v in spec.from..spec.to {
                    if self.dg.activate(v) {
                        *topology_changed = true;
                    }
                }
            }
        }
        recovered
    }

    /// Whether `v` belongs to a domain currently down (deadline still in
    /// the future of `epoch`).
    pub(crate) fn in_down_domain(&self, domains: &[DomainSpec], v: NodeId, epoch: u64) -> bool {
        self.domain_down_until
            .iter()
            .zip(domains)
            .any(|(&until, dom)| until > epoch && dom.contains(v))
    }

    /// Total stacked load inside domain `d` (drained domains report 0).
    pub(crate) fn domain_load(&self, domains: &[DomainSpec], d: usize) -> f64 {
        let DomainSpec { from, to, .. } = domains[d];
        self.stacks[from as usize..to as usize].iter().map(ResourceStack::load).sum()
    }

    /// Every node id ranked by current stack load, heaviest first, ties
    /// to the lowest id — the adversary's view of last epoch's loads
    /// when taken before this epoch's churn runs.
    pub(crate) fn load_ranking(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = (0..self.dg.num_nodes() as NodeId).collect();
        ids.sort_by(|&a, &b| {
            self.stacks[b as usize]
                .load()
                .partial_cmp(&self.stacks[a as usize].load())
                .expect("loads are finite")
                .then(a.cmp(&b))
        });
        ids
    }

    fn deactivate_one<R: Rng + ?Sized>(
        &mut self,
        v: NodeId,
        rng: &mut R,
        topology_changed: &mut bool,
    ) -> u64 {
        match self.deactivate_collect(v, topology_changed) {
            Some(orphan) => {
                let tasks = orphan.tasks().to_vec();
                self.place_orphans(&tasks, rng)
            }
            None => 0,
        }
    }

    /// Deactivate `v` (unless it is the last active resource) and take
    /// its stack without re-placing the tasks yet.
    fn deactivate_collect(
        &mut self,
        v: NodeId,
        topology_changed: &mut bool,
    ) -> Option<ResourceStack> {
        if !self.dg.is_active(v) || self.dg.num_active() <= 1 {
            return None;
        }
        self.dg.deactivate(v);
        *topology_changed = true;
        Some(std::mem::take(&mut self.stacks[v as usize]))
    }

    /// Re-place drained tasks on uniformly random surviving resources;
    /// returns how many were placed.
    fn place_orphans<R: Rng + ?Sized>(&mut self, orphans: &[TaskId], rng: &mut R) -> u64 {
        if orphans.is_empty() {
            return 0;
        }
        let survivors = self.active_ids();
        for &t in orphans {
            let dest = survivors[rng.gen_range(0..survivors.len())];
            self.stacks[dest as usize].push(t, self.weights[t as usize]);
        }
        orphans.len() as u64
    }

    /// Every live task flips an independent departure coin; freed id
    /// slots are recycled. Returns the departure count.
    pub(crate) fn depart_bernoulli<R: Rng + ?Sized>(&mut self, p: f64, rng: &mut R) -> u64 {
        if p <= 0.0 || self.live == 0 {
            return 0;
        }
        self.departed.clear();
        for stack in self.stacks.iter_mut() {
            stack.drain_bernoulli_into(p, &self.weights, rng, &mut self.departed);
        }
        let departures = self.departed.len() as u64;
        self.live -= self.departed.len();
        self.free_ids.append(&mut self.departed);
        departures
    }

    /// Admit one arriving task: assign an id slot (recycled if possible),
    /// record its weight and tenant, and stack it on `dest`.
    pub(crate) fn admit(&mut self, weight: f64, tenant: u16, dest: NodeId) {
        let id = match self.free_ids.pop() {
            Some(id) => {
                self.weights[id as usize] = weight;
                self.tenant_of[id as usize] = tenant;
                id
            }
            None => {
                self.weights.push(weight);
                self.tenant_of.push(tenant);
                (self.weights.len() - 1) as TaskId
            }
        };
        self.stacks[dest as usize].push(id, weight);
        self.live += 1;
    }

    pub(crate) fn active_ids(&self) -> Vec<NodeId> {
        (0..self.dg.num_nodes() as NodeId).filter(|&v| self.dg.is_active(v)).collect()
    }

    /// Pick the resource an arrival lands on under `placement`.
    pub(crate) fn arrival_destination<R: Rng + ?Sized>(
        &self,
        placement: ArrivalPlacement,
        active: &[NodeId],
        rng: &mut R,
    ) -> NodeId {
        match placement {
            ArrivalPlacement::Uniform => active[rng.gen_range(0..active.len())],
            ArrivalPlacement::HotSpot(v) => {
                if self.dg.is_active(v) {
                    v
                } else {
                    active[0]
                }
            }
            ArrivalPlacement::MostLoaded => active
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    self.stacks[a as usize]
                        .load()
                        .partial_cmp(&self.stacks[b as usize].load())
                        .expect("loads are finite")
                        // Ties go to the lowest id: prefer `a` on equal.
                        .then(b.cmp(&a))
                })
                .expect("at least one active resource"),
            ArrivalPlacement::Adaptive { .. } => {
                // Needs the pre-churn load ranking, which only the
                // scheduler holds; `OnlineSim` resolves it before
                // calling into the state.
                unreachable!("adaptive placement is resolved by the scheduler")
            }
        }
    }

    /// Total live weight.
    pub(crate) fn total_weight(&self) -> f64 {
        self.stacks.iter().map(ResourceStack::load).sum()
    }

    /// Largest live task weight (0 when empty).
    pub(crate) fn live_w_max(&self) -> f64 {
        self.stacks
            .iter()
            .flat_map(|s| s.tasks().iter())
            .map(|&t| self.weights[t as usize])
            .fold(0.0, f64::max)
    }
}
