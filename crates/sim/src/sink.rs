//! Streaming metrics sinks: where [`EpochRecord`]s go as they are made.
//!
//! A batch run can afford to buffer its whole series and dump it at the
//! end; a long-running service cannot — an unbounded `Vec<EpochRecord>`
//! is exactly the memory leak a multi-day soak dies of. [`MetricsSink`]
//! is the streaming alternative: the engine hands every record to the
//! sink the moment the epoch closes, so memory stays flat no matter how
//! long the run is.
//!
//! Two implementations cover the two regimes:
//!
//! * [`MemorySink`] — a bounded ring of the most recent records, for
//!   tests and interactive inspection;
//! * [`NdjsonSink`] — newline-delimited JSON (one compact [`EpochRecord`]
//!   object per line) through a buffered writer, the soak/CI format: two
//!   segmented runs concatenate into exactly the byte stream of one
//!   uninterrupted run, which is how the CI `soak` job checks
//!   checkpoint/restore end to end.
//!
//! Sink errors (a full disk mid-soak) propagate as `anyhow` errors
//! through [`OnlineSim::try_run`](crate::OnlineSim::try_run) instead of
//! panicking — see the service-mode section of the README.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use anyhow::Context;

use crate::metrics::EpochRecord;

/// A destination for the per-epoch metrics stream.
///
/// Implementations must be cheap per record (the engine calls
/// [`record`](Self::record) once per epoch, inside the hot loop) and
/// must not reorder or drop records on the success path — segmented-run
/// byte-identity depends on the stream being exactly the epoch sequence.
pub trait MetricsSink: std::fmt::Debug + Send {
    /// Consume one epoch's record.
    ///
    /// # Errors
    /// Propagated out of the epoch loop; the engine stops at the failed
    /// epoch boundary.
    fn record(&mut self, record: &EpochRecord) -> anyhow::Result<()>;

    /// Flush any buffered output (called at the end of a run and before
    /// a checkpoint is written, so the metrics stream on disk never lags
    /// the snapshot).
    ///
    /// # Errors
    /// Propagated to the caller.
    fn flush(&mut self) -> anyhow::Result<()> {
        Ok(())
    }
}

/// A bounded in-memory ring of the most recent records.
#[derive(Debug)]
pub struct MemorySink {
    ring: VecDeque<EpochRecord>,
    capacity: usize,
    seen: u64,
}

impl MemorySink {
    /// A sink retaining the last `capacity` records (`capacity >= 1`).
    ///
    /// # Panics
    /// If `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "ring capacity must be >= 1");
        MemorySink { ring: VecDeque::with_capacity(capacity), capacity, seen: 0 }
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &EpochRecord> {
        self.ring.iter()
    }

    /// Total records ever offered (retained or evicted).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The most recent record, if any.
    pub fn last(&self) -> Option<&EpochRecord> {
        self.ring.back()
    }
}

impl MetricsSink for MemorySink {
    fn record(&mut self, record: &EpochRecord) -> anyhow::Result<()> {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(record.clone());
        self.seen += 1;
        Ok(())
    }
}

/// Newline-delimited JSON to a buffered file: one compact
/// [`EpochRecord`] object per line, in epoch order.
#[derive(Debug)]
pub struct NdjsonSink {
    out: BufWriter<File>,
    path: String,
}

impl NdjsonSink {
    /// Create (truncate) `path` and stream records into it.
    ///
    /// # Errors
    /// If the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> anyhow::Result<Self> {
        let path = path.as_ref();
        let file = File::create(path)
            .with_context(|| format!("creating metrics stream {}", path.display()))?;
        NdjsonSink::from_file(file, path.display().to_string())
    }

    /// Wrap an already-open file (appending segment writers reuse this).
    ///
    /// # Errors
    /// Never fails today; `Result` keeps the constructor surface uniform.
    pub fn from_file(file: File, label: String) -> anyhow::Result<Self> {
        Ok(NdjsonSink { out: BufWriter::new(file), path: label })
    }
}

impl MetricsSink for NdjsonSink {
    fn record(&mut self, record: &EpochRecord) -> anyhow::Result<()> {
        let line = serde_json::to_string(record)
            .map_err(|e| anyhow::anyhow!("serializing epoch {}: {e:?}", record.epoch))?;
        writeln!(self.out, "{line}")
            .with_context(|| format!("writing metrics stream {}", self.path))?;
        Ok(())
    }

    fn flush(&mut self) -> anyhow::Result<()> {
        self.out
            .flush()
            .with_context(|| format!("flushing metrics stream {}", self.path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(epoch: u64) -> EpochRecord {
        EpochRecord {
            epoch,
            live_tasks: 1,
            active_resources: 1,
            arrivals: 0,
            admitted: 0,
            rejected: 0,
            departures: 0,
            drained: 0,
            rebalance_rounds: 0,
            migrations: 0,
            threshold: 1.0,
            max_load: 0.5,
            mean_load: 0.5,
            overload_fraction: 0.0,
            potential: 0.0,
            balanced: true,
            tenant_violations: vec![0],
            tenant_admitted: vec![0],
            tenant_rejected: vec![0],
        }
    }

    #[test]
    fn memory_ring_evicts_oldest() {
        let mut sink = MemorySink::new(3);
        for e in 0..5 {
            sink.record(&record(e)).unwrap();
        }
        assert_eq!(sink.seen(), 5);
        let epochs: Vec<u64> = sink.records().map(|r| r.epoch).collect();
        assert_eq!(epochs, vec![2, 3, 4]);
        assert_eq!(sink.last().unwrap().epoch, 4);
    }

    #[test]
    fn ndjson_writes_one_line_per_record_in_order() {
        let path = std::env::temp_dir().join("tlb_sink_test.ndjson");
        let mut sink = NdjsonSink::create(&path).unwrap();
        for e in 0..4 {
            sink.record(&record(e)).unwrap();
        }
        sink.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for (i, line) in lines.iter().enumerate() {
            let back: EpochRecord = serde_json::from_str(line).unwrap();
            assert_eq!(back, record(i as u64), "line {i} must round-trip");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    #[should_panic(expected = "ring capacity")]
    fn zero_capacity_ring_rejected() {
        MemorySink::new(0);
    }
}
