//! Resource churn: scripted and stochastic topology changes.
//!
//! Production fleets lose racks to maintenance and gain capacity on a
//! schedule, while individual machines flap at random. [`ChurnProcess`]
//! models both: a scripted event list (rack drains, scale-ups — the
//! operator's calendar) plus per-epoch random deactivate/reactivate
//! probabilities (failures and recoveries). On top of that sit
//! *failure domains* ([`crate::domains`]): named node ranges that fail
//! as a unit with power-law outage durations and scheduled recovery —
//! correlated churn, steered blindly or adversarially
//! ([`DomainSteering`]). Each epoch the engine applies, in order:
//! due domain recoveries, scripted events in list order, the stochastic
//! domain-outage draw, then the independent down/up draws — all with
//! its per-epoch RNG.

use serde::{Deserialize, Serialize};
use tlb_graphs::NodeId;

use crate::domains::{DomainSpec, DomainSteering, OutageDuration};

/// One scripted topology change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnEvent {
    /// Resource leaves; its tasks are drained to the surviving resources.
    Deactivate(
        /// The leaving resource.
        NodeId,
    ),
    /// Resource rejoins with its old neighbourhood.
    Activate(
        /// The rejoining resource.
        NodeId,
    ),
    /// Drain a contiguous id range `[from, to)` — a rack.
    DeactivateRange {
        /// First id to drain (inclusive).
        from: NodeId,
        /// One past the last id to drain.
        to: NodeId,
    },
    /// Reactivate a contiguous id range `[from, to)`.
    ActivateRange {
        /// First id to restore (inclusive).
        from: NodeId,
        /// One past the last id to restore.
        to: NodeId,
    },
    /// Add a link.
    AddEdge(
        /// One endpoint.
        NodeId,
        /// The other endpoint.
        NodeId,
    ),
    /// Remove a link.
    RemoveEdge(
        /// One endpoint.
        NodeId,
        /// The other endpoint.
        NodeId,
    ),
    /// Take a whole failure domain down for `duration` epochs — the
    /// scripted form of the stochastic domain-outage process. The
    /// domain recovers (whole range reactivated) at the start of epoch
    /// `outage_epoch + duration`. If the domain is already down the
    /// deadline extends to the later of the two.
    DomainOutage {
        /// Index into [`ChurnProcess::domains`].
        domain: u32,
        /// Outage length in epochs (`>= 1`).
        duration: u64,
    },
}

/// The churn configuration of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ChurnProcess {
    /// Scripted `(epoch, event)` pairs; applied in list order on their
    /// epoch (so a drain and its later recovery can share the list).
    pub scripted: Vec<(u64, ChurnEvent)>,
    /// Per-epoch probability of one random failure (deactivate a
    /// uniformly random active resource). The engine never takes the last
    /// active resource down.
    pub random_down: f64,
    /// Per-epoch probability of one random recovery (reactivate a
    /// uniformly random inactive resource). When failure domains are
    /// configured, nodes inside a currently-down domain are excluded —
    /// a dead rack does not resurrect one machine at a time.
    pub random_up: f64,
    /// Failure domains (racks/zones) over the node-id space; empty
    /// means no correlated churn. Scripted [`ChurnEvent::DomainOutage`]
    /// events and the stochastic `domain_outage` draw index into this
    /// list, and the engine carries one recovery deadline per entry.
    pub domains: Vec<DomainSpec>,
    /// Per-epoch probability of one domain outage (a whole healthy
    /// domain goes down; duration drawn from `outage`). Requires a
    /// non-empty `domains` list to have any effect.
    pub domain_outage: f64,
    /// Outage-duration distribution for stochastic domain outages.
    pub outage: OutageDuration,
    /// Victim selection for stochastic domain outages.
    pub steering: DomainSteering,
}

impl ChurnProcess {
    /// No churn at all.
    pub fn none() -> Self {
        ChurnProcess::default()
    }

    /// Scripted events only.
    pub fn scripted(events: Vec<(u64, ChurnEvent)>) -> Self {
        ChurnProcess { scripted: events, ..Default::default() }
    }

    /// The scripted events landing on `epoch`, in list order.
    pub fn events_at(&self, epoch: u64) -> impl Iterator<Item = ChurnEvent> + '_ {
        self.scripted.iter().filter(move |(e, _)| *e == epoch).map(|&(_, ev)| ev)
    }

    /// Whether any churn (scripted anywhere or stochastic, independent
    /// or domain-correlated) is configured.
    pub fn is_active(&self) -> bool {
        !self.scripted.is_empty()
            || self.random_down > 0.0
            || self.random_up > 0.0
            || (!self.domains.is_empty() && self.domain_outage > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_filter_by_epoch_in_order() {
        let c = ChurnProcess::scripted(vec![
            (3, ChurnEvent::Deactivate(1)),
            (5, ChurnEvent::Activate(1)),
            (3, ChurnEvent::AddEdge(0, 2)),
        ]);
        let at3: Vec<ChurnEvent> = c.events_at(3).collect();
        assert_eq!(at3, vec![ChurnEvent::Deactivate(1), ChurnEvent::AddEdge(0, 2)]);
        assert_eq!(c.events_at(4).count(), 0);
        assert_eq!(c.events_at(5).count(), 1);
    }

    #[test]
    fn activity_flags() {
        assert!(!ChurnProcess::none().is_active());
        assert!(ChurnProcess::scripted(vec![(0, ChurnEvent::Deactivate(0))]).is_active());
        assert!(ChurnProcess { random_down: 0.01, ..Default::default() }.is_active());
        // A domain list alone is inert; it needs an outage probability.
        let domains = vec![DomainSpec::new("rack0", 0, 4)];
        assert!(!ChurnProcess { domains: domains.clone(), ..Default::default() }.is_active());
        assert!(ChurnProcess { domains, domain_outage: 0.05, ..Default::default() }.is_active());
    }
}
