//! Property-based tests for the sharded online engine: shard-count
//! invariance of whole churned runs, the fragment resume surface, and
//! the service-mode checkpoint/restore contract.
//!
//! The unit tests in `tlb_sim::shard` pin the walk-word law against the
//! batched kernel and chi-square the transition row; these properties
//! check the *system-level* contract — a full `OnlineSim` run (arrivals,
//! departures, scripted + stochastic churn) produces the identical
//! report at every shard count, `from_parts`/`into_parts` is a lossless
//! resume surface at every partition, and a run segmented by
//! `checkpoint()`/serde/`restore()` at *any* epoch is bit-identical to
//! the uninterrupted run at every shard count (CI additionally crosses
//! `RAYON_NUM_THREADS` 1 vs 4 over this file and byte-diffs segmented
//! NDJSON streams across thread counts in the `soak` job).

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_baselines::BaselineRule;
use tlb_core::mixed_protocol::Departure;
use tlb_core::stack::ResourceStack;
use tlb_graphs::generators::random_regular;
use tlb_graphs::Partition;
use tlb_sim::{
    AdmissionPolicy, ArrivalProcess, ChurnEvent, ChurnProcess, DomainSpec, MemorySink, OnlineSim,
    RebalancePolicy, ShardedEngine, SimConfig, SimSnapshot,
};
use tlb_walks::WalkKind;

/// A churned open-system scenario on whatever graph the test supplies:
/// streaming arrivals, Bernoulli departures, a scripted rack drain with
/// later recovery, plus stochastic resource flapping.
fn churned_cfg(walk: WalkKind, seed: u64, epochs: u64, shards: usize) -> SimConfig {
    SimConfig {
        name: "prop".into(),
        epochs,
        seed,
        arrivals: ArrivalProcess::Poisson { rate: 30.0 },
        departure_prob: 0.04,
        churn: ChurnProcess {
            scripted: vec![
                (1, ChurnEvent::DeactivateRange { from: 3, to: 9 }),
                (3, ChurnEvent::ActivateRange { from: 3, to: 9 }),
            ],
            random_down: 0.3,
            random_up: 0.4,
            ..Default::default()
        },
        rebalance: RebalancePolicy::Resource { walk },
        rounds_per_epoch: 24,
        shards,
        ..Default::default()
    }
}

/// The churned scenario with the robustness layer switched on: the node
/// set split into two failure domains, stochastic domain outages on top
/// of the per-node flap, a scripted whole-domain outage mid-run, and an
/// admission policy in front of the arrivals.
fn robust_cfg(
    n: usize,
    admission: AdmissionPolicy,
    seed: u64,
    epochs: u64,
    shards: usize,
) -> SimConfig {
    let mut cfg = churned_cfg(WalkKind::MaxDegree, seed, epochs, shards);
    cfg.churn.domains = vec![
        DomainSpec::new("left", 0, (n / 2) as u32),
        DomainSpec::new("right", (n / 2) as u32, n as u32),
    ];
    cfg.churn.domain_outage = 0.15;
    // The left half goes down at epoch 2 for 6 epochs, so epochs 2..8
    // run degraded — pause points in that span checkpoint mid-outage.
    cfg.churn
        .scripted
        .push((2, ChurnEvent::DomainOutage { domain: 0, duration: 6 }));
    cfg.admission = admission;
    cfg
}

/// Arbitrary per-node stacks (task ids are globally unique; weights in
/// `1..=4`), returned with the flat weight table indexed by task id.
fn arb_stacks() -> impl Strategy<Value = (Vec<ResourceStack>, Vec<f64>)> {
    proptest::collection::vec(proptest::collection::vec(1u32..5, 0..6), 4..40).prop_map(
        |per_node| {
            let mut stacks = Vec::with_capacity(per_node.len());
            let mut weights = Vec::new();
            for tasks in per_node {
                let mut stack = ResourceStack::new();
                for w in tasks {
                    let id = weights.len() as u32;
                    weights.push(w as f64);
                    stack.push(id, w as f64);
                }
                stacks.push(stack);
            }
            (stacks, weights)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A full churned run of the resource policy reports identically at
    /// every shard count, for both walk kinds, on a random expander.
    #[test]
    fn sharded_report_is_invariant_to_shard_count(
        walk in prop_oneof![Just(WalkKind::MaxDegree), Just(WalkKind::Lazy)],
        n in 16usize..48,
        shards in 2usize..12,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = random_regular(n, 4, &mut rng).unwrap();
        let reference = OnlineSim::new(g.clone(), churned_cfg(walk, seed, 6, 1)).run();
        let sharded = OnlineSim::new(g, churned_cfg(walk, seed, 6, shards)).run();
        prop_assert_eq!(reference, sharded);
    }

    /// `from_parts` → `into_parts` with no rounds run is the identity on
    /// the stacks, at every shard count (including more shards than
    /// nodes, which the partition clamps).
    #[test]
    fn fragment_surface_round_trips(
        workload in arb_stacks(),
        shards in 1usize..64,
    ) {
        let (stacks, _weights) = workload;
        let partition = Partition::contiguous(stacks.len(), shards);
        let engine = ShardedEngine::from_parts(
            stacks.clone(),
            partition,
            1e18, // everything under threshold: constructor marks it balanced
            WalkKind::MaxDegree,
            8,
        );
        prop_assert!(engine.is_balanced());
        prop_assert_eq!(engine.rounds(), 0);
        prop_assert_eq!(engine.into_parts(), stacks);
    }

    /// The tentpole acceptance property: a run paused by `checkpoint()`
    /// at a random epoch, round-tripped through snapshot JSON, and
    /// resumed with `restore()` is bit-identical to the uninterrupted
    /// run — records and summary aggregates — at shard counts 1 and 4.
    /// The scenario keeps churn flapping so the snapshot's graph delta
    /// is usually non-trivial at the pause point.
    #[test]
    fn checkpoint_restore_is_bit_identical_at_any_epoch(
        walk in prop_oneof![Just(WalkKind::MaxDegree), Just(WalkKind::Lazy)],
        n in 16usize..40,
        shards in prop_oneof![Just(1usize), Just(4usize)],
        pause in 1u64..9,
        seed in any::<u64>(),
    ) {
        let epochs = 10u64;
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = random_regular(n, 4, &mut rng).unwrap();
        let cfg = churned_cfg(walk, seed, epochs, shards);

        let full = OnlineSim::new(g.clone(), cfg.clone()).run();

        let mut first = OnlineSim::new(g.clone(), cfg.clone());
        for _ in 0..pause {
            first.run_epoch();
        }
        let snap = first.checkpoint().unwrap();
        let json = snap.to_json().unwrap();
        let parsed = SimSnapshot::from_json(&json).unwrap();
        prop_assert_eq!(&parsed, &snap, "snapshot must survive serde");

        let mut resumed = OnlineSim::restore(parsed, g).unwrap();
        prop_assert_eq!(resumed.epoch(), pause);
        while resumed.epoch() < epochs {
            resumed.run_epoch();
        }
        prop_assert_eq!(resumed.records(), &full.records[pause as usize..]);
        let report = resumed.summary().to_report("prop", seed, full.tenants.clone());
        prop_assert_eq!(report.total_arrivals, full.total_arrivals);
        prop_assert_eq!(report.total_migrations, full.total_migrations);
        prop_assert_eq!(report.peak_load.to_bits(), full.peak_load.to_bits());
        prop_assert_eq!(report.balanced_fraction.to_bits(), full.balanced_fraction.to_bits());
    }

    /// Snapshot serde round-trips for every rebalance policy — all three
    /// protocol variants plus a baseline — and restore resumes each one
    /// bit-identically (sequential policies force shards = 1).
    #[test]
    fn snapshots_round_trip_for_every_policy(
        policy_ix in 0usize..4,
        pause in 1u64..6,
        seed in any::<u64>(),
    ) {
        let policy = [
            RebalancePolicy::Resource { walk: WalkKind::MaxDegree },
            RebalancePolicy::Mixed {
                departure: Departure::Bernoulli,
                alpha: 1.0,
                walk: WalkKind::MaxDegree,
            },
            RebalancePolicy::Mixed {
                departure: Departure::AllActive,
                alpha: 0.8,
                walk: WalkKind::Lazy,
            },
            RebalancePolicy::Baseline { rule: BaselineRule::Greedy { d: 2 } },
        ][policy_ix];
        let epochs = 7u64;
        let cfg = SimConfig {
            rebalance: policy,
            shards: 1,
            ..churned_cfg(WalkKind::MaxDegree, seed, epochs, 1)
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = random_regular(24, 4, &mut rng).unwrap();

        let full = OnlineSim::new(g.clone(), cfg.clone()).run();

        let mut first = OnlineSim::new(g.clone(), cfg.clone());
        for _ in 0..pause {
            first.run_epoch();
        }
        let json = first.checkpoint().unwrap().to_json().unwrap();
        let mut resumed =
            OnlineSim::restore(SimSnapshot::from_json(&json).unwrap(), g).unwrap();
        while resumed.epoch() < epochs {
            resumed.run_epoch();
        }
        prop_assert_eq!(resumed.records(), &full.records[pause as usize..]);
    }

    /// Service mode never grows the record buffer: with buffering off and
    /// a bounded sink attached, the engine's buffered series stays empty
    /// over the whole run while the streaming summary still counts every
    /// epoch.
    #[test]
    fn service_mode_keeps_the_record_buffer_empty(
        epochs in 5u64..40,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = random_regular(16, 4, &mut rng).unwrap();
        let mut sim = OnlineSim::new(g, churned_cfg(WalkKind::MaxDegree, seed, epochs, 1));
        sim.set_record_buffering(false);
        sim.set_sink(Some(Box::new(MemorySink::new(2))));
        let report = sim.try_run().unwrap();
        prop_assert_eq!(sim.records().len(), 0);
        prop_assert!(report.records.is_empty());
        prop_assert_eq!(report.epochs, epochs);
        prop_assert_eq!(sim.summary().epochs, epochs);
    }

    /// The obs determinism contract, part 1: the `counters` subtree of
    /// the observability report is byte-identical across shard counts on
    /// a churned expander (CI crosses the same property over
    /// `RAYON_NUM_THREADS` 1 vs 4 via `scale_sweep --obs-det-out`).
    #[test]
    fn obs_counters_are_byte_identical_across_shard_counts(
        walk in prop_oneof![Just(WalkKind::MaxDegree), Just(WalkKind::Lazy)],
        n in 16usize..40,
        shards in prop_oneof![Just(4usize), 2usize..12],
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = random_regular(n, 4, &mut rng).unwrap();
        let run = |k: usize| {
            let mut sim = OnlineSim::new(g.clone(), churned_cfg(walk, seed, 6, k));
            sim.enable_obs();
            sim.run();
            sim.obs_report().expect("obs was enabled")
        };
        let reference = run(1);
        let sharded = run(shards);
        prop_assert_eq!(sharded.counters_json(), reference.counters_json());
        // Sanity: the subtree is not trivially empty.
        prop_assert!(reference.counters["sim.epochs"] == 6);
    }

    /// The obs determinism contract, part 2: turning obs on changes no
    /// observable output — the `EpochRecord` stream and the snapshot a
    /// `checkpoint()` writes are byte-identical to the obs-off run's.
    #[test]
    fn obs_leaves_records_and_snapshots_byte_identical(
        n in 16usize..40,
        shards in prop_oneof![Just(1usize), Just(4usize)],
        seed in any::<u64>(),
    ) {
        let epochs = 6u64;
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = random_regular(n, 4, &mut rng).unwrap();
        let cfg = churned_cfg(WalkKind::MaxDegree, seed, epochs, shards);

        let run = |obs: bool| {
            let mut sim = OnlineSim::new(g.clone(), cfg.clone());
            if obs {
                sim.enable_obs();
            }
            sim.run();
            let snapshot = sim.checkpoint().unwrap().to_json().unwrap();
            let records: Vec<String> =
                sim.records().iter().map(|r| serde_json::to_string(r).unwrap()).collect();
            (records, snapshot)
        };
        let (plain_records, plain_snapshot) = run(false);
        let (obs_records, obs_snapshot) = run(true);
        prop_assert_eq!(obs_records, plain_records);
        prop_assert_eq!(obs_snapshot, plain_snapshot);
    }

    /// Task conservation through the admission gate: under domain
    /// outages and any admission policy, every epoch's offered arrivals
    /// split exactly into admitted + rejected, the per-tenant ledgers
    /// sum to the global ones, and the run-level totals agree with the
    /// per-epoch series.
    #[test]
    fn admission_conserves_offered_arrivals_under_outages(
        n in 16usize..40,
        admission_ix in 0usize..4,
        seed in any::<u64>(),
    ) {
        let admission = [
            AdmissionPolicy::None,
            AdmissionPolicy::StaticCap { max_live: 40 },
            AdmissionPolicy::TokenBucket { rate: 8.0, burst: 16.0 },
            AdmissionPolicy::LoadShed { max_mean_load: 3.0 },
        ][admission_ix];
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = random_regular(n, 4, &mut rng).unwrap();
        let report = OnlineSim::new(g, robust_cfg(n, admission, seed, 12, 1)).run();
        let (mut arrivals, mut admitted, mut rejected) = (0u64, 0u64, 0u64);
        for r in &report.records {
            prop_assert_eq!(r.arrivals, r.admitted + r.rejected, "epoch {}", r.epoch);
            prop_assert_eq!(r.admitted, r.tenant_admitted.iter().sum::<u64>());
            prop_assert_eq!(r.rejected, r.tenant_rejected.iter().sum::<u64>());
            arrivals += r.arrivals;
            admitted += r.admitted;
            rejected += r.rejected;
        }
        prop_assert_eq!(report.total_arrivals, arrivals);
        prop_assert_eq!(report.total_admitted, admitted);
        prop_assert_eq!(report.total_rejected, rejected);
        if admission == AdmissionPolicy::None {
            prop_assert_eq!(report.total_rejected, 0);
        }
    }

    /// The robustness acceptance property: with failure domains,
    /// stochastic + scripted domain outages, and admission all live, a
    /// run paused at a random epoch *during* the scripted whole-domain
    /// outage and resumed from snapshot JSON is bit-identical to the
    /// uninterrupted run at shard counts 1 and 4.
    #[test]
    fn checkpoint_restore_is_bit_identical_mid_outage(
        n in 16usize..40,
        shards in prop_oneof![Just(1usize), Just(4usize)],
        pause in 3u64..8,
        admission_ix in 0usize..3,
        seed in any::<u64>(),
    ) {
        let admission = [
            AdmissionPolicy::None,
            AdmissionPolicy::TokenBucket { rate: 8.0, burst: 16.0 },
            AdmissionPolicy::LoadShed { max_mean_load: 3.0 },
        ][admission_ix];
        let epochs = 12u64;
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = random_regular(n, 4, &mut rng).unwrap();
        let cfg = robust_cfg(n, admission, seed, epochs, shards);

        let full = OnlineSim::new(g.clone(), cfg.clone()).run();

        let mut first = OnlineSim::new(g.clone(), cfg.clone());
        for _ in 0..pause {
            first.run_epoch();
        }
        let snap = first.checkpoint().unwrap();
        prop_assert!(
            snap.domain_down_until.iter().any(|&u| u > pause),
            "pause at {} must land inside the scripted outage", pause
        );
        let json = snap.to_json().unwrap();
        let parsed = SimSnapshot::from_json(&json).unwrap();
        prop_assert_eq!(&parsed, &snap, "snapshot must survive serde");

        let mut resumed = OnlineSim::restore(parsed, g).unwrap();
        while resumed.epoch() < epochs {
            resumed.run_epoch();
        }
        prop_assert_eq!(resumed.records(), &full.records[pause as usize..]);
        let report = resumed.summary().to_report("prop", seed, full.tenants.clone());
        prop_assert_eq!(report.total_admitted, full.total_admitted);
        prop_assert_eq!(report.total_rejected, full.total_rejected);
        prop_assert_eq!(report.shed_fraction.to_bits(), full.shed_fraction.to_bits());
    }

    /// Running a sharded pass conserves the task multiset and total
    /// weight regardless of the partition.
    #[test]
    fn sharded_pass_conserves_tasks(
        workload in arb_stacks(),
        shards in 1usize..16,
        seed in any::<u64>(),
    ) {
        let (stacks, weights) = workload;
        let n = stacks.len();
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = random_regular(n, 4, &mut rng).unwrap();
        let total: f64 = weights.iter().sum();
        let threshold = (total / n as f64) * 1.2 + 1e-9;
        let partition = Partition::contiguous(n, shards);
        let mut engine =
            ShardedEngine::from_parts(stacks, partition, threshold, WalkKind::Lazy, 16);
        engine.run(&g, &weights, seed);
        let after = engine.into_parts();
        prop_assert_eq!(after.len(), n);
        let after_total: f64 = after.iter().map(|s| s.load()).sum();
        prop_assert!((after_total - total).abs() < 1e-6,
            "weight not conserved: {} vs {}", after_total, total);
    }
}
