//! Sequential threshold-retry allocation (Berenbrink et al. \[5\] regime).
//!
//! Balls arrive one at a time; each repeatedly samples uniform bins until
//! one accepts it under the current threshold. If a ball exhausts its
//! per-ball retry budget the threshold is relaxed by one `w_max` step (the
//! escalation that gives the cited scheme its `⌈m/n⌉ + 1` guarantee with
//! `O(m)` expected choices for unit balls).

use rand::Rng;
use serde::{Deserialize, Serialize};
use tlb_core::task::TaskSet;

use crate::Allocation;

/// Outcome of a sequential threshold-retry run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequentialOutcome {
    /// Per-bin loads.
    pub loads: Vec<f64>,
    /// Total random choices consumed.
    pub choices: u64,
    /// Number of threshold escalations that occurred.
    pub escalations: u64,
    /// The final (possibly escalated) threshold.
    pub final_threshold: f64,
}

impl SequentialOutcome {
    /// View as a generic [`Allocation`].
    pub fn allocation(&self) -> Allocation {
        Allocation { loads: self.loads.clone(), choices: self.choices }
    }
}

/// Allocate sequentially with initial threshold
/// `W/n + slack·w_max`, retrying each ball up to `retries_per_ball` times
/// before escalating the threshold by `w_max`.
///
/// # Panics
/// If `n == 0` or `retries_per_ball == 0`.
pub fn allocate<R: Rng + ?Sized>(
    tasks: &TaskSet,
    n: usize,
    slack: f64,
    retries_per_ball: usize,
    rng: &mut R,
) -> SequentialOutcome {
    assert!(n > 0, "need at least one bin");
    assert!(retries_per_ball > 0, "need at least one retry per ball");
    let w_max = tasks.w_max();
    let mut threshold = tasks.total_weight() / n as f64 + slack * w_max;
    let mut loads = vec![0.0f64; n];
    let mut choices = 0u64;
    let mut escalations = 0u64;

    for i in 0..tasks.len() {
        let w = tasks.weight(i as u32);
        loop {
            let mut placed = false;
            for _ in 0..retries_per_ball {
                let bin = rng.gen_range(0..n);
                choices += 1;
                if loads[bin] + w <= threshold {
                    loads[bin] += w;
                    placed = true;
                    break;
                }
            }
            if placed {
                break;
            }
            // Escalate: feasibility is guaranteed once threshold exceeds
            // max load + w_max, so this loop terminates.
            threshold += w_max;
            escalations += 1;
        }
    }
    SequentialOutcome { loads, choices, escalations, final_threshold: threshold }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn conserves_weight_and_respects_final_threshold() {
        let tasks = TaskSet::uniform(1000);
        let mut rng = SmallRng::seed_from_u64(1);
        let out = allocate(&tasks, 100, 1.0, 20, &mut rng);
        assert!((out.loads.iter().sum::<f64>() - 1000.0).abs() < 1e-9);
        assert!(out.allocation().max_load() <= out.final_threshold + 1e-9);
    }

    #[test]
    fn near_optimal_max_load_with_unit_balls() {
        // The [5] guarantee: max load close to ceil(m/n) + 1 with O(m)
        // choices. slack = 1 means threshold m/n + 1.
        let m = 10_000;
        let n = 1000;
        let tasks = TaskSet::uniform(m);
        let mut rng = SmallRng::seed_from_u64(2);
        let out = allocate(&tasks, n, 1.0, 50, &mut rng);
        assert!(out.allocation().max_load() <= (m / n) as f64 + 2.0);
        // O(m) choices: allow a small constant factor.
        assert!(out.choices < 6 * m as u64, "choices {} should be O(m)", out.choices);
        assert_eq!(out.escalations, 0, "slack 1 should never escalate at these densities");
    }

    #[test]
    fn starved_threshold_escalates_but_terminates() {
        // slack = 0 with integer average: the last balls cannot fit below
        // W/n, forcing escalations — but the run must still finish.
        let tasks = TaskSet::uniform(500);
        let mut rng = SmallRng::seed_from_u64(3);
        let out = allocate(&tasks, 50, 0.0, 3, &mut rng);
        assert!((out.loads.iter().sum::<f64>() - 500.0).abs() < 1e-9);
        assert!(out.escalations >= 1);
    }

    #[test]
    fn weighted_balls_gap_stays_bounded() {
        let mut rng = SmallRng::seed_from_u64(4);
        let tasks =
            tlb_core::weights::WeightSpec::Exponential { m: 5000, mean: 3.0 }.generate(&mut rng);
        let out = allocate(&tasks, 250, 1.0, 50, &mut rng);
        // Gap at most slack*w_max + escalations*w_max.
        let bound = (1.0 + out.escalations as f64) * tasks.w_max();
        assert!(out.allocation().gap() <= bound + 1e-9);
    }

    #[test]
    fn choices_grow_as_threshold_tightens() {
        let tasks = TaskSet::uniform(5000);
        let mean_choices = |slack: f64, seed: u64| -> f64 {
            (0..5)
                .map(|t| {
                    let mut rng = SmallRng::seed_from_u64(seed + t);
                    allocate(&tasks, 500, slack, 100, &mut rng).choices as f64
                })
                .sum::<f64>()
                / 5.0
        };
        assert!(mean_choices(1.0, 10) > mean_choices(3.0, 20));
    }
}
