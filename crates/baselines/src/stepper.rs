//! The related-work allocators as iterative threshold-rebalancing
//! protocols behind [`tlb_core::protocol::Protocol`].
//!
//! The one-shot allocators in this crate ([`crate::greedy`],
//! [`crate::one_plus_beta`], [`crate::sequential_threshold`],
//! [`crate::parallel_threshold`]) place a task stream once and stop — the
//! cited papers' setting. This module adapts each placement *rule* into a
//! round-based rebalancing protocol with the paper protocols' shape, so
//! the baselines run inside the same generic machinery (the experiment
//! harness's protocol sweeps, the online simulation's rebalancing pass,
//! the `protocol_matrix` driver):
//!
//! * **departure** — Algorithm 5.1's rule: every overloaded resource
//!   ejects its cutting-and-above tasks (`I_a ∪ I_c`), consuming no RNG;
//! * **movement** — the baseline's placement rule re-places each ejected
//!   task among the *candidate bins*: the non-isolated nodes of the graph
//!   passed to `step`. Topology is otherwise ignored (these are
//!   global-view allocators); the candidate filter makes the adapters
//!   safe on the online engine's churned snapshots, which isolate
//!   deactivated resources. If no node has an edge, the cohort returns to
//!   its sources unmoved (there is no eligible destination).
//!
//! Under the threshold-respecting rules ([`BaselineRule::
//! SequentialThreshold`], [`BaselineRule::ParallelThreshold`]) a task that
//! finds no accepting bin within its per-round budget also returns to its
//! source and retries next round — the `r`-round retry structure of Adler
//! et al. \[4\], with the round cap playing the "give up" bound.

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};
use tlb_core::placement::Placement;
use tlb_core::protocol::{AnyStepper, Protocol, ProtocolOutcome, ProtocolSpec, RoundEngine};
use tlb_core::stack::ResourceStack;
use tlb_core::task::{TaskId, TaskSet};
use tlb_core::threshold::ThresholdPolicy;
use tlb_graphs::{Graph, NodeId};

/// Which baseline placement rule moves the ejected cohort.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BaselineRule {
    /// `Greedy[d]`: each task inspects `d` uniform candidate bins and
    /// joins the least loaded (ties: first sampled). Ignores the
    /// threshold when placing.
    Greedy {
        /// Choices per task (`d ≥ 1`; 1 = one-choice, 2 = two-choice).
        d: usize,
    },
    /// The `(1+β)`-process: one uniform choice with probability `β`, two
    /// choices (least loaded) otherwise. Ignores the threshold when
    /// placing.
    OnePlusBeta {
        /// Mixing parameter `β ∈ (0, 1]`.
        beta: f64,
    },
    /// Sequential threshold-retry: each task samples up to `retries`
    /// uniform bins and joins the first whose load stays at or below the
    /// threshold; on failure it returns to its source and retries next
    /// round.
    SequentialThreshold {
        /// Uniform samples per task per round (`≥ 1`).
        retries: usize,
    },
    /// Parallel threshold allocation: a synchronous wave — every task
    /// samples one uniform bin, then arrivals are processed in uniformly
    /// shuffled order (the cited model's collision tie-breaking),
    /// accepted while the bin stays at or below the threshold; rejected
    /// tasks return to their sources and retry next round.
    ParallelThreshold,
}

impl BaselineRule {
    /// Short stable name (report/CSV key).
    pub fn label(&self) -> String {
        match *self {
            BaselineRule::Greedy { d } => format!("greedy{d}"),
            BaselineRule::OnePlusBeta { .. } => "one_plus_beta".into(),
            BaselineRule::SequentialThreshold { .. } => "seq_threshold".into(),
            BaselineRule::ParallelThreshold => "par_threshold".into(),
        }
    }

    fn validate(&self) {
        match *self {
            BaselineRule::Greedy { d } => assert!(d >= 1, "Greedy needs at least one choice"),
            BaselineRule::OnePlusBeta { beta } => {
                assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1], got {beta}")
            }
            BaselineRule::SequentialThreshold { retries } => {
                assert!(retries >= 1, "need at least one retry per task")
            }
            BaselineRule::ParallelThreshold => {}
        }
    }
}

/// Configuration of a baseline rebalancing run (the baseline analog of
/// the core protocols' config structs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineConfig {
    /// Threshold policy defining both balance (termination) and, for the
    /// threshold-respecting rules, acceptance.
    pub threshold: ThresholdPolicy,
    /// Placement rule.
    pub rule: BaselineRule,
    /// Safety cap on rounds; a run that hits it reports `completed = false`.
    pub max_rounds: u64,
    /// Record `Φ(t)` after every round.
    pub track_potential: bool,
    /// Record a full `RoundTrace` in the outcome.
    pub record_trace: bool,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            threshold: ThresholdPolicy::AboveAverage { epsilon: 0.2 },
            rule: BaselineRule::Greedy { d: 2 },
            max_rounds: 10_000_000,
            track_potential: false,
            record_trace: false,
        }
    }
}

impl BaselineConfig {
    /// Construct a boxed stepper over `(g, tasks, placement)` — the
    /// baseline counterpart of
    /// [`tlb_core::protocol::ProtocolKind::new_stepper`].
    pub fn new_stepper(
        &self,
        g: &Graph,
        tasks: &TaskSet,
        placement: Placement,
        rng: &mut dyn RngCore,
    ) -> AnyStepper {
        Box::new(BaselineStepper::new(g, tasks, placement, self, rng))
    }

    /// Resume a boxed stepper from an existing stack configuration
    /// (consumes no RNG) — the baseline counterpart of
    /// [`tlb_core::protocol::ProtocolKind::stepper_from_parts`].
    pub fn stepper_from_parts(
        &self,
        stacks: Vec<ResourceStack>,
        weights: Vec<f64>,
        threshold: f64,
    ) -> AnyStepper {
        Box::new(BaselineStepper::from_parts(stacks, weights, threshold, self.clone()))
    }
}

/// Resumable engine running a [`BaselineRule`] as a rebalancing protocol:
/// one [`step`] call is one round (Algorithm-5.1 ejection, baseline
/// re-placement). Embeds the same shared [`RoundEngine`] as the core
/// steppers, so counters, potential series, and traces behave
/// identically.
///
/// [`step`]: BaselineStepper::step
#[derive(Debug, Clone)]
pub struct BaselineStepper {
    cfg: BaselineConfig,
    eng: RoundEngine,
    // Reused per-round candidate-bin list (non-isolated nodes of the
    // graph passed to `step`).
    candidates: Vec<NodeId>,
}

impl BaselineStepper {
    /// Set up a run: materialize the placement (consuming RNG exactly as
    /// the core steppers do) and take the initial snapshots.
    ///
    /// # Panics
    /// If the graph is empty, the placement is invalid, or the rule's
    /// parameters are out of range.
    pub fn new<R: Rng + ?Sized>(
        g: &Graph,
        tasks: &TaskSet,
        placement: Placement,
        cfg: &BaselineConfig,
        rng: &mut R,
    ) -> Self {
        let n = g.num_nodes();
        assert!(n > 0, "need at least one resource");
        let weights = tasks.weights().to_vec();
        let threshold = cfg.threshold.value(tasks.total_weight(), n, tasks.w_max());

        let mut stacks: Vec<ResourceStack> = vec![ResourceStack::new(); n];
        for (i, &loc) in placement.materialize(tasks.len(), n, rng).iter().enumerate() {
            stacks[loc as usize].push(i as TaskId, weights[i]);
        }

        Self::from_parts(stacks, weights, threshold, cfg.clone())
    }

    /// Resume from an existing stack configuration (consumes no RNG) —
    /// the online-simulation entry point.
    ///
    /// # Panics
    /// If the stack vector is empty or the rule's parameters are out of
    /// range.
    pub fn from_parts(
        stacks: Vec<ResourceStack>,
        weights: Vec<f64>,
        threshold: f64,
        cfg: BaselineConfig,
    ) -> Self {
        cfg.rule.validate();
        let eng = RoundEngine::new(
            stacks,
            weights,
            threshold,
            cfg.max_rounds,
            cfg.track_potential,
            cfg.record_trace,
        );
        BaselineStepper { cfg, eng, candidates: Vec::new() }
    }

    /// Whether every load is at most the threshold.
    pub fn is_balanced(&self) -> bool {
        self.eng.is_balanced()
    }

    /// Whether the run is over: balanced, or the round cap was hit.
    pub fn is_done(&self) -> bool {
        self.eng.is_done()
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.eng.rounds()
    }

    /// Migrations performed so far.
    pub fn migrations(&self) -> u64 {
        self.eng.migrations()
    }

    /// The threshold this run balances against.
    pub fn threshold(&self) -> f64 {
        self.eng.threshold()
    }

    /// The per-resource stacks (index = resource id).
    pub fn stacks(&self) -> &[ResourceStack] {
        &self.eng.stacks
    }

    /// Weight per task id (freed slots of dynamic callers included).
    pub fn weights(&self) -> &[f64] {
        &self.eng.weights
    }

    /// Largest stacked task weight (0 when empty). The baseline rules
    /// never read `w_max`, so the checkpoint surface recomputes it over
    /// the live population instead of storing a dead value.
    pub fn w_max(&self) -> f64 {
        tlb_core::protocol::live_w_max(self.stacks(), self.weights())
    }

    /// Execute one round (ejection, baseline re-placement) unless the run
    /// is already done. Returns [`is_done`](Self::is_done) after the
    /// round.
    pub fn step<R: Rng + ?Sized>(&mut self, g: &Graph, rng: &mut R) -> bool {
        if self.is_done() {
            return true;
        }
        self.eng.begin_round();
        let threshold = self.eng.threshold();
        // Candidate bins: the non-isolated nodes of this round's graph
        // (churned snapshots isolate deactivated resources).
        self.candidates.clear();
        self.candidates.extend(g.nodes().filter(|&v| g.degree(v) > 0));
        let cands = &self.candidates;
        let eng = &mut self.eng;
        // Ejection phase (Algorithm-5.1 rule, no RNG): `cohort[i]` leaves
        // from `positions[i]`.
        for r in 0..eng.stacks.len() as NodeId {
            if eng.stacks[r as usize].is_overloaded(threshold) {
                eng.stacks[r as usize].remove_active_into(threshold, &eng.weights, &mut eng.cohort);
                eng.positions.resize(eng.cohort.len(), r);
            }
        }
        if cands.is_empty() {
            // No eligible destination (every node isolated): the cohort
            // returns to its sources unmoved.
            for (&t, &src) in eng.cohort.iter().zip(eng.positions.iter()) {
                eng.stacks[src as usize].push(t, eng.weights[t as usize]);
            }
            return eng.finish_round(0);
        }
        // Movement phase. The parallel rule is a synchronous wave (all
        // bins drawn before any acceptance, arrival order shuffled — the
        // cited model's collision tie-breaking, matching
        // `parallel_threshold::allocate`); the sequential rules place the
        // cohort in ejection order, reading bin loads live.
        if self.cfg.rule == BaselineRule::ParallelThreshold {
            let migrated = place_parallel_wave(eng, cands, rng);
            return eng.finish_round(migrated);
        }
        let mut migrated = 0u64;
        for i in 0..eng.cohort.len() {
            let t = eng.cohort[i];
            let w = eng.weights[t as usize];
            match self.cfg.rule {
                BaselineRule::Greedy { d } => {
                    let mut best = cands[rng.gen_range(0..cands.len())];
                    for _ in 1..d {
                        let c = cands[rng.gen_range(0..cands.len())];
                        if eng.stacks[c as usize].load() < eng.stacks[best as usize].load() {
                            best = c;
                        }
                    }
                    eng.stacks[best as usize].push(t, w);
                    migrated += 1;
                }
                BaselineRule::OnePlusBeta { beta } => {
                    let dest = if rng.gen_bool(beta) {
                        cands[rng.gen_range(0..cands.len())]
                    } else {
                        let a = cands[rng.gen_range(0..cands.len())];
                        let b = cands[rng.gen_range(0..cands.len())];
                        if eng.stacks[a as usize].load() <= eng.stacks[b as usize].load() {
                            a
                        } else {
                            b
                        }
                    };
                    eng.stacks[dest as usize].push(t, w);
                    migrated += 1;
                }
                BaselineRule::SequentialThreshold { retries } => {
                    migrated += place_under_threshold(eng, cands, i, retries, rng);
                }
                BaselineRule::ParallelThreshold => unreachable!("handled as a wave above"),
            }
        }
        eng.finish_round(migrated)
    }

    /// Step until balanced or the round cap.
    pub fn run<R: Rng + ?Sized>(&mut self, g: &Graph, rng: &mut R) {
        while !self.step(g, rng) {}
    }

    /// Finish: consume the engine into the unified outcome.
    pub fn into_outcome(self) -> ProtocolOutcome {
        self.eng.into_outcome()
    }

    /// Hand the stacks and weight vector back to a dynamic caller.
    pub fn into_parts(self) -> (Vec<ResourceStack>, Vec<f64>) {
        self.eng.into_parts()
    }
}

/// One synchronous parallel-threshold wave over the whole cohort: every
/// task draws its uniform bin **first**, then arrivals are processed in
/// uniformly shuffled order (the cited model's collision tie-breaking,
/// exactly as [`crate::parallel_threshold::allocate`] does), accepting
/// while the bin's load stays within the threshold; rejected tasks
/// return to their sources and retry next round. Returns the number of
/// accepted placements.
fn place_parallel_wave<R: Rng + ?Sized>(
    eng: &mut RoundEngine,
    cands: &[NodeId],
    rng: &mut R,
) -> u64 {
    let threshold = eng.threshold();
    // The pending arrays carry (cohort slot, drawn bin) pairs; the slot
    // index (not the task id) is stored so a rejected task can find its
    // source in `positions` after the shuffle. `shuffle_paired` applies
    // one permutation to both parallel arrays with exactly the words the
    // old tuple shuffle drew, so the SoA split moved no stream.
    eng.pending_tasks.clear();
    eng.pending_dests.clear();
    for slot in 0..eng.cohort.len() {
        eng.pending_tasks.push(slot as u32);
        eng.pending_dests.push(cands[rng.gen_range(0..cands.len())]);
    }
    rand::seq::shuffle_paired(&mut eng.pending_tasks, &mut eng.pending_dests, rng);
    let mut migrated = 0u64;
    for (&slot, &dest) in eng.pending_tasks.iter().zip(&eng.pending_dests) {
        let t = eng.cohort[slot as usize];
        let w = eng.weights[t as usize];
        if eng.stacks[dest as usize].load() + w <= threshold {
            eng.stacks[dest as usize].push(t, w);
            migrated += 1;
        } else {
            let src = eng.positions[slot as usize];
            eng.stacks[src as usize].push(t, w);
        }
    }
    migrated
}

/// Threshold-retry placement of cohort slot `i`: sample up to `retries`
/// uniform candidate bins and join the first that stays within the
/// threshold; return the task to its source (`positions[i]`) on failure.
/// Returns the number of migrations performed (1 or 0).
fn place_under_threshold<R: Rng + ?Sized>(
    eng: &mut RoundEngine,
    cands: &[NodeId],
    i: usize,
    retries: usize,
    rng: &mut R,
) -> u64 {
    let t = eng.cohort[i];
    let w = eng.weights[t as usize];
    let threshold = eng.threshold();
    for _ in 0..retries {
        let c = cands[rng.gen_range(0..cands.len())];
        if eng.stacks[c as usize].load() + w <= threshold {
            eng.stacks[c as usize].push(t, w);
            return 1;
        }
    }
    let src = eng.positions[i];
    eng.stacks[src as usize].push(t, w);
    0
}

impl Protocol for BaselineStepper {
    fn step(&mut self, g: &Graph, rng: &mut dyn RngCore) -> bool {
        BaselineStepper::step(self, g, rng)
    }

    fn is_done(&self) -> bool {
        BaselineStepper::is_done(self)
    }

    fn is_balanced(&self) -> bool {
        BaselineStepper::is_balanced(self)
    }

    fn rounds(&self) -> u64 {
        BaselineStepper::rounds(self)
    }

    fn migrations(&self) -> u64 {
        BaselineStepper::migrations(self)
    }

    fn threshold(&self) -> f64 {
        BaselineStepper::threshold(self)
    }

    fn stacks(&self) -> &[ResourceStack] {
        BaselineStepper::stacks(self)
    }

    fn weights(&self) -> &[f64] {
        BaselineStepper::weights(self)
    }

    fn w_max(&self) -> f64 {
        BaselineStepper::w_max(self)
    }

    fn into_parts(self: Box<Self>) -> (Vec<ResourceStack>, Vec<f64>) {
        BaselineStepper::into_parts(*self)
    }

    fn into_outcome(self: Box<Self>) -> ProtocolOutcome {
        BaselineStepper::into_outcome(*self)
    }
}

impl ProtocolSpec for BaselineStepper {
    type Config = BaselineConfig;
    type Outcome = ProtocolOutcome;

    fn new_stepper(
        g: &Graph,
        tasks: &TaskSet,
        placement: Placement,
        cfg: &Self::Config,
        rng: &mut dyn RngCore,
    ) -> Self {
        Self::new(g, tasks, placement, cfg, rng)
    }

    fn resume(
        stacks: Vec<ResourceStack>,
        weights: Vec<f64>,
        threshold: f64,
        _w_max: f64,
        cfg: Self::Config,
    ) -> Self {
        Self::from_parts(stacks, weights, threshold, cfg)
    }

    fn outcome(self) -> ProtocolOutcome {
        self.into_outcome()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tlb_graphs::generators::{complete, torus2d};

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    fn run_rule(rule: BaselineRule, seed: u64) -> ProtocolOutcome {
        let g = complete(20);
        let tasks = TaskSet::new((0..200).map(|i| 1.0 + (i % 4) as f64).collect::<Vec<_>>());
        let cfg = BaselineConfig { rule, ..Default::default() };
        let mut r = rng(seed);
        let mut s = BaselineStepper::new(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut r);
        s.run(&g, &mut r);
        s.into_outcome()
    }

    #[test]
    fn every_rule_balances_a_hotspot() {
        for (rule, seed) in [
            (BaselineRule::Greedy { d: 1 }, 1),
            (BaselineRule::Greedy { d: 2 }, 2),
            (BaselineRule::OnePlusBeta { beta: 0.5 }, 3),
            (BaselineRule::SequentialThreshold { retries: 4 }, 4),
            (BaselineRule::ParallelThreshold, 5),
        ] {
            let out = run_rule(rule, seed);
            assert!(out.balanced(), "{} did not balance", rule.label());
            assert!(out.final_max_load <= out.threshold);
            let total: f64 = out.final_loads.iter().sum();
            assert!((total - 500.0).abs() < 1e-6, "{} lost weight", rule.label());
        }
    }

    #[test]
    fn two_choice_needs_no_more_rounds_than_one_choice() {
        // Statistical sanity over a few seeds: greedy[2]'s least-loaded
        // bias should not be slower than blind one-choice re-placement.
        let mean = |d: usize| -> f64 {
            (0..10)
                .map(|s| run_rule(BaselineRule::Greedy { d }, 100 + s).rounds as f64)
                .sum::<f64>()
                / 10.0
        };
        assert!(mean(2) <= mean(1) + 1.0, "greedy2 {} vs greedy1 {}", mean(2), mean(1));
    }

    #[test]
    fn threshold_rules_never_overfill_a_destination() {
        // Sequential/parallel threshold only accept under-threshold bins,
        // so any load above the threshold must be on a task's *source*
        // (ejection refills it), never freshly created past T + w. Verify
        // the accepted placements respect T mid-run.
        let g = complete(10);
        let tasks = TaskSet::uniform(120);
        let cfg = BaselineConfig {
            rule: BaselineRule::SequentialThreshold { retries: 3 },
            max_rounds: 4,
            ..Default::default()
        };
        let mut r = rng(9);
        let mut s = BaselineStepper::new(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut r);
        let t = s.threshold();
        while !s.step(&g, &mut r) {}
        // Every bin except the hotspot source was only ever filled by
        // accepted (under-threshold) placements.
        for (i, stack) in s.stacks().iter().enumerate().skip(1) {
            assert!(stack.load() <= t + 1e-9, "bin {i} overfilled: {}", stack.load());
        }
    }

    #[test]
    fn isolated_nodes_are_never_destinations() {
        // Node 3 is isolated (the online engine's churned snapshots
        // represent deactivated resources this way): no baseline may
        // place a task there.
        let mut b = tlb_graphs::GraphBuilder::new(4);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        b.add_edge(0, 2).unwrap();
        let g = b.build();
        let tasks = TaskSet::uniform(30);
        let cfg = BaselineConfig::default();
        let mut r = rng(11);
        let mut s = BaselineStepper::new(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut r);
        s.run(&g, &mut r);
        assert!(s.is_balanced());
        assert!(s.stacks()[3].is_empty(), "isolated node received tasks");
    }

    #[test]
    fn fully_isolated_graph_moves_nothing() {
        let g = tlb_graphs::GraphBuilder::new(3).build(); // no edges at all
        let tasks = TaskSet::uniform(9);
        let cfg = BaselineConfig { max_rounds: 5, ..Default::default() };
        let mut r = rng(13);
        let mut s = BaselineStepper::new(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut r);
        s.run(&g, &mut r);
        assert!(!s.is_balanced());
        assert_eq!(s.migrations(), 0);
        assert_eq!(s.rounds(), 5);
        assert_eq!(s.stacks()[0].num_tasks(), 9, "cohort must return to its source");
    }

    #[test]
    fn parallel_wave_breaks_collisions_uniformly() {
        // Two identical sources each eject one unit task; one bin has
        // room for exactly one more. Under the synchronous wave with
        // shuffled tie-breaking, either contestant wins a collision with
        // equal probability, so across seeds both tasks land on the spare
        // bin about equally often. (A sequential ejection-order pass
        // would make the lower-numbered source win every collision,
        // skewing the ratio to ~2/3.)
        let g = complete(3);
        let mut wins = [0u32; 2]; // [task 2 on r2, task 5 on r2]
        for seed in 0..3000u64 {
            let mut stacks = vec![ResourceStack::new(); 3];
            for id in 0..3 {
                stacks[0].push(id, 1.0);
            }
            for id in 3..6 {
                stacks[1].push(id, 1.0);
            }
            stacks[2].push(6, 1.0);
            let cfg = BaselineConfig {
                rule: BaselineRule::ParallelThreshold,
                max_rounds: 1,
                ..Default::default()
            };
            let mut s = BaselineStepper::from_parts(stacks, vec![1.0; 7], 2.0, cfg);
            s.step(&g, &mut rng(seed));
            if s.stacks()[2].tasks().contains(&2) {
                wins[0] += 1;
            }
            if s.stacks()[2].tasks().contains(&5) {
                wins[1] += 1;
            }
        }
        let ratio = wins[1] as f64 / wins[0] as f64;
        assert!(
            (0.85..=1.18).contains(&ratio),
            "collision tie-breaking is biased: task2 won {} times, task5 {} times",
            wins[0],
            wins[1]
        );
    }

    #[test]
    fn trait_dispatch_is_bit_identical_to_direct_calls() {
        let g = torus2d(4, 4);
        let tasks = TaskSet::new((0..150).map(|i| 1.0 + (i % 3) as f64).collect::<Vec<_>>());
        let cfg = BaselineConfig {
            rule: BaselineRule::OnePlusBeta { beta: 0.3 },
            track_potential: true,
            ..Default::default()
        };
        let mut r1 = rng(21);
        let mut direct = BaselineStepper::new(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut r1);
        direct.run(&g, &mut r1);

        let mut r2 = rng(21);
        let mut boxed = cfg.new_stepper(&g, &tasks, Placement::AllOnOne(0), &mut r2);
        boxed.run(&g, &mut r2);
        assert_eq!(boxed.rounds(), direct.rounds());
        assert_eq!(boxed.into_outcome(), direct.into_outcome());
    }

    #[test]
    fn from_parts_resumes_and_round_trips() {
        let g = complete(20);
        let tasks = TaskSet::uniform(400);
        // One-choice re-placement scatters binomially, so one round from
        // a hotspot reliably leaves some bin above the threshold.
        let cfg = BaselineConfig {
            rule: BaselineRule::Greedy { d: 1 },
            max_rounds: 1,
            ..Default::default()
        };
        let mut r = rng(31);
        let mut first = BaselineStepper::new(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut r);
        first.run(&g, &mut r);
        assert!(!first.is_balanced());
        let threshold = first.threshold();
        let (stacks, weights) = first.into_parts();

        let mut second = BaselineConfig::default().stepper_from_parts(stacks, weights, threshold);
        second.run(&g, &mut r);
        assert!(second.is_balanced());
        let out = second.into_outcome();
        let total: f64 = out.final_loads.iter().sum();
        assert!((total - tasks.total_weight()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "beta must be in")]
    fn invalid_beta_rejected() {
        let cfg =
            BaselineConfig { rule: BaselineRule::OnePlusBeta { beta: 0.0 }, ..Default::default() };
        BaselineStepper::new(
            &complete(4),
            &TaskSet::uniform(8),
            Placement::AllOnOne(0),
            &cfg,
            &mut rng(0),
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(BaselineRule::Greedy { d: 2 }.label(), "greedy2");
        assert_eq!(BaselineRule::OnePlusBeta { beta: 0.5 }.label(), "one_plus_beta");
        assert_eq!(BaselineRule::SequentialThreshold { retries: 3 }.label(), "seq_threshold");
        assert_eq!(BaselineRule::ParallelThreshold.label(), "par_threshold");
    }
}
