//! Sequential `Greedy[d]`: each ball inspects `d` independent uniform
//! bins and joins the least loaded (ties: first sampled).
//!
//! `d = 1` is the one-choice process (gap grows with `m`); `d ≥ 2` gives
//! the two-choice miracle — for unit balls the gap is
//! `log log n / log d + O(1)` *independent of m* (Berenbrink et al.
//! \[10\]), and Talwar–Wieder \[9\] extend the m-independence to weighted
//! balls with finite-second-moment distributions.

use rand::Rng;
use tlb_core::task::TaskSet;

use crate::Allocation;

/// Allocate `tasks` into `n` bins with `d` choices per ball.
///
/// # Panics
/// If `n == 0` or `d == 0`.
pub fn allocate<R: Rng + ?Sized>(tasks: &TaskSet, n: usize, d: usize, rng: &mut R) -> Allocation {
    assert!(n > 0, "need at least one bin");
    assert!(d > 0, "need at least one choice");
    let mut loads = vec![0.0f64; n];
    let mut choices = 0u64;
    for i in 0..tasks.len() {
        let mut best = rng.gen_range(0..n);
        choices += 1;
        for _ in 1..d {
            let cand = rng.gen_range(0..n);
            choices += 1;
            if loads[cand] < loads[best] {
                best = cand;
            }
        }
        loads[best] += tasks.weight(i as u32);
    }
    Allocation { loads, choices }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn mean_gap(m: usize, n: usize, d: usize, trials: usize, seed: u64) -> f64 {
        let tasks = TaskSet::uniform(m);
        (0..trials)
            .map(|t| {
                let mut rng = SmallRng::seed_from_u64(seed + t as u64);
                allocate(&tasks, n, d, &mut rng).gap()
            })
            .sum::<f64>()
            / trials as f64
    }

    #[test]
    fn conserves_weight_and_counts_choices() {
        let tasks = TaskSet::new(vec![1.0, 2.5, 4.0]);
        let mut rng = SmallRng::seed_from_u64(1);
        let a = allocate(&tasks, 5, 2, &mut rng);
        assert!((a.loads.iter().sum::<f64>() - 7.5).abs() < 1e-12);
        assert_eq!(a.choices, 6);
    }

    #[test]
    fn two_choice_beats_one_choice() {
        let g1 = mean_gap(20_000, 100, 1, 10, 11);
        let g2 = mean_gap(20_000, 100, 2, 10, 22);
        assert!(g2 < g1 / 3.0, "two-choice gap {g2} should be far below one-choice gap {g1}");
    }

    #[test]
    fn two_choice_gap_independent_of_m() {
        // Berenbrink et al. [10]: gap does not grow with m.
        let small = mean_gap(5_000, 100, 2, 15, 33);
        let large = mean_gap(50_000, 100, 2, 15, 44);
        assert!(large < small + 2.0, "two-choice gap grew with m: {small} -> {large}");
    }

    #[test]
    fn one_choice_gap_grows_with_m() {
        // One-choice gap ~ sqrt(m ln n / n): x10 m => ~x3 gap.
        let small = mean_gap(5_000, 100, 1, 15, 55);
        let large = mean_gap(50_000, 100, 1, 15, 66);
        assert!(large > 2.0 * small, "one-choice gap should grow ~sqrt(m): {small} -> {large}");
    }

    #[test]
    fn weighted_two_choice_gap_still_m_independent() {
        // Talwar–Wieder [9]: finite second moment => m-independent gap.
        let gap_at = |m: usize, seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let tasks =
                tlb_core::weights::WeightSpec::Exponential { m, mean: 2.0 }.generate(&mut rng);
            (0..10)
                .map(|t| {
                    let mut r = SmallRng::seed_from_u64(seed + 100 + t);
                    allocate(&tasks, 100, 2, &mut r).gap()
                })
                .sum::<f64>()
                / 10.0
        };
        let small = gap_at(5_000, 1);
        let large = gap_at(50_000, 2);
        assert!(
            large < 2.0 * small + 4.0,
            "weighted two-choice gap grew with m: {small} -> {large}"
        );
    }
}
