//! # tlb-baselines
//!
//! The related-work allocators the paper positions itself against
//! (Section 3), implemented so the experiment harness can compare them to
//! the threshold protocols on identical weighted workloads:
//!
//! * [`greedy`] — sequential `Greedy[d]` (each ball goes to the least
//!   loaded of `d` uniform bins). `d = 1` is the classic one-choice
//!   process; `d = 2` is the two-choice process whose weighted analysis is
//!   Talwar–Wieder \[9\]; the gap independence of `m` for unit balls is
//!   Berenbrink–Czumaj–Steger–Vöcking \[10\].
//! * [`one_plus_beta`] — the `(1+β)`-process of Peres–Talwar–Wieder
//!   \[11\]: one choice with probability `β`, two choices otherwise; gap
//!   `Θ(log n / β)` independent of `m`, also for weighted balls.
//! * [`parallel_threshold`] — `r`-round parallel threshold allocation in
//!   the spirit of Adler–Chakrabarti–Mitzenmacher–Rasmussen \[4\]:
//!   unplaced balls repeatedly pick uniform bins, bins accept up to a
//!   threshold, survivors retry; the rounds-vs-load trade-off is their
//!   lower-bound territory.
//! * [`sequential_threshold`] — sequential threshold-retry allocation in
//!   the spirit of Berenbrink–Khodamoradi–Sauerwald–Stauffer \[5\]:
//!   thresholds `⌈m/n⌉ (+1, +2, …)` with resampling, reaching a near
//!   optimal maximum load with `O(m)` random choices in expectation.
//!
//! All allocators take weighted task sets (unit weights recover the cited
//! papers' settings exactly) and report the final load vector plus the
//! *gap* `max load − average load`, the quantity the related work bounds.
//!
//! The [`stepper`] module additionally adapts each placement rule into an
//! iterative rebalancing protocol behind
//! [`tlb_core::protocol::Protocol`], so the baselines run inside the same
//! generic harness/simulation paths as the paper protocols.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod greedy;
pub mod one_plus_beta;
pub mod parallel_threshold;
pub mod sequential_threshold;
pub mod stepper;

pub use stepper::{BaselineConfig, BaselineRule, BaselineStepper};

/// Final state every baseline reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Per-bin loads.
    pub loads: Vec<f64>,
    /// Total random bin choices consumed.
    pub choices: u64,
}

impl Allocation {
    /// Maximum load.
    pub fn max_load(&self) -> f64 {
        self.loads.iter().copied().fold(0.0, f64::max)
    }

    /// Average load `W/n`.
    pub fn avg_load(&self) -> f64 {
        self.loads.iter().sum::<f64>() / self.loads.len() as f64
    }

    /// The gap `max − average` the related work bounds.
    pub fn gap(&self) -> f64 {
        self.max_load() - self.avg_load()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_stats() {
        let a = Allocation { loads: vec![1.0, 3.0, 2.0], choices: 5 };
        assert_eq!(a.max_load(), 3.0);
        assert_eq!(a.avg_load(), 2.0);
        assert_eq!(a.gap(), 1.0);
    }
}
