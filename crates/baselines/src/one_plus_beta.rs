//! The `(1+β)`-process (Peres–Talwar–Wieder \[11\]): each ball uses one
//! uniform choice with probability `β` and two choices (least loaded)
//! otherwise. Gap `Θ(log n / β)`, independent of `m`, including weighted
//! balls from a large class of distributions.

use rand::Rng;
use tlb_core::task::TaskSet;

use crate::Allocation;

/// Allocate with mixing parameter `beta ∈ (0, 1]`.
///
/// `beta = 1` degenerates to one-choice; `beta → 0` to two-choice.
///
/// # Panics
/// If `n == 0` or `beta` outside `(0, 1]`.
pub fn allocate<R: Rng + ?Sized>(tasks: &TaskSet, n: usize, beta: f64, rng: &mut R) -> Allocation {
    assert!(n > 0, "need at least one bin");
    assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1], got {beta}");
    let mut loads = vec![0.0f64; n];
    let mut choices = 0u64;
    for i in 0..tasks.len() {
        let bin = if rng.gen_bool(beta) {
            choices += 1;
            rng.gen_range(0..n)
        } else {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            choices += 2;
            if loads[a] <= loads[b] {
                a
            } else {
                b
            }
        };
        loads[bin] += tasks.weight(i as u32);
    }
    Allocation { loads, choices }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn mean_gap(m: usize, n: usize, beta: f64, trials: usize, seed: u64) -> f64 {
        let tasks = TaskSet::uniform(m);
        (0..trials)
            .map(|t| {
                let mut rng = SmallRng::seed_from_u64(seed + t as u64);
                allocate(&tasks, n, beta, &mut rng).gap()
            })
            .sum::<f64>()
            / trials as f64
    }

    #[test]
    fn gap_scales_inversely_with_beta() {
        // Gap ~ log n / beta: halving beta should increase the gap.
        let g_hi = mean_gap(40_000, 100, 0.8, 12, 1);
        let g_lo = mean_gap(40_000, 100, 0.1, 12, 2);
        assert!(
            g_lo < g_hi,
            "smaller beta (more two-choice) must shrink the gap: beta=0.8 -> {g_hi}, beta=0.1 -> {g_lo}"
        );
    }

    #[test]
    fn gap_independent_of_m_for_fixed_beta() {
        let small = mean_gap(5_000, 100, 0.5, 12, 3);
        let large = mean_gap(50_000, 100, 0.5, 12, 4);
        assert!(large < 2.0 * small + 3.0, "(1+beta) gap grew with m: {small} -> {large}");
    }

    #[test]
    fn beta_one_matches_one_choice_statistically() {
        let tasks = TaskSet::uniform(20_000);
        let trials = 10;
        let g_beta: f64 = (0..trials)
            .map(|t| {
                let mut rng = SmallRng::seed_from_u64(50 + t);
                allocate(&tasks, 100, 1.0, &mut rng).gap()
            })
            .sum::<f64>()
            / trials as f64;
        let g_one: f64 = (0..trials)
            .map(|t| {
                let mut rng = SmallRng::seed_from_u64(150 + t);
                crate::greedy::allocate(&tasks, 100, 1, &mut rng).gap()
            })
            .sum::<f64>()
            / trials as f64;
        assert!(
            (g_beta - g_one).abs() < 0.35 * g_one,
            "beta=1 ({g_beta}) should look like one-choice ({g_one})"
        );
    }

    #[test]
    #[should_panic(expected = "beta must be in")]
    fn rejects_zero_beta() {
        let mut rng = SmallRng::seed_from_u64(0);
        allocate(&TaskSet::uniform(10), 5, 0.0, &mut rng);
    }

    #[test]
    fn conserves_weight() {
        let tasks = TaskSet::new(vec![3.0, 1.0, 2.0]);
        let mut rng = SmallRng::seed_from_u64(9);
        let a = allocate(&tasks, 4, 0.3, &mut rng);
        assert!((a.loads.iter().sum::<f64>() - 6.0).abs() < 1e-12);
    }
}
