//! `r`-round parallel threshold allocation (Adler et al. \[4\] regime).
//!
//! All unplaced balls act synchronously: each picks a uniform bin; a bin
//! accepts incoming balls while its load stays at or below the round's
//! threshold, and rejects the rest, which retry next round. After `r`
//! rounds any survivors are force-placed on uniform bins (the "give up"
//! step that Adler et al.'s lower bound says must exist for constant-round
//! protocols). The interesting trade-off is rounds vs final maximum load.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use tlb_core::task::TaskSet;

use crate::Allocation;

/// Outcome of a parallel-threshold run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParallelOutcome {
    /// Per-bin loads after the final (force) placement.
    pub loads: Vec<f64>,
    /// Balls still unplaced after each round (length = rounds executed).
    pub survivors_per_round: Vec<usize>,
    /// Balls force-placed after the last round.
    pub forced: usize,
    /// Total random choices consumed.
    pub choices: u64,
}

impl ParallelOutcome {
    /// View as a generic [`Allocation`].
    pub fn allocation(&self) -> Allocation {
        Allocation { loads: self.loads.clone(), choices: self.choices }
    }
}

/// Run `rounds` synchronous rounds with per-round load threshold
/// `thresholds[j]` (a ball is accepted if the bin's load *including it*
/// stays `≤ thresholds[j]`). `thresholds.len()` must equal `rounds`.
///
/// Arrival order within a round is randomized (ties between colliding
/// balls are broken uniformly, as in the cited model).
///
/// # Panics
/// If `n == 0`, `rounds == 0`, or threshold/round lengths mismatch.
pub fn allocate<R: Rng + ?Sized>(
    tasks: &TaskSet,
    n: usize,
    thresholds: &[f64],
    rng: &mut R,
) -> ParallelOutcome {
    assert!(n > 0, "need at least one bin");
    assert!(!thresholds.is_empty(), "need at least one round");
    let mut loads = vec![0.0f64; n];
    let mut unplaced: Vec<u32> = (0..tasks.len() as u32).collect();
    let mut survivors_per_round = Vec::with_capacity(thresholds.len());
    let mut choices = 0u64;
    let mut arrivals: Vec<(u32, usize)> = Vec::new();

    for &t in thresholds {
        if unplaced.is_empty() {
            survivors_per_round.push(0);
            continue;
        }
        arrivals.clear();
        for &ball in &unplaced {
            arrivals.push((ball, rng.gen_range(0..n)));
            choices += 1;
        }
        arrivals.shuffle(rng); // uniform collision tie-breaking
        unplaced.clear();
        for &(ball, bin) in &arrivals {
            let w = tasks.weight(ball);
            if loads[bin] + w <= t {
                loads[bin] += w;
            } else {
                unplaced.push(ball);
            }
        }
        survivors_per_round.push(unplaced.len());
    }

    let forced = unplaced.len();
    for &ball in &unplaced {
        let bin = rng.gen_range(0..n);
        choices += 1;
        loads[bin] += tasks.weight(ball);
    }

    ParallelOutcome { loads, survivors_per_round, forced, choices }
}

/// Convenience: `rounds` rounds all at threshold
/// `⌈W/n⌉ + slack·w_max` (the natural analog of the paper's thresholds).
pub fn allocate_uniform_threshold<R: Rng + ?Sized>(
    tasks: &TaskSet,
    n: usize,
    rounds: usize,
    slack: f64,
    rng: &mut R,
) -> ParallelOutcome {
    let t = tasks.total_weight() / n as f64 + slack * tasks.w_max();
    let thresholds = vec![t; rounds];
    allocate(tasks, n, &thresholds, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn conserves_weight_even_with_forcing() {
        let tasks = TaskSet::uniform(500);
        let mut rng = SmallRng::seed_from_u64(1);
        let out = allocate_uniform_threshold(&tasks, 50, 2, 1.0, &mut rng);
        let total: f64 = out.loads.iter().sum();
        assert!((total - 500.0).abs() < 1e-9);
        assert_eq!(out.survivors_per_round.len(), 2);
    }

    #[test]
    fn survivors_shrink_geometrically() {
        // With threshold >= average + slack, a constant fraction of balls
        // lands in non-full bins each round.
        let tasks = TaskSet::uniform(5000);
        let mut rng = SmallRng::seed_from_u64(2);
        let out = allocate_uniform_threshold(&tasks, 500, 6, 2.0, &mut rng);
        let s = &out.survivors_per_round;
        assert!(s[0] < 5000);
        for w in s.windows(2) {
            assert!(w[1] <= w[0], "survivors must not increase: {s:?}");
        }
        assert!(*s.last().unwrap() < 5000 / 20, "six rounds should place almost everything: {s:?}");
    }

    #[test]
    fn more_rounds_lower_max_load() {
        let tasks = TaskSet::uniform(10_000);
        let trials = 8;
        let mean_max = |rounds: usize, seed: u64| -> f64 {
            (0..trials)
                .map(|t| {
                    let mut rng = SmallRng::seed_from_u64(seed + t);
                    allocate_uniform_threshold(&tasks, 1000, rounds, 1.0, &mut rng)
                        .allocation()
                        .max_load()
                })
                .sum::<f64>()
                / trials as f64
        };
        let one = mean_max(1, 10);
        let four = mean_max(4, 20);
        assert!(four < one, "4 rounds ({four}) should beat 1 round ({one}) on max load");
    }

    #[test]
    fn zero_survivors_with_generous_threshold() {
        let tasks = TaskSet::uniform(100);
        let mut rng = SmallRng::seed_from_u64(3);
        // Threshold = total weight: first round accepts everything.
        let out = allocate(&tasks, 10, &[100.0], &mut rng);
        assert_eq!(out.survivors_per_round, vec![0]);
        assert_eq!(out.forced, 0);
    }

    #[test]
    fn weighted_balls_respect_threshold_until_forcing() {
        let mut rng = SmallRng::seed_from_u64(4);
        let tasks =
            tlb_core::weights::WeightSpec::ParetoTruncated { m: 2000, alpha: 1.5, cap: 16.0 }
                .generate(&mut rng);
        let t = tasks.total_weight() / 100.0 + 2.0 * tasks.w_max();
        let out = allocate(&tasks, 100, &[t, t, t, t, t, t, t, t], &mut rng);
        if out.forced == 0 {
            assert!(out.allocation().max_load() <= t + 1e-9);
        }
    }
}
