//! Property-based tests for the baseline allocators: weight conservation
//! and threshold respect hold for every workload and parameterization.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_baselines::{greedy, one_plus_beta, parallel_threshold, sequential_threshold};
use tlb_core::task::TaskSet;

fn arb_weights() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1u32..30, 1..200)
        .prop_map(|v| v.into_iter().map(|w| w as f64).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn greedy_conserves_weight(
        weights in arb_weights(),
        n in 1usize..50,
        d in 1usize..4,
        seed in any::<u64>(),
    ) {
        let tasks = TaskSet::new(weights);
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = greedy::allocate(&tasks, n, d, &mut rng);
        prop_assert_eq!(a.loads.len(), n);
        prop_assert!((a.loads.iter().sum::<f64>() - tasks.total_weight()).abs() < 1e-6);
        prop_assert_eq!(a.choices, (tasks.len() * d) as u64);
        prop_assert!(a.gap() >= -1e-9);
    }

    #[test]
    fn one_plus_beta_conserves_weight(
        weights in arb_weights(),
        n in 1usize..50,
        beta in 0.01f64..1.0,
        seed in any::<u64>(),
    ) {
        let tasks = TaskSet::new(weights);
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = one_plus_beta::allocate(&tasks, n, beta, &mut rng);
        prop_assert!((a.loads.iter().sum::<f64>() - tasks.total_weight()).abs() < 1e-6);
        // Between 1 and 2 choices per ball.
        prop_assert!(a.choices >= tasks.len() as u64);
        prop_assert!(a.choices <= 2 * tasks.len() as u64);
    }

    #[test]
    fn sequential_threshold_respects_final_threshold(
        weights in arb_weights(),
        n in 1usize..40,
        slack in 0.0f64..3.0,
        seed in any::<u64>(),
    ) {
        let tasks = TaskSet::new(weights);
        let mut rng = SmallRng::seed_from_u64(seed);
        let out = sequential_threshold::allocate(&tasks, n, slack, 8, &mut rng);
        prop_assert!((out.loads.iter().sum::<f64>() - tasks.total_weight()).abs() < 1e-6);
        prop_assert!(out.allocation().max_load() <= out.final_threshold + 1e-9);
        // Escalations move the threshold by w_max each.
        let start = tasks.total_weight() / n as f64 + slack * tasks.w_max();
        let expected = start + out.escalations as f64 * tasks.w_max();
        prop_assert!((out.final_threshold - expected).abs() < 1e-9);
    }

    #[test]
    fn parallel_threshold_accounts_for_every_ball(
        weights in arb_weights(),
        n in 1usize..40,
        rounds in 1usize..6,
        slack in 0.5f64..3.0,
        seed in any::<u64>(),
    ) {
        let tasks = TaskSet::new(weights);
        let mut rng = SmallRng::seed_from_u64(seed);
        let out = parallel_threshold::allocate_uniform_threshold(&tasks, n, rounds, slack, &mut rng);
        prop_assert!((out.loads.iter().sum::<f64>() - tasks.total_weight()).abs() < 1e-6);
        prop_assert_eq!(out.survivors_per_round.len(), rounds);
        // Survivors are monotone non-increasing and end at `forced`.
        for w in out.survivors_per_round.windows(2) {
            prop_assert!(w[1] <= w[0]);
        }
        prop_assert_eq!(*out.survivors_per_round.last().unwrap(), out.forced);
    }
}
