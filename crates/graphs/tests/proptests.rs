//! Property-based tests for the graph substrate.

use std::collections::HashSet;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_graphs::{algo, generators, DynamicGraph, GraphBuilder, NodeId};

/// One churn operation for the [`DynamicGraph`] model tests, decoded from
/// `(kind % 4, u, v)`: 0 = add edge, 1 = remove edge, 2 = deactivate `u`,
/// 3 = activate `u`.
fn apply_churn(
    dg: &mut DynamicGraph,
    edges: &mut HashSet<(NodeId, NodeId)>,
    active: &mut [bool],
    kind: u8,
    u: NodeId,
    v: NodeId,
) {
    let key = (u.min(v), u.max(v));
    match kind % 4 {
        0 if u != v => {
            dg.add_edge(u, v).unwrap();
            edges.insert(key);
        }
        1 if u != v => {
            dg.remove_edge(u, v).unwrap();
            edges.remove(&key);
        }
        2 => {
            dg.deactivate(u);
            active[u as usize] = false;
        }
        3 => {
            dg.activate(u);
            active[u as usize] = true;
        }
        _ => {}
    }
}

/// Rebuild the effective graph of the naive model from scratch.
fn rebuild(n: usize, edges: &HashSet<(NodeId, NodeId)>, active: &[bool]) -> tlb_graphs::Graph {
    let mut b = GraphBuilder::new(n);
    for &(u, v) in edges {
        if active[u as usize] && active[v as usize] {
            b.add_edge(u, v).unwrap();
        }
    }
    b.build()
}

proptest! {
    /// CSR build is invariant to edge insertion order and duplication.
    #[test]
    fn build_invariant_to_insertion_order(
        n in 2usize..40,
        edges in proptest::collection::vec((0u32..40, 0u32..40), 0..120),
        seed in any::<u64>(),
    ) {
        let valid: Vec<(u32, u32)> = edges
            .into_iter()
            .filter(|&(u, v)| u != v && (u as usize) < n && (v as usize) < n)
            .collect();

        let mut b1 = GraphBuilder::new(n);
        for &(u, v) in &valid {
            b1.add_edge(u, v).unwrap();
        }
        let g1 = b1.build();

        use rand::seq::SliceRandom;
        let mut shuffled = valid.clone();
        let mut rng = SmallRng::seed_from_u64(seed);
        shuffled.shuffle(&mut rng);
        let mut b2 = GraphBuilder::new(n);
        for &(u, v) in &shuffled {
            b2.add_edge(v, u).unwrap(); // also flip orientation
        }
        let g2 = b2.build();

        prop_assert_eq!(g1, g2);
    }

    /// Handshake lemma: degree sum equals twice the edge count.
    #[test]
    fn handshake_lemma(
        n in 1usize..50,
        edges in proptest::collection::vec((0u32..50, 0u32..50), 0..200),
    ) {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            if u != v && (u as usize) < n && (v as usize) < n {
                b.add_edge(u, v).unwrap();
            }
        }
        let g = b.build();
        prop_assert_eq!(g.degree_sum(), 2 * g.num_edges());
        let deg_total: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(deg_total, g.degree_sum());
    }

    /// Every edge reported by `edges()` exists per `has_edge`, symmetric.
    #[test]
    fn edges_consistent_with_has_edge(
        n in 2usize..30,
        edges in proptest::collection::vec((0u32..30, 0u32..30), 1..80),
    ) {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            if u != v && (u as usize) < n && (v as usize) < n {
                b.add_edge(u, v).unwrap();
            }
        }
        let g = b.build();
        for (u, v) in g.edges() {
            prop_assert!(u < v);
            prop_assert!(g.has_edge(u, v));
            prop_assert!(g.has_edge(v, u));
        }
        prop_assert_eq!(g.edges().count(), g.num_edges());
    }

    /// BFS distances satisfy the triangle property along edges:
    /// |dist(u) - dist(v)| <= 1 for every edge (u, v).
    #[test]
    fn bfs_distance_lipschitz_along_edges(
        n in 2usize..30,
        edges in proptest::collection::vec((0u32..30, 0u32..30), 1..100),
        src in 0u32..30,
    ) {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            if u != v && (u as usize) < n && (v as usize) < n {
                b.add_edge(u, v).unwrap();
            }
        }
        let g = b.build();
        let src = src % n as u32;
        let dist = algo::bfs_distances(&g, src);
        for (u, v) in g.edges() {
            let (du, dv) = (dist[u as usize], dist[v as usize]);
            if du != algo::UNREACHABLE && dv != algo::UNREACHABLE {
                prop_assert!(du.abs_diff(dv) <= 1);
            } else {
                // endpoints of one edge are in the same component
                prop_assert_eq!(du, dv);
            }
        }
    }

    /// Random regular graphs really are d-regular, for all feasible (n, d).
    #[test]
    fn random_regular_is_regular(n in 4usize..40, d in 1usize..5, seed in any::<u64>()) {
        prop_assume!(n * d % 2 == 0 && d < n);
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::random_regular(n, d, &mut rng).unwrap();
        prop_assert!(g.is_regular());
        prop_assert_eq!(g.max_degree() as usize, d);
        prop_assert_eq!(g.num_edges(), n * d / 2);
    }

    /// G(n, p) never produces self-loops or out-of-range nodes, and edge
    /// count is within the binomial support.
    #[test]
    fn gnp_well_formed(n in 2usize..60, p in 0.0f64..1.0, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(n, p, &mut rng).unwrap();
        prop_assert_eq!(g.num_nodes(), n);
        prop_assert!(g.num_edges() <= n * (n - 1) / 2);
        for (u, v) in g.edges() {
            prop_assert!(u != v);
            prop_assert!((v as usize) < n);
        }
    }

    /// After an arbitrary churn sequence, the overlay's degrees, neighbour
    /// lists, and snapshot all match a from-scratch rebuild of the naive
    /// edge-set + active-mask model.
    #[test]
    fn dynamic_graph_matches_from_scratch_rebuild(
        n in 2usize..24,
        base_edges in proptest::collection::vec((0u32..24, 0u32..24), 0..60),
        ops in proptest::collection::vec((0u8..4, 0u32..24, 0u32..24), 0..80),
    ) {
        let mut b = GraphBuilder::new(n);
        let mut edges = HashSet::new();
        let mut active = vec![true; n];
        for (u, v) in base_edges {
            if u != v && (u as usize) < n && (v as usize) < n {
                b.add_edge(u, v).unwrap();
                edges.insert((u.min(v), u.max(v)));
            }
        }
        let mut dg = DynamicGraph::new(b.build());
        for (kind, u, v) in ops {
            let (u, v) = (u % n as u32, v % n as u32);
            apply_churn(&mut dg, &mut edges, &mut active, kind, u, v);
        }

        let expected = rebuild(n, &edges, &active);
        for v in 0..n as u32 {
            let want =
                if active[v as usize] { expected.neighbors(v).to_vec() } else { Vec::new() };
            prop_assert_eq!(dg.degree(v), want.len());
            prop_assert_eq!(dg.neighbors(v), want);
        }
        prop_assert_eq!(dg.num_active(), active.iter().filter(|&&a| a).count());
        prop_assert_eq!(dg.snapshot(), expected);
    }

    /// Compaction is a pure representation change: the snapshot is
    /// unchanged, and walks over the snapshot take identical trajectories
    /// before and after (same seed ⇒ same CSR ⇒ same steps).
    #[test]
    fn dynamic_graph_compaction_is_noop_on_walks(
        n in 2usize..20,
        base_edges in proptest::collection::vec((0u32..20, 0u32..20), 1..50),
        ops in proptest::collection::vec((0u8..4, 0u32..20, 0u32..20), 0..60),
        seed in any::<u64>(),
    ) {
        use tlb_walks::{WalkKind, Walker};

        let mut b = GraphBuilder::new(n);
        let mut edges = HashSet::new();
        let mut active = vec![true; n];
        for (u, v) in base_edges {
            if u != v && (u as usize) < n && (v as usize) < n {
                b.add_edge(u, v).unwrap();
                edges.insert((u.min(v), u.max(v)));
            }
        }
        let mut dg = DynamicGraph::new(b.build());
        for (kind, u, v) in ops {
            let (u, v) = (u % n as u32, v % n as u32);
            apply_churn(&mut dg, &mut edges, &mut active, kind, u, v);
        }

        let before = dg.snapshot();
        dg.compact();
        prop_assert_eq!(dg.delta_ops(), 0);
        let after = dg.snapshot();
        prop_assert_eq!(&before, &after);

        // Drive the max-degree walker over both snapshots with the same
        // seed from every node: trajectories must be identical.
        let wb = Walker::new(&before, WalkKind::MaxDegree);
        let wa = Walker::new(&after, WalkKind::MaxDegree);
        for start in 0..n as u32 {
            let mut r1 = SmallRng::seed_from_u64(seed ^ start as u64);
            let mut r2 = SmallRng::seed_from_u64(seed ^ start as u64);
            for _ in 0..32 {
                prop_assert_eq!(wb.step(start, &mut r1), wa.step(start, &mut r2));
            }
        }
    }

    /// Components partition the node set and count is consistent.
    #[test]
    fn components_partition_nodes(
        n in 1usize..40,
        edges in proptest::collection::vec((0u32..40, 0u32..40), 0..80),
    ) {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            if u != v && (u as usize) < n && (v as usize) < n {
                b.add_edge(u, v).unwrap();
            }
        }
        let g = b.build();
        let (labels, count) = algo::connected_components(&g);
        prop_assert_eq!(labels.len(), n);
        let distinct: std::collections::HashSet<_> = labels.iter().copied().collect();
        prop_assert_eq!(distinct.len(), count);
        // Edge endpoints share labels.
        for (u, v) in g.edges() {
            prop_assert_eq!(labels[u as usize], labels[v as usize]);
        }
        prop_assert_eq!(count == 1, algo::is_connected(&g) && n >= 1);
    }
}
