//! Plain-text edge-list serialization.
//!
//! Format (whitespace-delimited, `#` comments):
//!
//! ```text
//! # anything
//! <num_nodes>
//! <u> <v>
//! <u> <v>
//! …
//! ```
//!
//! This exists so experiment configurations can pin down an exact graph
//! (e.g. one sampled expander) across runs and across tools.

use std::fmt::Write as _;

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::Graph;

/// Serialize to the edge-list format.
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = String::with_capacity(16 + g.num_edges() * 8);
    let _ =
        writeln!(out, "# tlb-graphs edge list: {} nodes, {} edges", g.num_nodes(), g.num_edges());
    let _ = writeln!(out, "{}", g.num_nodes());
    for (u, v) in g.edges() {
        let _ = writeln!(out, "{u} {v}");
    }
    out
}

/// Parse the edge-list format.
///
/// # Errors
/// [`GraphError::InvalidParameters`] on malformed input; endpoint errors
/// propagate from the builder.
pub fn from_edge_list(text: &str) -> Result<Graph, GraphError> {
    let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty() && !l.starts_with('#'));
    let n: usize = lines
        .next()
        .ok_or_else(|| GraphError::InvalidParameters("missing node-count line".into()))?
        .parse()
        .map_err(|e| GraphError::InvalidParameters(format!("bad node count: {e}")))?;
    let mut b = GraphBuilder::new(n);
    for (lineno, line) in lines.enumerate() {
        let mut parts = line.split_whitespace();
        let u: u32 = parts
            .next()
            .ok_or_else(|| GraphError::InvalidParameters(format!("edge line {lineno}: empty")))?
            .parse()
            .map_err(|e| GraphError::InvalidParameters(format!("edge line {lineno}: {e}")))?;
        let v: u32 = parts
            .next()
            .ok_or_else(|| {
                GraphError::InvalidParameters(format!(
                    "edge line {lineno}: missing second endpoint"
                ))
            })?
            .parse()
            .map_err(|e| GraphError::InvalidParameters(format!("edge line {lineno}: {e}")))?;
        if parts.next().is_some() {
            return Err(GraphError::InvalidParameters(format!(
                "edge line {lineno}: trailing tokens"
            )));
        }
        b.add_edge(u, v)?;
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{hypercube, lollipop};

    #[test]
    fn roundtrip_preserves_graph() {
        for g in [hypercube(4), lollipop(10, 3).unwrap()] {
            let text = to_edge_list(&g);
            let back = from_edge_list(&text).unwrap();
            assert_eq!(back, g);
        }
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let g = from_edge_list("# hi\n\n3\n# edge next\n0 1\n\n1 2\n").unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_edge_list("").is_err());
        assert!(from_edge_list("abc\n").is_err());
        assert!(from_edge_list("3\n0\n").is_err());
        assert!(from_edge_list("3\n0 1 2\n").is_err());
        assert!(from_edge_list("3\n0 x\n").is_err());
        // out-of-range endpoint propagates the builder error
        assert!(matches!(from_edge_list("2\n0 5\n"), Err(GraphError::NodeOutOfRange { .. })));
        // self-loop rejected
        assert!(matches!(from_edge_list("2\n1 1\n"), Err(GraphError::SelfLoop(1))));
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = crate::GraphBuilder::new(5).build();
        let back = from_edge_list(&to_edge_list(&g)).unwrap();
        assert_eq!(back, g);
    }
}
