//! Traversal and validation algorithms: BFS, connectivity, components,
//! diameter, bipartiteness, degree statistics.

use crate::graph::{Graph, NodeId};

/// Sentinel distance for unreachable nodes in [`bfs_distances`].
pub const UNREACHABLE: u32 = u32::MAX;

/// BFS distances from `source`; unreachable nodes get [`UNREACHABLE`].
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<u32> {
    let n = g.num_nodes();
    let mut dist = vec![UNREACHABLE; n];
    if n == 0 {
        return dist;
    }
    let mut queue = std::collections::VecDeque::with_capacity(n);
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &u in g.neighbors(v) {
            if dist[u as usize] == UNREACHABLE {
                dist[u as usize] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Whether the graph is connected (vacuously true for `n <= 1`).
pub fn is_connected(g: &Graph) -> bool {
    let n = g.num_nodes();
    if n <= 1 {
        return true;
    }
    bfs_distances(g, 0).iter().all(|&d| d != UNREACHABLE)
}

/// Connected components as a label vector: `labels[v]` is the smallest node
/// id in `v`'s component. Second return value is the component count.
pub fn connected_components(g: &Graph) -> (Vec<NodeId>, usize) {
    let n = g.num_nodes();
    let mut labels = vec![NodeId::MAX; n];
    let mut count = 0usize;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n as NodeId {
        if labels[start as usize] != NodeId::MAX {
            continue;
        }
        count += 1;
        labels[start as usize] = start;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v) {
                if labels[u as usize] == NodeId::MAX {
                    labels[u as usize] = start;
                    queue.push_back(u);
                }
            }
        }
    }
    (labels, count)
}

/// Eccentricity of `v` (max BFS distance); `None` if some node is
/// unreachable from `v`.
pub fn eccentricity(g: &Graph, v: NodeId) -> Option<u32> {
    let dist = bfs_distances(g, v);
    let mut max = 0;
    for &d in &dist {
        if d == UNREACHABLE {
            return None;
        }
        max = max.max(d);
    }
    Some(max)
}

/// Exact diameter via all-pairs BFS — `O(n·(n+m))`; fine for the graph
/// sizes where exact walk quantities are computed. `None` if disconnected
/// or empty.
pub fn diameter(g: &Graph) -> Option<u32> {
    let n = g.num_nodes();
    if n == 0 {
        return None;
    }
    let mut best = 0;
    for v in 0..n as NodeId {
        best = best.max(eccentricity(g, v)?);
    }
    Some(best)
}

/// 2-colourability check. Bipartite graphs make the *non-lazy* simple
/// random walk periodic — the walk substrate consults this to warn/ablate.
pub fn is_bipartite(g: &Graph) -> bool {
    let n = g.num_nodes();
    let mut color = vec![u8::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n as NodeId {
        if color[start as usize] != u8::MAX {
            continue;
        }
        color[start as usize] = 0;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            let cv = color[v as usize];
            for &u in g.neighbors(v) {
                if color[u as usize] == u8::MAX {
                    color[u as usize] = 1 - cv;
                    queue.push_back(u);
                } else if color[u as usize] == cv {
                    return false;
                }
            }
        }
    }
    true
}

/// Summary degree statistics of a graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: u32,
    /// Maximum degree.
    pub max: u32,
    /// Mean degree `2|E|/n`.
    pub mean: f64,
}

/// Compute [`DegreeStats`]; `None` for the empty graph.
pub fn degree_stats(g: &Graph) -> Option<DegreeStats> {
    let n = g.num_nodes();
    if n == 0 {
        return None;
    }
    Some(DegreeStats {
        min: g.min_degree(),
        max: g.max_degree(),
        mean: g.degree_sum() as f64 / n as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete, cycle, grid2d, path, star};
    use crate::GraphBuilder;

    #[test]
    fn bfs_on_path_counts_hops() {
        let g = path(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).unwrap();
        b.add_edge(2, 3).unwrap();
        let g = b.build();
        assert!(!is_connected(&g));
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(labels, vec![0, 0, 2, 2]);
        assert_eq!(diameter(&g), None);
        assert_eq!(eccentricity(&g, 0), None);
    }

    #[test]
    fn complete_graph_diameter_one() {
        assert_eq!(diameter(&complete(6)), Some(1));
    }

    #[test]
    fn odd_cycle_not_bipartite_even_cycle_is() {
        assert!(!is_bipartite(&cycle(5)));
        assert!(is_bipartite(&cycle(6)));
    }

    #[test]
    fn star_and_grid_bipartite() {
        assert!(is_bipartite(&star(7)));
        assert!(is_bipartite(&grid2d(3, 3)));
        assert!(!is_bipartite(&complete(3)));
    }

    #[test]
    fn degree_stats_star() {
        let s = degree_stats(&star(5)).unwrap();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
        assert!(degree_stats(&GraphBuilder::new(0).build()).is_none());
    }

    #[test]
    fn singleton_graph_trivially_connected() {
        let g = GraphBuilder::new(1).build();
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), Some(0));
        assert!(is_bipartite(&g));
    }
}
