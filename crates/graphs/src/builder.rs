//! Mutable edge-list builder that finalizes into CSR [`Graph`].

use crate::error::GraphError;
use crate::graph::{Graph, NodeId};

/// Accumulates undirected edges, rejects self-loops and out-of-range
/// endpoints, deduplicates parallel edges, and finalizes into a CSR
/// [`Graph`].
///
/// ```
/// use tlb_graphs::GraphBuilder;
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1).unwrap();
/// b.add_edge(1, 0).unwrap(); // duplicate, ignored at build time
/// let g = b.build();
/// assert_eq!(g.num_edges(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_nodes: usize,
    /// Normalized (min, max) endpoint pairs.
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Start a builder for a graph on `num_nodes` nodes (ids `0..num_nodes`).
    pub fn new(num_nodes: usize) -> Self {
        GraphBuilder { num_nodes, edges: Vec::new() }
    }

    /// Start a builder with capacity for `edges` edges pre-reserved.
    pub fn with_edge_capacity(num_nodes: usize, edges: usize) -> Self {
        GraphBuilder { num_nodes, edges: Vec::with_capacity(edges) }
    }

    /// Number of nodes the final graph will have.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of (possibly duplicate) edges recorded so far.
    pub fn num_recorded_edges(&self) -> usize {
        self.edges.len()
    }

    /// Record the undirected edge `(u, v)`.
    ///
    /// # Errors
    /// [`GraphError::SelfLoop`] if `u == v`, [`GraphError::NodeOutOfRange`]
    /// if either endpoint is `>= num_nodes`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop(u as usize));
        }
        for &e in &[u, v] {
            if e as usize >= self.num_nodes {
                return Err(GraphError::NodeOutOfRange {
                    node: e as usize,
                    num_nodes: self.num_nodes,
                });
            }
        }
        self.edges.push((u.min(v), u.max(v)));
        Ok(())
    }

    /// Whether the normalized edge is already recorded. `O(|edges|)` — only
    /// used by randomized generators on small candidate sets; they keep
    /// their own hash sets when it matters.
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        let key = (u.min(v), u.max(v));
        self.edges.contains(&key)
    }

    /// Finalize into a CSR [`Graph`], deduplicating parallel edges.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();

        let n = self.num_nodes;
        let mut degrees = vec![0usize; n];
        for &(u, v) in &self.edges {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }

        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut acc = 0usize;
        for &d in &degrees {
            acc += d;
            offsets.push(acc);
        }

        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as NodeId; acc];
        for &(u, v) in &self.edges {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Each adjacency list must be sorted for binary-search `has_edge`.
        // Edges were inserted in sorted (u, v) order, so `u`'s list receives
        // increasing `v` values, but `v`'s list receives `u`s out of order —
        // sort per list.
        for v in 0..n {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        // The builder already holds per-node degrees; hand the extremes to
        // the graph instead of letting it rescan `offsets.windows(2)`.
        let (min_degree, max_degree) = degrees
            .iter()
            .fold((u32::MAX, 0u32), |(mn, mx), &d| (mn.min(d as u32), mx.max(d as u32)));
        let min_degree = if min_degree == u32::MAX { 0 } else { min_degree };
        Graph::from_csr_with_degree_bounds(offsets, neighbors, min_degree, max_degree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(b.add_edge(1, 1), Err(GraphError::SelfLoop(1)));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(
            b.add_edge(0, 2),
            Err(GraphError::NodeOutOfRange { node: 2, num_nodes: 2 })
        ));
    }

    #[test]
    fn dedups_parallel_edges_both_orientations() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 0).unwrap();
        b.add_edge(0, 1).unwrap();
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn adjacency_lists_are_sorted() {
        let mut b = GraphBuilder::new(6);
        // Insert in deliberately scrambled order around node 5.
        for u in [4, 0, 3, 1, 2] {
            b.add_edge(5, u).unwrap();
        }
        let g = b.build();
        assert_eq!(g.neighbors(5), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn contains_edge_is_orientation_insensitive() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(2, 1).unwrap();
        assert!(b.contains_edge(1, 2));
        assert!(b.contains_edge(2, 1));
        assert!(!b.contains_edge(0, 1));
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
