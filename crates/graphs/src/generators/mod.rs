//! Graph family generators.
//!
//! Every family mentioned by the paper is here:
//!
//! * Table 1 rows — [`complete`], [`random_regular`] (regular expander),
//!   [`erdos_renyi`], [`hypercube`], [`grid2d`]/[`torus2d`];
//! * Observation 8 lower-bound family — [`lollipop`] (clique `K_{n-1}` plus
//!   a pendant node attached by `k` edges, hitting time `Θ(n²/k)`);
//! * auxiliary families used in tests and ablations — [`path`], [`cycle`],
//!   [`star`], [`binary_tree`], [`barbell`].
//!
//! Randomized generators take an explicit `&mut impl Rng` so that every
//! experiment in the harness is reproducible from a single seed.

mod classic;
mod composite;
mod lattice;
mod random;

pub use classic::{binary_tree, complete, cycle, path, star};
pub use composite::{barbell, lollipop};
pub use lattice::{grid2d, hypercube, torus2d};
pub use random::{erdos_renyi, erdos_renyi_connected, random_regular};

/// Enumeration of the Table-1 graph families, used by the experiment
/// harness to sweep over families generically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Complete graph `K_n` — mixing `O(1)`, hitting `O(n)`.
    Complete,
    /// Random d-regular graph (`d ≥ 3`), an expander w.h.p. — mixing
    /// `O(log n)`, hitting `O(n)`.
    RegularExpander,
    /// Erdős–Rényi `G(n, p)` with `p > (1+ε)·ln n / n` — mixing `O(log n)`,
    /// hitting `O(n)`.
    ErdosRenyi,
    /// Boolean hypercube `Q_d`, `n = 2^d` — mixing `O(log n · log log n)`,
    /// hitting `O(n)`.
    Hypercube,
    /// 2-D torus grid `√n × √n` — mixing `O(n)`, hitting `O(n log n)`.
    Grid,
}

impl Family {
    /// All Table-1 families in the paper's row order.
    pub const ALL: [Family; 5] = [
        Family::Complete,
        Family::RegularExpander,
        Family::ErdosRenyi,
        Family::Hypercube,
        Family::Grid,
    ];

    /// Human-readable name matching the paper's Table 1 row labels.
    pub fn name(self) -> &'static str {
        match self {
            Family::Complete => "Complete Graph",
            Family::RegularExpander => "Reg. Expander",
            Family::ErdosRenyi => "Erdos-Renyi Graph",
            Family::Hypercube => "Hypercube",
            Family::Grid => "Grid",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_names_match_paper_rows() {
        let names: Vec<_> = Family::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(
            names,
            vec!["Complete Graph", "Reg. Expander", "Erdos-Renyi Graph", "Hypercube", "Grid"]
        );
    }
}
