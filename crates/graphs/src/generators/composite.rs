//! Composite families used for lower-bound constructions.
//!
//! Observation 8 of the paper builds a graph from a clique `K_{n-1}` plus
//! one extra node `u` attached to exactly `k` clique nodes; its hitting time
//! is `Θ(n²/k)`, which makes the tight-threshold bound
//! `O(H(G)·log m)` demonstrably tight. We call this family [`lollipop`].
//! The related two-clique construction of Hoefer–Sauerwald (their Theorem
//! 3.7) is provided as [`barbell`].

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::{Graph, NodeId};

/// Clique `K_{n-1}` on nodes `0..n-1` plus a single pendant node `n-1`
/// connected to the first `k` clique nodes (`1 ≤ k ≤ n-1`).
///
/// This is the Observation-8 family: `H(G) = Θ(n²/k)`.
pub fn lollipop(n: usize, k: usize) -> Result<Graph, GraphError> {
    if n < 2 {
        return Err(GraphError::InvalidParameters(format!("lollipop needs n >= 2, got {n}")));
    }
    if k == 0 || k > n - 1 {
        return Err(GraphError::InvalidParameters(format!(
            "lollipop attachment k = {k} outside [1, n-1 = {}]",
            n - 1
        )));
    }
    let clique = n - 1;
    let mut b = GraphBuilder::with_edge_capacity(n, clique * (clique - 1) / 2 + k);
    for u in 0..clique as NodeId {
        for v in (u + 1)..clique as NodeId {
            b.add_edge(u, v).expect("validated endpoints");
        }
    }
    let pendant = (n - 1) as NodeId;
    for v in 0..k as NodeId {
        b.add_edge(pendant, v).expect("validated endpoints");
    }
    Ok(b.build())
}

/// Two cliques of size `n_half` each, joined by `k` parallel "bridge" edges
/// between distinct node pairs (`1 ≤ k ≤ n_half`). Hoefer–Sauerwald's
/// lower-bound family.
pub fn barbell(n_half: usize, k: usize) -> Result<Graph, GraphError> {
    if n_half < 2 {
        return Err(GraphError::InvalidParameters(format!(
            "barbell needs clique size >= 2, got {n_half}"
        )));
    }
    if k == 0 || k > n_half {
        return Err(GraphError::InvalidParameters(format!(
            "barbell bridge count k = {k} outside [1, {n_half}]"
        )));
    }
    let n = 2 * n_half;
    let mut b = GraphBuilder::with_edge_capacity(n, n_half * (n_half - 1) + k);
    for offset in [0usize, n_half] {
        for u in 0..n_half {
            for v in (u + 1)..n_half {
                b.add_edge((offset + u) as NodeId, (offset + v) as NodeId)
                    .expect("validated endpoints");
            }
        }
    }
    for i in 0..k {
        b.add_edge(i as NodeId, (n_half + i) as NodeId).expect("validated endpoints");
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn lollipop_structure() {
        let n = 10;
        let k = 3;
        let g = lollipop(n, k).unwrap();
        assert_eq!(g.num_nodes(), n);
        let clique = n - 1;
        assert_eq!(g.num_edges(), clique * (clique - 1) / 2 + k);
        let pendant = (n - 1) as NodeId;
        assert_eq!(g.degree(pendant), k);
        assert!(algo::is_connected(&g));
        // attached clique nodes have degree clique-1+1
        assert_eq!(g.degree(0), clique);
        assert_eq!(g.degree((k) as NodeId), clique - 1);
    }

    #[test]
    fn lollipop_rejects_bad_k() {
        assert!(lollipop(10, 0).is_err());
        assert!(lollipop(10, 10).is_err());
        assert!(lollipop(1, 1).is_err());
        assert!(lollipop(10, 9).is_ok()); // pendant attached to every clique node
    }

    #[test]
    fn barbell_structure() {
        let g = barbell(5, 2).unwrap();
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.num_edges(), 2 * 10 + 2);
        assert!(algo::is_connected(&g));
        assert!(g.has_edge(0, 5));
        assert!(g.has_edge(1, 6));
        assert!(!g.has_edge(2, 7));
    }

    #[test]
    fn barbell_rejects_bad_parameters() {
        assert!(barbell(1, 1).is_err());
        assert!(barbell(5, 0).is_err());
        assert!(barbell(5, 6).is_err());
    }
}
