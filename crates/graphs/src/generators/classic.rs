//! Deterministic classic families: complete, path, cycle, star, binary tree.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};

/// Complete graph `K_n`. The paper's user-controlled protocol (Section 6)
/// and all of its Section-7 simulations live on this family.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::with_edge_capacity(n, n * n.saturating_sub(1) / 2);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            b.add_edge(u, v).expect("complete-graph edges are always valid");
        }
    }
    b.build()
}

/// Path `P_n`: `0 — 1 — … — n-1`. Worst-case-ish mixing; used in tests.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::with_edge_capacity(n, n.saturating_sub(1));
    for u in 1..n as NodeId {
        b.add_edge(u - 1, u).expect("path edges are always valid");
    }
    b.build()
}

/// Cycle `C_n`. Requires `n >= 3` to stay simple; smaller `n` degrades to a
/// path.
pub fn cycle(n: usize) -> Graph {
    if n < 3 {
        return path(n);
    }
    let mut b = GraphBuilder::with_edge_capacity(n, n);
    for u in 0..n as NodeId {
        let v = (u + 1) % n as NodeId;
        b.add_edge(u, v).expect("cycle edges are always valid");
    }
    b.build()
}

/// Star `S_n`: node 0 is the hub, nodes `1..n` are leaves.
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::with_edge_capacity(n, n.saturating_sub(1));
    for v in 1..n as NodeId {
        b.add_edge(0, v).expect("star edges are always valid");
    }
    b.build()
}

/// Complete binary tree on `n` nodes in heap order (children of `v` are
/// `2v+1`, `2v+2`).
pub fn binary_tree(n: usize) -> Graph {
    let mut b = GraphBuilder::with_edge_capacity(n, n.saturating_sub(1));
    for v in 1..n {
        let parent = ((v - 1) / 2) as NodeId;
        b.add_edge(parent, v as NodeId).expect("tree edges are always valid");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn complete_counts() {
        for n in [1usize, 2, 5, 17] {
            let g = complete(n);
            assert_eq!(g.num_nodes(), n);
            assert_eq!(g.num_edges(), n * (n - 1) / 2);
            assert!(g.is_regular());
            if n > 1 {
                assert_eq!(g.max_degree() as usize, n - 1);
            }
        }
    }

    #[test]
    fn path_is_a_tree() {
        let g = path(10);
        assert_eq!(g.num_edges(), 9);
        assert!(algo::is_connected(&g));
        assert_eq!(algo::diameter(&g), Some(9));
    }

    #[test]
    fn cycle_is_two_regular() {
        let g = cycle(8);
        assert_eq!(g.num_edges(), 8);
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 2);
        assert_eq!(algo::diameter(&g), Some(4));
    }

    #[test]
    fn tiny_cycles_degrade_to_paths() {
        assert_eq!(cycle(2).num_edges(), 1);
        assert_eq!(cycle(1).num_edges(), 0);
        assert_eq!(cycle(0).num_nodes(), 0);
    }

    #[test]
    fn star_has_hub() {
        let g = star(6);
        assert_eq!(g.degree(0), 5);
        assert!((1..6).all(|v| g.degree(v) == 1));
        assert_eq!(algo::diameter(&g), Some(2));
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(7);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3); // parent 0, children 3 and 4
        assert!(algo::is_connected(&g));
        assert!(algo::is_bipartite(&g));
    }
}
