//! Lattice families: 2-D grid, 2-D torus, boolean hypercube.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};

/// Open (non-wrapping) `rows × cols` grid. Node `(r, c)` has id
/// `r * cols + c`.
///
/// The paper's Table 1 "Grid" row is the 2-D grid with `n` nodes: mixing
/// time `O(n)`, hitting time `O(n log n)`.
pub fn grid2d(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut b = GraphBuilder::with_edge_capacity(n, 2 * n);
    for r in 0..rows {
        for c in 0..cols {
            let id = (r * cols + c) as NodeId;
            if c + 1 < cols {
                b.add_edge(id, id + 1).expect("grid edges are valid");
            }
            if r + 1 < rows {
                b.add_edge(id, id + cols as NodeId).expect("grid edges are valid");
            }
        }
    }
    b.build()
}

/// Wrapping `rows × cols` torus. Degree-4-regular when both sides are
/// `>= 3`. Preferred in Table-1 sweeps because regularity removes the
/// boundary effects of the open grid without changing the asymptotics.
pub fn torus2d(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut b = GraphBuilder::with_edge_capacity(n, 2 * n);
    for r in 0..rows {
        for c in 0..cols {
            let id = (r * cols + c) as NodeId;
            let right = (r * cols + (c + 1) % cols) as NodeId;
            let down = (((r + 1) % rows) * cols + c) as NodeId;
            if right != id {
                b.add_edge(id, right).expect("torus edges are valid");
            }
            if down != id {
                b.add_edge(id, down).expect("torus edges are valid");
            }
        }
    }
    b.build()
}

/// Boolean hypercube `Q_dim` on `n = 2^dim` nodes; nodes adjacent iff their
/// ids differ in exactly one bit. Table-1 row: mixing
/// `O(log n · log log n)`, hitting `O(n)`.
///
/// # Panics
/// If `dim >= 32` (node ids are `u32`).
pub fn hypercube(dim: u32) -> Graph {
    assert!(dim < 32, "hypercube dimension must fit in u32 node ids");
    let n = 1usize << dim;
    let mut b = GraphBuilder::with_edge_capacity(n, n * dim as usize / 2);
    for v in 0..n as NodeId {
        for bit in 0..dim {
            let u = v ^ (1 << bit);
            if v < u {
                b.add_edge(v, u).expect("hypercube edges are valid");
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn grid_counts_and_shape() {
        let g = grid2d(3, 4);
        assert_eq!(g.num_nodes(), 12);
        // edges: horizontal 3*3 + vertical 2*4 = 17
        assert_eq!(g.num_edges(), 17);
        assert!(algo::is_connected(&g));
        assert!(algo::is_bipartite(&g));
        assert_eq!(algo::diameter(&g), Some(5)); // (3-1)+(4-1)

        // corner degree 2, interior degree 4
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(5), 4);
    }

    #[test]
    fn torus_is_four_regular() {
        let g = torus2d(4, 5);
        assert_eq!(g.num_nodes(), 20);
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.num_edges(), 40);
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn small_torus_degenerates_gracefully() {
        // 2-wide torus would create parallel edges; builder dedups them, so
        // the graph stays simple (degree 3 instead of 4).
        let g = torus2d(2, 3);
        assert_eq!(g.num_nodes(), 6);
        assert!(g.nodes().all(|v| g.degree(v) <= 4));
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(3);
        assert_eq!(g.num_nodes(), 8);
        assert_eq!(g.num_edges(), 12);
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 3);
        assert_eq!(algo::diameter(&g), Some(3));
        assert!(algo::is_bipartite(&g));
        // 0b000 adjacent to 0b001, 0b010, 0b100
        assert_eq!(g.neighbors(0), &[1, 2, 4]);
    }

    #[test]
    fn hypercube_dim_zero_is_single_node() {
        let g = hypercube(0);
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 0);
    }
}
