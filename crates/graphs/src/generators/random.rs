//! Randomized families: Erdős–Rényi `G(n, p)` and random `d`-regular graphs
//! (the paper's "Reg. Expander" row — random regular graphs with `d ≥ 3`
//! are expanders with high probability).

use rand::Rng;

use crate::algo;
use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::{Graph, NodeId};

/// Erdős–Rényi `G(n, p)`: every unordered pair is an edge independently
/// with probability `p`.
///
/// Table 1 assumes `p > (1+ε)·ln n / n`, above the connectivity threshold;
/// use [`erdos_renyi_connected`] when connectivity must hold (it resamples).
///
/// Sampling uses geometric skipping over the `n(n-1)/2` pair indices, so the
/// cost is `O(n + |E|)` rather than `O(n²)` for sparse `p`.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Result<Graph, GraphError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameters(format!("p = {p} outside [0, 1]")));
    }
    let mut b = GraphBuilder::new(n);
    if n < 2 || p == 0.0 {
        return Ok(b.build());
    }
    let total_pairs = n * (n - 1) / 2;
    if p >= 1.0 {
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                b.add_edge(u, v).expect("validated endpoints");
            }
        }
        return Ok(b.build());
    }
    // Geometric skipping: the index of the next present pair after position
    // i is i + 1 + Geom(p).
    let log1mp = (1.0 - p).ln();
    let mut idx: usize = 0;
    // Start with a geometric offset for the first edge.
    let mut first = true;
    while idx < total_pairs {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = (u.ln() / log1mp).floor() as usize;
        idx = if first { skip } else { idx + 1 + skip };
        first = false;
        if idx >= total_pairs {
            break;
        }
        let (a, b_) = pair_from_index(idx, n);
        b.add_edge(a, b_).expect("validated endpoints");
    }
    Ok(b.build())
}

/// Decode pair index `k ∈ [0, n(n-1)/2)` into the `k`-th unordered pair
/// `(u, v)`, `u < v`, in row-major order (`(0,1), (0,2), …, (0,n-1), (1,2), …`).
fn pair_from_index(k: usize, n: usize) -> (NodeId, NodeId) {
    // Row u starts at offset u*n - u*(u+1)/2 - u... derive by scanning rows;
    // binary search keeps this O(log n).
    let row_start = |u: usize| -> usize { u * (2 * n - u - 1) / 2 };
    let (mut lo, mut hi) = (0usize, n - 1);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if row_start(mid) <= k {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let u = lo;
    let v = u + 1 + (k - row_start(u));
    (u as NodeId, v as NodeId)
}

/// Erdős–Rényi conditioned on connectivity: resamples until connected, up
/// to `max_attempts` times.
pub fn erdos_renyi_connected<R: Rng + ?Sized>(
    n: usize,
    p: f64,
    max_attempts: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    for _ in 0..max_attempts {
        let g = erdos_renyi(n, p, rng)?;
        if algo::is_connected(&g) {
            return Ok(g);
        }
    }
    Err(GraphError::GenerationFailed(format!(
        "no connected G({n}, {p}) after {max_attempts} attempts; p likely below threshold"
    )))
}

/// Random `d`-regular graph via circulant seeding plus double-edge-swap
/// randomization.
///
/// A deterministic circulant `d`-regular graph is randomized by `~30·|E|`
/// double edge swaps (`(a,b),(c,d) → (a,d),(c,b)`), the standard Markov
/// chain whose stationary distribution is uniform over simple `d`-regular
/// graphs. Unlike the configuration model this never rejects wholesale, so
/// it is robust for every feasible `(n, d)`. For `d ≥ 3` the result is an
/// expander w.h.p. — the "Reg. Expander" row of Table 1 (mixing `O(log n)`,
/// hitting `O(n)`). For `d ≥ 3` connectivity is verified and swaps continue
/// until it holds.
///
/// # Errors
/// `InvalidParameters` if `n·d` is odd or `d ≥ n`; `GenerationFailed` if
/// connectivity cannot be restored within the retry budget (requires
/// adversarially tiny graphs).
pub fn random_regular<R: Rng + ?Sized>(
    n: usize,
    d: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if d >= n && !(n <= 1 && d == 0) {
        return Err(GraphError::InvalidParameters(format!("degree {d} >= n = {n}")));
    }
    if !(n * d).is_multiple_of(2) {
        return Err(GraphError::InvalidParameters(format!("n*d = {} is odd", n * d)));
    }
    if d == 0 {
        return Ok(GraphBuilder::new(n).build());
    }

    // Circulant seed: node i connects to i±1, …, i±⌊d/2⌋ (mod n), plus the
    // antipode i + n/2 when d is odd (then n is even by the parity check).
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(n * d / 2);
    let mut present: std::collections::HashSet<(NodeId, NodeId)> =
        std::collections::HashSet::with_capacity(n * d / 2);
    let push = |edges: &mut Vec<(NodeId, NodeId)>,
                present: &mut std::collections::HashSet<(NodeId, NodeId)>,
                u: NodeId,
                v: NodeId| {
        let key = (u.min(v), u.max(v));
        if present.insert(key) {
            edges.push(key);
        }
    };
    for i in 0..n {
        for j in 1..=(d / 2) {
            let u = i as NodeId;
            let v = ((i + j) % n) as NodeId;
            push(&mut edges, &mut present, u, v);
        }
    }
    if d % 2 == 1 {
        for i in 0..n / 2 {
            push(&mut edges, &mut present, i as NodeId, (i + n / 2) as NodeId);
        }
    }
    debug_assert_eq!(edges.len(), n * d / 2, "circulant seed must be exactly d-regular");

    // Double-edge-swap randomization.
    let m = edges.len();
    let budget = 30 * m.max(8);
    const MAX_ROUNDS: usize = 50;
    for _round in 0..MAX_ROUNDS {
        let mut _accepted = 0usize;
        for _ in 0..budget {
            if m < 2 {
                break;
            }
            let i = rng.gen_range(0..m);
            let j = rng.gen_range(0..m);
            if i == j {
                continue;
            }
            let (a, b) = edges[i];
            let (mut c, mut dd) = edges[j];
            if rng.gen::<bool>() {
                std::mem::swap(&mut c, &mut dd);
            }
            // Proposed replacement: (a, c) and (b, dd).
            if a == c || b == dd {
                continue;
            }
            let e1 = (a.min(c), a.max(c));
            let e2 = (b.min(dd), b.max(dd));
            if e1 == e2 || present.contains(&e1) || present.contains(&e2) {
                continue;
            }
            present.remove(&edges[i]);
            present.remove(&(c.min(dd), c.max(dd)));
            present.insert(e1);
            present.insert(e2);
            edges[i] = e1;
            edges[j] = e2;
            _accepted += 1;
        }
        let g = {
            let mut b = GraphBuilder::with_edge_capacity(n, m);
            for &(u, v) in &edges {
                b.add_edge(u, v).expect("swap chain preserves simplicity");
            }
            b.build()
        };
        debug_assert!(g.is_regular());
        // d = 1 is a perfect matching and d = 2 a union of cycles — neither
        // is necessarily connected, and callers asking for them know that.
        if d < 3 || algo::is_connected(&g) {
            return Ok(g);
        }
        // Disconnected (rare for d >= 3): keep swapping — the chain is
        // irreducible over all simple d-regular graphs, so more swaps can
        // merge components.
    }
    Err(GraphError::GenerationFailed(format!(
        "could not reach a connected {d}-regular graph on {n} nodes after {MAX_ROUNDS} swap rounds"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pair_index_roundtrip_small_n() {
        let n = 7;
        let mut k = 0;
        for u in 0..n {
            for v in (u + 1)..n {
                assert_eq!(pair_from_index(k, n), (u as NodeId, v as NodeId));
                k += 1;
            }
        }
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let empty = erdos_renyi(10, 0.0, &mut rng).unwrap();
        assert_eq!(empty.num_edges(), 0);
        let full = erdos_renyi(10, 1.0, &mut rng).unwrap();
        assert_eq!(full.num_edges(), 45);
        assert!(erdos_renyi(10, 1.5, &mut rng).is_err());
        assert!(erdos_renyi(10, -0.1, &mut rng).is_err());
    }

    #[test]
    fn gnp_edge_count_concentrates() {
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 200;
        let p = 0.1;
        let trials = 20;
        let mean: f64 = (0..trials)
            .map(|_| erdos_renyi(n, p, &mut rng).unwrap().num_edges() as f64)
            .sum::<f64>()
            / trials as f64;
        let expected = p * (n * (n - 1) / 2) as f64;
        assert!(
            (mean - expected).abs() < 0.05 * expected,
            "mean {mean} far from expected {expected}"
        );
    }

    #[test]
    fn gnp_connected_above_threshold() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 100;
        let p = 2.0 * (n as f64).ln() / n as f64;
        let g = erdos_renyi_connected(n, p, 50, &mut rng).unwrap();
        assert!(crate::algo::is_connected(&g));
    }

    #[test]
    fn regular_graph_is_regular_and_connected() {
        let mut rng = SmallRng::seed_from_u64(3);
        for (n, d) in [(10, 3), (50, 4), (64, 3), (30, 6)] {
            let g = random_regular(n, d, &mut rng).unwrap();
            assert_eq!(g.num_nodes(), n);
            assert!(g.is_regular(), "n={n} d={d}");
            assert_eq!(g.max_degree() as usize, d);
            assert!(crate::algo::is_connected(&g));
        }
    }

    #[test]
    fn regular_rejects_bad_parameters() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(random_regular(5, 3, &mut rng).is_err()); // odd n*d
        assert!(random_regular(4, 4, &mut rng).is_err()); // d >= n
    }

    #[test]
    fn regular_degree_zero_is_empty() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = random_regular(6, 0, &mut rng).unwrap();
        assert_eq!(g.num_edges(), 0);
    }
}
