//! # tlb-graphs
//!
//! Graph substrate for the *Threshold Load Balancing with Weighted Tasks*
//! reproduction (Berenbrink, Friedetzky, Mallmann-Trenn, Meshkinfamfard,
//! Wastell — JPDC 2018 / IPPS 2015).
//!
//! The paper's resources form the nodes of an arbitrary undirected graph
//! `G = (V, E)`; tasks on a resource may only migrate along edges of `G`
//! (Section 4 of the paper). This crate provides:
//!
//! * a compact immutable [`Graph`] in CSR (compressed sparse row) form,
//! * a mutable [`GraphBuilder`] for constructing graphs edge by edge,
//! * a [`DynamicGraph`] churn overlay (node activate/deactivate, edge
//!   add/remove over a CSR base, with compaction back to CSR) for the
//!   online simulation's dynamic topologies,
//! * a [`Partition`] view splitting the node id space into contiguous
//!   shard ranges for the sharded online engine,
//! * [`generators`] for every graph family the paper's Table 1 and
//!   Observation 8 refer to (complete, expander, Erdős–Rényi, hypercube,
//!   grid, and the lollipop lower-bound family),
//! * [`algo`] with the traversal/validation routines the rest of the
//!   workspace relies on (connectivity, diameter, bipartiteness, …).
//!
//! Graphs are *simple* (no self-loops, no parallel edges) and undirected.
//! Self-loop behaviour needed by the paper's max-degree random walk
//! (`P_{ii} = (d - d_i)/d`) is handled in `tlb-walks`, not here — the walk's
//! laziness is a property of the chain, not of `G`.
//!
//! ## Quick example
//!
//! ```
//! use tlb_graphs::generators::hypercube;
//! use tlb_graphs::algo;
//!
//! let g = hypercube(4); // 16 nodes, degree 4
//! assert_eq!(g.num_nodes(), 16);
//! assert!(algo::is_connected(&g));
//! assert_eq!(algo::diameter(&g), Some(4));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algo;
pub mod builder;
pub mod dynamic;
pub mod error;
pub mod generators;
pub mod graph;
pub mod io;
pub mod partition;

pub use builder::GraphBuilder;
pub use dynamic::{DynamicDelta, DynamicGraph};
pub use error::GraphError;
pub use graph::{Graph, NodeId};
pub use partition::Partition;
