//! Contiguous node-range partitions — the shard layout of the scaled
//! online engine.
//!
//! A [`Partition`] splits the node id space `0..n` into `k` contiguous,
//! disjoint, covering ranges ("shards"). Contiguity is what makes shards
//! cheap: a shard's per-resource state is a plain sub-`Vec` of the global
//! state arrays (see `tlb_core::fragment`), splitting and re-joining are
//! `O(k)` pointer moves, and mapping a node to its shard is a binary
//! search over `k+1` boundaries. The layout is a pure function of
//! `(n, k)`, never of scheduling, so sharded runs can be reproduced
//! bit-for-bit at any shard count.

use serde::{Deserialize, Serialize};

use crate::dynamic::DynamicGraph;
use crate::graph::NodeId;

/// A partition of the node ids `0..n` into contiguous shard ranges.
///
/// Shard `s` owns `bounds[s]..bounds[s+1]`; ranges are ascending,
/// disjoint, and cover `0..n`. [`Partition::contiguous`] balances sizes
/// to within one node (the first `n mod k` shards get the extra node).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// `k + 1` ascending boundaries: `bounds[0] = 0`, `bounds[k] = n`.
    bounds: Vec<NodeId>,
}

impl Partition {
    /// Evenly partition `0..n` into `shards` contiguous ranges. The shard
    /// count is clamped to `1..=max(n, 1)`, so asking for more shards
    /// than nodes degrades gracefully instead of creating empty shards.
    ///
    /// # Panics
    /// If `n` does not fit a `NodeId` (`u32`).
    pub fn contiguous(n: usize, shards: usize) -> Self {
        let n32 = NodeId::try_from(n).expect("node count must fit a u32 node id");
        let k = shards.clamp(1, n.max(1));
        let (base, extra) = (n / k, n % k);
        let mut bounds = Vec::with_capacity(k + 1);
        let mut at = 0usize;
        bounds.push(0);
        for s in 0..k {
            at += base + usize::from(s < extra);
            bounds.push(at as NodeId);
        }
        debug_assert_eq!(*bounds.last().unwrap(), n32);
        Partition { bounds }
    }

    /// Number of shards `k`.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Number of nodes `n` covered by the partition.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        *self.bounds.last().unwrap() as usize
    }

    /// The node range shard `s` owns.
    #[inline]
    pub fn range(&self, s: usize) -> core::ops::Range<NodeId> {
        self.bounds[s]..self.bounds[s + 1]
    }

    /// Iterate over all shard ranges in shard order.
    pub fn ranges(&self) -> impl Iterator<Item = core::ops::Range<NodeId>> + '_ {
        (0..self.num_shards()).map(|s| self.range(s))
    }

    /// The shard owning node `v`.
    ///
    /// # Panics
    /// If `v >= n`.
    #[inline]
    pub fn shard_of(&self, v: NodeId) -> usize {
        assert!((v as usize) < self.num_nodes(), "node {v} outside the partitioned id space");
        // First boundary strictly above v, minus one, is v's shard.
        self.bounds.partition_point(|&b| b <= v) - 1
    }
}

impl DynamicGraph {
    /// Partition this graph's node id space into `shards` contiguous
    /// ranges (the shard layout covers *all* ids, active or not, so it
    /// stays valid across churn without re-partitioning).
    pub fn partition(&self, shards: usize) -> Partition {
        Partition::contiguous(self.num_nodes(), shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::complete;

    #[test]
    fn even_split_covers_and_balances() {
        for n in [1usize, 2, 7, 16, 100, 101] {
            for k in [1usize, 2, 3, 4, 7, 200] {
                let p = Partition::contiguous(n, k);
                assert_eq!(p.num_nodes(), n);
                assert_eq!(p.num_shards(), k.clamp(1, n));
                // Ranges are ascending, disjoint, covering, balanced ±1.
                let mut at = 0;
                let (mut min_len, mut max_len) = (usize::MAX, 0);
                for r in p.ranges() {
                    assert_eq!(r.start, at);
                    assert!(r.end > r.start, "empty shard in {p:?}");
                    min_len = min_len.min(r.len());
                    max_len = max_len.max(r.len());
                    at = r.end;
                }
                assert_eq!(at as usize, n);
                assert!(max_len - min_len <= 1, "unbalanced: {p:?}");
            }
        }
    }

    #[test]
    fn shard_of_matches_ranges() {
        let p = Partition::contiguous(23, 5);
        for s in 0..p.num_shards() {
            for v in p.range(s) {
                assert_eq!(p.shard_of(v), s);
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside the partitioned id space")]
    fn shard_of_rejects_out_of_range_ids() {
        Partition::contiguous(8, 2).shard_of(8);
    }

    #[test]
    fn dynamic_graph_partitions_its_full_id_space() {
        let mut dg = DynamicGraph::new(complete(10));
        dg.deactivate(3);
        let p = dg.partition(4);
        // Inactive nodes keep their slot: the layout ignores churn.
        assert_eq!(p.num_nodes(), 10);
        assert_eq!(p.num_shards(), 4);
    }

    #[test]
    fn single_shard_is_the_whole_range() {
        let p = Partition::contiguous(9, 1);
        assert_eq!(p.range(0), 0..9);
        assert_eq!(p.shard_of(8), 0);
    }
}
