//! Immutable CSR graph storage.
//!
//! The protocols in the paper run millions of neighbour lookups per
//! simulation (every migrating task samples a neighbour each round), so the
//! representation is a flat CSR layout: one `offsets` array of length
//! `n + 1` and one `neighbors` array of length `2|E|`. Neighbour lists are
//! sorted, which makes `has_edge` a binary search and keeps iteration
//! cache-friendly.

use serde::{Deserialize, Serialize};

/// Identifier of a node (resource). Kept at `u32` deliberately: Table-1
/// sweeps use up to a few million nodes and halving the index width keeps
/// the CSR arrays in cache (see the type-size guidance in the Rust
/// performance book).
pub type NodeId = u32;

/// An immutable, undirected, simple graph in CSR form.
///
/// Construct via [`crate::GraphBuilder`] or the [`crate::generators`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for node `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted adjacency lists; length `2 * num_edges`.
    neighbors: Vec<NodeId>,
    /// Cached maximum degree (0 for the empty graph).
    max_degree: u32,
    /// Cached minimum degree (0 for the empty graph). Cached alongside
    /// `max_degree` so regularity checks (`min == max`, the batched walk
    /// kernel's fast-path gate) and isolated-node validation are `O(1)`.
    min_degree: u32,
}

impl Graph {
    /// Build directly from CSR parts with degree bounds the caller
    /// already knows. Internal — callers use the builder, which owns a
    /// per-node degree array anyway, so million-node snapshot
    /// materialization (`DynamicGraph::snapshot`/`compact`, both routed
    /// through the builder) no longer pays a full `offsets` rescan per
    /// construction. Debug builds re-derive the extremes and assert.
    pub(crate) fn from_csr_with_degree_bounds(
        offsets: Vec<usize>,
        neighbors: Vec<NodeId>,
        min_degree: u32,
        max_degree: u32,
    ) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap(), neighbors.len());
        debug_assert_eq!(
            (min_degree, max_degree),
            {
                let (mn, mx) = offsets.windows(2).fold((u32::MAX, 0), |(mn, mx), w| {
                    let d = (w[1] - w[0]) as u32;
                    (mn.min(d), mx.max(d))
                });
                (if mn == u32::MAX { 0 } else { mn }, mx)
            },
            "caller-supplied degree bounds disagree with the CSR layout"
        );
        Graph { offsets, neighbors, max_degree, min_degree }
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Maximum degree `d` over all nodes — the normalizer of the paper's
    /// max-degree random walk (`P_{ij} = 1/d`).
    #[inline]
    pub fn max_degree(&self) -> u32 {
        self.max_degree
    }

    /// Minimum degree over all nodes (0 for the empty graph).
    #[inline]
    pub fn min_degree(&self) -> u32 {
        self.min_degree
    }

    /// Sorted neighbour slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// The whole concatenated adjacency array (CSR values, length
    /// `2|E|`). On a `d`-regular graph every row has exactly `d` entries,
    /// so `offsets[v] = v·d` and node `v`'s neighbours are
    /// `flat[v·d .. (v+1)·d]` — the batched walk kernel uses this to skip
    /// the per-node offset loads entirely on regular graphs.
    #[inline]
    pub fn neighbors_flat(&self) -> &[NodeId] {
        &self.neighbors
    }

    /// Whether the undirected edge `(u, v)` exists. `O(log deg(u))`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterate every undirected edge once, as ordered pairs `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.num_nodes() as NodeId).flat_map(move |u| {
            self.neighbors(u).iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// Iterate all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.num_nodes() as NodeId
    }

    /// Sum of degrees == `2|E|` (handshake lemma; used by tests and the
    /// walk substrate to size buffers).
    pub fn degree_sum(&self) -> usize {
        self.neighbors.len()
    }

    /// `true` if the graph is `d`-regular. `O(1)` via the cached degree
    /// extremes.
    #[inline]
    pub fn is_regular(&self) -> bool {
        self.min_degree == self.max_degree
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;

    #[test]
    fn triangle_basic_accessors() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        b.add_edge(0, 2).unwrap();
        let g = b.build();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 2);
        assert!(g.is_regular());
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree_sum(), 6);
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).unwrap();
        b.add_edge(2, 3).unwrap();
        b.add_edge(1, 2).unwrap();
        let g = b.build();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn isolated_nodes_have_degree_zero() {
        let b = GraphBuilder::new(5);
        let g = b.build();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!((0..5).all(|v| g.degree(v) == 0));
    }

    #[test]
    fn star_is_not_regular() {
        let mut b = GraphBuilder::new(4);
        for v in 1..4 {
            b.add_edge(0, v).unwrap();
        }
        let g = b.build();
        assert!(!g.is_regular());
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.min_degree(), 1);
    }
}
