//! Error type for graph construction and generator parameter validation.

use std::fmt;

/// Errors raised while building graphs or validating generator parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An endpoint referenced a node id `>= n`.
    NodeOutOfRange {
        /// Offending node id.
        node: usize,
        /// Number of nodes in the graph under construction.
        num_nodes: usize,
    },
    /// A self-loop `(v, v)` was added; graphs here are simple.
    SelfLoop(
        /// The node that was connected to itself.
        usize,
    ),
    /// Generator parameters are infeasible (e.g. `n*d` odd for a d-regular
    /// graph, or `k >= n` for the lollipop family).
    InvalidParameters(String),
    /// A randomized generator failed to produce a valid graph within its
    /// retry budget (possible for random regular graphs with adversarial
    /// parameters).
    GenerationFailed(String),
    /// A checkpoint delta did not match the reference graph it was
    /// replayed over (wrong node count, or an edge diff the reference
    /// cannot absorb) — the snapshot and the regenerated base disagree.
    DeltaMismatch(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range for graph with {num_nodes} nodes")
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop on node {v} (graphs are simple)"),
            GraphError::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
            GraphError::GenerationFailed(msg) => write!(f, "generation failed: {msg}"),
            GraphError::DeltaMismatch(msg) => write!(f, "delta mismatch: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfRange { node: 7, num_nodes: 5 };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('5'));
        assert!(GraphError::SelfLoop(3).to_string().contains('3'));
        assert!(GraphError::InvalidParameters("bad".into()).to_string().contains("bad"));
        assert!(GraphError::GenerationFailed("oops".into()).to_string().contains("oops"));
    }
}
