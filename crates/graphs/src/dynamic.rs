//! Mutable churn overlay over an immutable CSR [`Graph`].
//!
//! The online simulation needs resources that join and leave and links
//! that appear and disappear while the protocols keep running. Rebuilding
//! the CSR on every churn event would dominate the epoch loop, so
//! [`DynamicGraph`] keeps the last compacted CSR as a *base* plus small
//! deltas on top of it:
//!
//! * an **active mask** — a deactivated node (a drained rack, a failed
//!   resource) keeps its edges in the base, they are merely hidden; the
//!   node can be reactivated with its neighbourhood intact,
//! * per-node **added** adjacency lists for edges not in the base,
//! * per-node **removed** adjacency lists hiding base edges.
//!
//! The *effective* graph at any moment is: base edges, minus removed,
//! plus added, restricted to edges whose two endpoints are both active.
//! [`DynamicGraph::snapshot`] materializes exactly that effective graph as
//! a CSR [`Graph`] (inactive nodes stay in the id space as isolated
//! nodes, so task locations remain valid) — this is what the walk kernels
//! consume. [`DynamicGraph::compact`] folds the deltas back into the base
//! so overlay queries stay `O(deg)` after long churn sequences; it is a
//! pure representation change and never alters the effective graph.

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};

/// A serializable description of a [`DynamicGraph`]'s divergence from a
/// *reference* base CSR: the active mask plus the canonical edge diff of
/// the stored edge set (base − removed + added, ignoring activity)
/// against the reference's edges. Checkpoints persist this instead of
/// the graph itself, so a snapshot costs `O(churn)` rather than `O(E)`
/// bytes and never materializes the base CSR; restoring replays the diff
/// over a freshly supplied copy of the reference
/// ([`DynamicGraph::from_delta`]).
///
/// The diff is canonical — computed against the reference, not against
/// the overlay's internal base (which [`DynamicGraph::compact`] rewrites
/// freely) — so two overlays with the same effective graph produce the
/// same delta regardless of their compaction history.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynamicDelta {
    /// Node count of the reference (restore validates against it).
    pub num_nodes: usize,
    /// Active mask (index = node id).
    pub active: Vec<bool>,
    /// Edges in the stored set but not in the reference, as `(u, v)`
    /// pairs with `u < v`, sorted.
    pub added: Vec<(NodeId, NodeId)>,
    /// Reference edges missing from the stored set, as `(u, v)` pairs
    /// with `u < v`, sorted.
    pub removed: Vec<(NodeId, NodeId)>,
}

/// A CSR base graph plus churn deltas (active mask, added/removed edges).
#[derive(Debug, Clone)]
pub struct DynamicGraph {
    base: Graph,
    active: Vec<bool>,
    /// Sorted per-node adjacency of edges added on top of the base
    /// (symmetric: an edge appears in both endpoints' lists).
    added: Vec<Vec<NodeId>>,
    /// Sorted per-node adjacency of base edges currently removed
    /// (symmetric).
    removed: Vec<Vec<NodeId>>,
    /// Edge add/remove operations since the last compaction.
    delta_ops: usize,
}

impl DynamicGraph {
    /// Wrap a CSR base graph; every node starts active, no deltas.
    pub fn new(base: Graph) -> Self {
        let n = base.num_nodes();
        DynamicGraph {
            base,
            active: vec![true; n],
            added: vec![Vec::new(); n],
            removed: vec![Vec::new(); n],
            delta_ops: 0,
        }
    }

    /// Number of nodes in the id space (active or not).
    pub fn num_nodes(&self) -> usize {
        self.base.num_nodes()
    }

    /// Number of active nodes.
    pub fn num_active(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Whether node `v` is active.
    ///
    /// # Panics
    /// If `v` is out of range.
    pub fn is_active(&self, v: NodeId) -> bool {
        self.active[v as usize]
    }

    /// Deactivate node `v` (resource leaves). Its incident edges are
    /// hidden, not deleted: reactivation restores them. Returns `false`
    /// if `v` was already inactive.
    pub fn deactivate(&mut self, v: NodeId) -> bool {
        std::mem::replace(&mut self.active[v as usize], false)
    }

    /// Reactivate node `v` (resource rejoins with its old neighbourhood).
    /// Returns `false` if `v` was already active.
    pub fn activate(&mut self, v: NodeId) -> bool {
        !std::mem::replace(&mut self.active[v as usize], true)
    }

    /// Whether the undirected edge `(u, v)` exists in the effective graph
    /// (both endpoints active and the edge not removed).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if !self.active[u as usize] || !self.active[v as usize] {
            return false;
        }
        self.has_edge_ignoring_activity(u, v)
    }

    /// Edge existence in the *stored* edge set (base − removed + added),
    /// ignoring the active mask — the set compaction preserves.
    fn has_edge_ignoring_activity(&self, u: NodeId, v: NodeId) -> bool {
        if self.added[u as usize].binary_search(&v).is_ok() {
            return true;
        }
        self.base.has_edge(u, v) && self.removed[u as usize].binary_search(&v).is_err()
    }

    /// Add the undirected edge `(u, v)`. Restores a removed base edge or
    /// records a new one. Returns `false` (and changes nothing) if the
    /// stored edge set already contains it.
    ///
    /// Endpoints may be inactive: the edge is stored and becomes visible
    /// when both endpoints are active.
    ///
    /// # Errors
    /// [`GraphError::SelfLoop`] if `u == v`, [`GraphError::NodeOutOfRange`]
    /// if either endpoint is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, GraphError> {
        self.check_endpoints(u, v)?;
        if self.base.has_edge(u, v) {
            let restored = remove_sorted(&mut self.removed[u as usize], v);
            if restored {
                remove_sorted(&mut self.removed[v as usize], u);
                self.delta_ops += 1;
            }
            return Ok(restored);
        }
        let inserted = insert_sorted(&mut self.added[u as usize], v);
        if inserted {
            insert_sorted(&mut self.added[v as usize], u);
            self.delta_ops += 1;
        }
        Ok(inserted)
    }

    /// Remove the undirected edge `(u, v)` from the stored edge set.
    /// Returns `false` (and changes nothing) if the set does not contain
    /// it.
    ///
    /// # Errors
    /// [`GraphError::SelfLoop`] if `u == v`, [`GraphError::NodeOutOfRange`]
    /// if either endpoint is out of range.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, GraphError> {
        self.check_endpoints(u, v)?;
        if remove_sorted(&mut self.added[u as usize], v) {
            remove_sorted(&mut self.added[v as usize], u);
            self.delta_ops += 1;
            return Ok(true);
        }
        if self.base.has_edge(u, v) && insert_sorted(&mut self.removed[u as usize], v) {
            insert_sorted(&mut self.removed[v as usize], u);
            self.delta_ops += 1;
            return Ok(true);
        }
        Ok(false)
    }

    fn check_endpoints(&self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop(u as usize));
        }
        let n = self.num_nodes();
        for &e in &[u, v] {
            if e as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: e as usize, num_nodes: n });
            }
        }
        Ok(())
    }

    /// Effective degree of `v`: 0 if `v` is inactive, otherwise the number
    /// of active neighbours over base − removed + added.
    pub fn degree(&self, v: NodeId) -> usize {
        if !self.active[v as usize] {
            return 0;
        }
        self.effective_neighbors(v).count()
    }

    /// Sorted effective neighbours of `v` (empty if `v` is inactive).
    pub fn neighbors(&self, v: NodeId) -> Vec<NodeId> {
        if !self.active[v as usize] {
            return Vec::new();
        }
        let mut out: Vec<NodeId> = self.effective_neighbors(v).collect();
        out.sort_unstable();
        out
    }

    /// Neighbours of `v` over base − removed + added, filtered to active
    /// endpoints (caller guarantees `v` itself is active). Unsorted: base
    /// neighbours first, then added.
    fn effective_neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let vi = v as usize;
        self.base
            .neighbors(v)
            .iter()
            .copied()
            .filter(move |&u| self.removed[vi].binary_search(&u).is_err())
            .chain(self.added[vi].iter().copied())
            .filter(move |&u| self.active[u as usize])
    }

    /// Total number of edges in the effective graph.
    pub fn num_effective_edges(&self) -> usize {
        (0..self.num_nodes() as NodeId).map(|v| self.degree(v)).sum::<usize>() / 2
    }

    /// Edge add/remove operations recorded since the last compaction —
    /// the overlay's query cost grows with this, so periodic callers
    /// compact once it crosses their budget.
    pub fn delta_ops(&self) -> usize {
        self.delta_ops
    }

    /// Materialize the effective graph as a CSR [`Graph`] for the walk
    /// kernels. Inactive nodes remain in the id space as isolated nodes,
    /// so resource ids (and task locations) stay valid across churn.
    pub fn snapshot(&self) -> Graph {
        let mut b = GraphBuilder::with_edge_capacity(self.num_nodes(), self.base.num_edges());
        for v in 0..self.num_nodes() as NodeId {
            if !self.active[v as usize] {
                continue;
            }
            for u in self.effective_neighbors(v) {
                if v < u {
                    b.add_edge(v, u).expect("overlay edges are validated on insertion");
                }
            }
        }
        b.build()
    }

    /// Fold the added/removed deltas into a fresh CSR base. The active
    /// mask is untouched and hidden edges of inactive nodes are preserved,
    /// so this never changes the effective graph — it only restores
    /// `O(deg)` overlay queries after a long churn sequence.
    pub fn compact(&mut self) {
        let mut b = GraphBuilder::with_edge_capacity(self.num_nodes(), self.base.num_edges());
        for v in 0..self.num_nodes() as NodeId {
            let vi = v as usize;
            for &u in self.base.neighbors(v) {
                if v < u && self.removed[vi].binary_search(&u).is_err() {
                    b.add_edge(v, u).expect("base edges are in range");
                }
            }
            for &u in &self.added[vi] {
                if v < u {
                    b.add_edge(v, u).expect("added edges are validated on insertion");
                }
            }
        }
        self.base = b.build();
        for list in &mut self.added {
            list.clear();
        }
        for list in &mut self.removed {
            list.clear();
        }
        self.delta_ops = 0;
    }

    /// The current base CSR (for inspection; excludes pending deltas and
    /// ignores the active mask).
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// Compute the canonical [`DynamicDelta`] of this overlay against
    /// `reference` — typically the pristine base graph the overlay was
    /// built over, which the restoring side can regenerate instead of
    /// shipping. `O(E)` time, `O(churn)` output.
    ///
    /// # Panics
    /// If `reference` has a different node count.
    pub fn delta_from(&self, reference: &Graph) -> DynamicDelta {
        assert_eq!(
            reference.num_nodes(),
            self.num_nodes(),
            "delta reference must share the node id space"
        );
        let mut added = Vec::new();
        let mut removed = Vec::new();
        for v in 0..self.num_nodes() as NodeId {
            // Stored adjacency of v (sorted): base − removed + added,
            // ignoring the active mask.
            let vi = v as usize;
            let mut stored: Vec<NodeId> = self
                .base
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| self.removed[vi].binary_search(&u).is_err())
                .chain(self.added[vi].iter().copied())
                .filter(|&u| v < u)
                .collect();
            stored.sort_unstable();
            let reference_adj: Vec<NodeId> =
                reference.neighbors(v).iter().copied().filter(|&u| v < u).collect();
            for &u in &stored {
                if reference_adj.binary_search(&u).is_err() {
                    added.push((v, u));
                }
            }
            for &u in &reference_adj {
                if stored.binary_search(&u).is_err() {
                    removed.push((v, u));
                }
            }
        }
        DynamicDelta { num_nodes: self.num_nodes(), active: self.active.clone(), added, removed }
    }

    /// Rebuild an overlay from a reference base plus a delta computed by
    /// [`delta_from`](Self::delta_from) against the same reference. The
    /// effective graph (and hence [`snapshot`](Self::snapshot)) of the
    /// result is identical to the overlay the delta was taken from; only
    /// the internal base/delta split may differ, which
    /// [`compact`](Self::compact) erases and which never affects the
    /// effective graph.
    ///
    /// # Errors
    /// [`GraphError::DeltaMismatch`] if the delta's node count or active
    /// mask does not fit `reference`, a removed edge is absent from it,
    /// or an added edge is already present; [`GraphError::SelfLoop`] /
    /// [`GraphError::NodeOutOfRange`] if an edge itself is malformed.
    pub fn from_delta(reference: Graph, delta: &DynamicDelta) -> Result<Self, GraphError> {
        let n = reference.num_nodes();
        if delta.num_nodes != n || delta.active.len() != n {
            return Err(GraphError::DeltaMismatch(format!(
                "delta covers {} nodes (mask {}), reference has {n}",
                delta.num_nodes,
                delta.active.len()
            )));
        }
        let mut dg = DynamicGraph::new(reference);
        for &(u, v) in &delta.removed {
            if !dg.remove_edge(u, v)? {
                return Err(GraphError::DeltaMismatch(format!(
                    "removed edge ({u}, {v}) is absent from the reference"
                )));
            }
        }
        for &(u, v) in &delta.added {
            if !dg.add_edge(u, v)? {
                return Err(GraphError::DeltaMismatch(format!(
                    "added edge ({u}, {v}) already exists in the reference"
                )));
            }
        }
        dg.active = delta.active.clone();
        // The replayed ops are not churn the caller scheduled; start the
        // compaction clock fresh.
        dg.delta_ops = 0;
        Ok(dg)
    }
}

/// Insert into a sorted vector; returns `false` if already present.
fn insert_sorted(list: &mut Vec<NodeId>, v: NodeId) -> bool {
    match list.binary_search(&v) {
        Ok(_) => false,
        Err(pos) => {
            list.insert(pos, v);
            true
        }
    }
}

/// Remove from a sorted vector; returns `false` if absent.
fn remove_sorted(list: &mut Vec<NodeId>, v: NodeId) -> bool {
    match list.binary_search(&v) {
        Ok(pos) => {
            list.remove(pos);
            true
        }
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete, cycle, torus2d};

    #[test]
    fn fresh_overlay_matches_base() {
        let g = torus2d(4, 4);
        let dg = DynamicGraph::new(g.clone());
        assert_eq!(dg.num_nodes(), 16);
        assert_eq!(dg.num_active(), 16);
        assert_eq!(dg.num_effective_edges(), g.num_edges());
        for v in g.nodes() {
            assert_eq!(dg.degree(v), g.degree(v));
            assert_eq!(dg.neighbors(v), g.neighbors(v));
        }
        assert_eq!(dg.snapshot(), g);
    }

    #[test]
    fn add_and_remove_edges() {
        let g = cycle(5); // 0-1-2-3-4-0
        let mut dg = DynamicGraph::new(g);
        assert!(!dg.has_edge(0, 2));
        assert!(dg.add_edge(0, 2).unwrap());
        assert!(dg.has_edge(0, 2));
        assert!(!dg.add_edge(2, 0).unwrap(), "duplicate add is a no-op");
        assert_eq!(dg.neighbors(0), vec![1, 2, 4]);

        assert!(dg.remove_edge(0, 1).unwrap());
        assert!(!dg.has_edge(0, 1));
        assert!(!dg.remove_edge(0, 1).unwrap(), "double remove is a no-op");
        assert_eq!(dg.neighbors(0), vec![2, 4]);

        // Removing an added edge and restoring a removed base edge.
        assert!(dg.remove_edge(0, 2).unwrap());
        assert!(dg.add_edge(1, 0).unwrap());
        assert_eq!(dg.neighbors(0), vec![1, 4]);
    }

    #[test]
    fn deactivation_hides_node_and_incident_edges() {
        let g = complete(4);
        let mut dg = DynamicGraph::new(g);
        assert!(dg.deactivate(2));
        assert!(!dg.deactivate(2), "double deactivate is a no-op");
        assert!(!dg.is_active(2));
        assert_eq!(dg.num_active(), 3);
        assert_eq!(dg.degree(2), 0);
        assert!(dg.neighbors(2).is_empty());
        assert!(!dg.has_edge(0, 2));
        assert_eq!(dg.neighbors(0), vec![1, 3]);
        assert_eq!(dg.num_effective_edges(), 3);

        // Reactivation restores the whole neighbourhood.
        assert!(dg.activate(2));
        assert_eq!(dg.neighbors(2), vec![0, 1, 3]);
        assert_eq!(dg.num_effective_edges(), 6);
    }

    #[test]
    fn snapshot_isolates_inactive_nodes() {
        let g = complete(4);
        let mut dg = DynamicGraph::new(g);
        dg.deactivate(1);
        let snap = dg.snapshot();
        assert_eq!(snap.num_nodes(), 4, "id space is preserved");
        assert_eq!(snap.degree(1), 0);
        assert_eq!(snap.neighbors(0), &[2, 3]);
        assert_eq!(snap.num_edges(), 3);
    }

    #[test]
    fn compaction_preserves_effective_graph_and_hidden_edges() {
        let g = torus2d(3, 3);
        let mut dg = DynamicGraph::new(g);
        dg.deactivate(4);
        dg.add_edge(0, 8).unwrap();
        dg.remove_edge(0, 1).unwrap();
        dg.add_edge(4, 8).unwrap(); // incident to an inactive node

        let before = dg.snapshot();
        assert!(dg.delta_ops() > 0);
        dg.compact();
        assert_eq!(dg.delta_ops(), 0);
        assert_eq!(dg.snapshot(), before);

        // The hidden edge to the inactive node survived compaction.
        dg.activate(4);
        assert!(dg.has_edge(4, 8));
        assert!(dg.has_edge(4, 1), "base edges of the drained node survive too");
    }

    #[test]
    fn rejects_self_loops_and_out_of_range() {
        let mut dg = DynamicGraph::new(cycle(4));
        assert_eq!(dg.add_edge(1, 1), Err(GraphError::SelfLoop(1)));
        assert!(matches!(dg.add_edge(0, 9), Err(GraphError::NodeOutOfRange { .. })));
        assert!(matches!(dg.remove_edge(9, 0), Err(GraphError::NodeOutOfRange { .. })));
    }

    /// Standard churned overlay for the delta tests: a deactivated node,
    /// an added chord, a removed base edge, and a hidden edge parked on
    /// the inactive node.
    fn churned(g: Graph) -> DynamicGraph {
        let mut dg = DynamicGraph::new(g);
        dg.deactivate(4);
        dg.add_edge(0, 8).unwrap();
        dg.remove_edge(0, 1).unwrap();
        dg.add_edge(4, 8).unwrap();
        dg
    }

    #[test]
    fn delta_round_trips_through_the_reference() {
        let g = torus2d(3, 3);
        let dg = churned(g.clone());
        let delta = dg.delta_from(&g);
        assert_eq!(delta.added, vec![(0, 8), (4, 8)]);
        assert_eq!(delta.removed, vec![(0, 1)]);
        assert!(!delta.active[4]);

        let back = DynamicGraph::from_delta(g.clone(), &delta).unwrap();
        assert_eq!(back.snapshot(), dg.snapshot());
        assert_eq!(back.num_active(), dg.num_active());
        assert_eq!(back.delta_ops(), 0, "replayed ops are not scheduled churn");
        // Hidden state matches too: reactivating surfaces the same edges.
        let mut a = dg.clone();
        let mut b = back;
        a.activate(4);
        b.activate(4);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn delta_is_canonical_across_compaction_history() {
        let g = torus2d(3, 3);
        let uncompacted = churned(g.clone());
        let mut compacted = churned(g.clone());
        compacted.compact();
        assert_eq!(uncompacted.delta_from(&g), compacted.delta_from(&g));
    }

    #[test]
    fn fresh_overlay_has_an_empty_delta() {
        let g = complete(5);
        let delta = DynamicGraph::new(g.clone()).delta_from(&g);
        assert!(delta.added.is_empty());
        assert!(delta.removed.is_empty());
        assert_eq!(delta.active, vec![true; 5]);
    }

    #[test]
    fn from_delta_rejects_mismatched_references() {
        let g = cycle(6);
        let dg = DynamicGraph::new(g.clone());
        let mut delta = dg.delta_from(&g);

        let wrong_n = DynamicGraph::from_delta(cycle(5), &delta);
        assert!(matches!(wrong_n, Err(GraphError::DeltaMismatch(_))));

        delta.removed.push((0, 3)); // not a cycle edge
        let bad_removed = DynamicGraph::from_delta(g.clone(), &delta);
        assert!(matches!(bad_removed, Err(GraphError::DeltaMismatch(_))));

        delta.removed.clear();
        delta.added.push((0, 1)); // already a cycle edge
        let bad_added = DynamicGraph::from_delta(g, &delta);
        assert!(matches!(bad_added, Err(GraphError::DeltaMismatch(_))));
    }

    #[test]
    fn removed_then_readded_base_edge_roundtrips() {
        let mut dg = DynamicGraph::new(cycle(4));
        assert!(dg.remove_edge(0, 1).unwrap());
        assert!(dg.add_edge(0, 1).unwrap());
        assert!(dg.has_edge(0, 1));
        dg.compact();
        assert!(dg.has_edge(0, 1));
    }
}
