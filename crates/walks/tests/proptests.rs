//! Property-based tests for the walk substrate.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_graphs::generators;
use tlb_walks::hitting;
use tlb_walks::linalg::{LuFactors, Matrix};
use tlb_walks::mixing::tv_distance;
use tlb_walks::transition::{TransitionMatrix, WalkKind};
use tlb_walks::walker::Walker;

proptest! {
    /// Every materialized transition matrix is row-stochastic and keeps its
    /// nominal stationary distribution stationary.
    #[test]
    fn transition_matrices_are_stochastic(
        n in 2usize..24,
        d in 1usize..5,
        seed in any::<u64>(),
        lazy in any::<bool>(),
    ) {
        prop_assume!(n * d % 2 == 0 && d < n);
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::random_regular(n, d, &mut rng).unwrap();
        let kind = if lazy { WalkKind::Lazy } else { WalkKind::MaxDegree };
        let p = TransitionMatrix::build(&g, kind);
        prop_assert!(p.stochasticity_error() < 1e-12);
        prop_assert!(p.stationarity_error(&g) < 1e-12);
    }

    /// The walker's empirical step distribution matches the matrix row.
    #[test]
    fn walker_matches_matrix_row(seed in any::<u64>(), node in 0u32..8) {
        let g = generators::lollipop(8, 3).unwrap();
        let p = TransitionMatrix::build(&g, WalkKind::MaxDegree);
        let w = Walker::new(&g, WalkKind::MaxDegree);
        let mut rng = SmallRng::seed_from_u64(seed);
        let trials = 20_000usize;
        let mut counts = [0usize; 8];
        for _ in 0..trials {
            counts[w.step(node, &mut rng) as usize] += 1;
        }
        for (j, &c) in counts.iter().enumerate() {
            let expected = p.matrix()[(node as usize, j)];
            let freq = c as f64 / trials as f64;
            prop_assert!(
                (freq - expected).abs() < 0.02,
                "node {node}->{j}: freq {freq} vs P {expected}"
            );
        }
    }

    /// Hitting times are positive off-diagonal, zero on the diagonal, and
    /// satisfy H(u,w) <= H(u,v) + H(v,w) in expectation ordering is NOT
    /// implied; instead check the cycle identity sum_{cyclic} is finite and
    /// the known bound H <= n^3 for connected graphs of this size family.
    #[test]
    fn hitting_time_sanity(n in 3usize..12, k in 1usize..6, _seed in any::<u64>()) {
        prop_assume!(k < n);
        let g = generators::lollipop(n, k).unwrap();
        let p = TransitionMatrix::build(&g, WalkKind::MaxDegree);
        let h = hitting::hitting_times_exact(&p);
        for u in 0..n {
            for v in 0..n {
                if u == v {
                    prop_assert!(h[(u, v)].abs() < 1e-9);
                } else {
                    prop_assert!(h[(u, v)] >= 1.0 - 1e-9, "H({u},{v}) = {}", h[(u, v)]);
                    // Generous polynomial cap for small connected graphs.
                    prop_assert!(h[(u, v)] <= (n * n * n) as f64 * 4.0);
                }
            }
        }
    }

    /// Random-target identity: for uniform π, the expected hitting time
    /// from π to v equals (Z_vv/π_v - 1)-ish; we verify the weaker but
    /// exact *return-time identity* E_π[steps to v] directly via the
    /// matrix: sum_u π_u H(u,v) = Z_vv/π_v - 1.
    #[test]
    fn kemeny_style_identity(n in 4usize..10) {
        let g = generators::complete(n);
        let p = TransitionMatrix::build(&g, WalkKind::MaxDegree);
        let h = hitting::hitting_times_exact(&p);
        // Kemeny's constant: sum_v π_v H(u,v) is the same for every u.
        let pi = 1.0 / n as f64;
        let kemeny: Vec<f64> = (0..n)
            .map(|u| (0..n).map(|v| pi * h[(u, v)]).sum::<f64>())
            .collect();
        for w in kemeny.windows(2) {
            prop_assert!((w[0] - w[1]).abs() < 1e-7, "Kemeny constant varies: {:?}", kemeny);
        }
    }

    /// LU solve is an inverse operation of matvec for well-conditioned
    /// diagonally dominant systems.
    #[test]
    fn lu_roundtrip(n in 1usize..30, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        use rand::Rng;
        let mut a = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let b = a.matvec(&x_true);
        let lu = LuFactors::factor(&a).unwrap();
        let x = lu.solve(&b);
        for (xs, xt) in x.iter().zip(x_true.iter()) {
            prop_assert!((xs - xt).abs() < 1e-8, "{xs} vs {xt}");
        }
    }

    /// TV distance is a metric-ish: symmetric, zero iff equal, bounded by 1
    /// for distributions.
    #[test]
    fn tv_distance_properties(v in proptest::collection::vec(0.0f64..1.0, 2..20)) {
        let total: f64 = v.iter().sum();
        prop_assume!(total > 1e-9);
        let p: Vec<f64> = v.iter().map(|x| x / total).collect();
        let n = p.len();
        let q = vec![1.0 / n as f64; n];
        let d = tv_distance(&p, &q);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&d));
        prop_assert!((tv_distance(&q, &p) - d).abs() < 1e-15);
        prop_assert!(tv_distance(&p, &p) < 1e-15);
    }
}
