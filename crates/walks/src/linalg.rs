//! Minimal dense linear algebra: row-major matrices and LU with partial
//! pivoting.
//!
//! The workspace deliberately implements its own solver instead of pulling
//! a linear-algebra dependency: the only consumers are the exact walk
//! quantities (spectral gap cross-checks and hitting times), whose systems
//! are dense, symmetric-ish, and at most a few thousand rows.

use std::fmt;

/// Row-major dense `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a nested-closure initializer.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable row slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// `y = self · x` (matrix–vector product).
    ///
    /// # Panics
    /// If `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// `y = self · x` writing into a caller-provided buffer (the hot loop of
    /// power iteration and distribution evolution — no per-step allocation).
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(y.len(), self.rows, "matvec output dimension mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            *yi = acc;
        }
    }

    /// `y = xᵀ · self` (vector–matrix product), the update used when
    /// evolving a *distribution* `x(t+1) = x(t) P`.
    pub fn vecmat_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "vecmat dimension mismatch");
        assert_eq!(y.len(), self.cols, "vecmat output dimension mismatch");
        y.iter_mut().for_each(|v| *v = 0.0);
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let row = self.row(i);
            for (yj, &pij) in y.iter_mut().zip(row.iter()) {
                *yj += xi * pij;
            }
        }
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    /// If inner dimensions mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        // ikj ordering: stream over `other`'s rows for cache friendliness.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Max-norm of `self - other`; `None` on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> Option<f64> {
        if self.rows != other.rows || self.cols != other.cols {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max),
        )
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Error from LU factorization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix is singular (pivot below tolerance) at the given column.
    Singular(usize),
    /// Shape precondition violated.
    ShapeMismatch(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::Singular(k) => write!(f, "matrix singular at pivot column {k}"),
            LinalgError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// LU factorization with partial pivoting: `P·A = L·U` stored compactly.
///
/// Factor once, then [`LuFactors::solve`] any number of right-hand sides —
/// exactly the access pattern of the fundamental-matrix hitting-time
/// computation (`n` solves against one factorization).
#[derive(Debug, Clone)]
pub struct LuFactors {
    /// Combined L (strict lower, unit diagonal implicit) and U (upper).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the source row of output row `i`.
    perm: Vec<usize>,
}

impl LuFactors {
    /// Factor a square matrix.
    ///
    /// # Errors
    /// [`LinalgError::Singular`] when a pivot falls below `1e-12` in
    /// absolute value; [`LinalgError::ShapeMismatch`] for non-square input.
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        if a.rows != a.cols {
            return Err(LinalgError::ShapeMismatch(format!(
                "LU needs square matrix, got {}x{}",
                a.rows, a.cols
            )));
        }
        let n = a.rows;
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();

        for k in 0..n {
            // Partial pivot: largest |entry| in column k at/below row k.
            let mut piv = k;
            let mut best = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > best {
                    best = v;
                    piv = i;
                }
            }
            if best < 1e-12 {
                return Err(LinalgError::Singular(k));
            }
            if piv != k {
                perm.swap(k, piv);
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(piv, j)];
                    lu[(piv, j)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= factor * ukj;
                }
            }
        }
        Ok(LuFactors { lu, perm })
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.lu.rows
    }

    /// Solve `A·x = b`.
    ///
    /// # Panics
    /// If `b.len()` differs from the matrix order.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.order();
        assert_eq!(b.len(), n, "rhs length mismatch");
        // Apply permutation.
        let mut x: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        // Forward substitution (L has implicit unit diagonal).
        for i in 1..n {
            let row = self.lu.row(i);
            let mut acc = x[i];
            for (j, xj) in x.iter().enumerate().take(i) {
                acc -= row[j] * xj;
            }
            x[i] = acc;
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let row = self.lu.row(i);
            let mut acc = x[i];
            for (j, xj) in x.iter().enumerate().skip(i + 1) {
                acc -= row[j] * xj;
            }
            x[i] = acc / row[i];
        }
        x
    }

    /// Invert the factored matrix (n solves against unit vectors).
    pub fn inverse(&self) -> Matrix {
        let n = self.order();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e);
            e[j] = 0.0;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        inv
    }
}

/// Euclidean norm.
pub fn norm2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn identity_matvec_is_identity() {
        let m = Matrix::identity(4);
        let x = vec![1.0, -2.0, 3.5, 0.0];
        assert_eq!(m.matvec(&x), x);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64); // [[0,1,2],[3,4,5]]
        let b = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64); // [[0,1],[2,3],[4,5]]
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_close(c[(0, 0)], 10.0, 1e-12);
        assert_close(c[(0, 1)], 13.0, 1e-12);
        assert_close(c[(1, 0)], 28.0, 1e-12);
        assert_close(c[(1, 1)], 40.0, 1e-12);
    }

    #[test]
    fn lu_solves_small_system() {
        // A = [[2,1],[1,3]], b = [5, 10] -> x = [1, 3]
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 2.0;
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(1, 1)] = 3.0;
        let lu = LuFactors::factor(&a).unwrap();
        let x = lu.solve(&[5.0, 10.0]);
        assert_close(x[0], 1.0, 1e-12);
        assert_close(x[1], 3.0, 1e-12);
    }

    #[test]
    fn lu_requires_pivoting() {
        // Leading zero pivot forces a row swap.
        let mut a = Matrix::zeros(2, 2);
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        let lu = LuFactors::factor(&a).unwrap();
        let x = lu.solve(&[2.0, 3.0]);
        assert_close(x[0], 3.0, 1e-12);
        assert_close(x[1], 2.0, 1e-12);
    }

    #[test]
    fn lu_detects_singularity() {
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 1.0;
        a[(0, 1)] = 2.0;
        a[(1, 0)] = 2.0;
        a[(1, 1)] = 4.0;
        assert!(matches!(LuFactors::factor(&a), Err(LinalgError::Singular(_))));
    }

    #[test]
    fn lu_rejects_rectangular() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(LuFactors::factor(&a), Err(LinalgError::ShapeMismatch(_))));
    }

    #[test]
    fn inverse_roundtrip() {
        let a =
            Matrix::from_fn(3, 3, |i, j| if i == j { 4.0 } else { 1.0 / (1.0 + (i + j) as f64) });
        let lu = LuFactors::factor(&a).unwrap();
        let inv = lu.inverse();
        let prod = a.matmul(&inv);
        let id = Matrix::identity(3);
        assert!(prod.max_abs_diff(&id).unwrap() < 1e-10);
    }

    #[test]
    fn vecmat_preserves_distribution_mass() {
        // A stochastic matrix times a distribution stays a distribution.
        let p = Matrix::from_fn(3, 3, |_i, _j| 1.0 / 3.0);
        let x = vec![0.2, 0.3, 0.5];
        let mut y = vec![0.0; 3];
        p.vecmat_into(&x, &mut y);
        assert_close(y.iter().sum::<f64>(), 1.0, 1e-12);
        for v in y {
            assert_close(v, 1.0 / 3.0, 1e-12);
        }
    }

    #[test]
    fn norms_and_dot() {
        assert_close(norm2(&[3.0, 4.0]), 5.0, 1e-12);
        assert_close(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0, 1e-12);
    }

    #[test]
    fn random_system_residual_small() {
        // Deterministic pseudo-random fill; check ||Ax - b|| tiny.
        let n = 40;
        let mut state = 12345u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let mut a = Matrix::from_fn(n, n, |_, _| next());
        for i in 0..n {
            a[(i, i)] += 4.0; // diagonally dominant => nonsingular
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let lu = LuFactors::factor(&a).unwrap();
        let x = lu.solve(&b);
        let ax = a.matvec(&x);
        let resid: f64 = ax.iter().zip(b.iter()).map(|(p, q)| (p - q).abs()).fold(0.0, f64::max);
        assert!(resid < 1e-9, "residual {resid}");
    }
}
