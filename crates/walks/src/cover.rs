//! Cover times: the expected time for a walk to visit *every* node.
//!
//! Not used by the paper's bounds directly, but the natural third member
//! of the walk-quantity family (mixing, hitting, cover) and a useful
//! diagnostic: `C(G) ≤ H(G)·ln n` (Matthews) upper-bounds how long the
//! tight-threshold protocol can take to touch every resource at least
//! once.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;
use tlb_graphs::{Graph, NodeId};

use crate::linalg::Matrix;
use crate::transition::WalkKind;
use crate::walker::Walker;

/// Matthews' upper bound `C(G) ≤ H_max·H(n)` where `H(n) = Σ 1/k` is the
/// harmonic number, computed from an exact all-pairs hitting matrix.
pub fn matthews_upper_bound(hitting: &Matrix) -> f64 {
    let n = hitting.rows();
    if n <= 1 {
        return 0.0;
    }
    let mut h_max = 0.0f64;
    for u in 0..n {
        for v in 0..n {
            h_max = h_max.max(hitting[(u, v)]);
        }
    }
    let harmonic: f64 = (1..=n).map(|k| 1.0 / k as f64).sum();
    h_max * harmonic
}

/// Matthews' lower bound `C(G) ≥ min_{u≠v} H_{u,v} · H(n-1)`.
pub fn matthews_lower_bound(hitting: &Matrix) -> f64 {
    let n = hitting.rows();
    if n <= 1 {
        return 0.0;
    }
    let mut h_min = f64::INFINITY;
    for u in 0..n {
        for v in 0..n {
            if u != v {
                h_min = h_min.min(hitting[(u, v)]);
            }
        }
    }
    let harmonic: f64 = (1..n).map(|k| 1.0 / k as f64).sum();
    h_min * harmonic
}

/// Cover-walk kernel: run `w` from `start` until every node is visited,
/// using a caller-provided visited buffer (cleared here), so batch callers
/// pay no per-walk setup beyond the buffer fill.
fn cover_walk(
    w: &Walker<'_>,
    start: NodeId,
    cap: usize,
    rng: &mut SmallRng,
    visited: &mut [bool],
) -> Option<usize> {
    visited.fill(false);
    visited[start as usize] = true;
    let mut remaining = visited.len() - 1;
    if remaining == 0 {
        return Some(0);
    }
    let mut v = start;
    for t in 1..=cap {
        v = w.step(v, rng);
        if !visited[v as usize] {
            visited[v as usize] = true;
            remaining -= 1;
            if remaining == 0 {
                return Some(t);
            }
        }
    }
    None
}

/// One sampled cover time: steps until all nodes are visited, starting at
/// `start`; `None` if `cap` steps were not enough.
pub fn cover_time_once(
    g: &Graph,
    kind: WalkKind,
    start: NodeId,
    cap: usize,
    seed: u64,
) -> Option<usize> {
    let w = Walker::new(g, kind);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut visited = vec![false; g.num_nodes()];
    cover_walk(&w, start, cap, &mut rng, &mut visited)
}

/// Monte-Carlo mean cover time from `start` over `trials` walks (capped
/// walks contribute `cap`, biasing down; choose `cap` generously).
pub fn cover_time_mc(
    g: &Graph,
    kind: WalkKind,
    start: NodeId,
    trials: usize,
    cap: usize,
    seed: u64,
) -> f64 {
    // One sampler shared by every trial; each trial keeps its own RNG and
    // visited buffer (the buffer is the only per-trial allocation left).
    let w = Walker::new(g, kind);
    let n = g.num_nodes();
    let total: u64 = (0..trials as u64)
        .into_par_iter()
        .map(|t| {
            let mut rng = SmallRng::seed_from_u64(seed ^ t.wrapping_mul(0x9E3779B97F4A7C15));
            let mut visited = vec![false; n];
            cover_walk(&w, start, cap, &mut rng, &mut visited).unwrap_or(cap) as u64
        })
        .sum();
    total as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hitting::hitting_times_exact;
    use crate::transition::TransitionMatrix;
    use tlb_graphs::generators::{complete, cycle};

    #[test]
    fn complete_graph_cover_is_coupon_collector() {
        // Max-degree walk on K_n moves to a uniform other node each step:
        // cover time = coupon collector over n-1 coupons ≈ (n-1)·H(n-1).
        let n = 12usize;
        let g = complete(n);
        let est = cover_time_mc(&g, WalkKind::MaxDegree, 0, 4000, 1_000_000, 3);
        let expected: f64 = (n as f64 - 1.0) * (1..n).map(|k| 1.0 / k as f64).sum::<f64>();
        assert!(
            (est - expected).abs() / expected < 0.1,
            "estimate {est} vs coupon-collector {expected}"
        );
    }

    #[test]
    fn matthews_bounds_sandwich_measured_cover() {
        let g = cycle(9);
        let p = TransitionMatrix::build(&g, WalkKind::MaxDegree);
        let h = hitting_times_exact(&p);
        let lo = matthews_lower_bound(&h);
        let hi = matthews_upper_bound(&h);
        assert!(lo <= hi);
        let est = cover_time_mc(&g, WalkKind::MaxDegree, 0, 3000, 1_000_000, 5);
        // Cycle cover time is exactly n(n-1)/2 = 36 for n = 9.
        assert!((est - 36.0).abs() < 4.0, "cycle cover estimate {est}");
        assert!(est <= hi * 1.1, "estimate {est} above Matthews upper {hi}");
        assert!(est >= lo * 0.9, "estimate {est} below Matthews lower {lo}");
    }

    #[test]
    fn single_node_cover_is_zero() {
        let g = tlb_graphs::GraphBuilder::new(1).build();
        assert_eq!(cover_time_once(&g, WalkKind::MaxDegree, 0, 10, 1), Some(0));
    }

    #[test]
    fn cap_reports_none() {
        let g = cycle(50);
        assert_eq!(cover_time_once(&g, WalkKind::MaxDegree, 0, 3, 1), None);
    }
}
