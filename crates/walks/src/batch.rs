//! Batched walk-step kernel: advance a whole cohort of walkers per call.
//!
//! The protocol round loops move every ejected task one walk step per
//! round — millions of steps per trial — so the kernel is built around
//! two bandwidth ideas rather than per-step cleverness:
//!
//! * **wide RNG lanes** — the lazy walk (the hot Table-1 configuration)
//!   draws **one parent word per batch** from the caller's stream and
//!   fans it out through [`rand::rngs::WideRng`]: [`rand::rngs::WIDE_LANES`]
//!   interleaved xoshiro256++ streams stepped in lockstep (plain-array
//!   SWAR, autovectorized — no intrinsics). The RNG dependency chain that
//!   serialized PR 4's fused single pass (each xoshiro word depends on
//!   the previous state) is now eight independent chains, so word
//!   generation runs at vector throughput instead of scalar latency;
//! * **a gather-style two-pass over the CSR** — the word block is
//!   materialized first, then each lane-width row runs an address
//!   mini-pass (all flat CSR indices of the row) followed by a load
//!   mini-pass (nothing but independent gathers). With the address
//!   arithmetic hoisted out of the load run, the out-of-order window
//!   overlaps the row's irregular `neighbors_flat()` loads; keeping the
//!   two passes row-granular (instead of block-granular) keeps the index
//!   scratch in registers rather than bouncing it through L1. Slots on
//!   power-of-two-degree graphs (the d8/d16/d64 expander sweeps) resolve
//!   by shift instead of the Lemire widening multiply — same value
//!   bit-for-bit.
//!
//! The PR 4 wins are all retained: dispatch (walk kind, `max_degree`,
//! regularity) is hoisted per cohort; the regular-graph fast path
//! resolves affine offsets (`offsets[v] = v·d`) with no bounds test; the
//! lazy coin stays fused into the top bit of the slot word with a
//! branchless mask select. Cohorts sorted by degree (see
//! `RoundEngine::sort_cohort_by_degree` in `tlb-core`) additionally make
//! the irregular path's `slot < deg(v)` self-loop test run in
//! near-uniform runs, so the one remaining data-dependent branch
//! predicts per degree bucket instead of per walker.
//!
//! Stream contract, relied on by the protocol goldens:
//!
//! * [`WalkKind::MaxDegree`] and [`WalkKind::Simple`] consume **exactly
//!   the same RNG stream** as the scalar [`Walker`] stepping the same
//!   positions in the same order: the word block is filled with
//!   [`rand::RngCore::fill_u64`], which is word-for-word identical to
//!   repeated `next_u64` (pinned in the `rand` shim), and each word maps
//!   through the identical Lemire widening multiply
//!   ([`rand::lemire_u64`]). Switching a round loop from scalar to
//!   batched — or from the fused single pass to this gather kernel —
//!   does not move those trajectories at all.
//! * [`WalkKind::Lazy`] draws **one parent word per batch** (not per
//!   walker): the parent word seeds a [`rand::rngs::WideRng`] whose
//!   lane-striped block supplies one fused word per walker (top bit =
//!   stay-coin, matching the scalar `gen::<bool>()` convention; the
//!   remaining 63 bits, re-aligned to the top, drive the slot). The
//!   per-walker stream is a pure function of the parent stream, and the
//!   lane count is a fixed constant of the stream definition
//!   ([`rand::rngs::WIDE_LANES`]), so trajectories stay bit-identical
//!   across thread and shard counts and there is no lane-width tunable
//!   to diverge on. Same per-step law as the scalar walk
//!   (chi-square-pinned below), different stream — the documented
//!   re-pin policy covers the one golden that moved.
//!
//! The kernel does not borrow the graph: round loops pass it into every
//! call (the online simulation swaps churned snapshots between rounds)
//! and all topology facts are re-read per call, so a cached kernel never
//! holds stale state. It *does* own scratch (the word block — the
//! row-granular gather indices live in registers), which is why the
//! protocol steppers hold one
//! kernel for the whole run: steady-state rounds allocate nothing.

use rand::rngs::WideRng;
use rand::{lemire_u64, Rng, SeedableRng};
use tlb_graphs::{Graph, NodeId};

use crate::transition::WalkKind;
use crate::walker::Walker;

/// Reusable batched one-step sampler (see module docs). Owns the word
/// and gather scratch blocks, so the protocol steppers hold one for the
/// whole run instead of rebuilding a scalar [`Walker`] every round; the
/// buffers grow to the high-water cohort size and are reused from then
/// on.
#[derive(Debug, Clone, Default)]
pub struct BatchWalker {
    /// Per-walker word block: caller-stream words for MaxDegree/Simple,
    /// lane-striped [`WideRng`] words for Lazy. (The gather index
    /// scratch is row-granular and lives in registers — see
    /// [`step_lazy_regular_rows`].)
    words: Vec<u64>,
}

impl BatchWalker {
    /// New kernel handle.
    pub fn new() -> Self {
        BatchWalker::default()
    }

    /// Advance every position in `positions` by one step of `kind` on
    /// `g`, in place, in cohort order.
    ///
    /// # Panics
    /// For [`WalkKind::Simple`] if any position is an isolated node (the
    /// simple walk is undefined there; the protocol steppers reject such
    /// configurations at construction).
    pub fn step_batch<R: Rng + ?Sized>(
        &mut self,
        g: &Graph,
        kind: WalkKind,
        positions: &mut [NodeId],
        rng: &mut R,
    ) {
        if positions.is_empty() {
            return;
        }
        let d = g.max_degree() as u64;
        let regular = d > 0 && g.is_regular();
        match kind {
            // On a d-regular graph the max-degree walk has no self-loop
            // mass and the simple walk draws from the same d slots, so
            // the two kinds coincide — in law AND in stream (both map one
            // word through lemire(·, d)).
            WalkKind::MaxDegree | WalkKind::Simple if regular => {
                self.words.resize(positions.len(), 0);
                rng.fill_u64(&mut self.words);
                let flat = g.neighbors_flat();
                let du = d as usize;
                // Single fused pass: the word block already broke the RNG
                // dependency chain out of the loop, and the affine
                // address arithmetic is cheap enough that a separate
                // address pass only adds scratch traffic here (unlike the
                // lazy arm below, where the coin select makes the split
                // pay).
                for (v, &w) in positions.iter_mut().zip(&self.words) {
                    *v = flat[*v as usize * du + lemire_u64(w, d) as usize];
                }
            }
            WalkKind::MaxDegree => {
                if d == 0 {
                    // Edgeless graph: every step is a self-loop and the
                    // scalar path draws nothing — neither do we.
                    return;
                }
                self.words.resize(positions.len(), 0);
                rng.fill_u64(&mut self.words);
                for (v, &w) in positions.iter_mut().zip(&self.words) {
                    let slot = lemire_u64(w, d) as usize;
                    let nbrs = g.neighbors(*v);
                    // Slots beyond deg(v) are the self-loop mass (d−d_v)/d.
                    if slot < nbrs.len() {
                        *v = nbrs[slot];
                    }
                }
            }
            WalkKind::Lazy => {
                // One parent word per batch, even when d == 0: the draw
                // count is a function of the batch count alone, which
                // keeps the caller stream aligned across graph shapes.
                let parent = rng.next_u64();
                if d == 0 {
                    return;
                }
                self.words.resize(positions.len(), 0);
                fill_lane_block(parent, &mut self.words);
                if regular {
                    step_lazy_regular_arm(g.neighbors_flat(), d, positions, &self.words);
                } else {
                    step_lazy_with_words(g, positions, &self.words);
                }
            }
            WalkKind::Simple => {
                // The slot range is deg(v), so the mapping cannot be
                // hoisted out of the load loop; pre-filling the word
                // block still strips the RNG chain out of it.
                self.words.resize(positions.len(), 0);
                rng.fill_u64(&mut self.words);
                for (v, &w) in positions.iter_mut().zip(&self.words) {
                    let nbrs = g.neighbors(*v);
                    assert!(!nbrs.is_empty(), "simple walk undefined on isolated node {v}");
                    *v = nbrs[lemire_u64(w, nbrs.len() as u64) as usize];
                }
            }
        }
    }
}

/// Row width of the gather two-pass, matching the RNG lane count so one
/// generated row is exactly one mapped row.
const ROW: usize = rand::rngs::WIDE_LANES;

/// Expand one parent word into a lane-striped word block:
/// `WideRng::seed_from_u64(parent)` filled over `words`, exactly the
/// stream the lazy goldens pin.
///
/// `#[inline(never)]` for the same reason as [`step_lazy_regular_rows`]:
/// the seed expansion and the 8-wide fill stage loops only vectorize
/// reliably when this is its own codegen unit, not merged into
/// [`BatchWalker::step_batch`]'s body.
#[inline(never)]
fn fill_lane_block(parent: u64, words: &mut [u64]) {
    let mut lanes = WideRng::seed_from_u64(parent);
    lanes.fill_u64(words);
}

/// Degree-specialized address mapping for the regular-graph lazy arm.
/// The expander degrees the experiments sweep are powers of two, where
/// both halves of the flat address collapse to shifts: the slot because
/// lemire(w << 1, 2^k) = (w << 1) >> (64 − k) bit-for-bit (k = 0 would
/// shift by 64; d = 1 takes the generic arm, where the slot is always
/// 0), and the row base because v·2^k = v << k — the vector multiply
/// the generic arm pays (`vpmullq`, high latency) is the single most
/// expensive op of the address pass.
///
/// The arena element stays `u32`: a half-width `u16` arena (halving the
/// d16 expander's gather footprint from 64 KiB to 32 KiB) measured
/// consistently *slower* end-to-end (~950M vs ~1050M steps/s, same
/// binary, env-toggled) — the widening on every gathered element costs
/// more than the L1 residency buys at these sizes.
#[inline(always)]
fn step_lazy_regular_arm(flat: &[NodeId], d: u64, positions: &mut [NodeId], words: &[u64]) {
    if d.is_power_of_two() && d > 1 {
        let sh = 64 - d.trailing_zeros();
        let dsh = d.trailing_zeros();
        step_lazy_regular_rows(flat, positions, words, |v, w| {
            ((v as usize) << dsh) + ((w << 1) >> sh) as usize
        });
    } else {
        let du = d as usize;
        step_lazy_regular_rows(flat, positions, words, |v, w| {
            v as usize * du + lemire_u64(w << 1, d) as usize
        });
    }
}

/// Gather-style two-pass mapping of the regular-graph lazy arm, one
/// [`ROW`]-wide row at a time: an address mini-pass resolves every flat
/// CSR index of the row (vectorizable — `addr` is a pure function of
/// walker and word), then a load mini-pass issues the row's
/// gathers back-to-back so the out-of-order window overlaps them, then
/// the branchless coin select (`mask` = all-ones when staying — a 50/50
/// coin branch would mispredict half the time). Row-granular scratch
/// stays in registers; a full-block index buffer measured strictly
/// slower (it re-pays the block through L1 twice).
///
/// `#[inline(never)]` keeps this loop in its own codegen unit, separate
/// from the wide-lane fill in [`BatchWalker::step_batch`]: merged into
/// one function body the autovectorizer reliably loses the fill's
/// 8-wide stage loops (measured ~1.4× end-to-end), isolated it reliably
/// keeps both.
#[inline(never)]
fn step_lazy_regular_rows(
    flat: &[NodeId],
    positions: &mut [NodeId],
    words: &[u64],
    addr: impl Fn(NodeId, u64) -> usize,
) {
    let mut pc = positions.chunks_exact_mut(ROW);
    let mut wc = words.chunks_exact(ROW);
    for (pv, wv) in (&mut pc).zip(&mut wc) {
        let mut ix = [0usize; ROW];
        for l in 0..ROW {
            ix[l] = addr(pv[l], wv[l]);
        }
        let mut dv = [0 as NodeId; ROW];
        for l in 0..ROW {
            dv[l] = flat[ix[l]];
        }
        for l in 0..ROW {
            let mask = ((wv[l] >> 63) as NodeId).wrapping_neg();
            pv[l] = dv[l] ^ ((dv[l] ^ pv[l]) & mask);
        }
    }
    for (v, &w) in pc.into_remainder().iter_mut().zip(wc.remainder()) {
        let dest = flat[addr(*v, w)];
        let mask = ((w >> 63) as NodeId).wrapping_neg();
        *v = dest ^ ((dest ^ *v) & mask);
    }
}

/// The deterministic mapping half of the lazy kernel: apply one fused
/// lazy word per walker — top bit = stay-coin, `lemire(word << 1, d)` =
/// slot, slots past `deg(v)` = self-loop — with the branchless select.
/// This is the *law* of the lazy step as a pure function of its word;
/// [`BatchWalker::step_batch`] generates the words (lane-striped from
/// one parent draw) and defers to this mapping on irregular graphs,
/// while tests and the cohort-sorting proptests in `tlb-core` inject
/// fixed word blocks to check order-independence without touching an
/// RNG.
///
/// # Panics
/// If `words` is shorter than `positions`.
pub fn step_lazy_with_words(g: &Graph, positions: &mut [NodeId], words: &[u64]) {
    assert!(words.len() >= positions.len(), "one fused word per walker required");
    let d = g.max_degree() as u64;
    if d == 0 {
        return;
    }
    for (v, &word) in positions.iter_mut().zip(words) {
        let slot = lemire_u64(word << 1, d) as usize;
        let nbrs = g.neighbors(*v);
        let dest = if slot < nbrs.len() { nbrs[slot] } else { *v };
        let mask = ((word >> 63) as NodeId).wrapping_neg();
        *v = dest ^ ((dest ^ *v) & mask);
    }
}

/// Scalar reference evaluation of one batch: the same cohort stepped one
/// at a time through [`Walker`]. For [`WalkKind::MaxDegree`] and
/// [`WalkKind::Simple`] this consumes the identical RNG stream as
/// [`BatchWalker::step_batch`]; tests pin that equivalence.
pub fn step_batch_scalar<R: Rng + ?Sized>(
    g: &Graph,
    kind: WalkKind,
    positions: &mut [NodeId],
    rng: &mut R,
) {
    let walker = Walker::new(g, kind);
    for v in positions {
        *v = walker.step(*v, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transition::TransitionMatrix;
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};
    use tlb_graphs::generators::{complete, cycle, star, torus2d};

    /// Pearson chi-square statistic of observed counts against expected
    /// probabilities (support restricted to p > 0).
    fn chi_square(counts: &[u64], probs: &[f64], total: u64) -> (f64, usize) {
        let mut stat = 0.0;
        let mut df = 0usize;
        for (&c, &p) in counts.iter().zip(probs) {
            if p <= 0.0 {
                assert_eq!(c, 0, "observed mass on a zero-probability state");
                continue;
            }
            let e = p * total as f64;
            stat += (c as f64 - e) * (c as f64 - e) / e;
            df += 1;
        }
        (stat, df.saturating_sub(1))
    }

    /// Empirical one-step distribution from `start` using the batched
    /// kernel: `reps` batches of `batch` walkers all starting at `start`.
    fn batched_counts(
        g: &Graph,
        kind: WalkKind,
        start: NodeId,
        reps: usize,
        batch: usize,
    ) -> Vec<u64> {
        let mut counts = vec![0u64; g.num_nodes()];
        let mut rng = SmallRng::seed_from_u64(0xBA7C4);
        let mut kernel = BatchWalker::new();
        let mut positions = vec![start; batch];
        for _ in 0..reps {
            positions.iter_mut().for_each(|v| *v = start);
            kernel.step_batch(g, kind, &mut positions, &mut rng);
            for &v in &positions {
                counts[v as usize] += 1;
            }
        }
        counts
    }

    /// Empirical one-step distribution from the scalar reference walker.
    fn scalar_counts(g: &Graph, kind: WalkKind, start: NodeId, total: usize) -> Vec<u64> {
        let mut counts = vec![0u64; g.num_nodes()];
        let mut rng = SmallRng::seed_from_u64(0x5CA1A);
        let w = Walker::new(g, kind);
        for _ in 0..total {
            counts[w.step(start, &mut rng) as usize] += 1;
        }
        counts
    }

    /// Chi-square critical values at significance 1e-3 for the df this
    /// test suite produces (conservative upper bounds).
    fn critical(df: usize) -> f64 {
        // χ²(df, 0.999) grows ≈ df + 3√(2·df) + 10; generous table.
        match df {
            0 => 0.0,
            1 => 10.83,
            2 => 13.82,
            3 => 16.27,
            4 => 18.47,
            _ => df as f64 + 4.0 * (2.0 * df as f64).sqrt() + 8.0,
        }
    }

    /// Statistical-equivalence pin: for every walk kind and several graph
    /// shapes (regular and irregular, so both kernel paths are covered),
    /// BOTH the batched and the scalar kernel match the exact transition
    /// row — the justification for re-pinning protocol goldens after a
    /// stream-changing kernel rewrite (the draw *sequence* may differ for
    /// Lazy, now lane-striped off one parent word; the per-step law may
    /// not).
    #[test]
    fn batched_and_scalar_match_exact_transition_row() {
        let graphs: Vec<(&str, tlb_graphs::Graph, NodeId)> = vec![
            ("star_leaf", star(8), 3),
            ("star_hub", star(8), 0),
            ("cycle", cycle(9), 4),
            ("torus", torus2d(4, 4), 5),
            ("complete", complete(6), 2),
        ];
        let total = 120_000u64;
        for (name, g, start) in &graphs {
            for kind in [WalkKind::MaxDegree, WalkKind::Lazy, WalkKind::Simple] {
                let p = TransitionMatrix::build(g, kind);
                let probs = p.matrix().row(*start as usize);
                let batch = 500;
                let reps = total as usize / batch;
                let b = batched_counts(g, kind, *start, reps, batch);
                let s = scalar_counts(g, kind, *start, total as usize);
                for (label, counts) in [("batched", &b), ("scalar", &s)] {
                    let (stat, df) = chi_square(counts, probs, total);
                    // df 0 = deterministic destination (e.g. a simple walk
                    // from a star leaf): the statistic must be exactly 0.
                    assert!(
                        if df == 0 { stat == 0.0 } else { stat < critical(df) },
                        "{name}/{:?}/{label}: chi2 {stat:.2} >= {:.2} (df {df})",
                        kind,
                        critical(df)
                    );
                }
            }
        }
    }

    /// Stream pin: MaxDegree and Simple batched steps consume exactly the
    /// per-call stream (the gather restructure fills its word block with
    /// `fill_u64`, word-for-word identical to repeated `next_u64`), so
    /// positions come out bit-identical to the scalar reference under the
    /// same seed — on an irregular graph (general path) and a regular one
    /// (flat fast path).
    #[test]
    fn max_degree_and_simple_are_bit_identical_to_scalar() {
        let irregular = star(25); // hub degree 24, leaves degree 1
        let regular = torus2d(5, 5); // 4-regular
        for g in [&irregular, &regular] {
            for kind in [WalkKind::MaxDegree, WalkKind::Simple] {
                let n = g.num_nodes() as u32;
                let mut a: Vec<NodeId> = (0..200).map(|i| i % n).collect();
                let mut b = a.clone();
                let mut rng_a = SmallRng::seed_from_u64(7);
                let mut rng_b = SmallRng::seed_from_u64(7);
                let mut kernel = BatchWalker::new();
                for _ in 0..20 {
                    kernel.step_batch(g, kind, &mut a, &mut rng_a);
                    step_batch_scalar(g, kind, &mut b, &mut rng_b);
                }
                assert_eq!(a, b, "{kind:?} diverged from the scalar stream");
                // And the RNGs stay aligned afterwards.
                assert_eq!(rng_a.next_u64(), rng_b.next_u64());
            }
        }
    }

    #[test]
    fn lazy_draws_one_parent_word_per_batch() {
        // The wide-lane kernel consumes exactly one word of the caller's
        // stream per batch, whatever the cohort size or graph shape —
        // including the edgeless graph, where the step itself is a no-op.
        for g in [cycle(8), star(9), complete(1)] {
            for k in [1usize, 7, 137] {
                let mut rng = SmallRng::seed_from_u64(3);
                let mut reference = SmallRng::seed_from_u64(3);
                let mut positions = vec![0 as NodeId; k];
                BatchWalker::new().step_batch(&g, WalkKind::Lazy, &mut positions, &mut rng);
                reference.next_u64();
                assert_eq!(rng.next_u64(), reference.next_u64(), "k={k}");
            }
        }
    }

    #[test]
    fn lazy_batch_is_the_wide_stream_through_the_word_law() {
        // The whole lazy path decomposes as: draw one parent word, expand
        // it through WideRng, apply the fused word law. Reproduce that by
        // hand on regular graphs (the two-pass gather fast path: torus
        // is 4-regular → power-of-two shift slots, complete(7) is
        // 6-regular → generic Lemire slots) and an irregular one
        // (general path) and demand bitwise agreement.
        for g in [torus2d(6, 6), complete(7), star(25)] {
            let n = g.num_nodes() as u32;
            let mut a: Vec<NodeId> = (0..100u32).map(|i| i % n).collect();
            let mut b = a.clone();
            let mut rng = SmallRng::seed_from_u64(11);
            BatchWalker::new().step_batch(&g, WalkKind::Lazy, &mut a, &mut rng);
            let mut rng = SmallRng::seed_from_u64(11);
            let mut lanes = WideRng::seed_from_u64(rng.next_u64());
            let mut words = vec![0u64; b.len()];
            lanes.fill_u64(&mut words);
            step_lazy_with_words(&g, &mut b, &words);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn lazy_word_law_is_the_fused_coin_and_slot() {
        // FixedWords-style pin of the mapping itself: hand-picked words
        // with known top bits and slot values land exactly where the
        // scalar lazy convention (coin first, then max-degree slot) says.
        let g = star(5); // hub 0 degree 4, leaves degree 1
        let d = g.max_degree() as u64;
        assert_eq!(d, 4);
        // Top bit set → stay, regardless of the slot bits.
        let mut pos = vec![3 as NodeId];
        step_lazy_with_words(&g, &mut pos, &[1u64 << 63 | 0x1234]);
        assert_eq!(pos, vec![3]);
        // Top bit clear, slot 0 from a leaf → its only neighbour (hub).
        let mut pos = vec![3 as NodeId];
        step_lazy_with_words(&g, &mut pos, &[0]);
        assert_eq!(pos, vec![0]);
        // Top bit clear, slot ≥ deg(leaf) → self-loop mass keeps it put.
        // slot = lemire(word << 1, 4) = 3 needs word<<1 in the top
        // quarter: word = (3 << 61) yields slot 3 ≥ deg 1.
        let mut pos = vec![3 as NodeId];
        step_lazy_with_words(&g, &mut pos, &[3u64 << 61]);
        assert_eq!(pos, vec![3]);
        // Hub with slot 2 → third neighbour (sorted adjacency: 1,2,3,4).
        let mut pos = vec![0 as NodeId];
        step_lazy_with_words(&g, &mut pos, &[2u64 << 61]);
        assert_eq!(pos, vec![3]);
    }

    #[test]
    fn empty_batch_and_edgeless_graph_draw_nothing() {
        let g = complete(1); // max_degree 0
        let mut rng = SmallRng::seed_from_u64(1);
        let mut kernel = BatchWalker::new();
        let mut empty: Vec<NodeId> = Vec::new();
        // An empty batch draws nothing for ANY kind — including Lazy,
        // which otherwise draws its parent word.
        kernel.step_batch(&g, WalkKind::MaxDegree, &mut empty, &mut rng);
        kernel.step_batch(&g, WalkKind::Lazy, &mut empty, &mut rng);
        let mut positions = vec![0 as NodeId; 5];
        kernel.step_batch(&g, WalkKind::MaxDegree, &mut positions, &mut rng);
        assert_eq!(positions, vec![0; 5]);
        // MaxDegree on an edgeless graph consumes no words (scalar parity).
        assert_eq!(rng, SmallRng::seed_from_u64(1));
        // Lazy consumes exactly its one parent word and moves nobody.
        kernel.step_batch(&g, WalkKind::Lazy, &mut positions, &mut rng);
        let mut reference = SmallRng::seed_from_u64(1);
        reference.next_u64();
        assert_eq!(rng, reference);
        assert_eq!(positions, vec![0; 5]);
    }

    #[test]
    #[should_panic(expected = "isolated node")]
    fn simple_walk_panics_on_isolated_node() {
        // Node 3 has no edges; the simple walk is undefined there.
        let mut b = tlb_graphs::GraphBuilder::new(4);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        let g = b.build();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut positions = vec![3 as NodeId];
        BatchWalker::new().step_batch(&g, WalkKind::Simple, &mut positions, &mut rng);
    }
}
