//! Batched walk-step kernel: advance a whole cohort of walkers per call.
//!
//! The protocol round loops move every ejected task one walk step per
//! round — millions of steps per trial — so this kernel is shaped by
//! profiling rather than by the obvious "pre-generate a word block, then
//! map it" two-pass structure: with an inlined xoshiro generator the
//! CPU's out-of-order engine already overlaps the RNG dependency chain
//! with the CSR lookups, so a **fused single pass** (draw word → map →
//! store, per walker) strictly beats two passes, which pay the chain
//! *plus* a full extra sweep through a word buffer. What batching buys
//! instead:
//!
//! * **hoisted dispatch** — walk kind, `max_degree`, and the regularity
//!   check are resolved once per cohort, not once per step;
//! * **a regular-graph fast path** — on a `d`-regular graph (`min ==
//!   max` degree, cached in [`Graph`]) CSR offsets are affine
//!   (`offsets[v] = v·d`), so the per-step offset loads and the
//!   self-loop bounds test vanish: one neighbour load per step off
//!   [`Graph::neighbors_flat`];
//! * **a fused lazy coin** — the scalar lazy walk spends one word on the
//!   stay-coin and a second on the slot *and* takes an unpredictable
//!   branch per step (≈50% mispredict); the batched path folds the coin
//!   into the top bit of the slot word and selects branchlessly — one
//!   word instead of up to two, no mispredict stalls.
//!
//! Stream contract, relied on by the re-pinned protocol goldens:
//!
//! * [`WalkKind::MaxDegree`] and [`WalkKind::Simple`] consume **exactly
//!   the same RNG stream** as the scalar [`Walker`] stepping the same
//!   positions in the same order — one word per walker through the
//!   identical Lemire widening multiply ([`rand::lemire_u64`]) — so
//!   switching a round loop from scalar to batched does not move those
//!   trajectories at all.
//! * [`WalkKind::Lazy`] draws **one fused word** per walker (top bit =
//!   stay-coin, matching the scalar `gen::<bool>()` convention; the
//!   remaining 63 bits, re-aligned to the top, drive the slot). Same
//!   per-step law (chi-square-pinned below), different stream — lazy
//!   trajectories differ between scalar and batched, each internally
//!   deterministic.
//!
//! The kernel does not borrow the graph: round loops pass it into every
//! call (the online simulation swaps churned snapshots between rounds)
//! and all topology facts are re-read per call, so a cached kernel never
//! holds stale state.

use rand::{lemire_u64, Rng};
use tlb_graphs::{Graph, NodeId};

use crate::transition::WalkKind;
use crate::walker::Walker;

/// Reusable batched one-step sampler (see module docs). The fused kernel
/// carries no per-round state, so the struct is free to cache; the
/// protocol steppers hold one for the whole run instead of rebuilding a
/// scalar [`Walker`] every round.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchWalker;

impl BatchWalker {
    /// New kernel handle.
    pub fn new() -> Self {
        BatchWalker
    }

    /// Advance every position in `positions` by one step of `kind` on
    /// `g`, in place, in cohort order.
    ///
    /// # Panics
    /// For [`WalkKind::Simple`] if any position is an isolated node (the
    /// simple walk is undefined there; the protocol steppers reject such
    /// configurations at construction).
    pub fn step_batch<R: Rng + ?Sized>(
        &mut self,
        g: &Graph,
        kind: WalkKind,
        positions: &mut [NodeId],
        rng: &mut R,
    ) {
        if positions.is_empty() {
            return;
        }
        let d = g.max_degree() as u64;
        let regular = d > 0 && g.is_regular();
        match kind {
            // On a d-regular graph the max-degree walk has no self-loop
            // mass and the simple walk draws from the same d slots, so
            // the two kinds coincide — in law AND in stream (both map one
            // word through lemire(·, d)).
            WalkKind::MaxDegree | WalkKind::Simple if regular => {
                let flat = g.neighbors_flat();
                let du = d as usize;
                for v in positions.iter_mut() {
                    let slot = lemire_u64(rng.next_u64(), d) as usize;
                    *v = flat[*v as usize * du + slot];
                }
            }
            WalkKind::MaxDegree => {
                if d == 0 {
                    // Edgeless graph: every step is a self-loop and the
                    // scalar path draws nothing — neither do we.
                    return;
                }
                for v in positions.iter_mut() {
                    let slot = lemire_u64(rng.next_u64(), d) as usize;
                    let nbrs = g.neighbors(*v);
                    // Slots beyond deg(v) are the self-loop mass (d−d_v)/d.
                    if slot < nbrs.len() {
                        *v = nbrs[slot];
                    }
                }
            }
            WalkKind::Lazy => {
                if d == 0 {
                    // The scalar path still spends one coin word per step
                    // on an edgeless graph; keep the draw count aligned.
                    for _ in positions.iter() {
                        rng.next_u64();
                    }
                    return;
                }
                // Top bit = stay-coin. The select is forced branchless
                // with mask arithmetic (`mask` = all-ones when staying):
                // a 50/50 coin branch would mispredict half the time,
                // which is exactly the stall the fused coin removes.
                if regular {
                    let flat = g.neighbors_flat();
                    let du = d as usize;
                    for v in positions.iter_mut() {
                        let word = rng.next_u64();
                        let slot = lemire_u64(word << 1, d) as usize;
                        let dest = flat[*v as usize * du + slot];
                        let mask = ((word >> 63) as NodeId).wrapping_neg();
                        *v = dest ^ ((dest ^ *v) & mask);
                    }
                } else {
                    for v in positions.iter_mut() {
                        let word = rng.next_u64();
                        let slot = lemire_u64(word << 1, d) as usize;
                        let nbrs = g.neighbors(*v);
                        let dest = if slot < nbrs.len() { nbrs[slot] } else { *v };
                        let mask = ((word >> 63) as NodeId).wrapping_neg();
                        *v = dest ^ ((dest ^ *v) & mask);
                    }
                }
            }
            WalkKind::Simple => {
                for v in positions.iter_mut() {
                    let word = rng.next_u64();
                    let nbrs = g.neighbors(*v);
                    assert!(!nbrs.is_empty(), "simple walk undefined on isolated node {v}");
                    *v = nbrs[lemire_u64(word, nbrs.len() as u64) as usize];
                }
            }
        }
    }
}

/// Scalar reference evaluation of one batch: the same cohort stepped one
/// at a time through [`Walker`]. For [`WalkKind::MaxDegree`] and
/// [`WalkKind::Simple`] this consumes the identical RNG stream as
/// [`BatchWalker::step_batch`]; tests pin that equivalence.
pub fn step_batch_scalar<R: Rng + ?Sized>(
    g: &Graph,
    kind: WalkKind,
    positions: &mut [NodeId],
    rng: &mut R,
) {
    let walker = Walker::new(g, kind);
    for v in positions {
        *v = walker.step(*v, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transition::TransitionMatrix;
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};
    use tlb_graphs::generators::{complete, cycle, star, torus2d};

    /// Pearson chi-square statistic of observed counts against expected
    /// probabilities (support restricted to p > 0).
    fn chi_square(counts: &[u64], probs: &[f64], total: u64) -> (f64, usize) {
        let mut stat = 0.0;
        let mut df = 0usize;
        for (&c, &p) in counts.iter().zip(probs) {
            if p <= 0.0 {
                assert_eq!(c, 0, "observed mass on a zero-probability state");
                continue;
            }
            let e = p * total as f64;
            stat += (c as f64 - e) * (c as f64 - e) / e;
            df += 1;
        }
        (stat, df.saturating_sub(1))
    }

    /// Empirical one-step distribution from `start` using the batched
    /// kernel: `reps` batches of `batch` walkers all starting at `start`.
    fn batched_counts(
        g: &Graph,
        kind: WalkKind,
        start: NodeId,
        reps: usize,
        batch: usize,
    ) -> Vec<u64> {
        let mut counts = vec![0u64; g.num_nodes()];
        let mut rng = SmallRng::seed_from_u64(0xBA7C4);
        let mut kernel = BatchWalker::new();
        let mut positions = vec![start; batch];
        for _ in 0..reps {
            positions.iter_mut().for_each(|v| *v = start);
            kernel.step_batch(g, kind, &mut positions, &mut rng);
            for &v in &positions {
                counts[v as usize] += 1;
            }
        }
        counts
    }

    /// Empirical one-step distribution from the scalar reference walker.
    fn scalar_counts(g: &Graph, kind: WalkKind, start: NodeId, total: usize) -> Vec<u64> {
        let mut counts = vec![0u64; g.num_nodes()];
        let mut rng = SmallRng::seed_from_u64(0x5CA1A);
        let w = Walker::new(g, kind);
        for _ in 0..total {
            counts[w.step(start, &mut rng) as usize] += 1;
        }
        counts
    }

    /// Chi-square critical values at significance 1e-3 for the df this
    /// test suite produces (conservative upper bounds).
    fn critical(df: usize) -> f64 {
        // χ²(df, 0.999) grows ≈ df + 3√(2·df) + 10; generous table.
        match df {
            0 => 0.0,
            1 => 10.83,
            2 => 13.82,
            3 => 16.27,
            4 => 18.47,
            _ => df as f64 + 4.0 * (2.0 * df as f64).sqrt() + 8.0,
        }
    }

    /// Statistical-equivalence pin: for every walk kind and several graph
    /// shapes (regular and irregular, so both kernel paths are covered),
    /// BOTH the batched and the scalar kernel match the exact transition
    /// row — the justification for re-pinning protocol goldens after the
    /// batched rewiring (the draw *sequence* may differ for Lazy, the
    /// per-step law may not).
    #[test]
    fn batched_and_scalar_match_exact_transition_row() {
        let graphs: Vec<(&str, tlb_graphs::Graph, NodeId)> = vec![
            ("star_leaf", star(8), 3),
            ("star_hub", star(8), 0),
            ("cycle", cycle(9), 4),
            ("torus", torus2d(4, 4), 5),
            ("complete", complete(6), 2),
        ];
        let total = 120_000u64;
        for (name, g, start) in &graphs {
            for kind in [WalkKind::MaxDegree, WalkKind::Lazy, WalkKind::Simple] {
                let p = TransitionMatrix::build(g, kind);
                let probs = p.matrix().row(*start as usize);
                let batch = 500;
                let reps = total as usize / batch;
                let b = batched_counts(g, kind, *start, reps, batch);
                let s = scalar_counts(g, kind, *start, total as usize);
                for (label, counts) in [("batched", &b), ("scalar", &s)] {
                    let (stat, df) = chi_square(counts, probs, total);
                    // df 0 = deterministic destination (e.g. a simple walk
                    // from a star leaf): the statistic must be exactly 0.
                    assert!(
                        if df == 0 { stat == 0.0 } else { stat < critical(df) },
                        "{name}/{:?}/{label}: chi2 {stat:.2} >= {:.2} (df {df})",
                        kind,
                        critical(df)
                    );
                }
            }
        }
    }

    /// Stream pin: MaxDegree and Simple batched steps consume exactly the
    /// per-call stream, so positions come out bit-identical to the scalar
    /// reference under the same seed — on an irregular graph (general
    /// path) and a regular one (flat fast path).
    #[test]
    fn max_degree_and_simple_are_bit_identical_to_scalar() {
        let irregular = star(25); // hub degree 24, leaves degree 1
        let regular = torus2d(5, 5); // 4-regular
        for g in [&irregular, &regular] {
            for kind in [WalkKind::MaxDegree, WalkKind::Simple] {
                let n = g.num_nodes() as u32;
                let mut a: Vec<NodeId> = (0..200).map(|i| i % n).collect();
                let mut b = a.clone();
                let mut rng_a = SmallRng::seed_from_u64(7);
                let mut rng_b = SmallRng::seed_from_u64(7);
                let mut kernel = BatchWalker::new();
                for _ in 0..20 {
                    kernel.step_batch(g, kind, &mut a, &mut rng_a);
                    step_batch_scalar(g, kind, &mut b, &mut rng_b);
                }
                assert_eq!(a, b, "{kind:?} diverged from the scalar stream");
                // And the RNGs stay aligned afterwards.
                assert_eq!(rng_a.next_u64(), rng_b.next_u64());
            }
        }
    }

    #[test]
    fn lazy_uses_one_word_per_walker() {
        // The fused coin halves the draw count: after a batch of k lazy
        // steps the RNG has advanced exactly k words. Check both the
        // regular fast path and the irregular general path.
        for g in [cycle(8), star(9)] {
            let mut rng = SmallRng::seed_from_u64(3);
            let mut reference = SmallRng::seed_from_u64(3);
            let k = 137;
            let mut positions = vec![0 as NodeId; k];
            BatchWalker::new().step_batch(&g, WalkKind::Lazy, &mut positions, &mut rng);
            for _ in 0..k {
                reference.next_u64();
            }
            assert_eq!(rng.next_u64(), reference.next_u64());
        }
    }

    #[test]
    fn lazy_regular_and_general_paths_agree_bitwise() {
        // The flat fast path is pure addressing: on a regular graph it
        // must produce exactly what the general path produces from the
        // same words. Compare via a star-vs-complete trick is impossible
        // (different graphs), so re-run the general path by hand.
        let g = torus2d(6, 6); // 4-regular
        assert!(g.is_regular());
        let d = g.max_degree() as u64;
        let mut a: Vec<NodeId> = (0..100u32).map(|i| i % 36).collect();
        let mut b = a.clone();
        let mut rng = SmallRng::seed_from_u64(11);
        BatchWalker::new().step_batch(&g, WalkKind::Lazy, &mut a, &mut rng);
        let mut rng = SmallRng::seed_from_u64(11);
        for v in b.iter_mut() {
            let word = rng.next_u64();
            let slot = lemire_u64(word << 1, d) as usize;
            let nbrs = g.neighbors(*v);
            let dest = if slot < nbrs.len() { nbrs[slot] } else { *v };
            *v = if word >> 63 != 0 { *v } else { dest };
        }
        assert_eq!(a, b);
    }

    #[test]
    fn empty_batch_and_edgeless_graph_draw_nothing() {
        let g = complete(1); // max_degree 0
        let mut rng = SmallRng::seed_from_u64(1);
        let mut kernel = BatchWalker::new();
        let mut empty: Vec<NodeId> = Vec::new();
        kernel.step_batch(&g, WalkKind::MaxDegree, &mut empty, &mut rng);
        let mut positions = vec![0 as NodeId; 5];
        kernel.step_batch(&g, WalkKind::MaxDegree, &mut positions, &mut rng);
        assert_eq!(positions, vec![0; 5]);
        // MaxDegree on an edgeless graph consumes no words (scalar parity).
        assert_eq!(rng, SmallRng::seed_from_u64(1));
        // Lazy still burns its coin words (scalar parity again).
        kernel.step_batch(&g, WalkKind::Lazy, &mut positions, &mut rng);
        assert_ne!(rng, SmallRng::seed_from_u64(1));
        assert_eq!(positions, vec![0; 5]);
    }

    #[test]
    #[should_panic(expected = "isolated node")]
    fn simple_walk_panics_on_isolated_node() {
        // Node 3 has no edges; the simple walk is undefined there.
        let mut b = tlb_graphs::GraphBuilder::new(4);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        let g = b.build();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut positions = vec![3 as NodeId];
        BatchWalker::new().step_batch(&g, WalkKind::Simple, &mut positions, &mut rng);
    }
}
