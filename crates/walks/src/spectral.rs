//! Spectral gap `µ = 1 − max_{i≥2} |λ_i|` of walk transition matrices.
//!
//! Two engines:
//!
//! * [`spectral_gap_power`] — power iteration with deflation of the known
//!   top eigenvector; `O(n²)` per iteration, scales to a few thousand nodes.
//! * [`spectral_gap_jacobi`] — classical Jacobi sweeps computing the full
//!   symmetric spectrum; exact reference for cross-checks on small graphs.
//!
//! Both operate on the *symmetrized* chain `S = D_π^{1/2} P D_π^{-1/2}`,
//! which shares `P`'s eigenvalues for reversible chains. All walks in this
//! workspace (max-degree, lazy, simple) are reversible.

use tlb_graphs::Graph;

use crate::linalg::{dot, norm2, Matrix};
use crate::transition::TransitionMatrix;

/// Result of a spectral-gap computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralGap {
    /// `max_{i≥2} |λ_i|` — the modulus of the subdominant eigenvalue.
    pub lambda2_abs: f64,
    /// `µ = 1 − lambda2_abs`.
    pub gap: f64,
}

/// Build the symmetrized matrix `S = D^{1/2} P D^{-1/2}` where
/// `D = diag(π)`, together with its known top eigenvector `√π`.
fn symmetrize(p: &TransitionMatrix, g: &Graph) -> (Matrix, Vec<f64>) {
    let n = p.num_states();
    let pi = p.stationary(g);
    let sqrt_pi: Vec<f64> = pi.iter().map(|v| v.sqrt()).collect();
    let m = p.matrix();
    let s = Matrix::from_fn(n, n, |i, j| m[(i, j)] * sqrt_pi[i] / sqrt_pi[j]);
    (s, sqrt_pi)
}

/// Spectral gap by power iteration with deflation.
///
/// Deflates the top eigenpair `(1, √π)` by re-orthogonalizing the iterate
/// every step, so the iteration converges to the eigenvalue of largest
/// modulus among the rest. Uses a fixed deterministic pseudo-random start
/// so results are reproducible.
pub fn spectral_gap_power(
    p: &TransitionMatrix,
    g: &Graph,
    tol: f64,
    max_iters: usize,
) -> SpectralGap {
    let n = p.num_states();
    if n <= 1 {
        return SpectralGap { lambda2_abs: 0.0, gap: 1.0 };
    }
    let (s, top) = symmetrize(p, g);
    let top_norm = norm2(&top);
    let top_unit: Vec<f64> = top.iter().map(|v| v / top_norm).collect();

    // Deterministic scrambled start vector.
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut x: Vec<f64> = (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
        .collect();
    orthogonalize(&mut x, &top_unit);
    let nx = norm2(&x).max(f64::MIN_POSITIVE);
    x.iter_mut().for_each(|v| *v /= nx);

    let mut y = vec![0.0; n];
    let mut lambda_prev = 0.0f64;
    for _ in 0..max_iters {
        s.matvec_into(&x, &mut y);
        orthogonalize(&mut y, &top_unit);
        let ny = norm2(&y);
        if ny < 1e-300 {
            // The deflated operator annihilates the iterate: all remaining
            // eigenvalues are (numerically) zero.
            return SpectralGap { lambda2_abs: 0.0, gap: 1.0 };
        }
        y.iter_mut().for_each(|v| *v /= ny);
        // Rayleigh quotient on the normalized iterate.
        s.matvec_into(&y, &mut x);
        let lambda = dot(&y, &x).abs();
        std::mem::swap(&mut x, &mut y);
        // x now holds S·y; renormalize it for the next round.
        orthogonalize(&mut x, &top_unit);
        let nx2 = norm2(&x).max(f64::MIN_POSITIVE);
        x.iter_mut().for_each(|v| *v /= nx2);
        if (lambda - lambda_prev).abs() < tol {
            let l = lambda.min(1.0);
            return SpectralGap { lambda2_abs: l, gap: 1.0 - l };
        }
        lambda_prev = lambda;
    }
    let l = lambda_prev.min(1.0);
    SpectralGap { lambda2_abs: l, gap: 1.0 - l }
}

fn orthogonalize(x: &mut [f64], unit: &[f64]) {
    let c = dot(x, unit);
    for (xi, ui) in x.iter_mut().zip(unit.iter()) {
        *xi -= c * ui;
    }
}

/// All eigenvalues of a symmetric matrix by cyclic Jacobi rotations,
/// descending order. `O(n³)` per sweep; intended for `n ≤ ~500`.
pub fn symmetric_eigenvalues(a: &Matrix, sweeps: usize) -> Vec<f64> {
    assert_eq!(a.rows(), a.cols(), "eigenvalues of non-square matrix");
    let n = a.rows();
    let mut m = a.clone();
    for _ in 0..sweeps {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                off += m[(p, q)] * m[(p, q)];
            }
        }
        if off < 1e-24 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/columns p and q.
                for k in 0..n {
                    let akp = m[(k, p)];
                    let akq = m[(k, q)];
                    m[(k, p)] = c * akp - s * akq;
                    m[(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = m[(p, k)];
                    let aqk = m[(q, k)];
                    m[(p, k)] = c * apk - s * aqk;
                    m[(q, k)] = s * apk + c * aqk;
                }
            }
        }
    }
    let mut eigs: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    eigs.sort_by(|a, b| b.partial_cmp(a).expect("eigenvalues are finite"));
    eigs
}

/// Exact spectral gap via the full Jacobi spectrum of the symmetrized
/// chain. Small graphs only.
pub fn spectral_gap_jacobi(p: &TransitionMatrix, g: &Graph) -> SpectralGap {
    let n = p.num_states();
    if n <= 1 {
        return SpectralGap { lambda2_abs: 0.0, gap: 1.0 };
    }
    let (s, _) = symmetrize(p, g);
    let eigs = symmetric_eigenvalues(&s, 30);
    // eigs are descending; the top one is 1 (stationarity). The subdominant
    // modulus is max(|second largest|, |most negative|).
    let lambda2 = eigs[1];
    let lambda_min = *eigs.last().expect("n >= 2");
    let l = lambda2.abs().max(lambda_min.abs()).min(1.0);
    SpectralGap { lambda2_abs: l, gap: 1.0 - l }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transition::WalkKind;
    use tlb_graphs::generators::{complete, cycle, hypercube, star};

    fn gap_both_ways(g: &tlb_graphs::Graph, kind: WalkKind) -> (SpectralGap, SpectralGap) {
        let p = TransitionMatrix::build(g, kind);
        let pw = spectral_gap_power(&p, g, 1e-12, 20_000);
        let jc = spectral_gap_jacobi(&p, g);
        (pw, jc)
    }

    #[test]
    fn complete_graph_gap_matches_closed_form() {
        // K_n max-degree walk: eigenvalues 1 and -1/(n-1); |λ2| = 1/(n-1).
        for n in [4usize, 8, 16] {
            let g = complete(n);
            let (pw, jc) = gap_both_ways(&g, WalkKind::MaxDegree);
            let expected = 1.0 / (n as f64 - 1.0);
            assert!((pw.lambda2_abs - expected).abs() < 1e-8, "power n={n}: {}", pw.lambda2_abs);
            assert!((jc.lambda2_abs - expected).abs() < 1e-8, "jacobi n={n}: {}", jc.lambda2_abs);
        }
    }

    #[test]
    fn cycle_gap_matches_closed_form() {
        // C_n (2-regular, so max-degree == simple): eigenvalues cos(2πk/n).
        // For even n, λ = -1 is present: gap 0 (periodic). For odd n the
        // subdominant modulus is max(cos(2π/n), |cos(π(n-1)/n)|).
        let n = 9usize;
        let g = cycle(n);
        let (pw, jc) = gap_both_ways(&g, WalkKind::MaxDegree);
        let lam: f64 = (0..n)
            .map(|k| (2.0 * std::f64::consts::PI * k as f64 / n as f64).cos())
            .filter(|l| (*l - 1.0).abs() > 1e-9)
            .map(f64::abs)
            .fold(0.0, f64::max);
        assert!((jc.lambda2_abs - lam).abs() < 1e-8, "jacobi {} vs {lam}", jc.lambda2_abs);
        assert!((pw.lambda2_abs - lam).abs() < 1e-6, "power {} vs {lam}", pw.lambda2_abs);
    }

    #[test]
    fn even_cycle_is_periodic_until_lazy() {
        let g = cycle(8);
        let (_, jc) = gap_both_ways(&g, WalkKind::MaxDegree);
        assert!(jc.gap < 1e-9, "non-lazy even cycle must have zero gap, got {}", jc.gap);
        let (_, jc_lazy) = gap_both_ways(&g, WalkKind::Lazy);
        assert!(jc_lazy.gap > 0.01, "lazy walk must be aperiodic");
    }

    #[test]
    fn hypercube_gap_closed_form() {
        // Q_d max-degree walk (regular, d = dim): eigenvalues 1 - 2k/d.
        // Non-lazy: λ_min = -1 (bipartite) => gap 0. Lazy: (1+λ)/2 ∈ [0,1],
        // subdominant = 1 - 1/d.
        let dim = 4u32;
        let g = hypercube(dim);
        let p = TransitionMatrix::build(&g, WalkKind::Lazy);
        let jc = spectral_gap_jacobi(&p, &g);
        let expected = 1.0 - 1.0 / dim as f64;
        assert!((jc.lambda2_abs - expected).abs() < 1e-8, "{}", jc.lambda2_abs);
    }

    #[test]
    fn star_gap_positive_and_engines_agree() {
        let g = star(12);
        let (pw, jc) = gap_both_ways(&g, WalkKind::MaxDegree);
        assert!(jc.gap > 0.0);
        assert!((pw.lambda2_abs - jc.lambda2_abs).abs() < 1e-6);
    }

    #[test]
    fn jacobi_on_diagonal_matrix_returns_diagonal() {
        let mut m = Matrix::zeros(3, 3);
        m[(0, 0)] = 3.0;
        m[(1, 1)] = -1.0;
        m[(2, 2)] = 0.5;
        let eigs = symmetric_eigenvalues(&m, 5);
        assert_eq!(eigs, vec![3.0, 0.5, -1.0]);
    }

    #[test]
    fn single_node_graph_has_full_gap() {
        let g = tlb_graphs::GraphBuilder::new(1).build();
        let p = TransitionMatrix::build(&g, WalkKind::MaxDegree);
        let gap = spectral_gap_power(&p, &g, 1e-10, 100);
        assert_eq!(gap.gap, 1.0);
    }
}
