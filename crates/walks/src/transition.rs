//! Walk kinds and dense transition-matrix materialization.

use serde::{Deserialize, Serialize};
use tlb_graphs::{Graph, NodeId};

use crate::linalg::Matrix;

/// Which random walk drives task migration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WalkKind {
    /// The paper's walk (Section 4.1): `P_{ij} = 1/d` across each edge and
    /// self-loop `P_{ii} = (d − d_i)/d`, with `d` the maximum degree. The
    /// stationary distribution is uniform on every graph. Regular graphs
    /// get no self-loops, so on bipartite regular graphs (grid, hypercube,
    /// even cycle) this walk is periodic — Table-1 sweeps use [`WalkKind::Lazy`]
    /// there, an ablation the paper's Lemma 2 implicitly allows (any walk
    /// with uniform stationary distribution qualifies).
    MaxDegree,
    /// Lazy max-degree walk: stay with probability `1/2`, otherwise take a
    /// max-degree step. Aperiodic on every graph; stationary distribution
    /// still uniform; spectral gap halves.
    Lazy,
    /// Simple random walk: uniform over neighbours. Stationary distribution
    /// `π_v ∝ deg(v)` — *not* uniform on irregular graphs; provided as a
    /// baseline/ablation only.
    Simple,
}

impl WalkKind {
    /// Short stable identifier for CSV output.
    pub fn label(self) -> &'static str {
        match self {
            WalkKind::MaxDegree => "max-degree",
            WalkKind::Lazy => "lazy",
            WalkKind::Simple => "simple",
        }
    }
}

/// A dense transition matrix for a walk on a specific graph, plus the
/// metadata (kind, uniform-stationarity) downstream analyses need.
#[derive(Debug, Clone)]
pub struct TransitionMatrix {
    matrix: Matrix,
    kind: WalkKind,
    n: usize,
}

impl TransitionMatrix {
    /// Materialize the dense `n × n` transition matrix of `kind` on `g`.
    ///
    /// Dense materialization is only used by the exact analyses (spectral
    /// gap, hitting times, TV mixing); simulation uses [`crate::Walker`]
    /// which never touches a matrix.
    ///
    /// # Panics
    /// On the empty graph, or on a graph with isolated nodes for
    /// [`WalkKind::Simple`] (a simple walk is undefined there).
    pub fn build(g: &Graph, kind: WalkKind) -> Self {
        let n = g.num_nodes();
        assert!(n > 0, "transition matrix of the empty graph is undefined");
        let d = g.max_degree() as f64;
        let mut m = Matrix::zeros(n, n);
        match kind {
            WalkKind::MaxDegree => {
                if d == 0.0 {
                    // Single node or edgeless graph: the walk stays put.
                    for i in 0..n {
                        m[(i, i)] = 1.0;
                    }
                } else {
                    for v in 0..n as NodeId {
                        let deg = g.degree(v) as f64;
                        m[(v as usize, v as usize)] = (d - deg) / d;
                        for &u in g.neighbors(v) {
                            m[(v as usize, u as usize)] = 1.0 / d;
                        }
                    }
                }
            }
            WalkKind::Lazy => {
                let base = TransitionMatrix::build(g, WalkKind::MaxDegree);
                for i in 0..n {
                    for j in 0..n {
                        m[(i, j)] = 0.5 * base.matrix[(i, j)] + if i == j { 0.5 } else { 0.0 };
                    }
                }
            }
            WalkKind::Simple => {
                for v in 0..n as NodeId {
                    let deg = g.degree(v);
                    assert!(deg > 0, "simple walk undefined on isolated node {v}");
                    let p = 1.0 / deg as f64;
                    for &u in g.neighbors(v) {
                        m[(v as usize, u as usize)] = p;
                    }
                }
            }
        }
        TransitionMatrix { matrix: m, kind, n }
    }

    /// The dense matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Walk kind this matrix was built for.
    pub fn kind(&self) -> WalkKind {
        self.kind
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.n
    }

    /// The stationary distribution this walk is *supposed* to have:
    /// uniform for max-degree/lazy, degree-proportional for simple.
    pub fn stationary(&self, g: &Graph) -> Vec<f64> {
        match self.kind {
            WalkKind::MaxDegree | WalkKind::Lazy => vec![1.0 / self.n as f64; self.n],
            WalkKind::Simple => {
                let two_m = g.degree_sum() as f64;
                g.nodes().map(|v| g.degree(v) as f64 / two_m).collect()
            }
        }
    }

    /// Verify row-stochasticity and (for max-degree/lazy) that the uniform
    /// vector is stationary: returns the max violation.
    pub fn stochasticity_error(&self) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..self.n {
            let s: f64 = self.matrix.row(i).iter().sum();
            worst = worst.max((s - 1.0).abs());
            for &v in self.matrix.row(i) {
                if v < 0.0 {
                    worst = worst.max(-v);
                }
            }
        }
        worst
    }

    /// Max violation of `πP = π` for the nominal stationary distribution.
    pub fn stationarity_error(&self, g: &Graph) -> f64 {
        let pi = self.stationary(g);
        let mut out = vec![0.0; self.n];
        self.matrix.vecmat_into(&pi, &mut out);
        pi.iter().zip(out.iter()).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlb_graphs::generators::{complete, cycle, path, star};

    #[test]
    fn complete_graph_matrix_entries() {
        let g = complete(4);
        let p = TransitionMatrix::build(&g, WalkKind::MaxDegree);
        let m = p.matrix();
        for i in 0..4 {
            assert_eq!(m[(i, i)], 0.0);
            for j in 0..4 {
                if i != j {
                    assert!((m[(i, j)] - 1.0 / 3.0).abs() < 1e-15);
                }
            }
        }
        assert!(p.stochasticity_error() < 1e-12);
        assert!(p.stationarity_error(&g) < 1e-12);
    }

    #[test]
    fn star_gets_self_loops_on_leaves() {
        let g = star(5); // hub degree 4, leaves degree 1, d = 4
        let p = TransitionMatrix::build(&g, WalkKind::MaxDegree);
        let m = p.matrix();
        assert_eq!(m[(0, 0)], 0.0); // hub: no self-loop
        for leaf in 1..5 {
            assert!((m[(leaf, leaf)] - 0.75).abs() < 1e-15);
            assert!((m[(leaf, 0)] - 0.25).abs() < 1e-15);
        }
        // Uniform must be stationary even though the graph is irregular.
        assert!(p.stationarity_error(&g) < 1e-12);
    }

    #[test]
    fn lazy_walk_halves_motion() {
        let g = cycle(6);
        let md = TransitionMatrix::build(&g, WalkKind::MaxDegree);
        let lz = TransitionMatrix::build(&g, WalkKind::Lazy);
        assert!((lz.matrix()[(0, 0)] - 0.5).abs() < 1e-15);
        assert!((lz.matrix()[(0, 1)] - 0.5 * md.matrix()[(0, 1)]).abs() < 1e-15);
        assert!(lz.stochasticity_error() < 1e-12);
        assert!(lz.stationarity_error(&g) < 1e-12);
    }

    #[test]
    fn simple_walk_stationary_is_degree_proportional() {
        let g = path(3); // degrees 1, 2, 1
        let p = TransitionMatrix::build(&g, WalkKind::Simple);
        let pi = p.stationary(&g);
        assert!((pi[0] - 0.25).abs() < 1e-15);
        assert!((pi[1] - 0.5).abs() < 1e-15);
        assert!(p.stationarity_error(&g) < 1e-12);
        // But uniform is NOT stationary for the simple walk on a path.
        let uni = vec![1.0 / 3.0; 3];
        let mut out = vec![0.0; 3];
        p.matrix().vecmat_into(&uni, &mut out);
        assert!((out[1] - uni[1]).abs() > 0.1);
    }

    #[test]
    fn edgeless_graph_walk_stays_put() {
        let g = tlb_graphs::GraphBuilder::new(3).build();
        let p = TransitionMatrix::build(&g, WalkKind::MaxDegree);
        assert_eq!(p.matrix()[(0, 0)], 1.0);
        assert!(p.stochasticity_error() < 1e-12);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(WalkKind::MaxDegree.label(), "max-degree");
        assert_eq!(WalkKind::Lazy.label(), "lazy");
        assert_eq!(WalkKind::Simple.label(), "simple");
    }
}
