//! # tlb-walks
//!
//! Random-walk theory substrate for the *Threshold Load Balancing with
//! Weighted Tasks* reproduction.
//!
//! The paper's resource-controlled bounds are stated in terms of two walk
//! quantities on the resource graph `G` (Section 4.1):
//!
//! * the **mixing time** `τ(G) = 4·ln n / µ` (Lemma 2, after Levin–Peres–
//!   Wilmer), where `µ = 1 − max_{i≥2} |λ_i|` is the spectral gap of the
//!   transition matrix `P`, and
//! * the **maximum hitting time** `H(G) = max_{u,v} H_{u,v}`.
//!
//! The walk itself is the *max-degree* walk: `P_{ij} = 1/d` for every edge
//! `(i, j)` and `P_{ii} = (d − d_i)/d`, where `d` is the maximum degree —
//! chosen by the paper because its stationary distribution is uniform on
//! any graph. This crate provides:
//!
//! * [`transition`] — walk kinds (max-degree, lazy, simple) with dense
//!   matrix materialization and an `O(1)`-space step sampler,
//! * [`batch`] — the batched walk-step kernel ([`BatchWalker`]): bulk RNG
//!   generation plus a one-pass Lemire mapping over the CSR arrays, the
//!   hot path of the protocol round loops (the scalar [`Walker`] is the
//!   reference implementation),
//! * [`linalg`] — the dense matrix / LU-solver substrate (no external
//!   linear-algebra crate is used anywhere in the workspace),
//! * [`spectral`] — spectral gap via power iteration with deflation,
//! * [`mixing`] — Lemma-2 style analytic mixing time plus empirical
//!   total-variation mixing measurement,
//! * [`hitting`] — exact hitting times through the fundamental matrix
//!   (one `O(n³)` factorization for all pairs) and Monte-Carlo estimators
//!   for graphs too large to factor,
//! * [`cover`] — cover times (Matthews bounds + Monte Carlo), the third
//!   member of the walk-quantity family.
//!
//! ```
//! use tlb_graphs::generators::complete;
//! use tlb_walks::transition::{TransitionMatrix, WalkKind};
//! use tlb_walks::hitting;
//!
//! let g = complete(16);
//! let p = TransitionMatrix::build(&g, WalkKind::MaxDegree);
//! let h = hitting::max_hitting_time_exact(&p);
//! // On K_n the max-degree walk leaves a node every step and lands
//! // uniformly: H(K_n) = n - 1.
//! assert!((h - 15.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod cover;
pub mod hitting;
pub mod linalg;
pub mod mixing;
pub mod spectral;
pub mod transition;
pub mod walker;

pub use batch::{step_lazy_with_words, BatchWalker};
pub use transition::{TransitionMatrix, WalkKind};
pub use walker::Walker;
