//! Hitting times `H_{u,v}` and the maximum hitting time
//! `H(G) = max_{u,v} H_{u,v}` (paper Section 4.1).
//!
//! Exact values come from the fundamental matrix
//! `Z = (I − P + Π)⁻¹` (Π has every row equal to π): for an irreducible
//! chain, `H_{u,v} = (Z_{vv} − Z_{uv}) / π_v`. One `O(n³)` LU inversion
//! yields all `n²` pairs, which is what the Table-1 sweep needs.
//!
//! For graphs too large to factor there is a rayon-parallel Monte-Carlo
//! estimator.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use tlb_graphs::{Graph, NodeId};

use crate::linalg::{LuFactors, Matrix};
use crate::transition::{TransitionMatrix, WalkKind};
use crate::walker::Walker;

/// All-pairs hitting times via the fundamental matrix.
///
/// Returns the row-major `n × n` matrix `H` with `H[(u, v)] = H_{u,v}`
/// (zero diagonal).
///
/// # Panics
/// If the chain is reducible (fundamental matrix undefined) — callers
/// ensure connectivity; the paper's model assumes a connected `G`.
pub fn hitting_times_exact(p: &TransitionMatrix) -> Matrix {
    let n = p.num_states();
    // Z = (I - P + Π)^{-1}. For the walks in this crate π is known
    // analytically from the kind; Π row = π. This matrix is invertible for
    // every irreducible chain, periodic or not.
    let pi = match p.kind() {
        WalkKind::MaxDegree | WalkKind::Lazy => vec![1.0 / n as f64; n],
        WalkKind::Simple => {
            // For simple walks callers must supply the graph-aware wrapper
            // below; reconstructing π needs degrees. We approximate π from
            // the matrix itself: π solves πP = π. Use power iteration on
            // the transpose. Simple walks are only used in ablations on
            // small graphs, so this is fine.
            stationary_from_matrix(p.matrix())
        }
    };
    hitting_times_from_parts(p.matrix(), &pi)
}

/// All-pairs hitting times when the stationary distribution is already
/// known (avoids the π estimation for simple walks).
pub fn hitting_times_exact_with_graph(p: &TransitionMatrix, g: &Graph) -> Matrix {
    let pi = p.stationary(g);
    hitting_times_from_parts(p.matrix(), &pi)
}

fn hitting_times_from_parts(pm: &Matrix, pi: &[f64]) -> Matrix {
    let n = pm.rows();
    let a = Matrix::from_fn(n, n, |i, j| {
        let id = if i == j { 1.0 } else { 0.0 };
        id - pm[(i, j)] + pi[j]
    });
    let lu = LuFactors::factor(&a).expect("I - P + Pi is invertible for irreducible chains");
    let z = lu.inverse();
    Matrix::from_fn(n, n, |u, v| if u == v { 0.0 } else { (z[(v, v)] - z[(u, v)]) / pi[v] })
}

/// Estimate π by iterating `x ← xP` from uniform until fixed point.
fn stationary_from_matrix(pm: &Matrix) -> Vec<f64> {
    let n = pm.rows();
    let mut x = vec![1.0 / n as f64; n];
    let mut y = vec![0.0; n];
    for _ in 0..100_000 {
        pm.vecmat_into(&x, &mut y);
        let diff: f64 = x.iter().zip(y.iter()).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut x, &mut y);
        if diff < 1e-14 {
            break;
        }
    }
    x
}

/// Exact `H_{u,v}` for one pair.
pub fn hitting_time_exact(p: &TransitionMatrix, u: NodeId, v: NodeId) -> f64 {
    hitting_times_exact(p)[(u as usize, v as usize)]
}

/// Exact maximum hitting time `H(G) = max_{u,v} H_{u,v}`.
pub fn max_hitting_time_exact(p: &TransitionMatrix) -> f64 {
    let h = hitting_times_exact(p);
    let n = h.rows();
    let mut best = 0.0f64;
    for u in 0..n {
        for v in 0..n {
            best = best.max(h[(u, v)]);
        }
    }
    best
}

/// Monte-Carlo estimate of `H_{u,v}`: mean walk length over `trials`
/// independent walks, each capped at `cap` steps (capped walks contribute
/// `cap`, biasing the estimate *down* — pick `cap` well above the expected
/// value).
pub fn hitting_time_mc(
    g: &Graph,
    kind: WalkKind,
    u: NodeId,
    v: NodeId,
    trials: usize,
    cap: usize,
    seed: u64,
) -> f64 {
    // One sampler shared by every trial (`Walker` is `Copy` over a
    // borrowed graph) — the per-trial state is just the RNG.
    let w = Walker::new(g, kind);
    let total: u64 = (0..trials)
        .into_par_iter()
        .map(|t| {
            let mut rng =
                SmallRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E3779B97F4A7C15));
            w.steps_to_hit(u, v, cap, &mut rng).unwrap_or(cap) as u64
        })
        .sum();
    total as f64 / trials as f64
}

/// Monte-Carlo estimate of the *maximum* hitting time: evaluates
/// `hitting_time_mc` over `pairs` sampled (plus heuristically extremal)
/// pairs and returns the largest mean.
pub fn max_hitting_time_mc(
    g: &Graph,
    kind: WalkKind,
    pairs: usize,
    trials_per_pair: usize,
    cap: usize,
    seed: u64,
) -> f64 {
    let n = g.num_nodes();
    assert!(n >= 2, "need at least two nodes");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut candidates: Vec<(NodeId, NodeId)> = Vec::with_capacity(pairs + 2);
    // Heuristic extremes: hitting times are typically maximized into
    // low-degree nodes from far away — include (max-degree -> min-degree).
    let vmin = g.nodes().min_by_key(|&v| g.degree(v)).expect("n >= 2");
    let vmax = g.nodes().max_by_key(|&v| g.degree(v)).expect("n >= 2");
    if vmin != vmax {
        candidates.push((vmax, vmin));
        candidates.push((vmin, vmax));
    }
    while candidates.len() < pairs {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u != v {
            candidates.push((u, v));
        }
    }
    candidates
        .into_iter()
        .enumerate()
        .map(|(i, (u, v))| {
            hitting_time_mc(g, kind, u, v, trials_per_pair, cap, seed ^ (i as u64) << 32)
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlb_graphs::generators::{complete, cycle, path, star};

    #[test]
    fn complete_graph_hitting_is_n_minus_one() {
        for n in [4usize, 10, 25] {
            let g = complete(n);
            let p = TransitionMatrix::build(&g, WalkKind::MaxDegree);
            let h = max_hitting_time_exact(&p);
            assert!((h - (n as f64 - 1.0)).abs() < 1e-8, "n={n}: {h}");
        }
    }

    #[test]
    fn cycle_hitting_matches_k_times_n_minus_k() {
        // 2-regular: max-degree == simple walk; H_{u,v} = k(n-k) for
        // distance k. Periodic chains are fine for hitting times.
        let n = 8usize;
        let g = cycle(n);
        let p = TransitionMatrix::build(&g, WalkKind::MaxDegree);
        let h = hitting_times_exact(&p);
        for k in 1..n {
            let expected = (k * (n - k)) as f64;
            assert!((h[(0, k)] - expected).abs() < 1e-7, "k={k}: {} vs {expected}", h[(0, k)]);
        }
        assert!((max_hitting_time_exact(&p) - (n * n) as f64 / 4.0).abs() < 1e-7);
    }

    #[test]
    fn star_hitting_closed_forms() {
        // Max-degree walk on star(n): H(leaf→hub) = n−1,
        // H(hub→leaf) = (n−1)², H(leaf→leaf′) = n(n−1).
        let n = 7usize;
        let g = star(n);
        let p = TransitionMatrix::build(&g, WalkKind::MaxDegree);
        let h = hitting_times_exact(&p);
        let f = (n - 1) as f64;
        assert!((h[(1, 0)] - f).abs() < 1e-8);
        assert!((h[(0, 1)] - f * f).abs() < 1e-8);
        assert!((h[(1, 2)] - f * (f + 1.0)).abs() < 1e-8);
        assert!((max_hitting_time_exact(&p) - f * (f + 1.0)).abs() < 1e-8);
    }

    #[test]
    fn lazy_walk_doubles_hitting_times() {
        let g = path(6);
        let p = TransitionMatrix::build(&g, WalkKind::MaxDegree);
        let pl = TransitionMatrix::build(&g, WalkKind::Lazy);
        let h = hitting_times_exact(&p);
        let hl = hitting_times_exact(&pl);
        for u in 0..6 {
            for v in 0..6 {
                if u != v {
                    assert!(
                        (hl[(u, v)] - 2.0 * h[(u, v)]).abs() < 1e-6,
                        "({u},{v}): {} vs 2*{}",
                        hl[(u, v)],
                        h[(u, v)]
                    );
                }
            }
        }
    }

    #[test]
    fn graph_aware_simple_walk_hitting_on_path() {
        // Simple walk on P_3: H(0→2) = 4 (classic gambler's ruin value).
        let g = path(3);
        let p = TransitionMatrix::build(&g, WalkKind::Simple);
        let h = hitting_times_exact_with_graph(&p, &g);
        assert!((h[(0, 2)] - 4.0).abs() < 1e-8, "{}", h[(0, 2)]);
        assert!((h[(1, 2)] - 3.0).abs() < 1e-8);
    }

    #[test]
    fn mc_estimator_agrees_with_exact_on_complete_graph() {
        let n = 12usize;
        let g = complete(n);
        let est = hitting_time_mc(&g, WalkKind::MaxDegree, 0, 5, 8000, 100_000, 42);
        assert!((est - (n as f64 - 1.0)).abs() < 0.6, "estimate {est}");
    }

    #[test]
    fn mc_max_estimator_finds_star_worst_pair() {
        let n = 6usize;
        let g = star(n);
        let exact = {
            let p = TransitionMatrix::build(&g, WalkKind::MaxDegree);
            max_hitting_time_exact(&p)
        };
        let est = max_hitting_time_mc(&g, WalkKind::MaxDegree, 10, 4000, 1_000_000, 7);
        assert!((est - exact).abs() / exact < 0.15, "est {est} vs exact {exact}");
    }
}
