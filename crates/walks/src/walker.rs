//! Allocation-free single-step walk sampler used by the simulators.
//!
//! The resource-controlled protocol (Algorithm 5.1) moves every active task
//! one walk step per round; with millions of task-rounds per trial the
//! sampler must be branch-light and allocation-free, so it reads the CSR
//! adjacency directly instead of touching any matrix.

use rand::Rng;
use tlb_graphs::{Graph, NodeId};

use crate::transition::WalkKind;

/// Stateless sampler for one step of a walk on a borrowed graph.
#[derive(Debug, Clone, Copy)]
pub struct Walker<'g> {
    g: &'g Graph,
    kind: WalkKind,
    max_degree: u32,
}

impl<'g> Walker<'g> {
    /// Create a sampler for `kind` on `g`.
    pub fn new(g: &'g Graph, kind: WalkKind) -> Self {
        Walker { g, kind, max_degree: g.max_degree() }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    /// Walk kind.
    pub fn kind(&self) -> WalkKind {
        self.kind
    }

    /// One max-degree step: draw a slot in `0..d`; slots beyond `deg(v)`
    /// are the self-loop mass `(d − d_v)/d`. Shared by the max-degree and
    /// lazy kinds so the lazy walk needs no temporary sampler per step.
    #[inline]
    fn step_max_degree<R: Rng + ?Sized>(&self, v: NodeId, rng: &mut R) -> NodeId {
        if self.max_degree == 0 {
            return v;
        }
        let slot = rng.gen_range(0..self.max_degree);
        let nbrs = self.g.neighbors(v);
        if (slot as usize) < nbrs.len() {
            nbrs[slot as usize]
        } else {
            v
        }
    }

    /// Sample the next position from `v`.
    #[inline]
    pub fn step<R: Rng + ?Sized>(&self, v: NodeId, rng: &mut R) -> NodeId {
        match self.kind {
            WalkKind::MaxDegree => self.step_max_degree(v, rng),
            WalkKind::Lazy => {
                if rng.gen::<bool>() {
                    v
                } else {
                    self.step_max_degree(v, rng)
                }
            }
            WalkKind::Simple => {
                let nbrs = self.g.neighbors(v);
                assert!(!nbrs.is_empty(), "simple walk undefined on isolated node {v}");
                nbrs[rng.gen_range(0..nbrs.len())]
            }
        }
    }

    /// Run a walk for `steps` steps and return the end position.
    pub fn walk<R: Rng + ?Sized>(&self, start: NodeId, steps: usize, rng: &mut R) -> NodeId {
        let mut v = start;
        for _ in 0..steps {
            v = self.step(v, rng);
        }
        v
    }

    /// Steps until first arrival at `target` (counting the arriving step),
    /// capped at `max_steps`. `Some(0)` if `start == target`.
    pub fn steps_to_hit<R: Rng + ?Sized>(
        &self,
        start: NodeId,
        target: NodeId,
        max_steps: usize,
        rng: &mut R,
    ) -> Option<usize> {
        if start == target {
            return Some(0);
        }
        let mut v = start;
        for t in 1..=max_steps {
            v = self.step(v, rng);
            if v == target {
                return Some(t);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tlb_graphs::generators::{complete, cycle, star};

    #[test]
    fn step_on_complete_graph_never_stays() {
        let g = complete(5);
        let w = Walker::new(&g, WalkKind::MaxDegree);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..200 {
            assert_ne!(w.step(2, &mut rng), 2);
        }
    }

    #[test]
    fn step_frequencies_match_max_degree_matrix_on_star() {
        // Leaf of star(4): self-loop prob 2/3, hub prob 1/3 (d = 3).
        let g = star(4);
        let w = Walker::new(&g, WalkKind::MaxDegree);
        let mut rng = SmallRng::seed_from_u64(9);
        let trials = 60_000;
        let mut to_hub = 0usize;
        for _ in 0..trials {
            if w.step(1, &mut rng) == 0 {
                to_hub += 1;
            }
        }
        let freq = to_hub as f64 / trials as f64;
        assert!((freq - 1.0 / 3.0).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn lazy_walk_stays_about_half_the_time() {
        let g = cycle(8);
        let w = Walker::new(&g, WalkKind::Lazy);
        let mut rng = SmallRng::seed_from_u64(5);
        let trials = 40_000;
        let stays = (0..trials).filter(|_| w.step(3, &mut rng) == 3).count();
        let freq = stays as f64 / trials as f64;
        assert!((freq - 0.5).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn hit_detection_counts_steps() {
        let g = complete(4);
        let w = Walker::new(&g, WalkKind::MaxDegree);
        let mut rng = SmallRng::seed_from_u64(11);
        assert_eq!(w.steps_to_hit(1, 1, 10, &mut rng), Some(0));
        let hit = w.steps_to_hit(0, 3, 10_000, &mut rng).unwrap();
        assert!(hit >= 1);
    }

    #[test]
    fn walk_end_position_is_valid_node() {
        let g = cycle(7);
        let w = Walker::new(&g, WalkKind::MaxDegree);
        let mut rng = SmallRng::seed_from_u64(2);
        for steps in [0, 1, 5, 50] {
            let end = w.walk(0, steps, &mut rng);
            assert!((end as usize) < g.num_nodes());
        }
    }

    #[test]
    fn mean_hitting_on_complete_graph_close_to_n_minus_one() {
        let g = complete(10);
        let w = Walker::new(&g, WalkKind::MaxDegree);
        let mut rng = SmallRng::seed_from_u64(77);
        let trials = 4000;
        let total: usize =
            (0..trials).map(|_| w.steps_to_hit(0, 5, 100_000, &mut rng).unwrap()).sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 9.0).abs() < 0.5, "mean {mean}");
    }
}
