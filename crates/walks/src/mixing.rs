//! Mixing times: the paper's analytic Lemma-2 bound and empirical
//! total-variation measurement.

use tlb_graphs::Graph;

use crate::spectral::{spectral_gap_power, SpectralGap};
use crate::transition::TransitionMatrix;

/// The paper's operational mixing time (Lemma 2, after Levin–Peres–Wilmer):
/// `τ(G) = 4·ln n / µ`, rounded up. After `t ≥ τ` steps,
/// `P^t_{ij} = π_j ± n⁻³`.
///
/// Returns `None` when the gap is (numerically) zero — the chain is
/// periodic or disconnected and never mixes.
pub fn lemma2_mixing_time(n: usize, gap: &SpectralGap) -> Option<u64> {
    if n <= 1 {
        return Some(0);
    }
    if gap.gap <= 1e-12 {
        return None;
    }
    Some((4.0 * (n as f64).ln() / gap.gap).ceil() as u64)
}

/// Convenience: spectral gap (power iteration) + Lemma-2 bound in one call.
pub fn mixing_time(p: &TransitionMatrix, g: &Graph) -> Option<u64> {
    let gap = spectral_gap_power(p, g, 1e-12, 50_000);
    lemma2_mixing_time(p.num_states(), &gap)
}

/// Total-variation distance `½·Σ|a_i − b_i|`.
pub fn tv_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    0.5 * a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum::<f64>()
}

/// Evolution of the TV distance to stationarity from a point start:
/// returns `d(t) = TV(δ_start · P^t, π)` for `t = 0..=t_max`.
pub fn tv_curve(p: &TransitionMatrix, g: &Graph, start: usize, t_max: usize) -> Vec<f64> {
    let n = p.num_states();
    assert!(start < n, "start node out of range");
    let pi = p.stationary(g);
    let mut dist = vec![0.0; n];
    dist[start] = 1.0;
    let mut next = vec![0.0; n];
    let mut curve = Vec::with_capacity(t_max + 1);
    curve.push(tv_distance(&dist, &pi));
    for _ in 0..t_max {
        p.matrix().vecmat_into(&dist, &mut next);
        std::mem::swap(&mut dist, &mut next);
        curve.push(tv_distance(&dist, &pi));
    }
    curve
}

/// Empirical ε-mixing time: smallest `t` with
/// `max_{sampled starts} TV(δ_s·P^t, π) ≤ eps`, or `None` if not reached by
/// `t_max`.
///
/// All starts are used when `n ≤ 128`; otherwise a deterministic sample of
/// 32 starts spread over the node range plus the extremal-degree nodes —
/// enough to catch the worst start on every family this workspace sweeps.
pub fn tv_mixing_time(p: &TransitionMatrix, g: &Graph, eps: f64, t_max: usize) -> Option<usize> {
    let n = p.num_states();
    if n <= 1 {
        return Some(0);
    }
    let starts: Vec<usize> = if n <= 128 {
        (0..n).collect()
    } else {
        let mut s: Vec<usize> = (0..32).map(|i| i * n / 32).collect();
        let min_deg = g.nodes().min_by_key(|&v| g.degree(v)).expect("n > 0") as usize;
        let max_deg = g.nodes().max_by_key(|&v| g.degree(v)).expect("n > 0") as usize;
        s.push(min_deg);
        s.push(max_deg);
        s.sort_unstable();
        s.dedup();
        s
    };

    let pi = p.stationary(g);
    let mut dists: Vec<Vec<f64>> = starts
        .iter()
        .map(|&s| {
            let mut d = vec![0.0; n];
            d[s] = 1.0;
            d
        })
        .collect();
    let mut scratch = vec![0.0; n];

    // Track which starts are still above eps; once below, TV is monotone
    // non-increasing, so they can be dropped.
    let mut active: Vec<usize> = (0..starts.len()).collect();
    for t in 0..=t_max {
        if t > 0 {
            for &i in &active {
                p.matrix().vecmat_into(&dists[i], &mut scratch);
                std::mem::swap(&mut dists[i], &mut scratch);
            }
        }
        active.retain(|&i| tv_distance(&dists[i], &pi) > eps);
        if active.is_empty() {
            return Some(t);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transition::WalkKind;
    use tlb_graphs::generators::{complete, cycle, grid2d, path};

    #[test]
    fn tv_distance_basics() {
        assert_eq!(tv_distance(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
        assert_eq!(tv_distance(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
        assert!((tv_distance(&[0.7, 0.3], &[0.5, 0.5]) - 0.2).abs() < 1e-15);
    }

    #[test]
    fn complete_graph_mixes_in_constant_steps() {
        let g = complete(64);
        let p = TransitionMatrix::build(&g, WalkKind::MaxDegree);
        let t = tv_mixing_time(&p, &g, 0.01, 100).unwrap();
        assert!(t <= 5, "K_64 should mix almost immediately, took {t}");
    }

    #[test]
    fn tv_curve_is_monotone_nonincreasing() {
        let g = path(12);
        let p = TransitionMatrix::build(&g, WalkKind::MaxDegree);
        let curve = tv_curve(&p, &g, 0, 300);
        for w in curve.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "TV must not increase: {} -> {}", w[0], w[1]);
        }
        assert!(curve.last().unwrap() < &0.05);
    }

    #[test]
    fn periodic_chain_never_mixes() {
        // Even cycle, non-lazy walk: distribution oscillates between the
        // two colour classes; TV to uniform stays >= 1/2.
        let g = cycle(8);
        let p = TransitionMatrix::build(&g, WalkKind::MaxDegree);
        assert_eq!(tv_mixing_time(&p, &g, 0.1, 2000), None);
        // The Lemma-2 bound agrees: zero gap => no mixing time.
        assert_eq!(mixing_time(&p, &g), None);
        // Lazy version mixes fine.
        let pl = TransitionMatrix::build(&g, WalkKind::Lazy);
        assert!(tv_mixing_time(&pl, &g, 0.1, 2000).is_some());
    }

    #[test]
    fn lemma2_bound_dominates_empirical_mixing() {
        // τ = 4 ln n / µ guarantees TV within n^-3; the empirical 1/4-mixing
        // time must come earlier.
        for g in [grid2d(4, 4), complete(16)] {
            let p = TransitionMatrix::build(&g, WalkKind::Lazy);
            let analytic = mixing_time(&p, &g).unwrap() as usize;
            let empirical = tv_mixing_time(&p, &g, 0.25, analytic + 1).unwrap();
            assert!(empirical <= analytic, "empirical {empirical} must be <= analytic {analytic}");
        }
    }

    #[test]
    fn lemma2_handles_degenerate_sizes() {
        let gap = SpectralGap { lambda2_abs: 0.5, gap: 0.5 };
        assert_eq!(lemma2_mixing_time(1, &gap), Some(0));
        assert!(lemma2_mixing_time(10, &gap).unwrap() >= 1);
    }
}
