//! `tlb-obs`: a lightweight metrics layer for the threshold
//! load-balancing stack — atomic counters, gauges, log2-bucketed duration
//! histograms, and span-style phase timers behind a [`Registry`] that
//! snapshots to a serializable [`ObsReport`].
//!
//! # The counters-vs-timings split
//!
//! Every metric lands in exactly one of three report subtrees, and the
//! split is a *contract*, not a convention:
//!
//! - **`counters`** — deterministic event counts (walk steps, fused-word
//!   draws, migrations, cohort sizes, epoch totals). These are pure
//!   functions of the configuration and seed: they never read a clock,
//!   never touch an RNG stream, and are accumulated shard-locally and
//!   merged in shard order at round boundaries — so the rendered
//!   `counters` subtree is **byte-identical** across `RAYON_NUM_THREADS`
//!   and shard counts. CI diffs it byte-for-byte across a thread×shard
//!   grid.
//! - **`timings`** — wall-clock phase durations ([`TimingStat`]: count,
//!   total/max nanoseconds, log2 buckets). Inherently non-deterministic;
//!   deterministic-output comparisons and `bench_compare` exclude this
//!   subtree (`--ignore timings`).
//! - **`exec`** — execution-layout diagnostics: how the work was
//!   scheduled (rayon-shim pool batch/chunk/claim counts, per-shard
//!   handoff counts). Deterministic only for a fixed thread count and
//!   shard layout, so it is likewise excluded from cross-grid diffs.
//!
//! # Zero overhead when off
//!
//! The hot layers do not consult a global flag per event. Observability
//! is *structurally* off: the simulation engines hold an
//! `Option<ObsState>` and skip every `Instant::now()` when it is `None`,
//! and the per-round deterministic counters are a handful of integer
//! adds of already-computed lengths. The rayon-shim pool keeps a few
//! per-batch/per-chunk relaxed atomics unconditionally (the same pattern
//! as its existing `worker_spawn_count`), which is noise next to the
//! work a chunk performs. The CI budget for obs-*on* runs is ≤3%
//! epochs/sec, checked by an advisory `bench_compare` step.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::value::{Number, Value};
use serde::Serialize;

/// A monotonically increasing event count (relaxed atomic).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zeroed counter.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add `v` to the count.
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Add one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Overwrite the count (for counters mirrored from an external tally).
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value / running-max gauge (relaxed atomic).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A fresh zeroed gauge.
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrite the gauge.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if `v` is larger.
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket count: index 0 holds exact zeros; index `b >= 1` holds values
/// in `[2^(b-1), 2^b)`.
const HIST_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples (typically nanoseconds).
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    total: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            total: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The log2 bucket index of `v`: 0 for 0, else `floor(log2(v)) + 1`.
    pub fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Freeze into the serializable per-phase statistic.
    pub fn stat(&self) -> TimingStat {
        let buckets = (0..HIST_BUCKETS)
            .filter_map(|b| {
                let c = self.buckets[b].load(Ordering::Relaxed);
                (c > 0).then_some((b as u8, c))
            })
            .collect();
        TimingStat { count: self.count(), total_ns: self.total(), max_ns: self.max(), buckets }
    }
}

/// A span-style timer: created against a phase histogram, records the
/// elapsed nanoseconds on drop.
#[derive(Debug)]
pub struct Timer {
    hist: Arc<Histogram>,
    start: Instant,
}

impl Timer {
    /// Start a span against `hist`.
    pub fn start(hist: Arc<Histogram>) -> Self {
        Timer { hist, start: Instant::now() }
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.hist.record(ns);
    }
}

/// A frozen histogram: sample count, total and max nanoseconds, and the
/// non-empty log2 buckets as `(bucket_index, count)` pairs (bucket `b`
/// covers `[2^(b-1), 2^b)`; bucket 0 is exact zeros).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TimingStat {
    /// Spans recorded.
    pub count: u64,
    /// Sum of span durations in nanoseconds.
    pub total_ns: u64,
    /// Longest span in nanoseconds.
    pub max_ns: u64,
    /// Sparse log2 buckets, ascending by index.
    pub buckets: Vec<(u8, u64)>,
}

/// A named-metric registry. Get-or-create handles are `Arc`s, so hot
/// code resolves a name once and then touches only the atomic.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    hists: Mutex<BTreeMap<String, Arc<Histogram>>>,
    exec: Mutex<BTreeMap<String, u64>>,
}

impl Registry {
    /// A fresh empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get-or-create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.counters.lock().expect("obs registry poisoned");
        m.entry(name.to_string()).or_default().clone()
    }

    /// Add `v` to counter `name`.
    pub fn add(&self, name: &str, v: u64) {
        self.counter(name).add(v);
    }

    /// Overwrite counter `name` with `v` (mirror an external tally).
    pub fn set(&self, name: &str, v: u64) {
        self.counter(name).set(v);
    }

    /// Get-or-create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.gauges.lock().expect("obs registry poisoned");
        m.entry(name.to_string()).or_default().clone()
    }

    /// Get-or-create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.hists.lock().expect("obs registry poisoned");
        m.entry(name.to_string()).or_default().clone()
    }

    /// Record `ns` nanoseconds against phase `name`.
    pub fn record_ns(&self, name: &str, ns: u64) {
        self.histogram(name).record(ns);
    }

    /// Start a span against phase `name`; it records on drop.
    pub fn timer(&self, name: &str) -> Timer {
        Timer::start(self.histogram(name))
    }

    /// Set execution-layout diagnostic `name` (pool/shard-layout values;
    /// excluded from cross-grid determinism diffs).
    pub fn set_exec(&self, name: &str, v: u64) {
        let mut m = self.exec.lock().expect("obs registry poisoned");
        m.insert(name.to_string(), v);
    }

    /// Add to an execution-layout diagnostic, creating it at zero.
    pub fn add_exec(&self, name: &str, v: u64) {
        let mut m = self.exec.lock().expect("obs registry poisoned");
        *m.entry(name.to_string()).or_insert(0) += v;
    }

    /// Freeze every metric into an [`ObsReport`]. Gauges land in the
    /// `counters` subtree (they are deterministic values too).
    pub fn snapshot(&self) -> ObsReport {
        let counters = {
            let m = self.counters.lock().expect("obs registry poisoned");
            let mut out: BTreeMap<String, u64> =
                m.iter().map(|(k, c)| (k.clone(), c.get())).collect();
            let g = self.gauges.lock().expect("obs registry poisoned");
            out.extend(g.iter().map(|(k, v)| (k.clone(), v.get())));
            out
        };
        let timings = {
            let m = self.hists.lock().expect("obs registry poisoned");
            m.iter().map(|(k, h)| (k.clone(), h.stat())).collect()
        };
        let exec = self.exec.lock().expect("obs registry poisoned").clone();
        ObsReport { counters, timings, exec }
    }
}

/// A frozen registry snapshot: the three subtrees of the obs contract
/// (see the crate docs). Renders to byte-stable JSON — `BTreeMap` key
/// order plus fixed field order — so equal reports serialize to equal
/// bytes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObsReport {
    /// Deterministic counters: byte-diffable across thread and shard
    /// counts.
    pub counters: BTreeMap<String, u64>,
    /// Wall-clock phase statistics. Excluded from determinism diffs and
    /// `bench_compare` classification (`--ignore timings`).
    pub timings: BTreeMap<String, TimingStat>,
    /// Execution-layout diagnostics (pool scheduling, shard layout).
    /// Deterministic only for a fixed grid cell.
    pub exec: BTreeMap<String, u64>,
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn u64_map_json(m: &BTreeMap<String, u64>) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in m.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&mut out, k);
        let _ = write!(out, ":{v}");
    }
    out.push('}');
    out
}

impl TimingStat {
    /// Byte-stable JSON object for one phase.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"count\":{},\"total_ns\":{},\"max_ns\":{},\"buckets\":[",
            self.count, self.total_ns, self.max_ns
        );
        for (i, (b, c)) in self.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{b},{c}]");
        }
        out.push_str("]}");
        out
    }
}

impl ObsReport {
    /// The deterministic `counters` subtree as a byte-stable JSON object
    /// — the unit CI byte-diffs across the thread×shard grid.
    pub fn counters_json(&self) -> String {
        u64_map_json(&self.counters)
    }

    /// The wall-clock `timings` subtree as a JSON object.
    pub fn timings_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, t)) in self.timings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, k);
            out.push(':');
            out.push_str(&t.to_json());
        }
        out.push('}');
        out
    }

    /// The `exec` subtree as a JSON object.
    pub fn exec_json(&self) -> String {
        u64_map_json(&self.exec)
    }

    /// The whole report as one JSON object:
    /// `{"counters":…,"timings":…,"exec":…}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"counters\":{},\"timings\":{},\"exec\":{}}}",
            self.counters_json(),
            self.timings_json(),
            self.exec_json()
        )
    }

    /// Fold another report into this one: counters and exec values add,
    /// timing stats merge (counts/totals add, maxes max, buckets add).
    pub fn merge(&mut self, other: &ObsReport) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.exec {
            *self.exec.entry(k.clone()).or_insert(0) += v;
        }
        for (k, t) in &other.timings {
            let slot = self.timings.entry(k.clone()).or_default();
            slot.count += t.count;
            slot.total_ns += t.total_ns;
            slot.max_ns = slot.max_ns.max(t.max_ns);
            let mut merged: BTreeMap<u8, u64> = slot.buckets.iter().copied().collect();
            for &(b, c) in &t.buckets {
                *merged.entry(b).or_insert(0) += c;
            }
            slot.buckets = merged.into_iter().collect();
        }
    }
}

impl Serialize for TimingStat {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("count".to_string(), Value::Number(Number::U(self.count))),
            ("total_ns".to_string(), Value::Number(Number::U(self.total_ns))),
            ("max_ns".to_string(), Value::Number(Number::U(self.max_ns))),
            (
                "buckets".to_string(),
                Value::Array(
                    self.buckets
                        .iter()
                        .map(|&(b, c)| {
                            Value::Array(vec![
                                Value::Number(Number::U(u64::from(b))),
                                Value::Number(Number::U(c)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl Serialize for ObsReport {
    fn to_value(&self) -> Value {
        let nums = |m: &BTreeMap<String, u64>| {
            Value::Object(
                m.iter().map(|(k, &v)| (k.clone(), Value::Number(Number::U(v)))).collect(),
            )
        };
        Value::Object(vec![
            ("counters".to_string(), nums(&self.counters)),
            (
                "timings".to_string(),
                Value::Object(
                    self.timings.iter().map(|(k, t)| (k.clone(), t.to_value())).collect(),
                ),
            ),
            ("exec".to_string(), nums(&self.exec)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.add(3);
        c.incr();
        assert_eq!(c.get(), 4);
        c.set(10);
        assert_eq!(c.get(), 10);
        let g = Gauge::new();
        g.record_max(5);
        g.record_max(2);
        assert_eq!(g.get(), 5);
        g.set(1);
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 1024] {
            h.record(v);
        }
        let s = h.stat();
        assert_eq!(s.count, 5);
        assert_eq!(s.total_ns, 1030);
        assert_eq!(s.max_ns, 1024);
        assert_eq!(s.buckets, vec![(0, 1), (1, 1), (2, 2), (11, 1)]);
    }

    #[test]
    fn timer_records_a_span() {
        let reg = Registry::new();
        {
            let _t = reg.timer("phase.unit");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.timings["phase.unit"].count, 1);
    }

    #[test]
    fn snapshot_renders_sorted_byte_stable_json() {
        let reg = Registry::new();
        reg.add("b_count", 2);
        reg.add("a_count", 1);
        reg.gauge("m_max").record_max(9);
        reg.set_exec("pool.batches", 7);
        let snap = reg.snapshot();
        assert_eq!(snap.counters_json(), "{\"a_count\":1,\"b_count\":2,\"m_max\":9}");
        assert_eq!(snap.exec_json(), "{\"pool.batches\":7}");
        // Same contents => same bytes, regardless of insertion order.
        let reg2 = Registry::new();
        reg2.gauge("m_max").set(9);
        reg2.add("a_count", 1);
        reg2.add("b_count", 2);
        reg2.set_exec("pool.batches", 7);
        assert_eq!(reg2.snapshot().to_json(), snap.to_json());
    }

    #[test]
    fn report_merge_accumulates() {
        let reg = Registry::new();
        reg.add("x_count", 1);
        reg.record_ns("p", 2);
        reg.set_exec("e", 3);
        let mut a = reg.snapshot();
        a.merge(&reg.snapshot());
        assert_eq!(a.counters["x_count"], 2);
        assert_eq!(a.timings["p"].count, 2);
        assert_eq!(a.timings["p"].total_ns, 4);
        assert_eq!(a.exec["e"], 6);
    }

    #[test]
    fn report_serializes_through_serde() {
        let reg = Registry::new();
        reg.add("n_count", 5);
        reg.record_ns("p", 1);
        let snap = reg.snapshot();
        let v = snap.to_value();
        let obj = v.as_object().unwrap();
        assert_eq!(obj[0].0, "counters");
        assert_eq!(obj[1].0, "timings");
        assert_eq!(obj[2].0, "exec");
    }

    #[test]
    fn json_escapes_keys() {
        let mut m = BTreeMap::new();
        m.insert("a\"b".to_string(), 1);
        assert_eq!(u64_map_json(&m), "{\"a\\\"b\":1}");
    }
}
