//! Epoch throughput of the online simulation engine: the steady-state
//! arrival/departure loop, the same loop under stochastic resource churn
//! (snapshot + compaction cost), and the multi-tenant metrics overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use tlb_core::threshold::ThresholdPolicy;
use tlb_graphs::generators::torus2d;
use tlb_sim::{ArrivalProcess, ChurnProcess, OnlineSim, SimConfig, TenantSpec};

fn base_cfg(name: &str) -> SimConfig {
    SimConfig {
        name: name.into(),
        epochs: 100,
        seed: 5,
        arrivals: ArrivalProcess::Poisson { rate: 30.0 },
        departure_prob: 0.04,
        rounds_per_epoch: 16,
        ..Default::default()
    }
}

fn bench_online_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_engine");
    group.sample_size(10);

    group.bench_function("steady_100_epochs_torus8x8", |b| {
        b.iter(|| OnlineSim::new(torus2d(8, 8), base_cfg("steady")).run())
    });

    group.bench_function("churn_100_epochs_torus8x8", |b| {
        b.iter(|| {
            let mut cfg = base_cfg("churn");
            cfg.churn = ChurnProcess {
                scripted: vec![],
                random_down: 0.2,
                random_up: 0.3,
                ..Default::default()
            };
            OnlineSim::new(torus2d(8, 8), cfg).run()
        })
    });

    group.bench_function("four_tenants_100_epochs_torus8x8", |b| {
        b.iter(|| {
            let mut cfg = base_cfg("tenants");
            cfg.tenants = (0..4)
                .map(|i| {
                    TenantSpec::new(
                        format!("t{i}"),
                        ThresholdPolicy::AboveAverage { epsilon: 0.2 + 0.3 * i as f64 },
                        1.0,
                    )
                })
                .collect();
            OnlineSim::new(torus2d(8, 8), cfg).run()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_online_engine);
criterion_main!(benches);
