//! A8 — related-work allocator benches: throughput of the cited baseline
//! schemes on identical weighted workloads (balls/second), so their cost
//! can be compared to the threshold protocols' simulation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_baselines::{greedy, one_plus_beta, parallel_threshold, sequential_threshold};
use tlb_core::weights::WeightSpec;

fn bench_allocators(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines/allocate");
    let n = 1000;
    let m = 20_000;
    let mut rng = SmallRng::seed_from_u64(1);
    let tasks = WeightSpec::ParetoTruncated { m, alpha: 1.5, cap: 16.0 }.generate(&mut rng);
    group.throughput(Throughput::Elements(m as u64));
    group.sample_size(20);

    group.bench_function(BenchmarkId::from_parameter("one-choice"), |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = SmallRng::seed_from_u64(seed);
            greedy::allocate(&tasks, n, 1, &mut rng).gap()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("two-choice"), |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = SmallRng::seed_from_u64(seed);
            greedy::allocate(&tasks, n, 2, &mut rng).gap()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("one-plus-beta"), |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = SmallRng::seed_from_u64(seed);
            one_plus_beta::allocate(&tasks, n, 0.5, &mut rng).gap()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("seq-threshold"), |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = SmallRng::seed_from_u64(seed);
            sequential_threshold::allocate(&tasks, n, 1.0, 50, &mut rng).choices
        })
    });
    group.bench_function(BenchmarkId::from_parameter("par-threshold-4r"), |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = SmallRng::seed_from_u64(seed);
            parallel_threshold::allocate_uniform_threshold(&tasks, n, 4, 1.0, &mut rng).forced
        })
    });
    group.finish();
}

criterion_group!(benches, bench_allocators);
criterion_main!(benches);
