//! Rayon speedup of the trial fan-out (DESIGN.md design-choice 4): the
//! same batch of user-controlled trials run sequentially vs through the
//! rayon harness. On a many-core machine the parallel group should report
//! a near-linear fraction of the sequential time.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_core::placement::Placement;
use tlb_core::user_protocol::{run_user_controlled, UserControlledConfig};
use tlb_core::weights::WeightSpec;
use tlb_experiments::harness;

fn trial(seed: u64) -> f64 {
    let spec = WeightSpec::figure2(800, 16.0);
    let cfg = UserControlledConfig::default();
    let mut rng = SmallRng::seed_from_u64(seed);
    let tasks = spec.generate(&mut rng);
    run_user_controlled(150, &tasks, Placement::AllOnOne(0), &cfg, &mut rng).rounds as f64
}

fn bench_harness(c: &mut Criterion) {
    let mut group = c.benchmark_group("harness_scaling");
    group.sample_size(10);
    let trials = 64;
    group.bench_function("sequential_64_trials", |b| {
        b.iter(|| harness::run_trials_sequential(trials, 7, trial))
    });
    group.bench_function("rayon_64_trials", |b| b.iter(|| harness::run_trials(trials, 7, trial)));
    group.finish();
}

criterion_group!(benches, bench_harness);
criterion_main!(benches);
