//! Worker-pool speedup of the trial fan-out (DESIGN.md design-choice 4):
//! the same batch of user-controlled trials run sequentially vs through
//! the harness's persistent pool, on a deliberately *uneven* workload
//! (per-trial cost varies ~8x with the seed). Chunk self-scheduling keeps
//! every core busy, so the parallel group should report a near-linear
//! fraction of the sequential time even though trials differ in cost.

use criterion::{criterion_group, criterion_main, Criterion};
use tlb_bench::workloads::{run_trials_scoped, uneven_user_trial};
use tlb_experiments::harness;

fn bench_harness(c: &mut Criterion) {
    let mut group = c.benchmark_group("harness_scaling");
    group.sample_size(10);
    let trials = 64;
    group.bench_function("sequential_64_uneven_trials", |b| {
        b.iter(|| harness::run_trials_sequential(trials, 7, uneven_user_trial))
    });
    group.bench_function("scoped_threads_64_uneven_trials", |b| {
        b.iter(|| run_trials_scoped(trials, 7, uneven_user_trial))
    });
    group.bench_function("pool_64_uneven_trials", |b| {
        b.iter(|| harness::run_trials(trials, 7, uneven_user_trial))
    });
    group.finish();
}

criterion_group!(benches, bench_harness);
criterion_main!(benches);
