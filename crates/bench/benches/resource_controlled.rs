//! A1 — resource-controlled protocol bench across the Table-1 graph
//! families (Theorem-3 regime: above-average threshold), uniform and
//! heavy-tailed workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_core::placement::Placement;
use tlb_core::resource_protocol::{run_resource_controlled, ResourceControlledConfig};
use tlb_core::weights::WeightSpec;
use tlb_experiments::figures::table1::build_family;
use tlb_graphs::generators::Family;

fn bench_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("resource_controlled/trial");
    group.sample_size(10);
    for family in Family::ALL {
        let (g, kind) = build_family(family, 128, 1);
        let m = g.num_nodes() * 10;
        for (wname, spec) in [
            ("uniform", WeightSpec::Uniform { m }),
            ("pareto", WeightSpec::ParetoTruncated { m, alpha: 1.5, cap: 32.0 }),
        ] {
            let cfg = ResourceControlledConfig { walk: kind, ..Default::default() };
            let id = format!("{}/{}", family.name(), wname);
            group.bench_with_input(BenchmarkId::from_parameter(id), &spec, |b, spec| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut rng = SmallRng::seed_from_u64(seed);
                    let tasks = spec.generate(&mut rng);
                    run_resource_controlled(&g, &tasks, Placement::AllOnOne(0), &cfg, &mut rng)
                        .rounds
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_families);
criterion_main!(benches);
