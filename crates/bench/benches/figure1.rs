//! F1 — Figure 1 bench: one user-controlled trial at representative
//! (W, k) grid points of the paper's sweep (n scaled to 250 to keep the
//! bench snappy; the full-scale data comes from the `figure1` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlb_core::placement::Placement;
use tlb_core::user_protocol::{run_user_controlled, UserControlledConfig};
use tlb_core::weights::WeightSpec;

fn bench_figure1_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure1/trial");
    group.sample_size(20);
    let n = 250;
    let cfg = UserControlledConfig::default();
    for &w_total in &[2000.0f64, 6000.0, 10000.0] {
        for &k in &[1usize, 50] {
            // k heavy tasks cannot outweigh W (the paper's k = 50 curve
            // cannot start at W = 2000 < 50·50).
            if k as f64 * 50.0 > w_total {
                continue;
            }
            let spec = WeightSpec::TwoPoint { total: w_total, k, heavy: 50.0 };
            let id = format!("W={w_total:.0},k={k}");
            group.bench_with_input(BenchmarkId::from_parameter(id), &spec, |b, spec| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut rng = SmallRng::seed_from_u64(seed);
                    let tasks = spec.generate(&mut rng);
                    run_user_controlled(n, &tasks, Placement::AllOnOne(0), &cfg, &mut rng).rounds
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_figure1_points);
criterion_main!(benches);
