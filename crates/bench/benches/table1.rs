//! T1 — Table 1 bench: the walk-theory measurement kernels per family.
//!
//! Groups: spectral gap (power iteration), exact hitting times
//! (fundamental matrix), empirical TV mixing — the three quantities the
//! Table-1 driver computes per (family, size) cell.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tlb_experiments::figures::table1::build_family;
use tlb_graphs::generators::Family;
use tlb_walks::{hitting, mixing, spectral, TransitionMatrix};

fn bench_spectral_gap(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/spectral_gap");
    group.sample_size(10);
    for family in Family::ALL {
        let (g, kind) = build_family(family, 128, 1);
        let p = TransitionMatrix::build(&g, kind);
        group.bench_with_input(BenchmarkId::from_parameter(family.name()), &p, |b, p| {
            b.iter(|| spectral::spectral_gap_power(p, &g, 1e-10, 100_000))
        });
    }
    group.finish();
}

fn bench_hitting_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/hitting_exact");
    group.sample_size(10);
    for family in Family::ALL {
        let (g, kind) = build_family(family, 128, 1);
        let p = TransitionMatrix::build(&g, kind);
        group.bench_with_input(BenchmarkId::from_parameter(family.name()), &p, |b, p| {
            b.iter(|| hitting::max_hitting_time_exact(p))
        });
    }
    group.finish();
}

fn bench_tv_mixing(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/tv_mixing");
    group.sample_size(10);
    for family in Family::ALL {
        let (g, kind) = build_family(family, 128, 1);
        let p = TransitionMatrix::build(&g, kind);
        group.bench_with_input(BenchmarkId::from_parameter(family.name()), &p, |b, p| {
            b.iter(|| mixing::tv_mixing_time(p, &g, 0.25, 100_000))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spectral_gap, bench_hitting_exact, bench_tv_mixing);
criterion_main!(benches);
